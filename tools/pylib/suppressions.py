#!/usr/bin/env python3
"""Shared suppression-file handling for tools/lint and tools/analyze.

One format, one parser:

    <path-suffix> : <rule> : <substring>  # justification

Blank lines and lines starting with `#` are comments. Colons are split
only when whitespace-flanked, so substrings may contain C++ scope
operators (`dcas::kPayloadShift`). A suppression without a justification
is a configuration error. `*` as the substring suppresses the rule for
the whole matching file. Clients that opt into wildcards
(`allow_wildcards=True`, tools/analyze) additionally accept `*` for the
path-suffix and rule fields; tools/lint keeps the stricter exact-match
semantics it always had.

Each client owns its rule-id roster and finding type; `apply()` takes an
accessor so it never needs to know the finding's shape:

    apply(findings, sups, lambda f: (f.path, f.rule, (f.line_text,)))
"""

from __future__ import annotations

import dataclasses
import re
import sys
from collections.abc import Callable, Iterable, Sequence


@dataclasses.dataclass
class Suppression:
    path_suffix: str
    rule: str
    substring: str
    justification: str
    source_line: int
    allow_wildcards: bool = False
    used: bool = False

    def matches(self, path: str, rule: str,
                haystacks: Sequence[str]) -> bool:
        if not path.endswith(self.path_suffix) and not (
                self.allow_wildcards and self.path_suffix == "*"):
            return False
        if rule != self.rule and not (self.allow_wildcards
                                      and self.rule == "*"):
            return False
        return (self.substring == "*"
                or any(self.substring in h for h in haystacks))


def _default_error(message: str):
    print(message, file=sys.stderr)
    raise SystemExit(2)


def parse(text: str, origin: str, rule_ids: Iterable[str], *,
          allow_wildcards: bool = False,
          on_error: Callable[[str], None] = _default_error
          ) -> list[Suppression]:
    """Parse a suppression file; `on_error` is called (and must not
    return normally) for format violations."""
    known = set(rule_ids)
    sups: list[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        matcher, sep, justification = line.partition("#")
        justification = justification.strip()
        if not sep or not justification:
            on_error(f"{origin}:{lineno}: suppression lacks a justification "
                     "(append `# <one-line reason>`)")
        parts = [p.strip() for p in re.split(r"\s+:\s+", matcher.strip(),
                                             maxsplit=2)]
        if len(parts) != 3 or not all(parts):
            on_error(f"{origin}:{lineno}: expected `<path-suffix> : <rule> : "
                     f"<substring>  # <reason>`, got: {line}")
        path_suffix, rule, substring = parts
        if rule not in known and not (allow_wildcards and rule == "*"):
            on_error(f"{origin}:{lineno}: unknown rule id '{rule}' "
                     f"(known: {', '.join(sorted(known))})")
        sups.append(Suppression(path_suffix, rule, substring, justification,
                                lineno, allow_wildcards))
    return sups


def apply(findings: list, sups: list[Suppression],
          fields: Callable[[object], tuple[str, str, Sequence[str]]]
          ) -> list:
    """Filter `findings`, marking matching suppressions used. `fields`
    maps a finding to (path, rule, substring-haystacks)."""
    remaining = []
    for f in findings:
        path, rule, haystacks = fields(f)
        hit = next((s for s in sups if s.matches(path, rule, haystacks)),
                   None)
        if hit is not None:
            hit.used = True
        else:
            remaining.append(f)
    return remaining


# --- self test -------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _F:
    path: str
    rule: str
    text: str


def _fields(f: _F) -> tuple[str, str, Sequence[str]]:
    return f.path, f.rule, (f.text,)


def self_test() -> int:
    failures: list[str] = []
    rules = ("rule-a", "rule-b")

    def expect_error(text: str, label: str) -> None:
        try:
            parse(text, "<selftest>", rules,
                  on_error=lambda m: (_ for _ in ()).throw(SystemExit(2)))
            failures.append(f"{label}: accepted")
        except SystemExit as e:
            if e.code != 2:
                failures.append(f"{label}: exit {e.code}, want 2")

    # Round trip: a justified entry parses, matches, and is marked used.
    sups = parse("a.hpp : rule-a : needle  # why\n", "<selftest>", rules)
    fs = [_F("src/a.hpp", "rule-a", "has needle here"),
          _F("src/a.hpp", "rule-b", "has needle here"),
          _F("src/b.hpp", "rule-a", "has needle here"),
          _F("src/a.hpp", "rule-a", "no match")]
    left = apply(fs, sups, _fields)
    if len(left) != 3 or not sups[0].used:
        failures.append(f"exact match filtered {len(fs) - len(left)}, want 1")

    # `*` substring suppresses the whole file for one rule.
    sups = parse("a.hpp : rule-a : *  # file-wide\n", "<selftest>", rules)
    left = apply(fs, sups, _fields)
    if [f.rule for f in left] != ["rule-b", "rule-a"]:
        failures.append("substring wildcard scope wrong")

    # Without the opt-in, `*` as path-suffix is a literal suffix; no real
    # path ends in `*`, so every finding must survive (lint semantics).
    sups = parse("* : rule-a : needle  # why\n", "<selftest>", rules)
    if apply(fs, sups, _fields) != fs:
        failures.append("path wildcard matched without opt-in")

    # ... and honoured with it (tools/analyze semantics).
    sups = parse("* : * : needle  # why\n", "<selftest>", rules,
                 allow_wildcards=True)
    left = apply(fs, sups, _fields)
    if [f.text for f in left] != ["no match"]:
        failures.append("wildcard path+rule did not apply")

    # Unknown rule ids: rejected strictly, `*` needs the opt-in.
    expect_error("a.hpp : bogus : x  # why", "unknown rule")
    expect_error("a.hpp : * : x  # why", "wildcard rule w/o opt-in")
    parse("a.hpp : * : x  # why\n", "<selftest>", rules,
          allow_wildcards=True)

    # Format violations are config errors.
    expect_error("a.hpp : rule-a : x", "missing justification")
    expect_error("a.hpp : rule-a  # why", "two fields only")
    expect_error("a.hpp:rule-a:x  # why", "unflanked colons")

    # Colons inside substrings survive (whitespace-flanked split only).
    sups = parse("w.hpp : rule-a : dcas::kPayloadShift  # why\n",
                 "<selftest>", rules)
    if sups[0].substring != "dcas::kPayloadShift":
        failures.append(f"scoped substring mangled: {sups[0].substring}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test OK (suppression parse/match/wildcard semantics)")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    print(__doc__)
    sys.exit(0)
