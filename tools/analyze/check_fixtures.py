#!/usr/bin/env python3
"""Fixture-tree corpus check for analyzer passes 5/6 + annotation roster.

Runs the guard, shared-plain, and unknown-annotation passes over the
mini-sources in tools/analyze/fixtures/: the good/ tree must analyze
clean, and each bad/ file must produce exactly its expected rule
multiset. This pins the passes' behaviour on curated inputs that are
independent of the real tree — an analyzer regression that stops
*finding* violations fails here even while the (clean) tree keeps
passing --strict.

Exit codes: 0 all fixtures behave, 1 mismatch, 2 fixture tree missing.
"""

from __future__ import annotations

import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import cpp_model as cm  # noqa: E402
import passes  # noqa: E402

FIXTURES = HERE / "fixtures"

# The analysis config the fixtures are written against (mirrors the
# shape of contracts.toml's [guard]/[shared]/[annotations] sections).
CONFIG = {
    "guard": {
        "scan_dirs": ["fixtures"],
        "node_types": ["Node"],
        "lfrc_tokens": ["R::load("],
    },
    "shared": {
        "scan_dirs": ["fixtures"],
        "struct": [
            {"owner": "Box", "file": "good/clean_shared.hpp",
             "fields": ["a"], "functions": ["owner_get"],
             "tokens": ["lock.exchange(true"],
             "why": "fixture: try-lock protocol"},
            {"owner": "Box", "file": "bad/shared_violations.hpp",
             "fields": ["a"], "functions": [], "tokens": [],
             "why": "fixture: no licence on purpose"},
        ],
    },
    "annotations": {
        "known": ["DCD_SYNC", "DCD_LP", "DCD_PROGRESS",
                  "DCD_REQUIRES_GUARD", "DCD_GUARD_EXEMPT"],
    },
}

# file (relative to fixtures/) -> expected sorted rule list. good/ files
# must be absent (no findings at all).
EXPECTED = {
    "bad/guard_violations.hpp": [
        "guard-escape", "unguarded-node-deref", "unprotected-guarded-call"],
    "bad/shared_violations.hpp": [
        "shared-plain-access", "shared-plain-unknown-field"],
    "bad/typo_annotation.hpp": ["unknown-annotation"],
}


def main() -> int:
    if not FIXTURES.is_dir():
        print(f"check_fixtures: missing fixture tree {FIXTURES}",
              file=sys.stderr)
        return 2
    models = []
    findings = []
    for path in sorted(FIXTURES.rglob("*.hpp")):
        rel = path.relative_to(FIXTURES).as_posix()
        model, malformed = cm.build_file_model(
            f"fixtures/{rel}", path.read_text(), [], CONFIG["guard"])
        models.append(model)
        findings += [passes.Finding("driver", "malformed-annotation",
                                    model.path, line, msg)
                     for line, msg in malformed]

    findings += passes.run_guard_pass(models, CONFIG)
    findings += passes.run_shared_plain_pass(models, CONFIG)
    findings += passes.run_annotation_pass(models, CONFIG)

    by_file: dict[str, list[str]] = {}
    for f in findings:
        rel = f.path.removeprefix("fixtures/")
        by_file.setdefault(rel, []).append(f.rule)

    failures = []
    for rel, rules in sorted(by_file.items()):
        want = EXPECTED.get(rel)
        if want is None:
            failures.append(f"{rel}: expected clean, got {sorted(rules)}")
        elif sorted(rules) != want:
            failures.append(f"{rel}: expected {want}, got {sorted(rules)}")
    for rel, want in EXPECTED.items():
        if rel not in by_file:
            failures.append(f"{rel}: expected {want}, got nothing")

    if failures:
        for msg in failures:
            print(f"check_fixtures FAIL: {msg}", file=sys.stderr)
        for f in findings:
            print(f"  {f.path}:{f.line}: [{f.rule}] {f.message}",
                  file=sys.stderr)
        return 1
    print(f"check_fixtures OK ({len(models)} fixtures, "
          f"{len(EXPECTED)} seeded-bad, good tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
