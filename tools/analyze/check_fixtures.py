#!/usr/bin/env python3
"""Fixture-tree corpus check for analyzer passes 2 + 5-9 + annotations.

Runs the guard, shared-plain, publication, codec, hb, sync
(notify-form, scoped to the executor exemplar), and unknown-annotation
passes over the mini-sources in tools/analyze/fixtures/: the good/
tree must analyze clean, and each bad/ file must produce exactly its
expected rule multiset. This pins the passes' behaviour on curated inputs that are
independent of the real tree — an analyzer regression that stops
*finding* violations fails here even while the (clean) tree keeps
passing --strict.

Exit codes: 0 all fixtures behave, 1 mismatch, 2 fixture tree missing.
"""

from __future__ import annotations

import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import cpp_model as cm  # noqa: E402
import passes  # noqa: E402

FIXTURES = HERE / "fixtures"

# The analysis config the fixtures are written against (mirrors the
# shape of contracts.toml's [guard]/[shared]/[annotations] sections).
CONFIG = {
    "guard": {
        "scan_dirs": ["fixtures"],
        "node_types": ["Node"],
        "lfrc_tokens": ["R::load("],
    },
    "shared": {
        "scan_dirs": ["fixtures"],
        "struct": [
            {"owner": "Box", "file": "good/clean_shared.hpp",
             "fields": ["a"], "functions": ["owner_get"],
             "tokens": ["lock.exchange(true"],
             "why": "fixture: try-lock protocol"},
            {"owner": "Box", "file": "bad/shared_violations.hpp",
             "fields": ["a"], "functions": [], "tokens": [],
             "why": "fixture: no licence on purpose"},
        ],
    },
    "sync": {"pseudo": {}},
    "publication": {
        "scan_dirs": ["fixtures"],
        "alloc_tokens": ["allocate_node("],
        "publish_tokens": ["Dcas::dcas(", "Dcas::cas("],
        "node": [
            {"type": "PNode", "file": "bad/publication_violations.hpp",
             "fields": ["left", "right", "value"],
             "why": "fixture: seeded publication violations"},
            {"type": "PNode", "file": "good/clean_publication.hpp",
             "fields": ["left", "right", "value"],
             "why": "fixture: fully initialised before the DCAS"},
        ],
    },
    "codec": {
        "scan_dirs": ["fixtures"],
        "load_tokens": ["Dcas::load("],
        "store_tokens": ["store_init(", "Dcas::dcas("],
        "layout": "good/clean_codec.hpp",
        "payload_shift": 3,
        "helper": [
            {"file": "good/clean_codec.hpp",
             "functions": ["encode_payload", "decode_payload",
                           "is_deleted"],
             "why": "fixture: the licensed bit-arithmetic home"},
            {"file": "bad/codec_violations.hpp",
             "functions": ["ghost_helper"],
             "why": "fixture: rostered helper that does not exist"},
        ],
    },
    "hb": {
        "scan_dirs": ["fixtures"],
        "edge": [
            {"name": "fx.stop.latch", "fields": ["Pool::stop_"],
             "sync_point": "exec.park",
             "why": "fixture: shutdown latch"},
            {"name": "fx.park.dekker", "kind": "fence",
             "fields": ["Pool::parked_"], "sync_point": "exec.park",
             "why": "fixture: eventcount Dekker pair"},
            {"name": "fx.lonely", "fields": ["Bad::lone_"],
             "sync_point": "exec.steal",
             "why": "fixture: acquire side only, on purpose"},
        ],
    },
    "annotations": {
        "known": ["DCD_SYNC", "DCD_LP", "DCD_PROGRESS", "DCD_PUBLISHES",
                  "DCD_REQUIRES_GUARD", "DCD_GUARD_EXEMPT",
                  "DCD_HB", "DCD_HB_EXEMPT"],
    },
}

# The sync pass runs scoped to the executor exemplar alone (exact-path
# scan_dirs), against the exec slice of the roster: its notify-form
# sites must claim all three points with no DCD_SYNC in sight.
SYNC_CONFIG = {
    "sync": {"scan_dirs": ["fixtures/good/clean_exec.hpp"], "pseudo": {}},
}
EXEC_ROSTER = {"exec.park", "exec.steal", "exec.inject"}

# Sync points the publication fixtures' DCD_PUBLISHES may cite (plus the
# exec points the [hb] fixture edges resolve against).
ROSTER = {"dcas.any", "pop.commit"} | EXEC_ROSTER

# file (relative to fixtures/) -> expected sorted rule list. good/ files
# must be absent (no findings at all).
EXPECTED = {
    "bad/guard_violations.hpp": [
        "guard-escape", "unguarded-node-deref", "unprotected-guarded-call"],
    "bad/shared_violations.hpp": [
        "shared-plain-access", "shared-plain-unknown-field"],
    "bad/typo_annotation.hpp": ["unknown-annotation"],
    "bad/publication_violations.hpp": [
        "post-publication-plain-write", "publishes-mismatch",
        "unannotated-publication", "unpublished-field"],
    "bad/codec_violations.hpp": [
        "codec-drift", "raw-word-arithmetic", "raw-word-arithmetic"],
    "bad/hb_violations.hpp": [
        "fence-without-edge", "insufficient-order-for-edge",
        "one-sided-hb-edge", "unrostered-hb-edge"],
}


def main() -> int:
    if not FIXTURES.is_dir():
        print(f"check_fixtures: missing fixture tree {FIXTURES}",
              file=sys.stderr)
        return 2
    models = []
    findings = []
    for path in sorted(FIXTURES.rglob("*.hpp")):
        rel = path.relative_to(FIXTURES).as_posix()
        model, malformed = cm.build_file_model(
            f"fixtures/{rel}", path.read_text(), [], CONFIG["guard"])
        models.append(model)
        findings += [passes.Finding("driver", "malformed-annotation",
                                    model.path, line, msg)
                     for line, msg in malformed]

    findings += passes.run_guard_pass(models, CONFIG)
    findings += passes.run_shared_plain_pass(models, CONFIG)
    findings += passes.run_publication_pass(models, CONFIG, ROSTER)
    findings += passes.run_codec_pass(models, CONFIG)
    findings += passes.run_hb_pass(models, CONFIG, ROSTER)
    findings += passes.run_sync_pass(models, SYNC_CONFIG, EXEC_ROSTER)
    findings += passes.run_annotation_pass(models, CONFIG)

    by_file: dict[str, list[str]] = {}
    for f in findings:
        rel = f.path.removeprefix("fixtures/")
        by_file.setdefault(rel, []).append(f.rule)

    failures = []
    for rel, rules in sorted(by_file.items()):
        want = EXPECTED.get(rel)
        if want is None:
            failures.append(f"{rel}: expected clean, got {sorted(rules)}")
        elif sorted(rules) != want:
            failures.append(f"{rel}: expected {want}, got {sorted(rules)}")
    for rel, want in EXPECTED.items():
        if rel not in by_file:
            failures.append(f"{rel}: expected {want}, got nothing")

    if failures:
        for msg in failures:
            print(f"check_fixtures FAIL: {msg}", file=sys.stderr)
        for f in findings:
            print(f"  {f.path}:{f.line}: [{f.rule}] {f.message}",
                  file=sys.stderr)
        return 1
    print(f"check_fixtures OK ({len(models)} fixtures, "
          f"{len(EXPECTED)} seeded-bad, good tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
