"""The eight analysis passes over the cpp_model fact base.

Pass 1  contract     memory-order contract audit per atomic field
Pass 2  sync         sync-point completeness at every CAS/DCAS call site
Pass 3  progress     retry-loop progress obligations (failure-path edges)
Pass 4  lp           linearization-point proof map (DCD_LP coverage)
Pass 5  guard        reclamation-safety: every pool-node deref dominated by
                     a live guard / LFRC ref / caller-declared scope
Pass 6  shared-plain plain (non-atomic) access to shared-reachable fields
                     outside the happens-before licence contracts.toml claims
Pass 7  publication  safe publication: pool nodes stay thread-private from
                     allocation through field init to the publishing
                     CAS/DCAS, licensed by DCD_PUBLISHES(point, fields)
Pass 8  codec        word-encoding value flow: raw bit arithmetic on values
                     loaded from / stored to contracted atomic words must
                     live in the [codec]-rostered helpers, which are
                     themselves cross-checked against the compile-time
                     tag-disjointness audit
Pass 9  hb           happens-before edge prover: every [[hb.edge]] roster
                     row has DCD_HB-annotated release- and acquire-side
                     endpoints with sufficient orders (SC-fence shape for
                     fence edges), every acquire-or-stronger load and every
                     atomic_thread_fence is licensed by an edge or a
                     DCD_HB_EXEMPT, and every edge cross-references a chaos
                     sync point or mc scenario that exercises it

Plus the annotation-roster check (`unknown-annotation`): a DCD_* token
outside the known roster is a finding, so a typo in a load-bearing
annotation cannot vanish silently.

Each pass takes the parsed per-file models plus the contracts.toml config
and returns Finding records. passes.py has no I/O besides reading the two
roster files named in the config; the driver (analyze.py) owns file
walking, suppression filtering, JSON output and exit codes.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

import cpp_model as cm

RELEASING_WRITE = {"release", "acq_rel", "seq_cst"}
ACQUIRING_READ = {"acquire", "acq_rel", "seq_cst"}

ROLE_DEFAULTS = {
    # Monotonic statistics: no ordering is load-bearing; pairing is not a
    # contract obligation.
    "counter": dict(loads=["relaxed", "acquire"], stores=["relaxed"],
                    rmw=["relaxed", "acq_rel"], cas_success=["relaxed"],
                    cas_failure=["relaxed"], pairing="none", guards=False),
    # Test-and-set style locks: the acquiring RMW pairs with the release
    # store in unlock; everything the lock protects rides on that edge.
    # guards=False because the TTAS spin-read is deliberately relaxed —
    # only the exchange that ends the spin carries the acquire.
    "spinlock": dict(loads=["relaxed", "acquire"], stores=["release"],
                     rmw=["acquire", "acq_rel"],
                     cas_success=["acquire", "acq_rel"],
                     cas_failure=["relaxed", "acquire"],
                     pairing="internal", guards=False),
    # Single-word publication: writer releases initialised memory, readers
    # acquire before dereferencing.
    "publication": dict(loads=["acquire"], stores=["release"],
                        rmw=["acq_rel"], cas_success=["acq_rel", "release"],
                        cas_failure=["relaxed", "acquire"],
                        pairing="internal", guards=True),
}


@dataclasses.dataclass(frozen=True)
class Finding:
    pass_id: str
    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FieldContract:
    owner: str
    member: str
    file: str                 # path suffix filter, "" = any
    aliases: tuple[str, ...]
    loads: set[str]
    stores: set[str]
    rmw: set[str]
    cas_success: set[str]
    cas_failure: set[str]
    pairing: str              # "internal" | "none" | "external"
    guards: bool
    why: str

    @property
    def ident(self) -> str:
        return f"{self.owner}::{self.member}" if self.owner else self.member


def load_contracts(cfg: dict) -> list[FieldContract]:
    out = []
    for f in cfg.get("contract", {}).get("field", []):
        role = f.get("role", "custom")
        base = dict(ROLE_DEFAULTS.get(role, {}))
        merged = {**base, **{k: v for k, v in f.items()
                             if k not in ("owner", "member", "file",
                                          "aliases", "role", "why")}}
        out.append(FieldContract(
            owner=f.get("owner", ""),
            member=f["member"],
            file=f.get("file", ""),
            aliases=tuple(f.get("aliases", [])),
            loads=set(merged.get("loads", [])),
            stores=set(merged.get("stores", [])),
            rmw=set(merged.get("rmw", [])),
            cas_success=set(merged.get("cas_success", [])),
            cas_failure=set(merged.get("cas_failure",
                                       ["relaxed", "acquire", "seq_cst"])),
            pairing=merged.get("pairing", "internal"),
            guards=bool(merged.get("guards", False)),
            why=f.get("why", "")))
    return out


def _in_dirs(path: str, dirs: list[str]) -> bool:
    p = path.replace("\\", "/")
    return any(p.startswith(d.rstrip("/") + "/") or p == d for d in dirs)


def _snippet(model: cm.FileModel, line: int) -> str:
    return cm.line_text_at(model.lines, line).strip()[:160]


def _derived_failure(success: str) -> str:
    return {"acq_rel": "acquire", "release": "relaxed"}.get(success, success)


# --------------------------------------------------------------------------
# Pass 1: memory-order contract audit
# --------------------------------------------------------------------------

def _file_match(path: str, cfile: str) -> bool:
    """A row's `file` key names the declaring file; accesses from the
    sibling TU (ebr.cpp against ebr.hpp) match by stem."""
    if path.endswith(cfile):
        return True
    return (pathlib.PurePosixPath(path).stem
            == pathlib.PurePosixPath(cfile).stem)


def _resolve(contracts: list[FieldContract], member: str,
             path: str) -> list[FieldContract]:
    cands = [c for c in contracts
             if member == c.member or member in c.aliases]
    file_matched = [c for c in cands if c.file and _file_match(path, c.file)]
    if file_matched:
        return file_matched
    return [c for c in cands if not c.file]


def run_contract_pass(models: list[cm.FileModel],
                      cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    contracts = load_contracts(cfg)
    scan_dirs = cfg.get("contract", {}).get("scan_dirs", ["src"])
    scoped = [m for m in models if _in_dirs(m.path, scan_dirs)]

    # Every declared atomic must have a contract row.
    for model in scoped:
        for field in model.fields:
            if not _resolve(contracts, field.name, field.path):
                findings.append(Finding(
                    "contract", "uncontracted-atomic-field", field.path,
                    field.line,
                    f"std::atomic member '{field.owner}::{field.name}' "
                    f"({field.value_type}) has no row in contracts.toml",
                    _snippet(model, field.line)))

    # Per-access order check + per-field pairing aggregation.
    seen_writes: dict[str, set[str]] = {}
    seen_reads: dict[str, set[str]] = {}
    for model in scoped:
        for acc in model.accesses:
            cands = _resolve(contracts, acc.member, acc.path)
            if not cands:
                findings.append(Finding(
                    "contract", "unresolved-atomic-access", acc.path,
                    acc.line,
                    f"atomic op .{acc.op}() on '{acc.member}' matches no "
                    "contract row (add member/alias or file key)",
                    _snippet(model, acc.line)))
                continue
            if len(cands) > 1 and len({frozenset(c.loads) | frozenset(c.stores)
                                       | frozenset(c.rmw)
                                       for c in cands}) > 1:
                findings.append(Finding(
                    "contract", "ambiguous-field", acc.path, acc.line,
                    f"'{acc.member}' matches {len(cands)} contract rows with "
                    "different order sets; add a file key to disambiguate",
                    _snippet(model, acc.line)))
                continue
            c = cands[0]
            kind = cm._classify_op(acc.op)
            orders = acc.orders if acc.orders else ("seq_cst",)
            if kind == "cas":
                success = orders[0]
                failure = (orders[1] if len(orders) > 1
                           else _derived_failure(success))
                if success not in c.cas_success:
                    findings.append(Finding(
                        "contract", "memory-order-contract", acc.path,
                        acc.line,
                        f"{c.ident}.{acc.op} success order '{success}' not in "
                        f"contract {sorted(c.cas_success)}",
                        _snippet(model, acc.line)))
                if failure not in c.cas_failure:
                    findings.append(Finding(
                        "contract", "memory-order-contract", acc.path,
                        acc.line,
                        f"{c.ident}.{acc.op} failure order '{failure}' not in "
                        f"contract {sorted(c.cas_failure)}",
                        _snippet(model, acc.line)))
                seen_writes.setdefault(c.ident, set()).add(success)
                seen_reads.setdefault(c.ident, set()).add(success)
                seen_reads.setdefault(c.ident, set()).add(failure)
            else:
                allowed = {"load": c.loads, "store": c.stores,
                           "rmw": c.rmw}[kind]
                order = orders[0]
                if order not in allowed:
                    findings.append(Finding(
                        "contract", "memory-order-contract", acc.path,
                        acc.line,
                        f"{c.ident}.{acc.op} order '{order}' not in contract "
                        f"{sorted(allowed)}",
                        _snippet(model, acc.line)))
                if kind in ("store", "rmw"):
                    seen_writes.setdefault(c.ident, set()).add(order)
                if kind in ("load", "rmw"):
                    seen_reads.setdefault(c.ident, set()).add(order)
                if (kind == "load" and order == "relaxed" and c.guards):
                    findings.append(Finding(
                        "contract", "relaxed-guard-load", acc.path, acc.line,
                        f"relaxed load of {c.ident}, which the contract marks "
                        "guards=true (its value licenses non-atomic access); "
                        "an acquire edge or a justification suppression is "
                        "required",
                        _snippet(model, acc.line)))
        for op in model.operator_accesses:
            cands = _resolve(contracts, op.member, op.path)
            ident = cands[0].ident if cands else op.member
            findings.append(Finding(
                "contract", "implicit-operator-access", op.path, op.line,
                f"operator '{op.token}' on atomic '{ident}' is an implicit "
                "seq_cst access invisible to the ordering contract; use an "
                "explicit .load/.store/.fetch_* with a memory_order",
                _snippet(model, op.line)))

    # Pairing: computed over the whole scanned tree so a release store in
    # one TU pairs with acquire loads in another.
    for c in contracts:
        if c.pairing != "internal":
            continue
        writes = seen_writes.get(c.ident, set())
        reads = seen_reads.get(c.ident, set())
        rel = writes & RELEASING_WRITE
        acq = reads & ACQUIRING_READ
        anchor = _contract_anchor(models, c)
        if rel and not acq:
            findings.append(Finding(
                "contract", "unpaired-release-store", anchor[0], anchor[1],
                f"{c.ident} has releasing writes ({sorted(rel)}) but no "
                "acquiring read anywhere in the scanned tree; the release "
                "edge synchronizes with nothing",
                anchor[2]))
        if acq and not rel:
            findings.append(Finding(
                "contract", "acquire-without-release", anchor[0], anchor[1],
                f"{c.ident} has acquiring reads ({sorted(acq)}) but no "
                "releasing write anywhere in the scanned tree; the acquire "
                "observes no release",
                anchor[2]))
    return findings


def _contract_anchor(models: list[cm.FileModel],
                     c: FieldContract) -> tuple[str, int, str]:
    for model in models:
        for field in model.fields:
            if field.name == c.member and (not c.file
                                           or field.path.endswith(c.file)):
                return field.path, field.line, _snippet(model, field.line)
    return c.file or "contracts.toml", 0, ""


# --------------------------------------------------------------------------
# Pass 2: sync-point completeness
# --------------------------------------------------------------------------

def run_sync_pass(models: list[cm.FileModel], cfg: dict,
                  roster: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    scfg = cfg.get("sync", {})
    scan_dirs = scfg.get("scan_dirs", [])
    pseudo = set(scfg.get("pseudo", {}).keys())
    claimed: dict[str, list[tuple[str, int]]] = {p: [] for p in roster}

    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        ann_by_line = {}
        for ann in model.syncs:
            ann_by_line.setdefault(ann.line, []).extend(ann.points)
        for site in model.cas_sites:
            if site.form == "notify":
                # The call names its point directly; it claims the roster
                # entry with no annotation needed — but the name must still
                # resolve: a notify against a point the registry does not
                # declare would silently never be armable.
                if site.callee not in roster and site.callee not in pseudo:
                    findings.append(Finding(
                        "sync", "unknown-sync-point", site.path, site.line,
                        f"notify-form sync point '{site.callee}' is neither "
                        "in the chaos.hpp roster nor a declared pseudo-point "
                        "in contracts.toml",
                        _snippet(model, site.line)))
                    continue
                claimed.setdefault(site.callee, []).append(
                    (site.path, site.line))
                continue
            points = ann_by_line.get(site.line, [])
            if not points:
                findings.append(Finding(
                    "sync", "unannotated-sync-site", site.path, site.line,
                    f"{site.callee}() in {site.function or '?'}() has no "
                    "DCD_SYNC annotation mapping it to a classified sync "
                    "point from chaos.hpp",
                    _snippet(model, site.line)))
                continue
            for p in points:
                if p in roster:
                    claimed[p].append((site.path, site.line))
                elif p not in pseudo:
                    findings.append(Finding(
                        "sync", "unknown-sync-point", site.path, site.line,
                        f"DCD_SYNC point '{p}' is neither in the chaos.hpp "
                        "roster nor a declared pseudo-point in contracts.toml",
                        _snippet(model, site.line)))
        # Annotations that attach to lines without any CAS site are stale.
        site_lines = {s.line for s in model.cas_sites}
        for ann in model.syncs:
            if ann.line not in site_lines:
                findings.append(Finding(
                    "sync", "orphan-sync-annotation", ann.path, ann.line,
                    f"DCD_SYNC({'|'.join(ann.points)}) attaches to a line "
                    "with no CAS/DCAS call site",
                    _snippet(model, ann.line)))

    for point, sites in sorted(claimed.items()):
        if point in roster and not sites:
            findings.append(Finding(
                "sync", "sync-roster-gap", scfg.get("registry", ""), 0,
                f"roster sync point '{point}' is claimed by no annotated "
                "call site: either dead registry entry or missing DCD_SYNC"))
    return findings


# --------------------------------------------------------------------------
# Pass 3: retry-loop progress obligations
# --------------------------------------------------------------------------

CONTINUE_GUARD_SPAN = 240  # chars of lookbehind for a guarded `continue`


def run_progress_pass(models: list[cm.FileModel],
                      cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    pcfg = cfg.get("progress", {})
    scan_dirs = pcfg.get("scan_dirs", [])
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        for loop in model.loops:
            if loop.justified is not None:
                continue
            if not loop.progress_offsets:
                findings.append(Finding(
                    "progress", "retry-loop-no-progress", loop.path,
                    loop.line,
                    f"{loop.header} retry loop around CAS sites at lines "
                    f"{list(loop.cas_lines)} reaches no backoff/elimination/"
                    "helping edge on its failure path; add one or justify "
                    "with DCD_PROGRESS(reason)",
                    _snippet(model, loop.line)))
                continue
            if not loop.tail_has_progress and loop.header in ("for(;;)",
                                                              "while(true)"):
                findings.append(Finding(
                    "progress", "retry-loop-fallthrough-no-progress",
                    loop.path, loop.line,
                    f"{loop.header} retry loop's fall-through path re-enters "
                    "the CAS without reaching a progress edge (last "
                    "statement has no backoff/elimination call)",
                    _snippet(model, loop.line)))
            for cont in loop.continue_offsets:
                guarded = any(cont - CONTINUE_GUARD_SPAN <= p < cont
                              for p in loop.progress_offsets)
                if not guarded:
                    findings.append(Finding(
                        "progress", "retry-loop-unguarded-continue",
                        loop.path, loop.line,
                        "a `continue` in this retry loop skips the loop tail "
                        "without first reaching a progress edge "
                        "(backoff/helping/elimination)",
                        _snippet(model, loop.line)))
                    break
    return findings


# --------------------------------------------------------------------------
# Pass 4: linearization-point proof map
# --------------------------------------------------------------------------

def run_lp_pass(models: list[cm.FileModel], cfg: dict, roster: set[str],
                clauses: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    lcfg = cfg.get("lp", {})
    scan_dirs = lcfg.get("scan_dirs", [])
    figures = set(lcfg.get("figures", []))
    pseudo = set(cfg.get("sync", {}).get("pseudo", {}).keys())
    covered_clauses: set[str] = set()

    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        site_lines = {s.line for s in model.cas_sites
                      if s.form != "notify"}
        lp_lines = {lp.line for lp in model.lps}
        for lp in model.lps:
            if lp.figure not in figures:
                findings.append(Finding(
                    "lp", "lp-unknown-figure", lp.path, lp.line,
                    f"DCD_LP figure '{lp.figure}' is not in the known set "
                    f"{sorted(figures)}",
                    _snippet(model, lp.line)))
            if lp.point not in roster and lp.point not in pseudo:
                findings.append(Finding(
                    "lp", "lp-unknown-point", lp.path, lp.line,
                    f"DCD_LP sync point '{lp.point}' is not in the chaos.hpp "
                    "roster",
                    _snippet(model, lp.line)))
            for clause in lp.inv:
                if clause not in clauses:
                    findings.append(Finding(
                        "lp", "lp-unknown-clause", lp.path, lp.line,
                        f"DCD_LP invariant clause '{clause}' is not a "
                        "RepAuditor clause (rep_auditor.cpp roster)",
                        _snippet(model, lp.line)))
                else:
                    covered_clauses.add(clause)
            if lp.line not in site_lines:
                findings.append(Finding(
                    "lp", "lp-unattached", lp.path, lp.line,
                    "DCD_LP annotation attaches to a line with no CAS/DCAS "
                    "call site",
                    _snippet(model, lp.line)))
        # Every annotated sync site in the LP scope must carry a proof
        # obligation — that is what makes the map complete.
        for site in model.cas_sites:
            if site.form == "notify":
                continue
            if site.line not in lp_lines:
                findings.append(Finding(
                    "lp", "lp-missing", site.path, site.line,
                    f"{site.callee}() in {site.function or '?'}() has no "
                    "DCD_LP proof-obligation annotation (every DCAS/CAS "
                    "site in src/deque must name its figure, invariant "
                    "clauses, and linearization condition)",
                    _snippet(model, site.line)))

    for clause in sorted(clauses - covered_clauses):
        findings.append(Finding(
            "lp", "lp-clause-roster-gap", lcfg.get("auditor", ""), 0,
            f"RepAuditor clause '{clause}' is preserved-by no DCD_LP "
            "annotation; the proof map does not discharge it"))
    return findings


# --------------------------------------------------------------------------
# Pass 5: guard-scope reclamation safety
# --------------------------------------------------------------------------
#
# The paper gives its algorithms "assuming garbage collection"; this repo
# discharges that assumption with EBR/LFRC. Pass 5 makes the discharge
# machine-checked: every dereference of a pool-allocated node must be
# dominated (within its function) by a live protection scope — a declared
# `Guard` object, an LFRC reference acquisition, or a caller-provided
# scope declared with DCD_REQUIRES_GUARD and propagated through the call
# graph. DCD_GUARD_EXEMPT(why) records the justified exceptions.

def guard_roster(models: list[cm.FileModel],
                 cfg: dict) -> dict[str, list[tuple[str, int, str]]]:
    """Functions whose callers must hold a guard: name -> [(path, line,
    note)]. Name-keyed on purpose: the roster is an interprocedural
    contract on the call spelling, not on overload resolution."""
    gcfg = cfg.get("guard", {})
    scan_dirs = gcfg.get("scan_dirs", [])
    roster: dict[str, list[tuple[str, int, str]]] = {}
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        for fn in model.funcs:
            if fn.requires_guard is not None:
                roster.setdefault(fn.name, []).append(
                    (model.path, fn.line, fn.requires_guard))
    return roster


def run_guard_pass(models: list[cm.FileModel], cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    gcfg = cfg.get("guard", {})
    if not gcfg.get("node_types"):
        return findings
    scan_dirs = gcfg.get("scan_dirs", [])
    roster = guard_roster(models, cfg)

    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        for fn in model.funcs:
            if fn.exempt is not None:
                continue

            def covered(off: int) -> bool:
                return (fn.requires_guard is not None
                        or any(s < off <= e for s, e in fn.guard_spans))

            for d in fn.derefs:
                if d.var and fn.node_vars.get(d.var, False):
                    continue  # LFRC acquisition carries its own protection
                if not covered(d.off):
                    what = (f"'{d.var}->'" if d.var
                            else "a cast-expression deref")
                    findings.append(Finding(
                        "guard", "unguarded-node-deref", model.path, d.line,
                        f"{what} in {fn.name}() dereferences a pool node "
                        "with no live protection scope: no Guard dominates "
                        "it, the value is not an LFRC acquisition, and the "
                        "function declares no DCD_REQUIRES_GUARD",
                        _snippet(model, d.line)))
            for r in fn.returns:
                if fn.node_vars.get(r.var, False):
                    continue  # an LFRC reference may outlive the scope
                if fn.requires_guard is None:
                    findings.append(Finding(
                        "guard", "guard-escape", model.path, r.line,
                        f"{fn.name}() returns raw pool-node pointer "
                        f"'{r.var}' beyond its guard scope; the protection "
                        "dies at return — declare DCD_REQUIRES_GUARD so the "
                        "caller's scope covers the escape, or hand out an "
                        "LFRC reference",
                        _snippet(model, r.line)))
            for callee, off, line in fn.calls:
                if callee in roster and not covered(off):
                    decl = roster[callee][0]
                    findings.append(Finding(
                        "guard", "unprotected-guarded-call", model.path,
                        line,
                        f"{fn.name}() calls {callee}() — declared "
                        f"DCD_REQUIRES_GUARD at {decl[0]}:{decl[1]} "
                        f"({decl[2]}) — without a live guard at the call "
                        "site and without declaring DCD_REQUIRES_GUARD "
                        "itself",
                        _snippet(model, line)))
    return findings


# --------------------------------------------------------------------------
# Pass 6: shared-plain-access race screen
# --------------------------------------------------------------------------
#
# Seeded from the [[shared.struct]] rows: plain (non-atomic) fields that
# are reachable from more than one thread, each with the happens-before
# licence the contracts table claims (owner functions, or a lock-protocol
# token that must appear in the accessing function). A plain access
# outside the licence is a static data-race screen — it catches what TSan
# only finds on exercised interleavings. Struct-definition drift (a new
# plain member, or a roster field that vanished) is a finding too.

_MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:public|private|protected|using|friend|static|struct|class|"
    r"enum|template|typedef)\b")
_MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?[A-Za-z_][\w:<>,*&\s]*?[*&]?\s*"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;{}]*\})?;")


def _plain_members(model: cm.FileModel, owner: str) -> dict[str, int]:
    """Plain (non-atomic, non-function) data members of `owner`, parsed
    from its definition in `model`; name -> line."""
    m = re.search(rf"\b(?:struct|class)\s+(?:alignas\s*\([^)]*\)\s*)?"
                  rf"{re.escape(owner)}\b[^;{{]*\{{",
                  model.masked)
    if m is None:
        return {}
    open_off = m.end() - 1
    close_off = cm.matching_brace(model.masked, open_off)
    if close_off is None:
        return {}
    body = model.masked[open_off + 1:close_off]
    first_line = cm.line_of(model.masked, open_off)
    members: dict[str, int] = {}
    depth = 0
    for i, raw in enumerate(body.split("\n")):
        if depth == 0:
            line = raw.strip()
            if (line and "(" not in line and "atomic" not in raw
                    and not _MEMBER_SKIP_RE.match(raw)):
                dm = _MEMBER_DECL_RE.match(raw)
                if dm:
                    members[dm.group(1)] = first_line + i
        depth += raw.count("{") - raw.count("}")
    return members


def run_shared_plain_pass(models: list[cm.FileModel],
                          cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    scfg = cfg.get("shared", {})
    scan_dirs = scfg.get("scan_dirs", [])
    for row in scfg.get("struct", []):
        owner = row["owner"]
        dfile = row["file"]
        fields = list(row.get("fields", []))
        functions = set(row.get("functions", []))
        tokens = list(row.get("tokens", []))

        decl_model = next(
            (m for m in models if m.path.endswith(dfile)), None)
        if decl_model is None:
            findings.append(Finding(
                "shared-plain", "shared-plain-unknown-field",
                dfile, 0,
                f"[[shared.struct]] row for '{owner}' names file '{dfile}' "
                "which is not in the scanned tree"))
            continue
        members = _plain_members(decl_model, owner)
        if not members:
            findings.append(Finding(
                "shared-plain", "shared-plain-unknown-field",
                decl_model.path, 0,
                f"[[shared.struct]] row for '{owner}': no struct/class "
                f"definition with plain members found in {dfile}"))
            continue
        for f in fields:
            if f not in members:
                findings.append(Finding(
                    "shared-plain", "shared-plain-unknown-field",
                    decl_model.path, 0,
                    f"contracts.toml lists shared field '{owner}::{f}' but "
                    f"the struct definition in {dfile} has no such plain "
                    "member (renamed? made atomic? update the row)"))
        for name, line in sorted(members.items(), key=lambda kv: kv[1]):
            if name not in fields:
                findings.append(Finding(
                    "shared-plain", "shared-plain-unknown-field",
                    decl_model.path, line,
                    f"plain member '{owner}::{name}' is not in the "
                    "[[shared.struct]] roster; every plain member of a "
                    "shared struct needs a declared happens-before licence",
                    _snippet(decl_model, line)))

        if not fields:
            continue
        access_re = re.compile(
            r"(?:\.|->)\s*(" + "|".join(re.escape(f) for f in fields)
            + r")\b")
        for model in models:
            if not (_in_dirs(model.path, scan_dirs)
                    and _file_match(model.path, dfile)):
                continue
            for am in access_re.finditer(model.masked):
                fname = am.group(1)
                fn = _innermost_func(model.funcs, am.start())
                if fn is None:
                    continue  # declaration/default-init, not an access
                if fn.name in functions:
                    continue
                body = model.masked[fn.header_off:fn.close_off]
                if tokens and any(tok in body for tok in tokens):
                    continue
                line = cm.line_of(model.masked, am.start())
                findings.append(Finding(
                    "shared-plain", "shared-plain-access", model.path, line,
                    f"plain access to shared field '{owner}::{fname}' in "
                    f"{fn.name}(), which is not a licensed owner function "
                    f"({sorted(functions)}) and shows no claimed "
                    f"happens-before token ({tokens}); the access races "
                    "unless a lock/guard edge the contract does not know "
                    "about protects it",
                    _snippet(model, line)))
    return findings


def _innermost_func(funcs: list[cm.FuncModel],
                    off: int) -> cm.FuncModel | None:
    best = None
    for fn in funcs:
        if fn.open_off < off <= fn.close_off:
            if best is None or fn.open_off > best.open_off:
                best = fn
    return best


# --------------------------------------------------------------------------
# Pass 7: safe publication
# --------------------------------------------------------------------------
#
# Paper footnote 7: a node is thread-private from allocation until the
# DCAS that links it into the deque; only that privacy makes the plain
# (non-atomic) field initialisation between the two points race-free.
# Pass 7 machine-checks it: every publishing store of a tracked
# allocation must carry a DCD_PUBLISHES(point, fields) licence whose
# point matches the site's DCD_SYNC classification, every rostered field
# of the node type must be written (or explicitly vouched) before the
# publish, and no plain write through the pointer may follow it.

def _pub_node_rows(cfg: dict) -> list[dict]:
    return list(cfg.get("publication", {}).get("node", []))


def _resolve_node_row(rows: list[dict], var: cm.AllocVar,
                      path: str) -> dict | None:
    cands = [r for r in rows if _file_match(path, r.get("file", ""))]
    exact = [r for r in cands if r.get("type") == var.type]
    if exact:
        return exact[0]
    return cands[0] if len(cands) == 1 else None


def run_publication_pass(models: list[cm.FileModel], cfg: dict,
                         roster: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    pcfg = cfg.get("publication", {})
    scan_dirs = pcfg.get("scan_dirs", [])
    alloc_tokens = list(pcfg.get("alloc_tokens", []))
    publish_tokens = list(pcfg.get("publish_tokens", []))
    rows = _pub_node_rows(cfg)
    pseudo = set(cfg.get("sync", {}).get("pseudo", {}).keys())
    if not (scan_dirs and alloc_tokens and publish_tokens):
        return findings

    # Roster rows must name files that are actually scanned, else the
    # field obligations they carry silently evaporate.
    for row in rows:
        if not any(_file_match(m.path, row.get("file", ""))
                   for m in models if _in_dirs(m.path, scan_dirs)):
            findings.append(Finding(
                "publication", "publishes-mismatch", row.get("file", "?"), 0,
                f"[[publication.node]] row for '{row.get('type', '?')}' "
                f"names file '{row.get('file', '?')}' which is not in the "
                "scanned tree"))

    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        pub_by_line: dict[int, list[cm.PublishAnnotation]] = {}
        for ann in model.publishes:
            pub_by_line.setdefault(ann.line, []).append(ann)
        sync_by_line: dict[int, list[str]] = {}
        for sann in model.syncs:
            sync_by_line.setdefault(sann.line, []).extend(sann.points)
        site_lines: set[int] = set()

        for fn in model.funcs:
            allocs, writes, sites = cm.extract_alloc_flow(
                model.masked, fn, alloc_tokens, publish_tokens)
            for var in allocs:
                var_sites = [s for s in sites if s.var == var.name]
                if not var_sites:
                    continue
                first = var_sites[0]
                site_lines.update(s.line for s in var_sites)
                var_writes = [w for w in writes if w.var == var.name]
                row = _resolve_node_row(rows, var, model.path)
                anns = pub_by_line.get(first.line, [])

                for w in var_writes:
                    if w.off > first.off:
                        findings.append(Finding(
                            "publication", "post-publication-plain-write",
                            model.path, w.line,
                            f"{w.kind} write to '{var.name}->{w.field}' in "
                            f"{fn.name}() comes after the publishing store "
                            f"at line {first.line}; once published the node "
                            "is shared and every field write must go "
                            "through its atomic word",
                            _snippet(model, w.line)))

                if not anns:
                    findings.append(Finding(
                        "publication", "unannotated-publication",
                        model.path, first.line,
                        f"publishing store of '{var.name}' (allocated at "
                        f"line {var.line}) in {fn.name}() carries no "
                        "DCD_PUBLISHES(point, fields) licence naming the "
                        "escape point and the plain fields initialised "
                        "before it",
                        _snippet(model, first.line)))
                    continue

                vouched: set[str] = set()
                for ann in anns:
                    vouched.update(ann.fields)
                    if ann.point not in roster and ann.point not in pseudo:
                        findings.append(Finding(
                            "publication", "publishes-mismatch",
                            model.path, ann.line,
                            f"DCD_PUBLISHES point '{ann.point}' is neither "
                            "in the chaos.hpp sync roster nor a declared "
                            "pseudo-point",
                            _snippet(model, ann.line)))
                    sync_points = sync_by_line.get(first.line, [])
                    if sync_points and ann.point not in sync_points:
                        findings.append(Finding(
                            "publication", "publishes-mismatch",
                            model.path, ann.line,
                            f"DCD_PUBLISHES point '{ann.point}' disagrees "
                            "with the site's DCD_SYNC classification "
                            f"({sync_points}); the escape happens at the "
                            "sync point, not beside it",
                            _snippet(model, ann.line)))
                    if row is not None:
                        unknown = [f for f in ann.fields
                                   if f not in row.get("fields", [])]
                        if unknown:
                            findings.append(Finding(
                                "publication", "publishes-mismatch",
                                model.path, ann.line,
                                f"DCD_PUBLISHES fields {unknown} are not in "
                                f"the [[publication.node]] roster for "
                                f"'{row.get('type')}' "
                                f"({row.get('fields', [])})",
                                _snippet(model, ann.line)))
                if row is not None:
                    for f in row.get("fields", []):
                        written = any(w.field == f and w.off < first.off
                                      for w in var_writes)
                        if not written and f not in vouched:
                            findings.append(Finding(
                                "publication", "unpublished-field",
                                model.path, first.line,
                                f"publishing store of '{var.name}' in "
                                f"{fn.name}() is reachable while rostered "
                                f"field '{row.get('type')}::{f}' has no "
                                "observed write and the DCD_PUBLISHES "
                                "licence does not vouch for it; a reader "
                                "can acquire the node with the field "
                                "uninitialised",
                                _snippet(model, first.line)))

        # A licence that attaches to a line with no publishing store is
        # stale — the same staleness check DCD_SYNC orphans get.
        for ann in model.publishes:
            if ann.line not in site_lines:
                findings.append(Finding(
                    "publication", "publishes-mismatch", model.path,
                    ann.line,
                    f"DCD_PUBLISHES({ann.point}, ...) attaches to a line "
                    "with no publishing store of a tracked allocation",
                    _snippet(model, ann.line)))
    return findings


# --------------------------------------------------------------------------
# Pass 8: word-encoding value flow
# --------------------------------------------------------------------------
#
# Every multi-field word (payload/tag/deleted-bit/sentinel encodings,
# descriptor marks, version tags) is packed and unpacked by the helpers
# rostered in [codec]. Raw bit arithmetic on a value loaded from (or
# stored to) a contracted atomic word anywhere else is a finding: it is
# exactly how a second, drifting copy of the word layout enters the tree.
# The rostered helpers are in turn cross-checked against the compile-time
# tag-disjointness audit (concepts.hpp) and the property tests named in
# their rows, so the static roster, the runtime layout, and the tests
# cannot drift apart.

def _codec_rows(cfg: dict) -> list[dict]:
    return list(cfg.get("codec", {}).get("helper", []))


def _rostered_spans(model: cm.FileModel,
                    rows: list[dict]) -> list[tuple[int, int]]:
    names: set[str] = set()
    for row in rows:
        if _file_match(model.path, row.get("file", "")):
            names.update(row.get("functions", []))
    if not names:
        return []
    return [(fn.header_off, fn.close_off) for fn in model.funcs
            if fn.name in names]


def run_codec_pass(models: list[cm.FileModel], cfg: dict,
                   aux_texts: dict[str, str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    ccfg = cfg.get("codec", {})
    scan_dirs = ccfg.get("scan_dirs", [])
    load_tokens = list(ccfg.get("load_tokens", []))
    store_tokens = list(ccfg.get("store_tokens", []))
    rows = _codec_rows(cfg)
    aux_texts = aux_texts or {}
    if not scan_dirs:
        return findings

    # raw-word-arithmetic: tainted-value and store-argument bit ops
    # outside every rostered helper span.
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        licensed = _rostered_spans(model, rows)
        seen_offs: set[int] = set()
        for fn in model.funcs:
            uses = cm.extract_word_flow(model.masked, fn, load_tokens)
            uses += cm.extract_store_arg_bitops(model.masked, fn,
                                                store_tokens)
            for u in uses:
                if u.off in seen_offs:
                    continue  # nested scopes (lambdas) see the same token
                seen_offs.add(u.off)
                if any(s < u.off <= e for s, e in licensed):
                    continue
                what = (f"word value '{u.var}'" if u.var
                        else "a store/CAS value argument")
                findings.append(Finding(
                    "codec", "raw-word-arithmetic", model.path, u.line,
                    f"raw bit operator '{u.op}' on {what} in "
                    f"{fn.name}(), outside every [codec]-rostered helper; "
                    "tag/payload/deleted-bit arithmetic must go through "
                    "the word codec so the layout has exactly one "
                    "implementation",
                    _snippet(model, u.line)))

    # codec-drift: roster rows vs. the tree, the compile-time audit, and
    # the property tests they claim.
    for row in rows:
        rfile = row.get("file", "?")
        # Exact suffix beats the stem fallback: `mcas.cpp` must resolve
        # to the TU holding the helper definitions, not its header.
        model = (next((m for m in models if m.path.endswith(rfile)), None)
                 or next((m for m in models
                          if _file_match(m.path, rfile)), None))
        if model is None:
            findings.append(Finding(
                "codec", "codec-drift", rfile, 0,
                f"[[codec.helper]] row names file '{rfile}' which is not "
                "in the scanned tree"))
            continue
        for name in row.get("functions", []):
            if not re.search(rf"\b{re.escape(name)}\s*\(", model.masked):
                findings.append(Finding(
                    "codec", "codec-drift", model.path, 0,
                    f"rostered codec helper '{name}' has no definition in "
                    f"{rfile}; the roster licenses arithmetic that no "
                    "longer exists"))
        tested_by = row.get("tested_by", "")
        if tested_by:
            text = aux_texts.get(tested_by)
            if text is None:
                findings.append(Finding(
                    "codec", "codec-drift", tested_by, 0,
                    f"[[codec.helper]] row for '{rfile}' names test file "
                    f"'{tested_by}' which does not exist"))
            else:
                for tok in row.get("tested_tokens", []):
                    if tok not in text:
                        findings.append(Finding(
                            "codec", "codec-drift", tested_by, 0,
                            f"claimed test token '{tok}' (codec roster row "
                            f"for '{rfile}') does not appear in "
                            f"{tested_by}; the cross-reference from roster "
                            "to property test is stale"))

    # Layout pins: the [codec] section repeats the payload shift and the
    # audit file's key static_assert expressions; disagreement with the
    # tree means the static model and the compile-time audit diverged.
    layout = ccfg.get("layout", "")
    if layout:
        model = next((m for m in models if _file_match(m.path, layout)),
                     None)
        if model is None:
            findings.append(Finding(
                "codec", "codec-drift", layout, 0,
                f"[codec] layout file '{layout}' is not in the scanned "
                "tree"))
        else:
            m = re.search(r"kPayloadShift\s*=\s*(\d+)", model.masked)
            want = ccfg.get("payload_shift")
            if m is None or (want is not None
                             and int(m.group(1)) != int(want)):
                got = m.group(1) if m else "<missing>"
                findings.append(Finding(
                    "codec", "codec-drift", model.path,
                    cm.line_of(model.masked, m.start()) if m else 0,
                    f"kPayloadShift in {layout} is {got} but [codec] "
                    f"payload_shift pins {want}; update the roster and "
                    "every helper the shift feeds"))
    audit = ccfg.get("audit", "")
    if audit:
        model = next((m for m in models if _file_match(m.path, audit)),
                     None)
        if model is None:
            findings.append(Finding(
                "codec", "codec-drift", audit, 0,
                f"[codec] audit file '{audit}' is not in the scanned tree"))
        else:
            text = "\n".join(model.lines)
            for needle in ccfg.get("audit_needles", []):
                if needle not in text:
                    findings.append(Finding(
                        "codec", "codec-drift", model.path, 0,
                        f"compile-time audit expression '{needle}' is "
                        f"missing from {audit}; the tag-disjointness "
                        "static_asserts no longer pin the layout the "
                        "codec roster assumes"))
    return findings


# --------------------------------------------------------------------------
# Annotation roster: unknown DCD_* tokens
# --------------------------------------------------------------------------

_DCD_TOKEN_RE = re.compile(r"\bDCD_[A-Z][A-Z0-9_]*\b")


def run_annotation_pass(models: list[cm.FileModel],
                        cfg: dict) -> list[Finding]:
    """Any DCD_* token (code or comment) outside the known roster is a
    finding — typos in load-bearing annotations must not vanish."""
    known = cfg.get("annotations", {}).get("known", [])
    if not known:
        return []
    exact = {k for k in known if not k.endswith("*")}
    prefixes = tuple(k[:-1] for k in known if k.endswith("*"))
    findings: list[Finding] = []
    for model in models:
        for lineno, text in enumerate(model.lines, start=1):
            for m in _DCD_TOKEN_RE.finditer(text):
                tok = m.group(0)
                if tok in exact or (prefixes and tok.startswith(prefixes)):
                    continue
                findings.append(Finding(
                    "annotation", "unknown-annotation", model.path, lineno,
                    f"'{tok}' is not in the known DCD_* annotation roster "
                    f"({', '.join(sorted(known))}); a typo here silently "
                    "disables the contract the annotation was meant to "
                    "carry",
                    _snippet(model, lineno)))
    return findings


# --------------------------------------------------------------------------
# Proof-map emission
# --------------------------------------------------------------------------

def emit_proof_map(models: list[cm.FileModel], cfg: dict,
                   clauses: set[str]) -> str:
    lcfg = cfg.get("lp", {})
    scan_dirs = lcfg.get("scan_dirs", [])
    rows = []
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        sites_by_line = {}
        for s in model.cas_sites:
            if s.form != "notify":
                sites_by_line[s.line] = s
        for lp in sorted(model.lps, key=lambda a: a.line):
            site = sites_by_line.get(lp.line)
            rows.append((model.path, lp.line,
                         site.function if site else "?",
                         site.callee if site else "?", lp))
    rows.sort(key=lambda r: (r[0], r[1]))

    out = []
    out.append("# Linearization-point proof map")
    out.append("")
    out.append("<!-- GENERATED FILE — do not edit by hand. -->")
    out.append("<!-- Regenerate: python3 tools/analyze/analyze.py"
               " --emit-proof-map docs/PROOF_MAP.md -->")
    out.append("")
    out.append("Every DCAS/CAS call site in `src/deque` carries a structured")
    out.append("`DCD_LP(fig:lines, sync-point[, aux], inv=clauses, \"cond\")`")
    out.append("annotation. This file is the rendered map: each row is a")
    out.append("proof obligation in the sense of the paper's §5 — the DCAS")
    out.append("transition must preserve the listed `RepAuditor` clauses,")
    out.append("and non-`aux` rows are the operations' linearization points")
    out.append("under the stated condition. `aux` rows are structural steps")
    out.append("(helping, physical deletion, elimination bookkeeping) that")
    out.append("change the representation but not the abstract deque value.")
    out.append("")
    cur_file = None
    covered: dict[str, int] = {c: 0 for c in sorted(clauses)}
    n_lp = n_aux = 0
    for path, line, func, callee, lp in rows:
        if path != cur_file:
            if cur_file is not None:
                out.append("")
            cur_file = path
            out.append(f"## `{path}`")
            out.append("")
            out.append("| Site | Operation | Paper ref | Sync point | Kind |"
                       " Preserves | Linearization condition |")
            out.append("|---|---|---|---|---|---|---|")
        kind = "aux" if lp.aux else "**LP**"
        if lp.aux:
            n_aux += 1
        else:
            n_lp += 1
        for c in lp.inv:
            if c in covered:
                covered[c] += 1
        inv = "<br>".join(f"`{c}`" for c in lp.inv)
        out.append(f"| `{pathlib.PurePosixPath(path).name}:{line}` "
                   f"| `{func}` ({callee}) "
                   f"| {lp.figure} l.{lp.fig_lines} "
                   f"| `{lp.point}` | {kind} | {inv} "
                   f"| {lp.condition} |")
    out.append("")
    out.append("## Coverage against the `RepAuditor` clause roster")
    out.append("")
    out.append(f"{n_lp} linearization points, {n_aux} auxiliary transitions.")
    out.append("Each clause below is discharged by the listed number of")
    out.append("annotated transitions (validated by pass 4; a clause with")
    out.append("zero references fails the build):")
    out.append("")
    out.append("| RepAuditor clause | Referencing obligations |")
    out.append("|---|---|")
    for c in sorted(covered):
        out.append(f"| `{c}` | {covered[c]} |")
    out.append("")
    return "\n".join(out)


# --------------------------------------------------------------------------
# Guard-map emission
# --------------------------------------------------------------------------

def emit_guard_map(models: list[cm.FileModel], cfg: dict) -> str:
    """Render docs/GUARD_MAP.md: per-function guard obligations and their
    discharge sites, drift-gated like PROOF_MAP.md."""
    gcfg = cfg.get("guard", {})
    scan_dirs = gcfg.get("scan_dirs", [])
    roster = guard_roster(models, cfg)

    out = []
    out.append("# Guard-scope reclamation map")
    out.append("")
    out.append("<!-- GENERATED FILE — do not edit by hand. -->")
    out.append("<!-- Regenerate: python3 tools/analyze/analyze.py"
               " --emit-guard-map docs/GUARD_MAP.md -->")
    out.append("")
    out.append("The paper assumes garbage collection; this repo discharges")
    out.append("that assumption with EBR guards and LFRC references, and")
    out.append("pass 5 (`guard`, docs/STATIC_ANALYSIS.md §4) checks the")
    out.append("discharge statically. Each row below is one function that")
    out.append("touches pool-allocated nodes: its **obligation** (how the")
    out.append("node stays reclamation-safe) and its **discharge** (the")
    out.append("guard declaration, the caller contract, or the recorded")
    out.append("exemption). Derefs/calls count the sites pass 5 verified.")
    out.append("")
    n_req = n_exempt = n_local = 0
    for model in sorted(models, key=lambda m: m.path):
        if not _in_dirs(model.path, scan_dirs):
            continue
        rows = []
        for fn in sorted(model.funcs, key=lambda f: f.line):
            interesting = (fn.requires_guard is not None
                           or fn.exempt is not None
                           or fn.guard_spans
                           or fn.derefs
                           or any(c[0] in roster for c in fn.calls))
            if not interesting:
                continue
            if fn.requires_guard is not None:
                obligation = "caller-provided guard"
                discharge = f"`DCD_REQUIRES_GUARD` — {fn.requires_guard}"
                n_req += 1
            elif fn.exempt is not None:
                obligation = "exempt"
                discharge = f"`DCD_GUARD_EXEMPT` — {fn.exempt}"
                n_exempt += 1
            elif fn.guard_spans:
                obligation = "local guard scope"
                discharge = ("Guard at l." +
                             ", l.".join(str(ln) for ln in fn.guard_lines))
                n_local += 1
            else:
                obligation = "LFRC reference"
                discharge = "acquired reference carries its own protection"
            guarded_calls = sorted({c[0] for c in fn.calls
                                    if c[0] in roster})
            rows.append((fn, obligation, discharge, guarded_calls))
        if not rows:
            continue
        out.append(f"## `{model.path}`")
        out.append("")
        out.append("| Function | Obligation | Discharge | Node derefs |"
                   " Guarded callees |")
        out.append("|---|---|---|---|---|")
        for fn, obligation, discharge, guarded_calls in rows:
            callees = (", ".join(f"`{c}`" for c in guarded_calls)
                       if guarded_calls else "—")
            out.append(f"| `{fn.name}` (l.{fn.line}) | {obligation} "
                       f"| {discharge} | {len(fn.derefs)} | {callees} |")
        out.append("")
    out.append("## Caller-contract roster")
    out.append("")
    out.append("Functions a caller may only invoke while holding a live")
    out.append("protection scope (pass 5 flags any unprotected call):")
    out.append("")
    out.append("| Function | Declared at | Contract note |")
    out.append("|---|---|---|")
    for name in sorted(roster):
        for path, line, note in roster[name]:
            out.append(f"| `{name}` "
                       f"| `{pathlib.PurePosixPath(path).name}:{line}` "
                       f"| {note} |")
    out.append("")
    out.append(f"{n_req} caller-contract functions, {n_local} with local "
               f"guard scopes, {n_exempt} recorded exemptions.")
    out.append("")
    return "\n".join(out)


# --------------------------------------------------------------------------
# Publication-map emission
# --------------------------------------------------------------------------

def emit_publication_map(models: list[cm.FileModel], cfg: dict) -> str:
    """Render docs/PUBLICATION_MAP.md: every tracked allocation's publishing
    store, its licence, and the verified-vs-vouched state of each rostered
    field. Drift-gated like PROOF_MAP.md / GUARD_MAP.md."""
    pcfg = cfg.get("publication", {})
    scan_dirs = pcfg.get("scan_dirs", [])
    alloc_tokens = list(pcfg.get("alloc_tokens", []))
    publish_tokens = list(pcfg.get("publish_tokens", []))
    rows_cfg = _pub_node_rows(cfg)

    out = []
    out.append("# Safe-publication map")
    out.append("")
    out.append("<!-- GENERATED FILE — do not edit by hand. -->")
    out.append("<!-- Regenerate: python3 tools/analyze/analyze.py"
               " --emit-publication-map docs/PUBLICATION_MAP.md -->")
    out.append("")
    out.append("Paper footnote 7: a pool node is thread-private from its")
    out.append("allocation until the DCAS that links it into the structure,")
    out.append("and only that privacy makes the plain field initialisation")
    out.append("in between race-free. Pass 7 (`publication`,")
    out.append("docs/STATIC_ANALYSIS.md §5) checks the discipline; this file")
    out.append("is the rendered evidence. Each row is one publishing store:")
    out.append("its `DCD_PUBLISHES` licence, and per rostered field whether")
    out.append("the pass **verified** a write before the publish (with its")
    out.append("line) or the licence **vouches** for a write the token model")
    out.append("cannot see (an init helper, a callee).")
    out.append("")
    n_sites = n_verified = n_vouched = 0
    for model in sorted(models, key=lambda m: m.path):
        if not _in_dirs(model.path, scan_dirs):
            continue
        pub_by_line: dict[int, list[cm.PublishAnnotation]] = {}
        for ann in model.publishes:
            pub_by_line.setdefault(ann.line, []).append(ann)
        file_rows = []
        for fn in sorted(model.funcs, key=lambda f: f.line):
            allocs, writes, sites = cm.extract_alloc_flow(
                model.masked, fn, alloc_tokens, publish_tokens)
            for var in allocs:
                var_sites = [s for s in sites if s.var == var.name]
                if not var_sites:
                    continue
                first = var_sites[0]
                anns = pub_by_line.get(first.line, [])
                point = anns[0].point if anns else "—"
                vouched: set[str] = set()
                for ann in anns:
                    vouched.update(ann.fields)
                row = _resolve_node_row(rows_cfg, var, model.path)
                fields = (list(row.get("fields", [])) if row is not None
                          else sorted(vouched))
                cells = []
                for f in fields:
                    w = next((w for w in writes
                              if w.var == var.name and w.field == f
                              and w.off < first.off), None)
                    if w is not None:
                        cells.append(f"`{f}` ✓ l.{w.line}")
                        n_verified += 1
                    elif f in vouched:
                        cells.append(f"`{f}` (vouched)")
                        n_vouched += 1
                    else:
                        cells.append(f"`{f}` ✗")
                file_rows.append((first.line, fn.name, var, point,
                                  "<br>".join(cells)))
                n_sites += 1
        if not file_rows:
            continue
        out.append(f"## `{model.path}`")
        out.append("")
        out.append("| Publish site | Function | Node | Escape point |"
                   " Fields before publish |")
        out.append("|---|---|---|---|---|")
        for line, func, var, point, cells in sorted(file_rows):
            out.append(f"| `{pathlib.PurePosixPath(model.path).name}:{line}`"
                       f" | `{func}` | `{var.name}` ({var.type}, alloc "
                       f"l.{var.line}) | `{point}` | {cells} |")
        out.append("")
    out.append("## Node-field roster")
    out.append("")
    out.append("The plain fields each node type must have written (or")
    out.append("vouched) before its publishing store:")
    out.append("")
    out.append("| Type | Declared in | Fields | Why |")
    out.append("|---|---|---|---|")
    for row in rows_cfg:
        fields = ", ".join(f"`{f}`" for f in row.get("fields", []))
        why = " ".join(row.get("why", "").split())
        out.append(f"| `{row.get('type', '?')}` | `{row.get('file', '?')}` "
                   f"| {fields} | {why} |")
    out.append("")
    out.append(f"{n_sites} publishing stores; {n_verified} field writes "
               f"verified textually, {n_vouched} vouched by licence.")
    out.append("")
    return "\n".join(out)

# --------------------------------------------------------------------------
# Pass 9: happens-before edge prover
# --------------------------------------------------------------------------

HB_RELEASE_ROLES = {"release", "fence-release"}
HB_ACQUIRE_ROLES = {"acquire", "fence-acquire"}
HB_FENCE_ROLES = {"fence-release", "fence-acquire"}

# How far around a fence (within its enclosing function) the pass looks for
# the relaxed access that completes the SC-fence shape. Generous: the shape
# check guards against a fence annotated onto an edge whose fields the
# surrounding code never touches, not against formatting.
FENCE_ADJACENCY_SPAN = 800


def _hb_field_names(edge: dict) -> set[str]:
    """Bare member names from the edge's `fields` list (``Owner::member``
    rows keep the owner for display; accesses only know the member)."""
    return {str(f).split("::")[-1] for f in edge.get("fields", [])}


def _hb_order(acc: cm.AtomicAccess) -> str:
    """Effective order of an access: the success order of a CAS, seq_cst
    when no order argument was given."""
    return acc.orders[0] if acc.orders else "seq_cst"


def _func_span(model: cm.FileModel, off: int) -> tuple[int, int]:
    best = None
    for fn in model.funcs:
        if fn.header_off <= off <= fn.close_off:
            if best is None or fn.header_off > best.header_off:
                best = fn
    if best is None:
        return 0, len(model.masked)
    return best.header_off, best.close_off


def _fence_has_adjacent_field(model: cm.FileModel, fence: cm.FenceSite,
                              fields: set[str], before: bool) -> bool:
    lo, hi = _func_span(model, fence.off)
    if before:
        lo, hi = max(lo, fence.off - FENCE_ADJACENCY_SPAN), fence.off
    else:
        lo, hi = fence.off, min(hi, fence.off + FENCE_ADJACENCY_SPAN)
    window = model.masked[lo:hi]
    return any(re.search(r"\b" + re.escape(f) + r"\b", window)
               for f in fields)


def _validate_hb_roster(edges: list, roster: set[str], scenarios: set[str],
                        origin: str) -> tuple[dict, list[Finding]]:
    """Checks the [[hb.edge]] rows themselves; returns (rows-by-name,
    findings). Every edge must resolve to a tested artifact: a chaos
    sync point (roster or declared pseudo-point) or an mc scenario."""
    findings: list[Finding] = []
    by_name: dict[str, dict] = {}
    for e in edges:
        name = str(e.get("name", ""))
        if not name:
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                "[[hb.edge]] row with no name"))
            continue
        if name in by_name:
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' is declared twice"))
            continue
        by_name[name] = e
        if e.get("kind", "sync") not in ("sync", "fence"):
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' has unknown kind "
                f"'{e.get('kind')}' (expected sync or fence)"))
        if not _hb_field_names(e):
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' has an empty fields list: an edge "
                "with no fields can license nothing"))
        sp = str(e.get("sync_point", ""))
        sc = str(e.get("mc_scenario", ""))
        if not sp and not sc:
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' names neither a sync_point nor an "
                "mc_scenario: a proven edge must also be a tested edge"))
        if sp and sp not in roster:
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' sync_point '{sp}' is not in the "
                "chaos.hpp roster"))
        if sc and sc not in scenarios:
            findings.append(Finding(
                "hb", "unrostered-hb-edge", origin, 0,
                f"[[hb.edge]] '{name}' mc_scenario '{sc}' is not a "
                "scenario name in src/mc"))
    return by_name, findings


def run_hb_pass(models: list[cm.FileModel], cfg: dict, roster: set[str],
                scenarios: set[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    hcfg = cfg.get("hb", {})
    edges = hcfg.get("edge", [])
    scan_dirs = hcfg.get("scan_dirs", [])
    if not edges and not scan_dirs:
        return findings
    origin = hcfg.get("origin", "contracts.toml")

    by_name, roster_findings = _validate_hb_roster(
        edges, roster, scenarios or set(), origin)
    findings += roster_findings

    # --- endpoint sweep: each DCD_HB must land on a compatible site ------
    endpoints: dict[str, list[tuple[str, str, int]]] = {
        name: [] for name in by_name}
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        acc_by_line: dict[int, list[cm.AtomicAccess]] = {}
        for a in model.accesses:
            acc_by_line.setdefault(a.line, []).append(a)
        fence_by_line: dict[int, list[cm.FenceSite]] = {}
        for f in model.fences:
            fence_by_line.setdefault(f.line, []).append(f)
        for ann in model.hbs:
            edge = by_name.get(ann.edge)
            if edge is None:
                findings.append(Finding(
                    "hb", "unrostered-hb-edge", ann.path, ann.line,
                    f"DCD_HB names edge '{ann.edge}' which has no "
                    "[[hb.edge]] roster row in contracts.toml",
                    _snippet(model, ann.line)))
                continue
            fields = _hb_field_names(edge)
            kind = edge.get("kind", "sync")
            if ann.role in HB_FENCE_ROLES:
                fences = fence_by_line.get(ann.line, [])
                if not fences:
                    findings.append(Finding(
                        "hb", "unrostered-hb-edge", ann.path, ann.line,
                        f"DCD_HB({ann.edge}, role={ann.role}) attaches to a "
                        "line with no std::atomic_thread_fence call",
                        _snippet(model, ann.line)))
                    continue
                fence = fences[0]
                # SC (Dekker) edges need seq_cst fences; a sync-kind edge
                # routed through a fence needs at least the directional
                # strength of the claimed role.
                need = ({"seq_cst"} if kind == "fence"
                        else (RELEASING_WRITE if ann.role == "fence-release"
                              else ACQUIRING_READ))
                if fence.order not in need:
                    findings.append(Finding(
                        "hb", "insufficient-order-for-edge", ann.path,
                        ann.line,
                        f"atomic_thread_fence({fence.order}) is too weak "
                        f"for role={ann.role} on {kind}-kind edge "
                        f"'{ann.edge}' (need {sorted(need)})",
                        _snippet(model, ann.line)))
                elif not _fence_has_adjacent_field(
                        model, fence, fields,
                        before=(ann.role == "fence-release")):
                    where = ("before" if ann.role == "fence-release"
                             else "after")
                    findings.append(Finding(
                        "hb", "insufficient-order-for-edge", ann.path,
                        ann.line,
                        f"role={ann.role} fence has no access to any of "
                        f"edge '{ann.edge}''s fields ({sorted(fields)}) "
                        f"{where} it in the enclosing function — the "
                        "fence+adjacent-access SC-fence shape is missing",
                        _snippet(model, ann.line)))
                endpoints[ann.edge].append((ann.role, ann.path, ann.line))
            else:
                cands = [a for a in acc_by_line.get(ann.line, [])
                         if a.member in fields]
                if not cands:
                    findings.append(Finding(
                        "hb", "unrostered-hb-edge", ann.path, ann.line,
                        f"DCD_HB({ann.edge}, role={ann.role}) attaches to "
                        "a line with no atomic access to the edge's fields "
                        f"({sorted(fields)})",
                        _snippet(model, ann.line)))
                    continue
                a = cands[0]
                order = _hb_order(a)
                if ann.role == "release":
                    if a.op == "load" or order not in RELEASING_WRITE:
                        findings.append(Finding(
                            "hb", "insufficient-order-for-edge", ann.path,
                            ann.line,
                            f"role=release endpoint {a.member}.{a.op}"
                            f"({order}) cannot head edge '{ann.edge}': "
                            "need a store/RMW/CAS with release, acq_rel "
                            "or seq_cst",
                            _snippet(model, ann.line)))
                else:  # acquire
                    if a.op == "store" or order not in ACQUIRING_READ:
                        findings.append(Finding(
                            "hb", "insufficient-order-for-edge", ann.path,
                            ann.line,
                            f"role=acquire endpoint {a.member}.{a.op}"
                            f"({order}) cannot complete edge "
                            f"'{ann.edge}': need a load/RMW/CAS with "
                            "acquire, acq_rel or seq_cst",
                            _snippet(model, ann.line)))
                endpoints[ann.edge].append((ann.role, ann.path, ann.line))

    # --- two-sidedness: an edge with endpoints on one side only ----------
    for name in sorted(by_name):
        eps = endpoints[name]
        for side, roles in (("release", HB_RELEASE_ROLES),
                            ("acquire", HB_ACQUIRE_ROLES)):
            if not any(r in roles for r, _, _ in eps):
                path = eps[0][1] if eps else origin
                line = eps[0][2] if eps else 0
                findings.append(Finding(
                    "hb", "one-sided-hb-edge", path, line,
                    f"[[hb.edge]] '{name}' has no {side}-side endpoint "
                    f"(no DCD_HB with role in {sorted(roles)}): the edge "
                    "is asserted but only half-proven"))

    # --- licensing sweep: acquire-or-stronger loads and all fences -------
    licensed_fields: set[str] = set()
    for e in by_name.values():
        licensed_fields |= _hb_field_names(e)
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        hb_lines = {a.line for a in model.hbs}
        exempt_lines = {x.line for x in model.hb_exempts}
        acq_load_lines: set[int] = set()
        for a in model.accesses:
            if a.op != "load" or _hb_order(a) not in ACQUIRING_READ:
                continue
            acq_load_lines.add(a.line)
            if a.line in hb_lines or a.line in exempt_lines:
                continue
            if a.member in licensed_fields:
                continue
            findings.append(Finding(
                "hb", "unrostered-hb-edge", a.path, a.line,
                f"acquire-or-stronger load of '{a.member}' is covered by "
                "no [[hb.edge]] row's fields and carries no DCD_HB / "
                "DCD_HB_EXEMPT: the ordering it relies on is unproven",
                _snippet(model, a.line)))
        for f in model.fences:
            if f.line in exempt_lines:
                continue
            if any(a.line == f.line and a.role in HB_FENCE_ROLES
                   for a in model.hbs):
                continue
            findings.append(Finding(
                "hb", "fence-without-edge", f.path, f.line,
                f"atomic_thread_fence({f.order}) in "
                f"{f.function or '?'}() belongs to no rostered "
                "happens-before edge: annotate with DCD_HB(edge, "
                "role=fence-release|fence-acquire) or DCD_HB_EXEMPT(why)",
                _snippet(model, f.line)))
        fence_lines = {f.line for f in model.fences}
        for x in model.hb_exempts:
            if x.line not in acq_load_lines and x.line not in fence_lines:
                findings.append(Finding(
                    "hb", "unrostered-hb-edge", x.path, x.line,
                    "DCD_HB_EXEMPT attaches to a line with no "
                    "acquire-or-stronger load and no fence",
                    _snippet(model, x.line)))
    return findings


def emit_hb_map(models: list[cm.FileModel], cfg: dict) -> str:
    """docs/HB_MAP.md — the proven synchronizes-with edges, one section per
    [[hb.edge]] row, in the PROOF_MAP/GUARD_MAP/PUBLICATION_MAP style."""
    hcfg = cfg.get("hb", {})
    edges = hcfg.get("edge", [])
    scan_dirs = hcfg.get("scan_dirs", [])
    by_name = {str(e.get("name", "")): e for e in edges}

    # (edge -> [(role, path, line, label)]), plus the licensing tallies.
    details: dict[str, list[tuple[str, str, int, str]]] = {
        n: [] for n in by_name}
    exemptions: list[tuple[str, int, str]] = []
    licensed_fields: set[str] = set()
    for e in edges:
        licensed_fields |= _hb_field_names(e)
    n_field_licensed = 0
    for model in models:
        if not _in_dirs(model.path, scan_dirs):
            continue
        acc_by_line: dict[int, list[cm.AtomicAccess]] = {}
        for a in model.accesses:
            acc_by_line.setdefault(a.line, []).append(a)
        fence_by_line = {f.line: f for f in model.fences}
        hb_lines = {a.line for a in model.hbs}
        exempt_lines = {x.line for x in model.hb_exempts}
        for ann in model.hbs:
            if ann.edge not in by_name:
                continue
            fields = _hb_field_names(by_name[ann.edge])
            if ann.role in HB_FENCE_ROLES:
                f = fence_by_line.get(ann.line)
                label = (f"atomic_thread_fence({f.order})" if f else "?")
            else:
                a = next((a for a in acc_by_line.get(ann.line, [])
                          if a.member in fields), None)
                label = (f"{a.member}.{a.op}({_hb_order(a)})" if a else "?")
            details[ann.edge].append((ann.role, ann.path, ann.line, label))
        for x in model.hb_exempts:
            exemptions.append((x.path, x.line, " ".join(x.why.split())))
        for a in model.accesses:
            if (a.op == "load" and _hb_order(a) in ACQUIRING_READ
                    and a.line not in hb_lines
                    and a.line not in exempt_lines
                    and a.member in licensed_fields):
                n_field_licensed += 1

    out = [
        "# Happens-Before Edge Map",
        "",
        "<!-- GENERATED FILE — do not edit by hand. -->",
        "<!-- Regenerate: python3 tools/analyze/analyze.py"
        " --emit-hb-map docs/HB_MAP.md -->",
        "",
        "Every intended synchronizes-with edge in the concurrent core",
        "(`[[hb.edge]]` in tools/analyze/contracts.toml), with its",
        "DCD_HB-annotated release-side and acquire-side endpoints and the",
        "chaos sync point or mc scenario that exercises it. `fence-*`",
        "roles are `std::atomic_thread_fence` endpoints (the SC-fence",
        "Dekker shape); plain roles are release/acquire accesses. Checked",
        "by analyzer pass 9 (`tools/analyze/README.md`).",
        "",
    ]
    n_endpoints = 0
    n_fence_edges = 0
    for name in sorted(by_name):
        e = by_name[name]
        kind = e.get("kind", "sync")
        if kind == "fence":
            n_fence_edges += 1
        out.append(f"## `{name}` — {kind}")
        out.append("")
        why = " ".join(str(e.get("why", "")).split())
        if why:
            out.append(why)
            out.append("")
        fields = ", ".join(f"`{f}`" for f in e.get("fields", []))
        tested = []
        if e.get("sync_point"):
            tested.append(f"chaos `{e['sync_point']}`")
        if e.get("mc_scenario"):
            tested.append(f"mc `{e['mc_scenario']}`")
        out.append(f"Fields: {fields} · Tested by: "
                   f"{' and '.join(tested) if tested else '—'}")
        out.append("")
        out.append("| Role | Site | Endpoint |")
        out.append("|---|---|---|")
        eps = sorted(details.get(name, []),
                     key=lambda d: (d[0] not in HB_RELEASE_ROLES,
                                    d[1], d[2]))
        for role, path, line, label in eps:
            out.append(f"| {role} | `{path}:{line}` | `{label}` |")
            n_endpoints += 1
        out.append("")
    if exemptions:
        out.append("## Exemptions")
        out.append("")
        out.append("Acquire loads / fences that deliberately belong to no")
        out.append("edge, each with its DCD_HB_EXEMPT justification:")
        out.append("")
        out.append("| Site | Why |")
        out.append("|---|---|")
        for path, line, why in sorted(exemptions):
            out.append(f"| `{path}:{line}` | {why} |")
        out.append("")
    out.append(f"{len(by_name)} edges ({n_fence_edges} fence-paired), "
               f"{n_endpoints} annotated endpoints, {n_field_licensed} "
               "acquire loads licensed by edge-field membership, "
               f"{len(exemptions)} exemptions.")
    out.append("")
    return "\n".join(out)
