"""Source model + token frontend for tools/analyze.

This module turns a C++ translation unit into the small fact base the
analysis passes (passes.py) consume:

  * atomic field declarations (owner class, member name, value type)
  * atomic accesses (member, operation, memory-order arguments)
  * operator-form atomic accesses (``counter++`` — implicitly seq_cst and
    invisible to the regex linter in tools/lint)
  * CAS/DCAS call sites (policy calls ``Dcas::dcas/dcas_view/cas``,
    ``compare_exchange_*`` on std::atomic, magazine notify points)
  * retry loops (unbounded loops containing a CAS site) with the
    failure-path facts pass 3 needs
  * structured annotations: DCD_SYNC / DCD_PROGRESS / DCD_LP

Two frontends can produce this model. The default token frontend below is
dependency-free: it masks comments/strings, tracks brace scopes to find
owners and enclosing functions, and walks balanced parens for call
arguments. clang_frontend.py builds the same model from libclang when the
python bindings and a compile_commands.json are available, and
cross-checks the token model against real AST semantics. Both must agree
on the tree (the analyze ctest label runs the token frontend; the CI
analyze job additionally runs the clang frontend).
"""

from __future__ import annotations

import dataclasses
import re

SOURCE_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}

ATOMIC_OPS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "clear",
)
CAS_OPS = ("compare_exchange_weak", "compare_exchange_strong")
RMW_OPS = ("exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
           "fetch_xor", "test_and_set")

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "return", "sizeof", "alignas", "alignof", "static_assert",
                    "decltype", "assert", "requires"}


# --- masking (comments kept aside: the annotations live in them) -----------

def split_comments(text: str) -> tuple[str, list[tuple[int, str]]]:
    """Return (masked_code, comments).

    ``masked_code`` has comment and string-literal contents replaced by
    spaces (length- and newline-preserving, so offsets stay valid).
    ``comments`` is a list of (1-based start line, comment text) with the
    ``//`` / ``/*`` markers stripped.
    """
    out = list(text)
    comments: list[tuple[int, str]] = []
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, DQ, SQ = range(5)
    state = NORMAL
    com_start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state, com_start = LINE, i + 2
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state, com_start = BLOCK, i + 2
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = DQ
                i += 1
                continue
            if c == "'":
                state = SQ
                i += 1
                continue
        elif state == LINE:
            if c == "\n":
                comments.append((line_of(text, com_start),
                                 text[com_start:i]))
                state = NORMAL
            else:
                out[i] = " "
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                comments.append((line_of(text, com_start),
                                 text[com_start:i]))
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in (DQ, SQ):
            quote = '"' if state == DQ else "'"
            if c == "\\" and nxt:
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
        i += 1
    if state == LINE:
        comments.append((line_of(text, com_start), text[com_start:n]))
    return "".join(out), comments


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def line_text_at(lines: list[str], lineno: int) -> str:
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def balanced_args(masked: str, open_paren: int) -> str | None:
    depth = 0
    for j in range(open_paren, len(masked)):
        c = masked[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return masked[open_paren + 1:j]
    return None


def matching_brace(masked: str, open_brace: int) -> int | None:
    depth = 0
    for j in range(open_brace, len(masked)):
        c = masked[j]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return j
    return None


# --- scopes ----------------------------------------------------------------

@dataclasses.dataclass
class Scope:
    kind: str            # "namespace" | "class" | "func" | "control" | "other"
    name: str
    open_off: int
    close_off: int


def _classify_brace(masked: str, brace_off: int) -> tuple[str, str]:
    """Classify the ``{`` at brace_off from the header text before it."""
    start = max(masked.rfind(";", 0, brace_off), masked.rfind("{", 0, brace_off),
                masked.rfind("}", 0, brace_off)) + 1
    header = masked[start:brace_off]
    m = re.search(r"\bnamespace\s+([A-Za-z_][\w:]*)?\s*$", header)
    if m:
        return "namespace", m.group(1) or "<anon>"
    m = re.search(r"\b(class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?"
                  r"([A-Za-z_]\w*)", header)
    if m and "enum" not in header and ";" not in header:
        # `struct Foo : Bar` headers keep the name; `= {` initialisers and
        # trailing-return uses never match the keyword.
        return "class", m.group(2)
    if re.search(r"\benum\b", header):
        return "other", ""
    first_word = re.match(r"\s*([A-Za-z_]\w*)", header)
    if first_word and first_word.group(1) in CONTROL_KEYWORDS:
        return "control", first_word.group(1)
    m = re.search(r"([A-Za-z_]\w*)\s*\(", header)
    if m and m.group(1) not in CONTROL_KEYWORDS:
        return "func", m.group(1)
    return "other", ""


def build_scopes(masked: str) -> list[Scope]:
    scopes: list[Scope] = []
    stack: list[Scope] = []
    for i, c in enumerate(masked):
        if c == "{":
            kind, name = _classify_brace(masked, i)
            stack.append(Scope(kind, name, i, len(masked)))
        elif c == "}" and stack:
            s = stack.pop()
            s.close_off = i
            scopes.append(s)
    scopes.extend(stack)  # unbalanced tail (truncated file): keep open
    return scopes


def enclosing(scopes: list[Scope], off: int, kind: str) -> str | None:
    best: Scope | None = None
    for s in scopes:
        if s.kind == kind and s.open_off < off <= s.close_off:
            if best is None or s.open_off > best.open_off:
                best = s
    return best.name if best else None


# --- model -----------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AtomicField:
    owner: str           # innermost enclosing class/struct ("" at namespace scope)
    name: str
    value_type: str
    path: str
    line: int


@dataclasses.dataclass(frozen=True)
class AtomicAccess:
    member: str          # trailing member/identifier before the op
    op: str              # one of ATOMIC_OPS
    orders: tuple[str, ...]   # memory_order tokens found in the call args
    implicit: bool       # no memory_order argument given
    path: str
    line: int


@dataclasses.dataclass(frozen=True)
class OperatorAccess:
    member: str
    token: str           # ++, --, +=, =, ...
    path: str
    line: int


@dataclasses.dataclass(frozen=True)
class SyncAnnotation:
    points: tuple[str, ...]
    path: str
    line: int            # line the annotation attaches to (the code line)


@dataclasses.dataclass(frozen=True)
class LpAnnotation:
    figure: str          # e.g. "Fig11"
    fig_lines: str       # e.g. "16-17"
    point: str           # sync point this LP rides on
    aux: bool            # structural/helping step, not an abstract LP
    inv: tuple[str, ...]  # RepAuditor clause names this DCAS must preserve
    condition: str
    path: str
    line: int            # code line the annotation attaches to


@dataclasses.dataclass(frozen=True)
class PublishAnnotation:
    """``// DCD_PUBLISHES(point, f1+f2+...)`` — licenses the publishing
    store on the attached line: the named sync point is where the tracked
    node escapes, and ``fields`` is the full roster of plain fields the
    author vouches are written before that store."""
    point: str
    fields: tuple[str, ...]
    path: str
    line: int            # code line the annotation attaches to


@dataclasses.dataclass(frozen=True)
class HbAnnotation:
    """``// DCD_HB(edge, role=release|acquire|fence-release|fence-acquire)``
    — declares the attached line as one endpoint of a rostered
    happens-before edge (``[[hb.edge]]`` in contracts.toml). ``fence-*``
    roles attach to ``std::atomic_thread_fence`` sites, plain roles to the
    release store / acquire load / RMW that carries the edge."""
    edge: str
    role: str
    path: str
    line: int            # code line the annotation attaches to


@dataclasses.dataclass(frozen=True)
class HbExempt:
    """``// DCD_HB_EXEMPT(why)`` — licenses an acquire-or-stronger load or
    a fence that deliberately belongs to no rostered edge (quiescent
    telemetry snapshots, heuristics)."""
    why: str
    path: str
    line: int


@dataclasses.dataclass(frozen=True)
class FenceSite:
    """A ``std::atomic_thread_fence`` call — the token model's newest
    first-class citizen (pass 9 proves the SC-fence Dekker edges)."""
    order: str           # memory_order token ("seq_cst", "release", ...)
    function: str        # best-effort enclosing function name
    path: str
    off: int             # offset in the masked text
    line: int


@dataclasses.dataclass(frozen=True)
class CasSite:
    form: str            # "dcas" | "dcas_view" | "cas" | "std_cas" | "notify"
    callee: str          # e.g. "Dcas::dcas", "compare_exchange_weak", point name
    function: str        # best-effort enclosing function name
    path: str
    line: int


@dataclasses.dataclass
class RetryLoop:
    header: str          # "for(;;)" | "while(true)" | "while(cond)" | "do-while"
    path: str
    line: int
    body_span: tuple[int, int]          # offsets in masked text
    cas_lines: tuple[int, ...]          # CAS sites inside the body/condition
    progress_offsets: tuple[int, ...]   # progress-token hits inside the body
    continue_offsets: tuple[int, ...]
    tail_has_progress: bool             # last top-level stmt has a progress token
    justified: str | None               # DCD_PROGRESS reason, if annotated


@dataclasses.dataclass(frozen=True)
class NodeDeref:
    var: str             # tracked local/parameter name ("" for cast-exprs)
    off: int             # offset in the masked text
    line: int


@dataclasses.dataclass
class FuncModel:
    """Per-function facts for the guard pass (pass 5).

    ``guard_spans`` are (site_off, cover_end_off) pairs: a guard object
    protects from its declaration to the close of the innermost brace
    scope containing it (C++ scoped-destructor semantics).
    ``node_vars`` maps tracked pool-node locals/parameters to whether
    every one of their initialisers is an LFRC acquisition (which carries
    its own protection).
    """
    name: str
    path: str
    line: int            # first line of the definition header
    open_line: int       # line of the body's `{`
    header_off: int
    open_off: int
    close_off: int
    requires_guard: str | None = None    # DCD_REQUIRES_GUARD note
    exempt: str | None = None            # DCD_GUARD_EXEMPT why
    guard_spans: tuple[tuple[int, int], ...] = ()
    guard_lines: tuple[int, ...] = ()
    node_vars: dict[str, bool] = dataclasses.field(default_factory=dict)
    derefs: tuple[NodeDeref, ...] = ()
    returns: tuple[NodeDeref, ...] = ()
    calls: tuple[tuple[str, int, int], ...] = ()   # (callee, off, line)


@dataclasses.dataclass
class FileModel:
    path: str
    fields: list[AtomicField] = dataclasses.field(default_factory=list)
    accesses: list[AtomicAccess] = dataclasses.field(default_factory=list)
    operator_accesses: list[OperatorAccess] = dataclasses.field(
        default_factory=list)
    cas_sites: list[CasSite] = dataclasses.field(default_factory=list)
    loops: list[RetryLoop] = dataclasses.field(default_factory=list)
    syncs: list[SyncAnnotation] = dataclasses.field(default_factory=list)
    lps: list[LpAnnotation] = dataclasses.field(default_factory=list)
    publishes: list[PublishAnnotation] = dataclasses.field(
        default_factory=list)
    hbs: list[HbAnnotation] = dataclasses.field(default_factory=list)
    hb_exempts: list[HbExempt] = dataclasses.field(default_factory=list)
    fences: list[FenceSite] = dataclasses.field(default_factory=list)
    lines: list[str] = dataclasses.field(default_factory=list)
    funcs: list[FuncModel] = dataclasses.field(default_factory=list)
    masked: str = ""
    scopes: list[Scope] = dataclasses.field(default_factory=list)


# --- annotation grammar ----------------------------------------------------
#
#   // DCD_SYNC(point[|point...])
#   // DCD_PROGRESS(free-text reason)
#   // DCD_LP(FigN:lines, sync.point[, aux], inv=clause[+clause...], "cond")
#
# An annotation attaches to the next code line at most ATTACH_WINDOW lines
# below it (or to its own line when trailing a statement).

ATTACH_WINDOW = 4

SYNC_RE = re.compile(r"DCD_SYNC\(\s*([a-z_.|\-\s]+?)\s*\)")
PROGRESS_RE = re.compile(r"DCD_PROGRESS\(\s*([^)]*?)\s*\)")
PUBLISHES_RE = re.compile(
    r"DCD_PUBLISHES\(\s*(?P<point>[a-z_.\-]+)\s*,\s*"
    r"(?P<fields>[A-Za-z_]\w*(?:\s*\+\s*[A-Za-z_]\w*)*)\s*\)")
LP_RE = re.compile(
    r"DCD_LP\(\s*"
    r"(?P<fig>[A-Za-z]\w*):(?P<lines>[\w\-,]+)\s*,\s*"
    r"(?P<point>[a-z_.\-]+)\s*,\s*"
    r"(?:(?P<aux>aux)\s*,\s*)?"
    r"inv=(?P<inv>[a-z_.+]+)\s*,\s*"
    r'"(?P<cond>[^"]*)"\s*\)')
HB_RE = re.compile(
    r"DCD_HB\(\s*(?P<edge>[a-z0-9_.\-]+)\s*,\s*"
    r"role=(?P<role>release|acquire|fence-release|fence-acquire)\s*\)")
HB_EXEMPT_RE = re.compile(r"DCD_HB_EXEMPT\(\s*([^)]+?)\s*\)")


def _attach_line(code_lines: list[str], comment_line: int,
                 comment_count: int) -> int:
    """First non-blank, non-comment-only code line after the annotation."""
    ln = comment_line + comment_count
    while ln <= len(code_lines):
        stripped = code_lines[ln - 1].strip()
        if stripped and not stripped.startswith("//"):
            return ln
        if ln - comment_line > ATTACH_WINDOW + comment_count:
            break
        ln += 1
    return comment_line


def _joined_comment_blocks(
        comments: list[tuple[int, str]],
        code_lines: list[str]) -> list[tuple[int, int, str, bool]]:
    """Merge consecutive //-comment lines into (start, nlines, text, trailing).

    A trailing comment (code before the // on its line) is always a block of
    its own and never merges with neighbouring full-line comments: it belongs
    to its statement, while an adjacent full-line comment starts (or
    continues) a separate leading block.
    """
    blocks: list[tuple[int, int, str, bool]] = []
    for ln, txt in comments:
        own = code_lines[ln - 1] if ln <= len(code_lines) else ""
        trailing = bool(own.split("//")[0].strip())
        if (not trailing and blocks and not blocks[-1][3]
                and ln == blocks[-1][0] + blocks[-1][1]):
            start, cnt, acc, _ = blocks[-1]
            blocks[-1] = (start, cnt + 1, acc + " " + txt.strip(), False)
        else:
            blocks.append((ln, 1, txt.strip(), trailing))
    return blocks


def parse_annotations(path: str, comments: list[tuple[int, str]],
                      code_lines: list[str]
                      ) -> tuple[list[SyncAnnotation], list[LpAnnotation],
                                 dict[int, str], list[PublishAnnotation],
                                 list[HbAnnotation], list[HbExempt],
                                 list[tuple[int, str]]]:
    """Returns (syncs, lps, progress-by-attached-line, publishes, hbs,
    hb_exempts, malformed)."""
    syncs: list[SyncAnnotation] = []
    lps: list[LpAnnotation] = []
    progress: dict[int, str] = {}
    publishes: list[PublishAnnotation] = []
    hbs: list[HbAnnotation] = []
    hb_exempts: list[HbExempt] = []
    malformed: list[tuple[int, str]] = []
    for start, nlines, text, trailing in _joined_comment_blocks(comments,
                                                                code_lines):
        # Trailing comments attach to their own line; leading ones to the
        # next code line.
        attach = start if trailing else _attach_line(code_lines, start, nlines)
        for m in SYNC_RE.finditer(text):
            points = tuple(p.strip() for p in m.group(1).split("|")
                           if p.strip())
            if points:
                syncs.append(SyncAnnotation(points, path, attach))
            else:
                malformed.append((start, "DCD_SYNC with no points"))
        for m in LP_RE.finditer(text):
            inv = tuple(c for c in m.group("inv").split("+") if c)
            lps.append(LpAnnotation(
                m.group("fig"), m.group("lines"), m.group("point"),
                m.group("aux") is not None, inv, m.group("cond"),
                path, attach))
        for m in PROGRESS_RE.finditer(text):
            progress[attach] = m.group(1)
        for m in PUBLISHES_RE.finditer(text):
            fields = tuple(f.strip() for f in m.group("fields").split("+")
                           if f.strip())
            publishes.append(PublishAnnotation(m.group("point"), fields,
                                               path, attach))
        # Any DCD_LP( that did not parse with the full grammar is malformed.
        for m in re.finditer(r"DCD_LP\(", text):
            if not any(lp_m.start() == m.start()
                       for lp_m in LP_RE.finditer(text)):
                malformed.append((start, "DCD_LP does not match the grammar "
                                  "DCD_LP(FigN:lines, point[, aux], "
                                  'inv=a+b, "cond")'))
        # Likewise a DCD_PUBLISHES( that did not parse.
        for m in re.finditer(r"DCD_PUBLISHES\(", text):
            if not any(pm.start() == m.start()
                       for pm in PUBLISHES_RE.finditer(text)):
                malformed.append((start, "DCD_PUBLISHES does not match the "
                                  "grammar DCD_PUBLISHES(point, f1+f2)"))
        for m in HB_RE.finditer(text):
            hbs.append(HbAnnotation(m.group("edge"), m.group("role"),
                                    path, attach))
        for m in HB_EXEMPT_RE.finditer(text):
            hb_exempts.append(HbExempt(m.group(1), path, attach))
        # A DCD_HB( / DCD_HB_EXEMPT( failing the full grammar is malformed,
        # never silently dropped. (DCD_HB\( cannot match the _EXEMPT form:
        # the next char there is '_', not '('.)
        for m in re.finditer(r"DCD_HB\(", text):
            if not any(hm.start() == m.start()
                       for hm in HB_RE.finditer(text)):
                malformed.append((start, "DCD_HB does not match the grammar "
                                  "DCD_HB(edge, role=release|acquire|"
                                  "fence-release|fence-acquire)"))
        for m in re.finditer(r"DCD_HB_EXEMPT\(", text):
            if not any(hm.start() == m.start()
                       for hm in HB_EXEMPT_RE.finditer(text)):
                malformed.append((start,
                                  "DCD_HB_EXEMPT with no justification"))
    return syncs, lps, progress, publishes, hbs, hb_exempts, malformed


# --- extraction ------------------------------------------------------------

_ATOMIC_DECL_RE = re.compile(
    r"(?:static\s+|inline\s+|mutable\s+|constexpr\s+)*"
    r"(?:util::CacheAligned<\s*)?"
    r"std::atomic<(?P<vt>[^;{}]+?)>\s*>?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:\[[^\]]*\]\s*)?"
    r"(?:[;={]|\{)")

_ATOMIC_FLAG_DECL_RE = re.compile(
    r"(?:static\s+|inline\s+)*std::atomic_flag\s+(?P<name>[A-Za-z_]\w*)")

# Heap-allocated atomic arrays: std::unique_ptr<std::atomic<T>[]> cells_;
_ATOMIC_ARRAY_DECL_RE = re.compile(
    r"std::unique_ptr<\s*std::atomic<(?P<vt>[^;{}]+?)>\s*\[\]\s*>\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*[;={]")

_ACCESS_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*(\()")

_ORDER_RE = re.compile(r"memory_order(?:::|_)(\w+)")

_POLICY_CALL_RE = re.compile(r"\b(?:Dcas|Inner)::(dcas_view|dcas|cas)\s*\(")

# Notify-form sync-point uses: the magazine hook names (reclaim cannot see
# chaos.hpp, so it duplicates the strings) and the executor's direct
# sync_point:: references (dcd_exec links dcd_dcas). Declarations in
# chaos.hpp itself are unqualified, so the qualified pattern skips them.
_NOTIFY_RE = re.compile(
    r"(?:magazine_sync::k(?P<mag>Refill|Flush)"
    r"|sync_point::kExec(?P<exec>Park|Steal|Inject))\b")

# CamelCase constant suffix -> roster point name for the exec group.
_EXEC_NOTIFY_POINTS = {
    "Park": "exec.park",
    "Steal": "exec.steal",
    "Inject": "exec.inject",
}

_LOOP_RE = re.compile(
    r"\b(?:(?P<forever>for\s*\(\s*;\s*;\s*\))"
    r"|(?P<wtrue>while\s*\(\s*true\s*\))"
    r"|(?P<while>while\s*\()"
    r"|(?P<do>do))\s*\{")


def _member_before(masked: str, dot_off: int) -> str:
    """Backwards scan from the ``.``/``->`` to the member identifier,
    skipping one balanced ``(...)``/``[...]`` group (calls, subscripts)."""
    j = dot_off - 1
    while j >= 0 and masked[j].isspace():
        j -= 1
    for close_c, open_c in ((")", "("), ("]", "[")):
        if j >= 0 and masked[j] == close_c:
            depth = 0
            while j >= 0:
                if masked[j] == close_c:
                    depth += 1
                elif masked[j] == open_c:
                    depth -= 1
                    if depth == 0:
                        j -= 1
                        break
                j -= 1
            while j >= 0 and masked[j].isspace():
                j -= 1
    end = j
    while j >= 0 and (masked[j].isalnum() or masked[j] == "_"):
        j -= 1
    return masked[j + 1:end + 1]


def _classify_op(op: str) -> str:
    if op in CAS_OPS:
        return "cas"
    if op == "load":
        return "load"
    if op in ("store", "clear"):
        return "store"
    return "rmw"


def extract_fields(path: str, masked: str,
                   scopes: list[Scope]) -> list[AtomicField]:
    fields = []
    for m in _ATOMIC_DECL_RE.finditer(masked):
        head = masked[max(0, m.start() - 24):m.start()]
        # References (`std::atomic<T>&`) are parameters / accessors, and
        # template arguments (`unique_ptr<std::atomic<T>[]>`) carry their
        # own declarator — both are skipped; the declaration we keep is the
        # storage itself.
        decl = masked[m.start():m.end()]
        if "&" in decl.split(">")[-2][-3:] if decl.count(">") >= 2 else False:
            continue
        if re.search(r">\s*&", decl):
            continue
        if head.rstrip().endswith(("<", ",", "(")):
            continue
        owner = enclosing(scopes, m.start(), "class") or ""
        fields.append(AtomicField(owner, m.group("name"),
                                  " ".join(m.group("vt").split()),
                                  path, line_of(masked, m.start())))
    for m in _ATOMIC_FLAG_DECL_RE.finditer(masked):
        owner = enclosing(scopes, m.start(), "class") or ""
        fields.append(AtomicField(owner, m.group("name"), "flag", path,
                                  line_of(masked, m.start())))
    for m in _ATOMIC_ARRAY_DECL_RE.finditer(masked):
        owner = enclosing(scopes, m.start(), "class") or ""
        fields.append(AtomicField(owner, m.group("name"),
                                  " ".join(m.group("vt").split()) + "[]",
                                  path, line_of(masked, m.start())))
    return fields


def _split_top_level(args: str) -> list[str]:
    # Angle brackets are NOT tracked: `->` and comparisons would unbalance
    # them, and template args with top-level commas don't occur in call
    # arguments in this tree.
    parts, depth, start = [], 0, 0
    for i, c in enumerate(args):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(args[start:i])
            start = i + 1
    tail = args[start:]
    if tail.strip() or parts:
        parts.append(tail)
    return parts


# Which argument positions carry the memory_order for each op. Orders are
# read only from those positions so a nested `x.load(acquire)` inside a
# store's value argument cannot masquerade as the store's own order.
_ORDER_ARG_POSITIONS = {
    "load": (0,), "test_and_set": (0,), "clear": (0,),
    "store": (1,), "exchange": (1,), "fetch_add": (1,), "fetch_sub": (1,),
    "fetch_and": (1,), "fetch_or": (1,), "fetch_xor": (1,),
    "compare_exchange_weak": (2, 3), "compare_exchange_strong": (2, 3),
}


def extract_accesses(path: str, masked: str,
                     flag_names: set[str]) -> list[AtomicAccess]:
    accesses = []
    for m in _ACCESS_RE.finditer(masked):
        op = m.group(1)
        args = balanced_args(masked, m.start(2))
        if args is None:
            continue
        member = _member_before(masked, m.start())
        if not member:
            continue
        if op in ("test_and_set", "clear") and member not in flag_names:
            # `.clear()` on containers shares a spelling with atomic_flag;
            # only members declared atomic in this file count.
            continue
        parts = _split_top_level(args)
        orders = []
        for pos in _ORDER_ARG_POSITIONS[op]:
            if pos < len(parts):
                found = _ORDER_RE.findall(parts[pos])
                if found:
                    orders.append(found[0])
        accesses.append(AtomicAccess(member, op, tuple(orders), not orders,
                                     path, line_of(masked, m.start())))
    return accesses


def extract_operator_accesses(path: str, masked: str,
                              fields: list[AtomicField],
                              scopes: list[Scope]) -> list[OperatorAccess]:
    """Implicitly-seq_cst operator uses of declared atomic members.

    Only bare-name uses inside the declaring class (or of namespace-scope
    atomics) are matched: a dotted use (`obj.name += 1`) cannot be
    attributed to the atomic without type information, and this codebase
    has plain fields/locals sharing names with atomics (`hits`, `next`,
    `lo`). The clang frontend covers the dotted forms in CI.
    """
    out = []
    if not fields:
        return out
    by_name: dict[str, list[AtomicField]] = {}
    for f in fields:
        by_name.setdefault(f.name, []).append(f)
    names = "|".join(sorted(re.escape(n) for n in by_name))
    post = re.compile(r"\b(" + names + r")\s*(\+\+|--|\+=|-=|\|=|&=|\^=|=(?![=]))")
    pre = re.compile(r"(\+\+|--)\s*(" + names + r")\b")
    decl_lines = {f.line for f in fields}

    def _bare_member(name: str, off: int) -> bool:
        j = off - 1
        while j >= 0 and masked[j].isspace():
            j -= 1
        if j >= 0 and (masked[j].isalnum()
                       or masked[j] in "_.>*&,<-"):
            return False  # declaration, dotted access, or template noise
        owner = enclosing(scopes, off, "class") or ""
        return any(f.owner == owner or f.owner == ""
                   for f in by_name[name])

    for m in post.finditer(masked):
        ln = line_of(masked, m.start())
        if ln in decl_lines:
            continue  # brace/equals initialisation at the declaration
        if _bare_member(m.group(1), m.start()):
            out.append(OperatorAccess(m.group(1), m.group(2), path, ln))
    for m in pre.finditer(masked):
        if _bare_member(m.group(2), m.start(2)):
            out.append(OperatorAccess(m.group(2), m.group(1), path,
                                      line_of(masked, m.start())))
    return out


def extract_cas_sites(path: str, masked: str,
                      scopes: list[Scope]) -> list[CasSite]:
    sites = []
    for m in _POLICY_CALL_RE.finditer(masked):
        form = m.group(1)
        func = enclosing(scopes, m.start(), "func") or ""
        sites.append(CasSite(form, masked[m.start():m.end() - 1].rstrip("( "),
                             func, path, line_of(masked, m.start())))
    for m in re.finditer(r"(?:\.|->)\s*(compare_exchange_weak|"
                         r"compare_exchange_strong)\s*\(", masked):
        func = enclosing(scopes, m.start(), "func") or ""
        sites.append(CasSite("std_cas", m.group(1), func, path,
                             line_of(masked, m.start())))
    return sites


_FENCE_RE = re.compile(
    r"\b(?:std::)?atomic_thread_fence\s*\(\s*"
    r"std::memory_order(?:::|_)(\w+)\s*\)")


def extract_fences(path: str, masked: str,
                   scopes: list[Scope]) -> list[FenceSite]:
    """Every ``std::atomic_thread_fence`` call, with its offset kept so the
    hb pass can check the fence+adjacent-access shape inside the enclosing
    function."""
    out = []
    for m in _FENCE_RE.finditer(masked):
        func = enclosing(scopes, m.start(), "func") or ""
        out.append(FenceSite(m.group(1), func, path, m.start(),
                             line_of(masked, m.start())))
    return out


def extract_notify_sites(path: str, text: str,
                         scopes: list[Scope]) -> list[CasSite]:
    """Uses (not declarations) of the magazine sync-point names."""
    sites = []
    for m in _NOTIFY_RE.finditer(text):
        head = text[max(0, m.start() - 80):m.start()]
        if re.search(r"constexpr\s+const\s+char\*\s+$", head.rstrip() + " "):
            continue
        if "kRefill =" in text[m.start():m.end() + 3] or \
           "kFlush =" in text[m.start():m.end() + 3]:
            continue
        if m.group("mag") is not None:
            point = ("magazine.refill" if m.group("mag") == "Refill"
                     else "magazine.flush")
        else:
            point = _EXEC_NOTIFY_POINTS[m.group("exec")]
        func = enclosing(scopes, m.start(), "func") or ""
        sites.append(CasSite("notify", point, func, path,
                             line_of(text, m.start())))
    return sites


def extract_loops(path: str, masked: str, cas_sites: list[CasSite],
                  progress_tokens: list[str],
                  progress_by_line: dict[int, str]) -> list[RetryLoop]:
    loops = []
    cas_line_set = {s.line for s in cas_sites if s.form != "notify"}
    for m in _LOOP_RE.finditer(masked):
        open_brace = masked.index("{", m.end() - 1)
        close = matching_brace(masked, open_brace)
        if close is None:
            continue
        if m.group("while") and not (m.group("forever") or m.group("wtrue")):
            # General while: the condition itself may hold the CAS.
            cond = balanced_args(masked, m.end() - 2)
            header = "while(cond)"
        elif m.group("do"):
            tail = masked[close:close + 200]
            wm = re.match(r"\}\s*while\s*(\()", tail)
            if not wm:
                continue
            cond = balanced_args(masked, close + wm.start(1))
            header = "do-while"
        else:
            cond = None
            header = "for(;;)" if m.group("forever") else "while(true)"
        body = masked[open_brace + 1:close]
        body_first_line = line_of(masked, open_brace)
        body_last_line = line_of(masked, close)
        cas_lines = tuple(ln for ln in sorted(cas_line_set)
                          if body_first_line <= ln <= body_last_line)
        cond_has_cas = bool(cond) and ("compare_exchange" in cond
                                       or "Dcas::" in cond
                                       or "Inner::" in cond)
        if not cas_lines and not cond_has_cas:
            continue
        if header == "while(cond)" and not cond_has_cas:
            # A bounded-looking walk (e.g. list traversal) that happens to
            # contain a CAS still retries on failure; keep it.
            pass
        prog_offsets = []
        for tok in progress_tokens:
            start = 0
            while True:
                k = body.find(tok, start)
                if k < 0:
                    break
                prog_offsets.append(open_brace + 1 + k)
                start = k + 1
        cont_offsets = [open_brace + 1 + c.start()
                        for c in re.finditer(r"\bcontinue\s*;", body)]
        tail_has_progress = _tail_statement_has_progress(body,
                                                         progress_tokens)
        loop_line = line_of(masked, m.start())
        justified = None
        for probe in range(loop_line, max(0, loop_line - ATTACH_WINDOW - 1),
                           -1):
            if probe in progress_by_line:
                justified = progress_by_line[probe]
                break
        loops.append(RetryLoop(header, path, loop_line,
                               (open_brace + 1, close), cas_lines,
                               tuple(prog_offsets), tuple(cont_offsets),
                               tail_has_progress, justified))
    return loops


def _tail_statement_has_progress(body: str,
                                 progress_tokens: list[str]) -> bool:
    """True when the loop body's final top-level statement contains a
    progress token (the fall-through path of a failed CAS iteration)."""
    depth = 0
    stmt_start = 0
    last_stmt = ""
    for i, c in enumerate(body):
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
            if depth == 0 and c == "}":
                stmt_start = i + 1
        elif c == ";" and depth == 0:
            last_stmt = body[stmt_start:i + 1]
            stmt_start = i + 1
    if not last_stmt.strip():
        return False
    return any(tok in last_stmt for tok in progress_tokens)


# --- guard facts (passes 5/6) ----------------------------------------------
#
#   // DCD_REQUIRES_GUARD(note)  — the function touches pool nodes and the
#                                  CALLER must hold a live protection scope
#   // DCD_GUARD_EXEMPT(why)     — justified exception (single-threaded
#                                  teardown, type-stable slab, ...)
#
# Both attach to the function definition they precede (same comment-block
# machinery as DCD_SYNC); empty text or an annotation that attaches to no
# function is malformed.

REQUIRES_GUARD_RE = re.compile(r"DCD_REQUIRES_GUARD\(\s*([^)]*?)\s*\)")
GUARD_EXEMPT_RE = re.compile(r"DCD_GUARD_EXEMPT\(\s*([^)]*?)\s*\)")

# `Reclaim::Guard guard(domain)` / `EbrDomain::Guard g{dom}`: a named guard
# object declaration. Requiring a variable name plus `(`/`{` keeps
# `class Guard {`, `explicit Guard(...)`, deleted copy ctors and concept
# uses (`typename R::Guard;`) from matching.
GUARD_SITE_RE = re.compile(r"\b(?:[A-Za-z_]\w*::)*Guard\s+[A-Za-z_]\w*\s*[({]")

_CAST_KEYWORDS = {"static_cast", "reinterpret_cast", "const_cast",
                  "dynamic_cast", "new", "delete", "noexcept", "throw"}


def _func_header_start(masked: str, open_off: int) -> int:
    return max(masked.rfind(";", 0, open_off),
               masked.rfind("{", 0, open_off),
               masked.rfind("}", 0, open_off)) + 1


def _has_token(text: str, tokens: list[str]) -> bool:
    return any(tok in text for tok in tokens)


def _find_token_b(text: str, tok: str, start: int = 0) -> int:
    """`str.find` with a word boundary before word-leading tokens, so the
    configured `Dcas::dcas(` cannot match inside `GlobalLockDcas::dcas(`
    (a policy's own definition or qualified call)."""
    while True:
        k = text.find(tok, start)
        if k < 0:
            return -1
        if not (tok[0].isalnum() or tok[0] == "_") or k == 0 \
                or not (text[k - 1].isalnum() or text[k - 1] == "_"):
            return k
        start = k + 1


def _has_token_b(text: str, tokens: list[str]) -> bool:
    return any(_find_token_b(text, tok) >= 0 for tok in tokens)


def extract_funcs(path: str, masked: str, scopes: list[Scope],
                  guard_cfg: dict | None) -> list[FuncModel]:
    """Function spans + guard sites + tracked node vars/derefs/calls."""
    cfg = guard_cfg or {}
    node_types = list(cfg.get("node_types", []))
    lfrc_tokens = list(cfg.get("lfrc_tokens", []))
    func_scopes = [s for s in scopes if s.kind == "func"]
    funcs: list[FuncModel] = []
    for s in func_scopes:
        hstart = _func_header_start(masked, s.open_off)
        first = re.search(r"\S", masked[hstart:s.open_off])
        decl_off = hstart + first.start() if first else s.open_off
        fn = FuncModel(name=s.name, path=path,
                       line=line_of(masked, decl_off),
                       open_line=line_of(masked, s.open_off),
                       header_off=hstart, open_off=s.open_off,
                       close_off=s.close_off)

        # A guard protects until the close of the innermost brace scope
        # containing its declaration.
        spans, glines = [], []
        for gm in GUARD_SITE_RE.finditer(masked, s.open_off, s.close_off):
            off = gm.start()
            cover_end = min((t.close_off for t in scopes
                             if t.open_off < off <= t.close_off),
                            default=s.close_off)
            spans.append((off, cover_end))
            glines.append(line_of(masked, off))
        fn.guard_spans, fn.guard_lines = tuple(spans), tuple(glines)

        span = masked[hstart:s.close_off]
        base = hstart

        def add_var(name: str, lfrc: bool) -> None:
            # A var counts as LFRC-protected only if EVERY declaration
            # that introduces it in this function is an LFRC acquisition.
            fn.node_vars[name] = fn.node_vars.get(name, True) and lfrc

        for nt in node_types:
            decl_re = re.compile(
                rf"\b(?:const\s+)?{nt}\s*\*\s*(?:const\s+)?"
                r"([A-Za-z_]\w*)\s*(=|[,):;])")
            for dm in decl_re.finditer(span):
                if dm.group(2) == "=":
                    semi = span.find(";", dm.end())
                    init = span[dm.end():semi if semi >= 0 else len(span)]
                    add_var(dm.group(1), _has_token(init, lfrc_tokens))
                else:
                    add_var(dm.group(1), False)
        if node_types:
            for dm in re.finditer(r"\bauto\s*\*\s*(?:const\s+)?"
                                  r"([A-Za-z_]\w*)\s*=", span):
                semi = span.find(";", dm.end())
                init = span[dm.end():semi if semi >= 0 else len(span)]
                if any(re.search(rf"\b{nt}\b", init) for nt in node_types):
                    add_var(dm.group(1), _has_token(init, lfrc_tokens))

        derefs: list[NodeDeref] = []
        for name in fn.node_vars:
            for dm in re.finditer(rf"\b{re.escape(name)}\b\s*->", span):
                off = base + dm.start()
                if off <= s.open_off:
                    continue  # default-argument noise in the header
                derefs.append(NodeDeref(name, off, line_of(masked, off)))
        # Cast-expression derefs: static_cast<Node*>(p)->field
        for nt in node_types:
            cast_re = re.compile(
                rf"\b(?:static_cast|reinterpret_cast)\s*<\s*(?:const\s+)?"
                rf"{nt}\s*\*\s*>\s*\(")
            for cm2 in cast_re.finditer(span):
                args = balanced_args(span, cm2.end() - 1)
                if args is None:
                    continue
                close = cm2.end() + len(args)  # offset of the `)`
                if span[close + 1:close + 8].lstrip().startswith("->"):
                    off = base + cm2.start()
                    derefs.append(NodeDeref("", off, line_of(masked, off)))
        fn.derefs = tuple(sorted(derefs, key=lambda d: d.off))

        returns: list[NodeDeref] = []
        for name in fn.node_vars:
            for rm in re.finditer(rf"\breturn\s+{re.escape(name)}\s*;", span):
                off = base + rm.start()
                returns.append(NodeDeref(name, off, line_of(masked, off)))
        fn.returns = tuple(sorted(returns, key=lambda d: d.off))

        # Call sites in the body, excluding nested function scopes
        # (lambdas) so each call is attributed exactly once.
        nested = [t for t in func_scopes
                  if t is not s and s.open_off < t.open_off
                  and t.close_off <= s.close_off]
        calls: list[tuple[str, int, int]] = []
        for cm2 in re.finditer(r"\b([A-Za-z_]\w*)\s*\(",
                               masked[s.open_off:s.close_off]):
            off = s.open_off + cm2.start()
            callee = cm2.group(1)
            if callee in CONTROL_KEYWORDS or callee in _CAST_KEYWORDS:
                continue
            if any(t.open_off < off <= t.close_off for t in nested):
                continue
            calls.append((callee, off, line_of(masked, off)))
        fn.calls = tuple(calls)
        funcs.append(fn)
    return funcs


def attach_guard_annotations(path: str, comments: list[tuple[int, str]],
                             code_lines: list[str],
                             funcs: list[FuncModel]
                             ) -> list[tuple[int, str]]:
    """Attach DCD_REQUIRES_GUARD / DCD_GUARD_EXEMPT to their functions.

    Returns malformed-annotation diagnostics (empty text, token that does
    not parse, or an annotation that attaches to no function definition).
    """
    malformed: list[tuple[int, str]] = []

    def func_at(line: int) -> FuncModel | None:
        best = None
        for fn in funcs:
            if fn.line <= line <= fn.open_line:
                if best is None or fn.header_off > best.header_off:
                    best = fn
        return best

    for start, nlines, text, trailing in _joined_comment_blocks(comments,
                                                                code_lines):
        attach = start if trailing else _attach_line(code_lines, start,
                                                     nlines)
        hits: list[tuple[str, str, int]] = []
        for m in REQUIRES_GUARD_RE.finditer(text):
            hits.append(("requires", m.group(1), m.start()))
        for m in GUARD_EXEMPT_RE.finditer(text):
            hits.append(("exempt", m.group(1), m.start()))
        # A known guard token that did not parse (missing parens, runaway
        # text) must not vanish silently.
        for raw, rex in (("DCD_REQUIRES_GUARD", REQUIRES_GUARD_RE),
                         ("DCD_GUARD_EXEMPT", GUARD_EXEMPT_RE)):
            for m in re.finditer(re.escape(raw) + r"\b", text):
                if not any(pm.start() == m.start()
                           for pm in rex.finditer(text)):
                    malformed.append((start, f"{raw} does not match the "
                                      f"grammar {raw}(<text>)"))
        for kind, note, _ in hits:
            token = ("DCD_REQUIRES_GUARD" if kind == "requires"
                     else "DCD_GUARD_EXEMPT")
            if not note:
                malformed.append((start, f"{token} with empty justification"))
                continue
            fn = func_at(attach)
            if fn is None:
                malformed.append((start, f"{token} does not attach to a "
                                  "function definition"))
                continue
            if kind == "requires":
                fn.requires_guard = note
            else:
                fn.exempt = note
    return malformed


# --- publication facts (pass 7) --------------------------------------------
#
# A pool node is thread-private from its allocation site (an initialiser
# containing one of the configured alloc tokens, or a cast of an already
# tracked pointer) until the releasing CAS/DCAS whose argument list names
# it — paper footnote 7's "nodes are private until the publishing DCAS".
# The extraction below is intra-procedural and textual: writes and
# publishing stores are ordered by their offsets in the function body,
# which matches this tree's straight-line allocate/init/publish shape
# (retry loops re-run init textually *before* the DCAS).

@dataclasses.dataclass(frozen=True)
class AllocVar:
    name: str
    type: str            # declared pointee type ("auto"/"void" when unnamed)
    off: int             # offset of the declaration in the masked text
    line: int


@dataclasses.dataclass(frozen=True)
class FieldWrite:
    var: str
    field: str
    kind: str            # "store_init" | "plain"
    off: int
    line: int


@dataclasses.dataclass(frozen=True)
class PublishSite:
    var: str
    token: str           # the publish token that matched (e.g. "Dcas::dcas(")
    off: int
    line: int


_ALLOC_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Za-z_]\w*)\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*=")


def _decl_init(span: str, end: int) -> str:
    semi = span.find(";", end)
    return span[end:semi if semi >= 0 else len(span)]


def extract_alloc_flow(masked: str, fn: FuncModel,
                       alloc_tokens: list[str], publish_tokens: list[str]
                       ) -> tuple[list[AllocVar], list[FieldWrite],
                                  list[PublishSite]]:
    """Tracked pool-node locals, their field writes, and publish sites."""
    span = masked[fn.header_off:fn.close_off]
    base = fn.header_off
    tracked: dict[str, AllocVar] = {}
    # Direct allocations, then a fixpoint over cast/alias chains
    # (`Node* n = static_cast<Node*>(raw);` tracks `n` when `raw` is).
    pending = True
    while pending:
        pending = False
        for dm in _ALLOC_DECL_RE.finditer(span):
            typ, name = dm.group(1), dm.group(2)
            if name in tracked:
                continue
            init = _decl_init(span, dm.end())
            hit = _has_token_b(init, alloc_tokens) or any(
                re.search(rf"\b{re.escape(t)}\b", init) for t in tracked)
            if hit:
                off = base + dm.start()
                tracked[name] = AllocVar(name, typ, off,
                                         line_of(masked, off))
                pending = True
    writes: list[FieldWrite] = []
    publishes: list[PublishSite] = []
    for name in tracked:
        for wm in re.finditer(
                rf"\bstore_init\s*\(\s*{re.escape(name)}\s*->\s*(\w+)", span):
            off = base + wm.start()
            writes.append(FieldWrite(name, wm.group(1), "store_init", off,
                                     line_of(masked, off)))
        for wm in re.finditer(
                rf"\b{re.escape(name)}\s*->\s*(\w+)\s*=(?![=])", span):
            off = base + wm.start()
            writes.append(FieldWrite(name, wm.group(1), "plain", off,
                                     line_of(masked, off)))
    for tok in publish_tokens:
        start = 0
        while True:
            k = _find_token_b(span, tok, start)
            if k < 0:
                break
            start = k + 1
            args = balanced_args(span, k + len(tok) - 1)
            if args is None:
                continue
            for name in tracked:
                if re.search(rf"\b{re.escape(name)}\b", args):
                    off = base + k
                    publishes.append(PublishSite(name, tok, off,
                                                 line_of(masked, off)))
    writes.sort(key=lambda w: w.off)
    publishes.sort(key=lambda p: p.off)
    return sorted(tracked.values(), key=lambda v: v.off), writes, publishes


# --- word-encoding facts (pass 8) -------------------------------------------
#
# Values loaded from contracted atomic words are tainted; a raw bit
# operator adjacent to a tainted occurrence — or inside the value
# arguments of a store/CAS call — is codec arithmetic that must live in a
# rostered helper. `&&`/`||`, address-of `&`, and template angle brackets
# are disambiguated below; shifts additionally require a literal or
# `kConstant`-style operand so template `>>` closes never match.

@dataclasses.dataclass(frozen=True)
class BitOpUse:
    var: str             # tainted variable ("" for store-argument hits)
    op: str              # "&" | "|" | "^" | "~" | "<<" | ">>"
    off: int             # offset in the masked text
    line: int


_TAINT_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:std::uint64_t|std::uint32_t|uint64_t|auto)\s+"
    r"([A-Za-z_]\w*)\s*=")


def _prev_nonspace(text: str, i: int) -> tuple[str, int]:
    j = i
    while j >= 0 and text[j].isspace():
        j -= 1
    return (text[j] if j >= 0 else "", j)


def _next_nonspace(text: str, i: int) -> tuple[str, int]:
    j = i
    while j < len(text) and text[j].isspace():
        j += 1
    return (text[j] if j < len(text) else "", j)


def _shift_operand_ok(text: str, i: int) -> bool:
    """Operand after a shift must look like codec arithmetic (a digit or a
    kConstant), not a template/stream artefact."""
    c, j = _next_nonspace(text, i)
    if c.isdigit() or c == "(":
        return True
    return bool(re.match(r"k[A-Z]", text[j:j + 2]))


def _bitop_before(text: str, start: int) -> str | None:
    c, j = _prev_nonspace(text, start - 1)
    if c == "~":
        return "~"
    if c == "^":
        return "^"
    if c in "&|":
        prev, _ = _prev_nonspace(text, j - 1)
        if prev == c:
            return None  # logical && / ||
        if c == "&" and prev not in ")]" and not (prev.isalnum()
                                                  or prev == "_"):
            return None  # unary address-of
        return c
    if c == "<" and j >= 1 and text[j - 1] == "<":
        prev, _ = _prev_nonspace(text, j - 2)
        if prev.isalnum() or prev in "_)]":
            return "<<"
    if c == ">" and j >= 1 and text[j - 1] == ">":
        prev, _ = _prev_nonspace(text, j - 2)
        if prev.isalnum() or prev in "_)]":
            return ">>"
    return None


def _bitop_after(text: str, end: int) -> str | None:
    c, j = _next_nonspace(text, end)
    if c == "^":
        return "^"
    if c in "&|":
        nxt, _ = _next_nonspace(text, j + 1)
        if nxt == c:
            return None  # logical && / ||
        return c
    two = text[j:j + 2]
    if two in ("<<", ">>") and _shift_operand_ok(text, j + 2):
        return two
    return None


def extract_word_flow(masked: str, fn: FuncModel,
                      load_tokens: list[str]) -> list[BitOpUse]:
    """Bit operators adjacent to word-valued locals loaded from atomics."""
    span = masked[fn.header_off:fn.close_off]
    base = fn.header_off
    tainted: set[str] = set()
    for dm in _TAINT_DECL_RE.finditer(span):
        if _has_token_b(_decl_init(span, dm.end()), load_tokens):
            tainted.add(dm.group(1))
    uses: list[BitOpUse] = []
    for name in tainted:
        for om in re.finditer(rf"\b{re.escape(name)}\b", span):
            op = (_bitop_before(span, om.start())
                  or _bitop_after(span, om.end()))
            if op:
                off = base + om.start()
                uses.append(BitOpUse(name, op, off, line_of(masked, off)))
    return sorted(uses, key=lambda u: u.off)


def extract_store_arg_bitops(masked: str, fn: FuncModel,
                             store_tokens: list[str]) -> list[BitOpUse]:
    """Bit operators inside the *value* arguments of word stores/CASes.

    The first argument of every store token is the target word (an
    lvalue, never codec arithmetic) and is skipped; every later argument
    is scanned."""
    span = masked[fn.header_off:fn.close_off]
    base = fn.header_off
    uses: list[BitOpUse] = []
    for tok in store_tokens:
        start = 0
        while True:
            k = _find_token_b(span, tok, start)
            if k < 0:
                break
            start = k + 1
            args = balanced_args(span, k + len(tok) - 1)
            if args is None:
                continue
            arg_base = k + len(tok)
            parts = _split_top_level(args)
            pos = 0
            for idx, part in enumerate(parts):
                if idx > 0:
                    for om in re.finditer(r"[A-Za-z0-9_)\]]", part):
                        op = _bitop_after(part, om.end())
                        if op:
                            off = base + arg_base + pos + om.start()
                            uses.append(BitOpUse("", op, off,
                                                 line_of(masked, off)))
                            break  # one finding per argument is enough
                pos += len(part) + 1
    return sorted(uses, key=lambda u: u.off)


# --- per-file driver -------------------------------------------------------

def build_file_model(path: str, text: str,
                     progress_tokens: list[str],
                     guard_cfg: dict | None = None
                     ) -> tuple[FileModel, list[tuple[int, str]]]:
    """Parse one file; returns (model, malformed-annotation diagnostics)."""
    masked, comments = split_comments(text)
    scopes = build_scopes(masked)
    lines = text.splitlines()
    model = FileModel(path=path, lines=lines, masked=masked, scopes=scopes)
    model.fields = extract_fields(path, masked, scopes)
    model.accesses = extract_accesses(path, masked,
                                      {f.name for f in model.fields})
    model.operator_accesses = extract_operator_accesses(
        path, masked, model.fields, scopes)
    model.cas_sites = extract_cas_sites(path, masked, scopes)
    model.cas_sites += extract_notify_sites(path, text, scopes)
    model.fences = extract_fences(path, masked, scopes)
    (syncs, lps, progress, publishes, hbs, hb_exempts,
     malformed) = parse_annotations(path, comments, lines)
    model.syncs, model.lps = syncs, lps
    model.publishes = publishes
    model.hbs, model.hb_exempts = hbs, hb_exempts
    model.loops = extract_loops(path, masked, model.cas_sites,
                                progress_tokens, progress)
    model.funcs = extract_funcs(path, masked, scopes, guard_cfg)
    malformed += attach_guard_annotations(path, comments, lines, model.funcs)
    return model, malformed


# --- rosters ---------------------------------------------------------------

SYNC_POINT_DECL_RE = re.compile(
    r'inline\s+constexpr\s+const\s+char\*\s+k\w+\s*=\s*"([a-z_.]+)"')

AUDIT_CLAUSE_RE = re.compile(r'fail\("([a-z_.]+)')


def parse_sync_roster(registry_text: str) -> set[str]:
    return set(SYNC_POINT_DECL_RE.findall(registry_text))


def parse_auditor_roster(auditor_text: str) -> set[str]:
    """RepAuditor clause names (base names, [..] diagnostics stripped)."""
    return set(AUDIT_CLAUSE_RE.findall(auditor_text))


# Scenario names assigned in src/mc/src/scenario.cpp. Dynamically built
# names (`"array-n" + std::to_string(n) + ...`) contribute only their
# literal prefix, which no [[hb.edge]] row should reference.
SCENARIO_NAME_RE = re.compile(r'\.name\s*=\s*"([a-z0-9.\-]+)"')


def parse_scenario_roster(scenario_text: str) -> set[str]:
    return set(SCENARIO_NAME_RE.findall(scenario_text))
