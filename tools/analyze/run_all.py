#!/usr/bin/env python3
"""Single entry point for the repo's static-analysis gate.

Runs, in order, every python-side check CI's `analyze` job and the
ctest `analyze-all` target need:

  1. shared suppression-module self-test (tools/pylib/suppressions.py)
  2. atomics-audit self-test + strict tree run (tools/lint)
  3. analyzer self-test + strict tree run, passes 1-8 (tools/analyze)
  4. proof-map drift gate (docs/PROOF_MAP.md vs DCD_LP annotations)
  5. guard-map drift gate (docs/GUARD_MAP.md vs guard annotations)
  6. publication-map drift gate (docs/PUBLICATION_MAP.md vs pass 7)
  7. fixture corpus for passes 5-8 + annotation roster
  8. (with --require-clang) the clang-frontend cross-check as a gate

Every step is executed regardless of earlier failures and timed, so a
single invocation reports the whole gate's state at a glance. Exit 0
iff all pass; `--list` prints the step names and exits.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]


def build_steps(args: argparse.Namespace,
                root: pathlib.Path) -> list[tuple[str, list[str]]]:
    py = sys.executable
    analyze = [py, str(HERE / "analyze.py")]
    tree = analyze + ["--root", str(root)]
    if args.build_dir is not None:
        tree += ["--build-dir", str(args.build_dir)]

    steps: list[tuple[str, list[str]]] = [
        ("suppressions self-test",
         [py, str(root / "tools/pylib/suppressions.py"), "--self-test"]),
        ("atomics audit self-test",
         [py, str(root / "tools/lint/atomics_audit.py"), "--self-test"]),
        ("atomics audit strict",
         [py, str(root / "tools/lint/atomics_audit.py"),
          "--root", str(root), "--strict"]),
        ("analyzer self-test", analyze + ["--self-test"]),
        ("analyzer strict", tree + ["--strict"]),
        ("proof-map drift",
         tree + ["--check-proof-map", str(root / "docs/PROOF_MAP.md")]),
        ("guard-map drift",
         tree + ["--check-guard-map", str(root / "docs/GUARD_MAP.md")]),
        ("publication-map drift",
         tree + ["--check-publication-map",
                 str(root / "docs/PUBLICATION_MAP.md")]),
        ("fixture corpus",
         [py, str(HERE / "check_fixtures.py")]),
    ]
    if args.require_clang:
        # `--frontend clang` exits 2 (config error) when the bindings are
        # missing, so on a CI runner with python3-clang installed this leg
        # gates frontend-divergence findings instead of best-efforting.
        steps.append(("clang frontend cross-check (gating)",
                      tree + ["--frontend", "clang", "--strict"]))
    return steps


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repository root (default: this checkout)")
    ap.add_argument("--build-dir", type=pathlib.Path, default=None,
                    help="build dir with compile_commands.json for the "
                         "clang cross-check (optional)")
    ap.add_argument("--strict", action="store_true",
                    help="accepted for explicitness: the tree analyses "
                         "always run --strict here")
    ap.add_argument("--require-clang", action="store_true",
                    help="add a gating clang-frontend step (fails when the "
                         "clang python bindings are unavailable)")
    ap.add_argument("--list", action="store_true",
                    help="print the step names and exit without running")
    args = ap.parse_args()
    root = args.root.resolve()
    steps = build_steps(args, root)

    if args.list:
        for name, _ in steps:
            print(name)
        return 0

    failed: list[str] = []
    timings: list[tuple[str, float, bool]] = []
    for name, cmd in steps:
        print(f"=== run_all: {name} ===", flush=True)
        t0 = time.monotonic()
        ok = subprocess.run(cmd, cwd=root).returncode == 0
        timings.append((name, time.monotonic() - t0, ok))
        if not ok:
            failed.append(name)

    width = max(len(name) for name, _, _ in timings)
    print("--- run_all timings ---")
    for name, dt, ok in timings:
        print(f"  {name:<{width}}  {dt:7.2f}s  {'ok' if ok else 'FAIL'}")
    if failed:
        print(f"run_all: FAILED ({', '.join(failed)})", file=sys.stderr)
        return 1
    print(f"run_all: OK ({len(steps)} steps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
