#!/usr/bin/env python3
"""Single entry point for the repo's static-analysis gate.

Runs, in order, every python-side check CI's `analyze` job and the
ctest `analyze-all` target need:

  1. shared suppression-module self-test (tools/pylib/suppressions.py)
  2. atomics-audit self-test + strict tree run (tools/lint)
  3. analyzer self-test + strict tree run, passes 1-6 (tools/analyze)
  4. proof-map drift gate (docs/PROOF_MAP.md vs DCD_LP annotations)
  5. guard-map drift gate (docs/GUARD_MAP.md vs guard annotations)
  6. fixture corpus for passes 5/6 + annotation roster

Any failing step fails the run; every step is executed regardless so a
single invocation reports the whole gate's state. Exit 0 iff all pass.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repository root (default: this checkout)")
    ap.add_argument("--build-dir", type=pathlib.Path, default=None,
                    help="build dir with compile_commands.json for the "
                         "clang cross-check (optional)")
    args = ap.parse_args()
    root = args.root.resolve()
    py = sys.executable

    analyze = [py, str(HERE / "analyze.py")]
    tree = analyze + ["--root", str(root)]
    if args.build_dir is not None:
        tree += ["--build-dir", str(args.build_dir)]

    steps: list[tuple[str, list[str]]] = [
        ("suppressions self-test",
         [py, str(root / "tools/pylib/suppressions.py"), "--self-test"]),
        ("atomics audit self-test",
         [py, str(root / "tools/lint/atomics_audit.py"), "--self-test"]),
        ("atomics audit strict",
         [py, str(root / "tools/lint/atomics_audit.py"),
          "--root", str(root), "--strict"]),
        ("analyzer self-test", analyze + ["--self-test"]),
        ("analyzer strict", tree + ["--strict"]),
        ("proof-map drift",
         tree + ["--check-proof-map", str(root / "docs/PROOF_MAP.md")]),
        ("guard-map drift",
         tree + ["--check-guard-map", str(root / "docs/GUARD_MAP.md")]),
        ("guard/shared fixtures",
         [py, str(HERE / "check_fixtures.py")]),
    ]

    failed: list[str] = []
    for name, cmd in steps:
        print(f"=== run_all: {name} ===", flush=True)
        if subprocess.run(cmd, cwd=root).returncode != 0:
            failed.append(name)
    if failed:
        print(f"run_all: FAILED ({', '.join(failed)})", file=sys.stderr)
        return 1
    print(f"run_all: OK ({len(steps)} steps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
