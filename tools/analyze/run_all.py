#!/usr/bin/env python3
"""Single entry point for the repo's static-analysis gate.

Runs every python-side check CI's `analyze` job and the ctest
`analyze-all` target need:

  1. shared suppression-module self-test (tools/pylib/suppressions.py)
  2. atomics-audit self-test + strict tree run (tools/lint)
  3. analyzer self-test + strict tree run, passes 1-9 (tools/analyze)
  4. proof-map drift gate (docs/PROOF_MAP.md vs DCD_LP annotations)
  5. guard-map drift gate (docs/GUARD_MAP.md vs guard annotations)
  6. publication-map drift gate (docs/PUBLICATION_MAP.md vs pass 7)
  7. hb-map drift gate (docs/HB_MAP.md vs the [[hb.edge]] roster)
  8. fixture corpus for passes 2 + 5-9 + annotation roster
  9. (with --require-clang) the clang-frontend cross-check as a gate

Every step is executed regardless of earlier failures and timed, so a
single invocation reports the whole gate's state at a glance. The
steps are independent of each other (each is a fresh subprocess over
the committed tree), so `--jobs N` runs them concurrently with
captured, serialised output. `--timings-json` records per-step wall
times for the CI artifact; `--findings-json` makes the strict
analyzer step emit its machine-readable findings to the given path so
a red gate is diagnosable without a local rerun. Exit 0 iff all pass;
`--list` prints the step names and exits.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import subprocess
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parents[1]


def build_steps(args: argparse.Namespace,
                root: pathlib.Path) -> list[tuple[str, list[str]]]:
    py = sys.executable
    analyze = [py, str(HERE / "analyze.py")]
    tree = analyze + ["--root", str(root)]
    if args.build_dir is not None:
        tree += ["--build-dir", str(args.build_dir)]

    strict = tree + ["--strict"]
    if args.findings_json is not None:
        strict = strict + ["--json", str(args.findings_json)]

    steps: list[tuple[str, list[str]]] = [
        ("suppressions self-test",
         [py, str(root / "tools/pylib/suppressions.py"), "--self-test"]),
        ("atomics audit self-test",
         [py, str(root / "tools/lint/atomics_audit.py"), "--self-test"]),
        ("atomics audit strict",
         [py, str(root / "tools/lint/atomics_audit.py"),
          "--root", str(root), "--strict"]),
        ("analyzer self-test", analyze + ["--self-test"]),
        ("analyzer strict", strict),
        ("proof-map drift",
         tree + ["--check-proof-map", str(root / "docs/PROOF_MAP.md")]),
        ("guard-map drift",
         tree + ["--check-guard-map", str(root / "docs/GUARD_MAP.md")]),
        ("publication-map drift",
         tree + ["--check-publication-map",
                 str(root / "docs/PUBLICATION_MAP.md")]),
        ("hb-map drift",
         tree + ["--check-hb-map", str(root / "docs/HB_MAP.md")]),
        ("fixture corpus",
         [py, str(HERE / "check_fixtures.py")]),
    ]
    if args.require_clang:
        # `--frontend clang` exits 2 (config error) when the bindings are
        # missing, so on a CI runner with python3-clang installed this leg
        # gates frontend-divergence findings instead of best-efforting.
        steps.append(("clang frontend cross-check (gating)",
                      tree + ["--frontend", "clang", "--strict"]))
    return steps


def run_step(name: str, cmd: list[str], root: pathlib.Path,
             capture: bool) -> tuple[str, float, bool, str]:
    t0 = time.monotonic()
    if capture:
        proc = subprocess.run(cmd, cwd=root, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        out = proc.stdout
    else:
        print(f"=== run_all: {name} ===", flush=True)
        proc = subprocess.run(cmd, cwd=root)
        out = ""
    return name, time.monotonic() - t0, proc.returncode == 0, out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repository root (default: this checkout)")
    ap.add_argument("--build-dir", type=pathlib.Path, default=None,
                    help="build dir with compile_commands.json for the "
                         "clang cross-check (optional)")
    ap.add_argument("--strict", action="store_true",
                    help="accepted for explicitness: the tree analyses "
                         "always run --strict here")
    ap.add_argument("--require-clang", action="store_true",
                    help="add a gating clang-frontend step (fails when the "
                         "clang python bindings are unavailable)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="run up to N steps concurrently (they are "
                         "independent subprocesses); output is captured "
                         "and printed per step in submission order")
    ap.add_argument("--timings-json", type=pathlib.Path, default=None,
                    help="write per-step wall times (and pass/fail) as "
                         "JSON to this path — CI uploads it as an artifact")
    ap.add_argument("--findings-json", type=pathlib.Path, default=None,
                    help="pass --json to the strict analyzer step so its "
                         "machine-readable findings land at this path")
    ap.add_argument("--list", action="store_true",
                    help="print the step names and exit without running")
    args = ap.parse_args()
    root = args.root.resolve()
    steps = build_steps(args, root)

    if args.list:
        for name, _ in steps:
            print(name)
        return 0

    jobs = max(1, args.jobs)
    results: list[tuple[str, float, bool, str]]
    t_start = time.monotonic()
    if jobs == 1:
        results = [run_step(name, cmd, root, capture=False)
                   for name, cmd in steps]
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
            futs = [ex.submit(run_step, name, cmd, root, True)
                    for name, cmd in steps]
            results = [f.result() for f in futs]
        for name, _, ok, out in results:
            print(f"=== run_all: {name} ({'ok' if ok else 'FAIL'}) ===",
                  flush=True)
            if out:
                sys.stdout.write(out)
    wall = time.monotonic() - t_start

    failed = [name for name, _, ok, _ in results if not ok]
    width = max(len(name) for name, _, _, _ in results)
    print("--- run_all timings ---")
    for name, dt, ok, _ in results:
        print(f"  {name:<{width}}  {dt:7.2f}s  {'ok' if ok else 'FAIL'}")

    if args.timings_json is not None:
        payload = {
            "schema": 1,
            "jobs": jobs,
            "wall_seconds": round(wall, 3),
            "steps": [{"name": name, "seconds": round(dt, 3), "ok": ok}
                      for name, dt, ok, _ in results],
        }
        args.timings_json.write_text(json.dumps(payload, indent=2) + "\n")

    if failed:
        print(f"run_all: FAILED ({', '.join(failed)})", file=sys.stderr)
        return 1
    print(f"run_all: OK ({len(steps)} steps, {wall:.2f}s wall, "
          f"jobs={jobs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
