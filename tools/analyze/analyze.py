#!/usr/bin/env python3
"""AST-grade concurrency analyzer for the DCAS deque tree.

Nine passes over src/ (see passes.py and tools/analyze/README.md):

  contract     every atomic access checked against the per-field
               memory-order contract table in contracts.toml (pairing,
               guard loads, operator-form implicit accesses)
  sync         every CAS/DCAS call site in src/deque, src/reclaim, src/dcas
               maps to a classified sync point from chaos.hpp's roster
               (the inverse of tools/lint's registry-side check)
  progress     every CAS-failure retry loop reaches a backoff/elimination/
               helping edge on its failure path (the non-blocking claim as
               a CFG obligation)
  lp           every DCAS site in src/deque carries a DCD_LP
               proof-obligation annotation; coverage is validated against
               the RepAuditor clause roster and rendered into
               docs/PROOF_MAP.md
  guard        every dereference of a pool-allocated node is dominated by
               a live protection scope (Guard object, LFRC acquisition, or
               a DCD_REQUIRES_GUARD caller contract propagated through the
               call graph); escapes and unprotected calls are findings,
               DCD_GUARD_EXEMPT(why) records justified exceptions; the map
               is rendered into docs/GUARD_MAP.md
  shared-plain plain (non-atomic) accesses to the shared-reachable fields
               rostered in [[shared.struct]] must show the claimed
               happens-before licence (owner function or lock token)
  publication  pool nodes stay thread-private from allocation through
               plain field init to the publishing CAS/DCAS; the escape is
               licensed by DCD_PUBLISHES(point, fields), validated against
               the sync roster and the [[publication.node]] field roster,
               and rendered into docs/PUBLICATION_MAP.md
  codec        raw bit arithmetic on values loaded from / stored to
               contracted atomic words must live in the [codec]-rostered
               helpers, which are cross-checked against the compile-time
               tag-disjointness audit and the property tests their roster
               rows name
  hb           every intended synchronizes-with edge is named in the
               [[hb.edge]] roster and proven two-sided by DCD_HB
               endpoint annotations (release/acquire, or the SC-fence
               pair shape for kind="fence" edges); every
               acquire-or-stronger load and every atomic_thread_fence
               must be licensed by an edge or DCD_HB_EXEMPT(why); each
               edge cross-references a chaos sync point or mc scenario,
               and the map is rendered into docs/HB_MAP.md

Plus the annotation roster check: any DCD_* token outside the known set
([annotations] in contracts.toml) is an `unknown-annotation` finding.

Exit codes: 0 clean, 1 findings, 2 configuration error — matching
tools/lint/atomics_audit.py, whose suppression-file format this tool
shares via tools/pylib/suppressions.py
(`<path-suffix> : <rule> : <substring>  # justification`).

Frontends: the token frontend (cpp_model.py) is dependency-free and
authoritative. When the clang python bindings + compile_commands.json are
present (CI's analyze job), clang_frontend.py re-derives atomic accesses
from the real AST and any divergence is itself a finding.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import io
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "pylib"))

import cpp_model as cm
import passes
import clang_frontend
import suppressions as sup

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None

RULE_IDS = (
    # pass 1: contract
    "uncontracted-atomic-field", "unresolved-atomic-access",
    "ambiguous-field", "memory-order-contract", "relaxed-guard-load",
    "implicit-operator-access", "unpaired-release-store",
    "acquire-without-release",
    # pass 2: sync
    "unannotated-sync-site", "unknown-sync-point",
    "orphan-sync-annotation", "sync-roster-gap",
    # pass 3: progress
    "retry-loop-no-progress", "retry-loop-fallthrough-no-progress",
    "retry-loop-unguarded-continue",
    # pass 4: lp
    "lp-unknown-figure", "lp-unknown-point", "lp-unknown-clause",
    "lp-unattached", "lp-missing", "lp-clause-roster-gap",
    # pass 5: guard
    "unguarded-node-deref", "guard-escape", "unprotected-guarded-call",
    # pass 6: shared-plain
    "shared-plain-access", "shared-plain-unknown-field",
    # pass 7: publication
    "unannotated-publication", "unpublished-field",
    "post-publication-plain-write", "publishes-mismatch",
    # pass 8: codec
    "raw-word-arithmetic", "codec-drift",
    # pass 9: hb
    "unrostered-hb-edge", "one-sided-hb-edge", "fence-without-edge",
    "insufficient-order-for-edge",
    # cross-cutting
    "unknown-annotation", "malformed-annotation", "frontend-divergence",
)


def config_error(msg: str) -> None:
    print(f"analyze: config error: {msg}", file=sys.stderr)
    raise SystemExit(2)


# --- suppressions (shared format/parser: tools/pylib/suppressions.py) ------
#
# This tool opts into wildcards: `*` is accepted for the path-suffix and
# rule fields, and the substring is matched against both the snippet and
# the finding message (tools/lint keeps its stricter exact-match rules).

Suppression = sup.Suppression


def parse_suppressions(text: str, origin: str) -> list[sup.Suppression]:
    return sup.parse(text, origin, RULE_IDS, allow_wildcards=True,
                     on_error=config_error)


def apply_suppressions(findings: list[passes.Finding],
                       sups: list[sup.Suppression]) -> list[passes.Finding]:
    return sup.apply(findings, sups,
                     lambda f: (f.path, f.rule, (f.snippet, f.message)))


# --- model building --------------------------------------------------------

def load_config(path: pathlib.Path) -> dict:
    if tomllib is None:
        config_error("python >= 3.11 (tomllib) required")
    if not path.is_file():
        config_error(f"contract table missing: {path}")
    with open(path, "rb") as fh:
        return tomllib.load(fh)


def scan_dir_union(cfg: dict) -> list[str]:
    dirs: list[str] = []
    for section in ("contract", "sync", "progress", "lp", "guard", "shared",
                    "publication", "codec", "hb"):
        for d in cfg.get(section, {}).get("scan_dirs", []):
            if d not in dirs:
                dirs.append(d)
    return dirs or ["src"]


def build_models(root: pathlib.Path,
                 cfg: dict) -> tuple[list[cm.FileModel],
                                     list[passes.Finding]]:
    tokens = cfg.get("progress", {}).get("tokens", [])
    models: list[cm.FileModel] = []
    malformed: list[passes.Finding] = []
    for d in scan_dir_union(cfg):
        base = root / d
        if not base.is_dir():
            config_error(f"scan directory missing: {base}")
        for p in sorted(base.rglob("*")):
            if p.suffix not in cm.SOURCE_EXTENSIONS or not p.is_file():
                continue
            rel = p.relative_to(root).as_posix()
            if any(m.path == rel for m in models):
                continue
            model, bad = cm.build_file_model(rel, p.read_text(), tokens,
                                             cfg.get("guard", {}))
            models.append(model)
            for line, msg in bad:
                malformed.append(passes.Finding(
                    "driver", "malformed-annotation", rel, line, msg,
                    cm.line_text_at(model.lines, line).strip()[:160]))
    return models, malformed


def load_rosters(root: pathlib.Path,
                 cfg: dict) -> tuple[set[str], set[str], set[str]]:
    reg = root / cfg.get("sync", {}).get(
        "registry", "src/dcas/include/dcd/dcas/chaos.hpp")
    if not reg.is_file():
        config_error(f"sync-point registry missing: {reg}")
    roster = cm.parse_sync_roster(reg.read_text())
    if not roster:
        config_error(f"no sync-point declarations found in {reg}")
    aud = root / cfg.get("lp", {}).get(
        "auditor", "src/verify/src/rep_auditor.cpp")
    if not aud.is_file():
        config_error(f"RepAuditor source missing: {aud}")
    clauses = cm.parse_auditor_roster(aud.read_text())
    if not clauses:
        config_error(f"no audit clauses found in {aud}")
    scenarios: set[str] = set()
    scen = cfg.get("hb", {}).get("scenarios", "")
    if scen:
        sp = root / scen
        if not sp.is_file():
            config_error(f"mc scenario source missing: {sp}")
        scenarios = cm.parse_scenario_roster(sp.read_text())
        if not scenarios:
            config_error(f"no scenario names found in {sp}")
    return roster, clauses, scenarios


def load_codec_aux(root: pathlib.Path, cfg: dict) -> dict[str, str]:
    """Read the test files the [[codec.helper]] rows cross-reference.

    Missing files stay absent from the dict; pass 8 reports them as
    codec-drift rather than erroring out."""
    aux: dict[str, str] = {}
    for row in cfg.get("codec", {}).get("helper", []):
        tested_by = row.get("tested_by", "")
        if tested_by and tested_by not in aux:
            p = root / tested_by
            if p.is_file():
                aux[tested_by] = p.read_text()
    return aux


def run_all_passes(models: list[cm.FileModel], cfg: dict, roster: set[str],
                   clauses: set[str],
                   codec_aux: dict[str, str] | None = None,
                   scenarios: set[str] | None = None
                   ) -> list[passes.Finding]:
    findings: list[passes.Finding] = []
    findings += passes.run_contract_pass(models, cfg)
    findings += passes.run_sync_pass(models, cfg, roster)
    findings += passes.run_progress_pass(models, cfg)
    findings += passes.run_lp_pass(models, cfg, roster, clauses)
    findings += passes.run_guard_pass(models, cfg)
    findings += passes.run_shared_plain_pass(models, cfg)
    findings += passes.run_publication_pass(models, cfg, roster)
    findings += passes.run_codec_pass(models, cfg, codec_aux)
    findings += passes.run_hb_pass(models, cfg, roster, scenarios)
    findings += passes.run_annotation_pass(models, cfg)
    return findings


# --- driver ----------------------------------------------------------------

def render(f: passes.Finding) -> str:
    loc = f"{f.path}:{f.line}" if f.line else f.path
    out = f"{loc}: [{f.pass_id}/{f.rule}] {f.message}"
    if f.snippet:
        out += f"\n    {f.snippet}"
    return out


def run_analysis(args) -> int:
    root = args.root.resolve()
    cfg = load_config(args.contracts)
    roster, clauses, scenarios = load_rosters(root, cfg)
    models, malformed = build_models(root, cfg)
    codec_aux = load_codec_aux(root, cfg)
    findings = malformed + run_all_passes(models, cfg, roster, clauses,
                                          codec_aux, scenarios)

    if args.frontend in ("auto", "clang"):
        divergences, notes = clang_frontend.cross_check(
            str(root), str(root / args.build_dir), models,
            verbose=args.verbose)
        if args.frontend == "clang" and not clang_frontend.HAVE_CLANG:
            config_error("--frontend clang requested but the clang python "
                         "bindings are not importable")
        for d in divergences:
            path, _, rest = d.partition(":")
            line = int(rest.split(":", 1)[0]) if rest.split(":", 1)[0].isdigit() else 0
            findings.append(passes.Finding(
                "driver", "frontend-divergence", path, line, d))
        if args.verbose:
            for n in notes:
                print(f"note: {n}", file=sys.stderr)

    sups: list[Suppression] = []
    if args.suppressions.is_file():
        sups = parse_suppressions(args.suppressions.read_text(),
                                  str(args.suppressions))
    total = len(findings)
    findings = apply_suppressions(findings, sups)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(render(f))
    unused = [s for s in sups if not s.used]
    for s in unused:
        level = "error" if args.strict else "warning"
        print(f"{level}: unused suppression "
              f"({args.suppressions.name}:{s.source_line}): "
              f"{s.path_suffix} : {s.rule} : {s.substring}", file=sys.stderr)

    if args.json:
        payload = {
            "schema": 1,
            "root": str(root),
            "files_scanned": len(models),
            "raw_findings": total,
            "suppressed": total - len(findings),
            "findings": [f.to_dict() for f in findings],
            "unused_suppressions": [dataclasses.asdict(s) for s in unused],
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")

    if args.emit_proof_map or args.check_proof_map:
        text = passes.emit_proof_map(models, cfg, clauses)
        target = args.emit_proof_map or args.check_proof_map
        if args.emit_proof_map:
            target.write_text(text)
            print(f"analyze: wrote {target}", file=sys.stderr)
        else:
            on_disk = target.read_text() if target.is_file() else ""
            if on_disk != text:
                print(f"analyze: {target} is stale; regenerate with "
                      "`python3 tools/analyze/analyze.py --emit-proof-map "
                      f"{target}`", file=sys.stderr)
                return 1

    if args.emit_guard_map or args.check_guard_map:
        text = passes.emit_guard_map(models, cfg)
        target = args.emit_guard_map or args.check_guard_map
        if args.emit_guard_map:
            target.write_text(text)
            print(f"analyze: wrote {target}", file=sys.stderr)
        else:
            on_disk = target.read_text() if target.is_file() else ""
            if on_disk != text:
                print(f"analyze: {target} is stale; regenerate with "
                      "`python3 tools/analyze/analyze.py --emit-guard-map "
                      f"{target}`", file=sys.stderr)
                return 1

    if args.emit_publication_map or args.check_publication_map:
        text = passes.emit_publication_map(models, cfg)
        target = args.emit_publication_map or args.check_publication_map
        if args.emit_publication_map:
            target.write_text(text)
            print(f"analyze: wrote {target}", file=sys.stderr)
        else:
            on_disk = target.read_text() if target.is_file() else ""
            if on_disk != text:
                print(f"analyze: {target} is stale; regenerate with "
                      "`python3 tools/analyze/analyze.py "
                      f"--emit-publication-map {target}`", file=sys.stderr)
                return 1

    if args.emit_hb_map or args.check_hb_map:
        text = passes.emit_hb_map(models, cfg)
        target = args.emit_hb_map or args.check_hb_map
        if args.emit_hb_map:
            target.write_text(text)
            print(f"analyze: wrote {target}", file=sys.stderr)
        else:
            on_disk = target.read_text() if target.is_file() else ""
            if on_disk != text:
                print(f"analyze: {target} is stale; regenerate with "
                      "`python3 tools/analyze/analyze.py --emit-hb-map "
                      f"{target}`", file=sys.stderr)
                return 1

    if args.verbose or findings:
        print(f"analyze: {len(models)} files, {total} raw findings, "
              f"{total - len(findings)} suppressed, "
              f"{len(findings)} reported, {len(sups) - len(unused)}/"
              f"{len(sups)} suppressions used", file=sys.stderr)
    if findings:
        return 1
    if unused and args.strict:
        return 1
    return 0


# --- self test -------------------------------------------------------------

SELF_TEST_CONFIG = {
    "contract": {
        "scan_dirs": ["src"],
        "field": [
            {"owner": "Foo", "member": "guard_", "loads": ["acquire"],
             "stores": ["release"], "rmw": [], "guards": True,
             "pairing": "internal", "why": "seeded publication field"},
        ],
    },
    "sync": {
        "scan_dirs": ["src/deque"],
        "pseudo": {"policy-internal": "seeded"},
    },
    "progress": {
        "scan_dirs": ["src/deque"],
        "tokens": ["backoff.pause("],
    },
    "lp": {
        "scan_dirs": ["src/deque"],
        "figures": ["Fig3"],
    },
}

SELF_TEST_ROSTER = {"dcas.any", "pop.commit"}
SELF_TEST_CLAUSES = {"array.index_range", "array.segment_full"}

SELF_TEST_CASES = [
    # (path, source, expected rule ids) — at least one seeded violation per
    # pass, mirroring tools/lint/atomics_audit.py's convention.
    ("src/other/contract_bad.hpp",
     "struct Foo {\n"
     "  std::atomic<int> guard_;\n"
     "  std::atomic<int> orphan_;\n"
     "  int read() { return guard_.load(std::memory_order_relaxed); }\n"
     "  void bump() { guard_ += 2; }\n"
     "  void set() { guard_.store(1, std::memory_order_release); }\n"
     "};\n",
     ["uncontracted-atomic-field",        # orphan_ has no contract row
      "memory-order-contract",            # relaxed load vs loads=[acquire]
      "relaxed-guard-load",               # guards=true field read relaxed
      "implicit-operator-access",         # guard_ += 2
      "unpaired-release-store",           # release store, no acquire load
      "lp-clause-roster-gap",             # no LP annotations at all ...
      "lp-clause-roster-gap",             # ... so both clauses uncovered
      "sync-roster-gap",                  # nothing claims dcas.any ...
      "sync-roster-gap"]),                # ... or pop.commit
    ("src/deque/sync_bad.hpp",
     "struct D {\n"
     "  bool f(W& w) {\n"
     "    // DCD_SYNC(dcas.any)\n"
     "    // DCD_LP(Fig3:5-6, dcas.any, inv=array.index_range, \"pub\")\n"
     "    if (Dcas::dcas(w.a, w.b, o1, o2, n1, n2)) return true;\n"
     "    Dcas::cas(w.a, o1, n1);\n"
     "    return false;\n"
     "  }\n"
     "};\n",
     ["unannotated-sync-site",            # the bare Dcas::cas site
      "lp-missing",                       # ... which also lacks a DCD_LP
      "lp-clause-roster-gap",             # array.segment_full uncovered
      "sync-roster-gap"]),                # pop.commit never claimed
    ("src/deque/sync_unknown.hpp",
     "struct D {\n"
     "  void g(W& w) {\n"
     "    // DCD_SYNC(bogus.point)\n"
     "    // DCD_LP(Fig99:1, bogus.point, inv=not.a.clause, \"x\")\n"
     "    Dcas::cas(w.a, o1, n1);\n"
     "  }\n"
     "};\n",
     ["unknown-sync-point",               # bogus.point not in roster/pseudo
      "lp-unknown-figure",                # Fig99
      "lp-unknown-point",                 # bogus.point
      "lp-unknown-clause",                # not.a.clause
      "lp-clause-roster-gap",             # both clauses uncovered
      "lp-clause-roster-gap",
      "sync-roster-gap",                  # dcas.any and pop.commit
      "sync-roster-gap"]),
    ("src/deque/exec_notify_bad.hpp",
     # Notify-form site (executor idiom: the constant IS the claim) against
     # an exec point the seeded roster does not declare: the park rule it
     # feeds could never be armed, so the site must be flagged.
     "struct E {\n"
     "  static void fire(dcas::ChaosController* c) {\n"
     "    c->notify(sync_point::kExecPark);\n"
     "  }\n"
     "};\n",
     ["unknown-sync-point",               # exec.park absent from roster
      "lp-clause-roster-gap",             # no LP annotations at all ...
      "lp-clause-roster-gap",             # ... so both clauses uncovered
      "sync-roster-gap",                  # dcas.any never claimed ...
      "sync-roster-gap"]),                # ... nor pop.commit
    ("src/deque/progress_bad.hpp",
     "struct D {\n"
     "  void h(W& w) {\n"
     "    for (;;) {\n"
     "      // DCD_SYNC(dcas.any)\n"
     "      // DCD_LP(Fig3:7, dcas.any, inv=array.index_range, \"pub\")\n"
     "      if (Dcas::cas(w.a, o1, n1)) return;\n"
     "      if (spin()) continue;\n"
     "      backoff.pause();\n"
     "    }\n"
     "  }\n"
     "  void i(W& w) {\n"
     "    for (;;) {\n"
     "      backoff.pause();\n"
     "      // DCD_SYNC(pop.commit)\n"
     "      // DCD_LP(Fig3:9, pop.commit, aux, inv=array.segment_full,"
     " \"q\")\n"
     "      if (Dcas::cas(w.b, o2, n2)) return;\n"
     "    }\n"
     "  }\n"
     "  void j(W& w) {\n"
     "    for (;;) {\n"
     "      // DCD_SYNC(dcas.any)\n"
     "      // DCD_LP(Fig3:11, dcas.any, inv=array.index_range, \"r\")\n"
     "      if (Dcas::cas(w.c, o3, n3)) return;\n"
     "    }\n"
     "  }\n"
     "};\n",
     ["retry-loop-unguarded-continue",      # h: `continue` skips the pause
      "retry-loop-fallthrough-no-progress",  # i: pause precedes the CAS
      "retry-loop-no-progress"]),            # j: no progress edge at all
]

# Passes 5/6 + the annotation roster get their own config so the seeded
# sources are checked by the new passes alone (no sync/lp roster noise).
GUARD_TEST_CONFIG = {
    "guard": {
        "scan_dirs": ["src/guard"],
        "node_types": ["Node"],
        "lfrc_tokens": ["R::load("],
    },
    "shared": {
        "scan_dirs": ["src/guard"],
        "struct": [{
            "owner": "Box", "file": "shared_bad.hpp",
            "fields": ["a", "b"], "functions": ["locked_get"],
            "tokens": ["lock.exchange(true"],
            "why": "seeded try-lock protocol",
        }],
    },
    "annotations": {
        "known": ["DCD_SYNC", "DCD_LP", "DCD_PROGRESS",
                  "DCD_REQUIRES_GUARD", "DCD_GUARD_EXEMPT",
                  "DCD_NO_SANITIZE_*"],
    },
}

GUARD_BAD_SRC = (
    "struct D {\n"
    "  int peek() {\n"
    "    Node* n = head();\n"
    "    return n->value;\n"              # unguarded-node-deref
    "  }\n"
    "  Node* grab() {\n"
    "    Reclaim::Guard guard(dom_);\n"
    "    Node* n = head();\n"
    "    use(n->value);\n"
    "    return n;\n"                     # guard-escape
    "  }\n"
    "  void caller() {\n"
    "    fetch();\n"                      # unprotected-guarded-call
    "  }\n"
    "  // DCD_REQUIRES_GUARD(caller pins the EBR domain)\n"
    "  Node* fetch() {\n"
    "    Node* n = head();\n"
    "    use(n->value);\n"
    "    return n;\n"
    "  }\n"
    "};\n")

GUARD_CLEAN_SRC = (
    "struct D {\n"
    "  void walk() {\n"
    "    Reclaim::Guard guard(dom_);\n"
    "    Node* n = head();\n"
    "    use(n->value);\n"
    "    fetch();\n"
    "  }\n"
    "  // DCD_GUARD_EXEMPT(single-threaded teardown)\n"
    "  ~D() {\n"
    "    Node* n = head();\n"
    "    use(n->value);\n"
    "  }\n"
    "  // DCD_REQUIRES_GUARD(caller pins the EBR domain)\n"
    "  Node* fetch() {\n"
    "    Node* t = R::load(top_);\n"
    "    use(t->value);\n"
    "    return t;\n"
    "  }\n"
    "};\n")

SHARED_BAD_SRC = (
    "struct Box {\n"
    "  std::atomic<bool> lock{false};\n"
    "  int a = 0;\n"
    "  int b = 0;\n"
    "  int c = 0;\n"                      # not rostered: drift finding
    "};\n"
    "struct M {\n"
    "  int locked_get(Box& x) { return x.a; }\n"
    "  void put(Box& x) {\n"
    "    while (x.lock.exchange(true, std::memory_order_acquire)) {}\n"
    "    x.a = 1;\n"                      # licensed by the lock token
    "    x.lock.store(false, std::memory_order_release);\n"
    "  }\n"
    "  int steal(Box& x) { return x.b; }\n"  # shared-plain-access
    "};\n")


# Passes 7/8 likewise get their own scoped configs: the publication cases
# exercise the allocation->init->publish flow, the codec cases the
# tainted-value / store-argument bit-op screens and the roster drift gate.
PUB_TEST_CONFIG = {
    "sync": {"pseudo": {"policy-internal": "seeded"}},
    "publication": {
        "scan_dirs": ["src/pub"],
        "alloc_tokens": ["allocate_node("],
        "publish_tokens": ["Dcas::dcas(", "Dcas::cas("],
        "node": [
            {"type": "Node", "file": "pub_bad.hpp",
             "fields": ["left", "right", "value"], "why": "seeded"},
            {"type": "Node", "file": "pub_clean.hpp",
             "fields": ["left", "right", "value"], "why": "seeded"},
        ],
    },
}

PUB_BAD_SRC = (
    "struct D {\n"
    "  void push_a(W& w) {\n"
    "    Node* n = allocate_node();\n"
    "    store_init(n->left, l);\n"
    "    Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n));\n"  # unannotated
    "  }\n"
    "  void push_b(W& w) {\n"
    "    Node* n = allocate_node();\n"
    "    store_init(n->left, l);\n"
    "    // DCD_PUBLISHES(dcas.any, left+right)\n"
    "    Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n));\n"  # value unwritten
    "    n->value = v;\n"                        # post-publication write
    "  }\n"
    "  void push_c(W& w) {\n"
    "    Node* n = allocate_node();\n"
    "    store_init(n->left, l);\n"
    "    store_init(n->right, r);\n"
    "    store_init(n->value, v);\n"
    "    // DCD_PUBLISHES(bogus.point, left+right+value)\n"
    "    Dcas::cas(w.a, o1, ptr(n));\n"          # unknown escape point
    "  }\n"
    "};\n")

PUB_CLEAN_SRC = (
    "struct D {\n"
    "  void push(W& w) {\n"
    "    for (;;) {\n"
    "      Node* n = allocate_node();\n"
    "      store_init(n->left, l);\n"
    "      store_init(n->right, r);\n"
    "      init_value(n);\n"                     # vouched, not observed
    "      // DCD_PUBLISHES(dcas.any, left+right+value)\n"
    "      if (Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n))) return;\n"
    "    }\n"
    "  }\n"
    "};\n")

CODEC_TEST_CONFIG = {
    "codec": {
        "scan_dirs": ["src/codec"],
        "load_tokens": ["Dcas::load("],
        "store_tokens": ["store_init("],
        "layout": "src/codec/word_seed.hpp",
        "payload_shift": 3,
        "audit": "src/codec/word_seed.hpp",
        "audit_needles": ["kMaxPayload == (~0ull >> kPayloadShift)"],
        "helper": [
            {"file": "word_seed.hpp",
             "functions": ["encode_payload", "decode_payload"],
             "tested_by": "tests/seed_test.cpp",
             "tested_tokens": ["encode_payload"], "why": "seeded"},
            {"file": "word_seed.hpp", "functions": ["ghost_helper"],
             "why": "seeded drift: helper vanished from the tree"},
        ],
    },
}

CODEC_SEED_SRC = (
    "inline constexpr std::uint64_t kPayloadShift = 3;\n"
    "static_assert(kMaxPayload == (~0ull >> kPayloadShift));\n"
    "constexpr std::uint64_t encode_payload(std::uint64_t p) noexcept {\n"
    "  return p << kPayloadShift;\n"
    "}\n"
    "constexpr std::uint64_t decode_payload(std::uint64_t w) noexcept {\n"
    "  return w >> kPayloadShift;\n"
    "}\n")

CODEC_BAD_SRC = (
    "struct D {\n"
    "  bool f(W& w) {\n"
    "    const std::uint64_t v = Dcas::load(w.a);\n"
    "    if ((v & kDeletedBit) != 0) return true;\n"   # tainted bit-and
    "    store_init(w.b, x | kDeletedBit);\n"          # store-arg bit-or
    "    return false;\n"
    "  }\n"
    "};\n")

CODEC_CLEAN_SRC = (
    "struct D {\n"
    "  bool g(W& w) {\n"
    "    const std::uint64_t v = Dcas::load(w.a);\n"
    "    if (is_deleted(v)) return true;\n"
    "    store_init(w.b, encode_payload(p));\n"
    "    return false;\n"
    "  }\n"
    "};\n")

CODEC_AUX = {"tests/seed_test.cpp":
             "TEST(Seed, RoundTrip) { encode_payload(1); }\n"}


# Pass 9 gets its own scoped config: the clean file proves a sync-kind edge
# and a fence-kind (Dekker) edge; the bad file seeds one violation per hb
# rule when run alongside it.
HB_CLEAN_CONFIG = {
    "hb": {
        "scan_dirs": ["src/hb"],
        "edge": [
            {"name": "seed.flag.publish", "fields": ["Seed::flag_"],
             "sync_point": "dcas.any", "why": "seeded sync edge"},
            {"name": "seed.park.dekker", "kind": "fence",
             "fields": ["Seed::parked_"], "sync_point": "pop.commit",
             "why": "seeded Dekker edge"},
        ],
    },
}

HB_BAD_CONFIG = {
    "hb": {
        "scan_dirs": ["src/hb"],
        "edge": HB_CLEAN_CONFIG["hb"]["edge"] + [
            {"name": "seed.lonely", "fields": ["Seed::lone_"],
             "sync_point": "dcas.any", "why": "seeded one-sided edge"},
        ],
    },
}

HB_CLEAN_SRC = (
    "struct Seed {\n"
    "  std::atomic<int> flag_;\n"
    "  std::atomic<int> parked_;\n"
    "  void pub() {\n"
    "    // DCD_HB(seed.flag.publish, role=release)\n"
    "    flag_.store(1, std::memory_order_release);\n"
    "  }\n"
    "  int get() {\n"
    "    // DCD_HB(seed.flag.publish, role=acquire)\n"
    "    return flag_.load(std::memory_order_acquire);\n"
    "  }\n"
    "  void park() {\n"
    "    parked_.fetch_add(1, std::memory_order_relaxed);\n"
    "    // DCD_HB(seed.park.dekker, role=fence-release)\n"
    "    std::atomic_thread_fence(std::memory_order_seq_cst);\n"
    "    recheck();\n"
    "  }\n"
    "  void wake() {\n"
    "    // DCD_HB(seed.park.dekker, role=fence-acquire)\n"
    "    std::atomic_thread_fence(std::memory_order_seq_cst);\n"
    "    if (parked_.load(std::memory_order_relaxed) != 0) notify();\n"
    "  }\n"
    "  // DCD_HB_EXEMPT(seeded telemetry snapshot)\n"
    "  int snap() { return parked_.load(std::memory_order_seq_cst); }\n"
    "};\n")

HB_BAD_SRC = (
    "struct Seed {\n"
    "  std::atomic<int> flag_;\n"
    "  std::atomic<int> lone_;\n"
    "  void ghost() {\n"
    "    // DCD_HB(seed.bogus, role=release)\n"
    "    flag_.store(1, std::memory_order_release);\n"   # unrostered edge
    "  }\n"
    "  void weak() {\n"
    "    // DCD_HB(seed.flag.publish, role=release)\n"
    "    flag_.store(1, std::memory_order_relaxed);\n"   # too weak
    "  }\n"
    "  void bare() {\n"
    "    std::atomic_thread_fence(std::memory_order_seq_cst);\n"  # no edge
    "  }\n"
    "  int lonely_read() {\n"
    "    // DCD_HB(seed.lonely, role=acquire)\n"
    "    return lone_.load(std::memory_order_acquire);\n"  # no release side
    "  }\n"
    "};\n")


def self_test() -> int:
    failures = []
    for path, source, expected in SELF_TEST_CASES:
        tokens = SELF_TEST_CONFIG["progress"]["tokens"]
        model, malformed = cm.build_file_model(path, source, tokens)
        findings = run_all_passes([model], SELF_TEST_CONFIG,
                                  SELF_TEST_ROSTER, SELF_TEST_CLAUSES)
        got = [f.rule for f in findings] + [m for _, m in malformed]
        if sorted(got) != sorted(expected):
            failures.append(f"{path}: expected {sorted(expected)}, "
                            f"got {sorted(got)}")

    # A clean seeded file must produce zero findings (all four passes).
    clean_src = (
        "struct D {\n"
        "  std::atomic<int> guard_;\n"
        "  bool f(W& w) {\n"
        "    for (;;) {\n"
        "      int g = guard_.load(std::memory_order_acquire);\n"
        "      // DCD_SYNC(dcas.any)\n"
        "      // DCD_LP(Fig3:5-6, dcas.any, inv=array.index_range,"
        " \"published\")\n"
        "      if (Dcas::dcas(w.a, w.b, o1, o2, n1, n2)) return g != 0;\n"
        "      // DCD_SYNC(pop.commit)\n"
        "      // DCD_LP(Fig3:9, pop.commit, inv=array.segment_full,"
        " \"emptied\")\n"
        "      if (Dcas::cas(w.a, o1, n1)) return true;\n"
        "      backoff.pause();\n"
        "    }\n"
        "  }\n"
        "  void set() { guard_.store(1, std::memory_order_release); }\n"
        "};\n")
    model, malformed = cm.build_file_model(
        "src/deque/clean.hpp", clean_src,
        SELF_TEST_CONFIG["progress"]["tokens"])
    findings = run_all_passes([model], SELF_TEST_CONFIG, SELF_TEST_ROSTER,
                              SELF_TEST_CLAUSES)
    if findings or malformed:
        failures.append("clean seeded file produced findings: "
                        + "; ".join(f.rule for f in findings))

    # The proof map renders both annotations from the clean file.
    pm = passes.emit_proof_map([model], SELF_TEST_CONFIG, SELF_TEST_CLAUSES)
    for needle in ("clean.hpp:8", "clean.hpp:11", "`array.index_range`",
                   "Fig3 l.5-6", "2 linearization points"):
        if needle not in pm:
            failures.append(f"proof map missing '{needle}'")

    # Suppressions: a justified entry suppresses and is marked used; a
    # missing justification is a config error (exit 2).
    bad_model, _ = cm.build_file_model(
        "src/other/contract_bad.hpp", SELF_TEST_CASES[0][1], [])
    findings = passes.run_contract_pass([bad_model], SELF_TEST_CONFIG)
    sups = parse_suppressions(
        "contract_bad.hpp : implicit-operator-access : guard_ "
        " # seeded operator case\n", "<selftest>")
    left = apply_suppressions(findings, sups)
    if any(f.rule == "implicit-operator-access" for f in left) \
            or not sups[0].used:
        failures.append("justified suppression did not apply")
    try:
        with contextlib.redirect_stderr(io.StringIO()):
            parse_suppressions("x.hpp : lp-missing : foo\n", "<selftest>")
        failures.append("missing justification was accepted")
    except SystemExit as e:
        if e.code != 2:
            failures.append("config error must exit 2")

    # A malformed DCD_LP is reported, not silently ignored.
    _, bad = cm.build_file_model(
        "src/deque/malformed.hpp",
        "// DCD_LP(Fig3, no-inv-clause)\nbool f();\n", [])
    if not bad:
        failures.append("malformed DCD_LP not reported")

    # Pass 5: one seeded violation per guard rule, plus a clean file.
    gcfg = GUARD_TEST_CONFIG["guard"]
    gbad_model, gbad_ann = cm.build_file_model(
        "src/guard/guard_bad.hpp", GUARD_BAD_SRC, [], gcfg)
    got = sorted(f.rule for f in passes.run_guard_pass([gbad_model],
                                                       GUARD_TEST_CONFIG))
    want = ["guard-escape", "unguarded-node-deref",
            "unprotected-guarded-call"]
    if got != want or gbad_ann:
        failures.append(f"guard seeded case: expected {want}, got {got}")

    gclean_model, gclean_ann = cm.build_file_model(
        "src/guard/guard_clean.hpp", GUARD_CLEAN_SRC, [], gcfg)
    gf = passes.run_guard_pass([gclean_model], GUARD_TEST_CONFIG)
    if gf or gclean_ann:
        failures.append("guard-clean seeded file produced findings: "
                        + "; ".join(f.rule for f in gf))

    # The guard map renders all three discharge kinds from the clean file.
    gmap = passes.emit_guard_map([gclean_model], GUARD_TEST_CONFIG)
    for needle in ("`fetch`", "caller-provided guard", "local guard scope",
                   "`DCD_GUARD_EXEMPT` — single-threaded teardown"):
        if needle not in gmap:
            failures.append(f"guard map missing '{needle}'")

    # Pass 6: a plain access outside the licence + a drifted plain member;
    # the token-licensed and owner-function accesses stay silent.
    smodel, _ = cm.build_file_model("src/guard/shared_bad.hpp",
                                    SHARED_BAD_SRC, [], gcfg)
    got = sorted(f.rule for f in passes.run_shared_plain_pass(
        [smodel], GUARD_TEST_CONFIG))
    want = ["shared-plain-access", "shared-plain-unknown-field"]
    if got != want:
        failures.append(f"shared-plain seeded case: expected {want}, "
                        f"got {got}")

    # unknown-annotation: a typoed DCD_ token is a finding.
    amodel, _ = cm.build_file_model(
        "src/guard/ann_bad.hpp", "// DCD_SYNCC(dcas.any)\nvoid f();\n", [])
    got = [f.rule for f in passes.run_annotation_pass([amodel],
                                                      GUARD_TEST_CONFIG)]
    if got != ["unknown-annotation"]:
        failures.append(f"unknown-annotation seeded case got {got}")

    # Malformed guard annotations (empty why, or attaching to no function)
    # are reported, not silently dropped.
    _, gbad1 = cm.build_file_model(
        "src/guard/empty.hpp", "// DCD_GUARD_EXEMPT()\nvoid f() {}\n", [])
    _, gbad2 = cm.build_file_model(
        "src/guard/orphan.hpp", "// DCD_REQUIRES_GUARD(note)\nint x = 3;\n",
        [])
    if not gbad1 or not gbad2:
        failures.append("malformed guard annotation not reported")

    # Pass 7: the seeded file walks one violation per publication rule —
    # an unannotated escape, an unwritten rostered field, a plain write
    # after the publishing DCAS, and an escape point outside the roster.
    pbad_model, pbad_ann = cm.build_file_model(
        "src/pub/pub_bad.hpp", PUB_BAD_SRC, [])
    pclean_model, pclean_ann = cm.build_file_model(
        "src/pub/pub_clean.hpp", PUB_CLEAN_SRC, [])
    pub_findings = passes.run_publication_pass(
        [pbad_model, pclean_model], PUB_TEST_CONFIG, SELF_TEST_ROSTER)
    got = sorted(f.rule for f in pub_findings)
    want = ["post-publication-plain-write", "publishes-mismatch",
            "unannotated-publication", "unpublished-field"]
    if got != want or pbad_ann:
        failures.append(f"publication seeded case: expected {want}, "
                        f"got {got}")
    pf = [f for f in pub_findings if f.path.endswith("pub_clean.hpp")]
    if pf or pclean_ann:
        failures.append("publication-clean seeded file produced findings: "
                        + "; ".join(f.rule for f in pf))

    # The publication map renders verified and vouched fields distinctly.
    pmap = passes.emit_publication_map([pclean_model], PUB_TEST_CONFIG)
    for needle in ("(vouched)", "✓ l.", "1 publishing stores",
                   "dcas.any"):
        if needle not in pmap:
            failures.append(f"publication map missing '{needle}'")

    # A malformed DCD_PUBLISHES is reported, not silently ignored.
    _, bad = cm.build_file_model(
        "src/pub/malformed.hpp",
        "// DCD_PUBLISHES(dcas.any)\nbool f();\n", [])
    if not bad:
        failures.append("malformed DCD_PUBLISHES not reported")

    # Pass 8: a tainted bit-and, a raw store-argument bit-or, and a
    # rostered helper that vanished from the tree (codec-drift).
    cseed_model, _ = cm.build_file_model(
        "src/codec/word_seed.hpp", CODEC_SEED_SRC, [])
    cbad_model, _ = cm.build_file_model(
        "src/codec/codec_bad.hpp", CODEC_BAD_SRC, [])
    got = sorted(f.rule for f in passes.run_codec_pass(
        [cbad_model, cseed_model], CODEC_TEST_CONFIG, CODEC_AUX))
    want = ["codec-drift", "raw-word-arithmetic", "raw-word-arithmetic"]
    if got != want:
        failures.append(f"codec seeded case: expected {want}, got {got}")

    # A helper-routed clean file raises no raw-word-arithmetic.
    cclean_model, _ = cm.build_file_model(
        "src/codec/codec_clean.hpp", CODEC_CLEAN_SRC, [])
    cf = [f for f in passes.run_codec_pass(
        [cclean_model, cseed_model], CODEC_TEST_CONFIG, CODEC_AUX)
        if f.rule == "raw-word-arithmetic"]
    if cf:
        failures.append("codec-clean seeded file produced findings: "
                        + "; ".join(f.message for f in cf))

    # Layout drift: a payload_shift pin disagreeing with the header fails.
    drift_cfg = {"codec": dict(CODEC_TEST_CONFIG["codec"],
                               payload_shift=4, helper=[])}
    got = [f.rule for f in passes.run_codec_pass(
        [cseed_model], drift_cfg, CODEC_AUX)]
    if got != ["codec-drift"]:
        failures.append(f"codec layout-drift seeded case got {got}")

    # Pass 9: one seeded violation per hb rule (the clean file supplies the
    # proven edges the bad file half-uses), then the clean file alone.
    hclean_model, hclean_ann = cm.build_file_model(
        "src/hb/hb_clean.hpp", HB_CLEAN_SRC, [])
    hbad_model, hbad_ann = cm.build_file_model(
        "src/hb/hb_bad.hpp", HB_BAD_SRC, [])
    got = sorted(f.rule for f in passes.run_hb_pass(
        [hbad_model, hclean_model], HB_BAD_CONFIG, SELF_TEST_ROSTER))
    want = ["fence-without-edge", "insufficient-order-for-edge",
            "one-sided-hb-edge", "unrostered-hb-edge"]
    if got != want or hbad_ann or hclean_ann:
        failures.append(f"hb seeded case: expected {want}, got {got}")

    hf = passes.run_hb_pass([hclean_model], HB_CLEAN_CONFIG,
                            SELF_TEST_ROSTER)
    if hf:
        failures.append("hb-clean seeded file produced findings: "
                        + "; ".join(f.rule for f in hf))

    # Deleting a fence-side DCD_HB must turn the tree red two ways: the
    # fence loses its licence and the Dekker edge goes one-sided.
    dropped = HB_CLEAN_SRC.replace(
        "    // DCD_HB(seed.park.dekker, role=fence-acquire)\n", "")
    hdrop_model, _ = cm.build_file_model("src/hb/hb_clean.hpp", dropped, [])
    got = sorted(f.rule for f in passes.run_hb_pass(
        [hdrop_model], HB_CLEAN_CONFIG, SELF_TEST_ROSTER))
    if got != ["fence-without-edge", "one-sided-hb-edge"]:
        failures.append(f"hb fence-deletion seeded case got {got}")

    # Roster validation: an edge whose mc_scenario resolves nowhere (and
    # has no endpoints) is unrostered + one-sided on both ends.
    ghost_cfg = {"hb": {"scan_dirs": ["src/hb"], "edge": [
        {"name": "seed.ghost", "fields": ["Seed::flag_"],
         "mc_scenario": "not-a-scenario", "why": "seeded"}]}}
    got = sorted(f.rule for f in passes.run_hb_pass(
        [], ghost_cfg, SELF_TEST_ROSTER, {"list-mixed"}))
    if got != ["one-sided-hb-edge", "one-sided-hb-edge",
               "unrostered-hb-edge"]:
        failures.append(f"hb ghost-scenario seeded case got {got}")

    # The HB map renders both edge kinds, the endpoint table, and the
    # exemption row from the clean file.
    hmap = passes.emit_hb_map([hclean_model], HB_CLEAN_CONFIG)
    for needle in ("## `seed.park.dekker` — fence",
                   "`atomic_thread_fence(seq_cst)`",
                   "`flag_.store(release)`", "chaos `dcas.any`",
                   "seeded telemetry snapshot",
                   "2 edges (1 fence-paired), 4 annotated endpoints"):
        if needle not in hmap:
            failures.append(f"hb map missing '{needle}'")

    # A malformed DCD_HB / DCD_HB_EXEMPT is reported, not dropped.
    _, bad = cm.build_file_model(
        "src/hb/malformed.hpp",
        "// DCD_HB(seed.flag.publish)\nvoid f();\n", [])
    _, bad2 = cm.build_file_model(
        "src/hb/malformed2.hpp", "// DCD_HB_EXEMPT()\nvoid g();\n", [])
    if not bad or not bad2:
        failures.append("malformed DCD_HB/DCD_HB_EXEMPT not reported")

    if failures:
        print("self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    print(f"self-test OK ({len(SELF_TEST_CASES)} seeded cases, "
          "9 passes + annotation roster covered)")
    return 0


def main() -> int:
    here = pathlib.Path(__file__).resolve().parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    ap.add_argument("--root", type=pathlib.Path,
                    default=here.parents[1],
                    help="repo root (default: two levels up)")
    ap.add_argument("--contracts", type=pathlib.Path,
                    default=here / "contracts.toml")
    ap.add_argument("--suppressions", type=pathlib.Path,
                    default=here / "analyze.suppressions")
    ap.add_argument("--build-dir", default="build",
                    help="build dir holding compile_commands.json "
                         "(clang frontend only)")
    ap.add_argument("--frontend", choices=["auto", "token", "clang"],
                    default="auto",
                    help="auto: token model + clang cross-check when the "
                         "bindings are importable; clang: require bindings")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write machine-readable findings to this path")
    ap.add_argument("--emit-proof-map", type=pathlib.Path, default=None,
                    help="write the generated LP proof map (markdown)")
    ap.add_argument("--check-proof-map", type=pathlib.Path, default=None,
                    help="fail (exit 1) if the on-disk proof map is stale")
    ap.add_argument("--emit-guard-map", type=pathlib.Path, default=None,
                    help="write the generated guard-obligation map")
    ap.add_argument("--check-guard-map", type=pathlib.Path, default=None,
                    help="fail (exit 1) if the on-disk guard map is stale")
    ap.add_argument("--emit-publication-map", type=pathlib.Path,
                    default=None,
                    help="write the generated safe-publication map")
    ap.add_argument("--check-publication-map", type=pathlib.Path,
                    default=None,
                    help="fail (exit 1) if the on-disk publication map is "
                         "stale")
    ap.add_argument("--emit-hb-map", type=pathlib.Path, default=None,
                    help="write the generated happens-before edge map")
    ap.add_argument("--check-hb-map", type=pathlib.Path, default=None,
                    help="fail (exit 1) if the on-disk HB map is stale")
    ap.add_argument("--strict", action="store_true",
                    help="unused suppressions are errors, not warnings")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation self test and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_analysis(args)


if __name__ == "__main__":
    raise SystemExit(main())
