// Seeded pass-9 violations, one per hb rule. The [hb] fixture config in
// check_fixtures.py rosters fx.stop.latch (sync), fx.park.dekker (fence)
// and fx.lonely (sync, acquire-side only — on purpose); fx.ghost has no
// roster row at all.
#pragma once

#include <atomic>

struct Bad {
  std::atomic<int> stop_;
  std::atomic<int> lone_;

  // unrostered-hb-edge: the named edge has no [[hb.edge]] row.
  void ghost() {
    // DCD_HB(fx.ghost, role=release)
    stop_.store(1, std::memory_order_release);
  }

  // insufficient-order-for-edge: a relaxed store cannot head an edge.
  void weak() {
    // DCD_HB(fx.stop.latch, role=release)
    stop_.store(1, std::memory_order_relaxed);
  }

  // fence-without-edge: a fence that belongs to no rostered edge.
  void bare() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // one-sided-hb-edge: fx.lonely only ever gets this acquire side.
  int lonely() {
    // DCD_HB(fx.lonely, role=acquire)
    return lone_.load(std::memory_order_acquire);
  }
};
