// Seeded pass-8 violations: raw bit arithmetic on word values outside
// every rostered helper, twice (a tainted load and a store argument).
// The fixture config additionally rosters a `ghost_helper` in this file
// that does not exist -> codec-drift.
#pragma once

struct CodecBad {
  bool probe(W& w) {
    // raw-word-arithmetic (tainted local): the deleted-bit test belongs
    // in deleted_of(), not inline.
    const std::uint64_t v = Dcas::load(w.a);
    if ((v & kDeletedBit) != 0) return true;
    // raw-word-arithmetic (store argument): the tag-set belongs in an
    // encode helper, not in the CAS argument list.
    store_init(w.b, x | kDeletedBit);
    return false;
  }
};
