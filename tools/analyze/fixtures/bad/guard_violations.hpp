// Known-bad guard fixture: seeds exactly one finding per pass-5 rule.
#pragma once

struct BadDeque {
  void peek() {
    Node* n = head();
    use(n->value);  // unguarded-node-deref: no scope dominates this
  }

  Node* grab() {
    reclaim::EbrDomain::Guard guard(dom_);
    Node* n = head();
    use(n->value);
    return n;  // guard-escape: the guard dies at return
  }

  void caller() {
    fetch();  // unprotected-guarded-call: no scope, no own contract
  }

  // DCD_REQUIRES_GUARD(caller pins the domain for the returned pointer)
  Node* fetch() {
    Node* n = head();
    use(n->value);
    return n;
  }
};
