// Known-bad annotation fixture: a misspelled DCD_* token. Without the
// unknown-annotation rule this typo would silently drop the caller
// contract it was meant to declare.
#pragma once

struct TypoHolder {
  // DCD_REQURES_GUARD(caller pins the domain)
  Node* fetch() { return head(); }
};
