// Known-bad shared-plain fixture: one unlicensed plain access and one
// struct-roster drift (plain member missing from the contracts row).
#pragma once

struct Box {
  std::atomic<bool> lock{false};
  int a = 0;
  int b = 0;  // not in the roster: shared-plain-unknown-field
};

struct BadUser {
  int steal(Box& x) { return x.a; }  // shared-plain-access: no licence
};
