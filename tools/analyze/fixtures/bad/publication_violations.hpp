// Seeded pass-7 violations, one per publication rule. `PNode` is
// deliberately NOT in the guard pass's node_types so these fixtures
// exercise publication tracking without dragging in pass-5 findings.
#pragma once

struct PubBad {
  // unannotated-publication: the DCAS escapes the node with no
  // DCD_PUBLISHES licence at all.
  void push_a(W& w) {
    PNode* n = allocate_node();
    store_init(n->left, l);
    store_init(n->right, r);
    store_init(n->value, v);
    Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n));
  }

  // unpublished-field: `value` is neither written before the DCAS nor
  // vouched by the licence — a reader can acquire the node with the
  // field uninitialised. post-publication-plain-write: the late write
  // races every such reader.
  void push_b(W& w) {
    PNode* n = allocate_node();
    store_init(n->left, l);
    store_init(n->right, r);
    // DCD_PUBLISHES(dcas.any, left+right)
    Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n));
    n->value = v;
  }

  // publishes-mismatch: the licence names an escape point that is in
  // neither the sync roster nor the declared pseudo-points.
  void push_c(W& w) {
    PNode* n = allocate_node();
    store_init(n->left, l);
    store_init(n->right, r);
    store_init(n->value, v);
    // DCD_PUBLISHES(bogus.point, left+right+value)
    Dcas::cas(w.a, o1, ptr(n));
  }
};
