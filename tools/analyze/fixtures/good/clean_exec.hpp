// Executor-shaped exemplar: notify-form sync points (the qualified
// constant IS the claim — no DCD_SYNC needed), a Dekker eventcount
// park/wake pair proven as a fence-kind hb edge, and a shutdown latch
// proven as a sync-kind edge. Pins the analyzer's handling of the
// src/exec idioms on a corpus input independent of the real tree.
#pragma once

#include <atomic>

struct Pool {
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};

  void shutdown() {
    // DCD_HB(fx.stop.latch, role=release)
    stop_.store(true, std::memory_order_release);
    wake_all();
  }

  bool stopping() const {
    // DCD_HB(fx.stop.latch, role=acquire)
    return stop_.load(std::memory_order_acquire);
  }

  void inject(dcas::ChaosController* c) {
    push_inbox();
    c->notify(sync_point::kExecInject);
    wake_one();
  }

  // Producer half of the Dekker handshake: publish the push, fence, then
  // read the sleeper count.
  void wake_one() {
    // DCD_HB(fx.park.dekker, role=fence-acquire)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) != 0) notify_worker();
  }

  // Consumer half: advertise, fence, re-sweep; park only when the
  // re-sweep stays dry.
  void park(dcas::ChaosController* c) {
    parked_.fetch_add(1, std::memory_order_relaxed);
    // DCD_HB(fx.park.dekker, role=fence-release)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (resweep()) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    c->notify(sync_point::kExecPark);
    block_until_woken();
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  void steal(dcas::ChaosController* c) {
    c->notify(sync_point::kExecSteal);
    take_from_victim();
  }
};
