// Clean pass-7 shape: all rostered fields written (or vouched) before
// the publishing DCAS, licence point in the roster, no write after.
#pragma once

struct PubClean {
  void push(W& w) {
    for (;;) {
      PNode* n = allocate_node();
      store_init(n->left, l);
      store_init(n->right, r);
      init_value(n);  // vouched below: the helper writes `value`
      // DCD_PUBLISHES(dcas.any, left+right+value)
      if (Dcas::dcas(w.a, w.b, o1, o2, ptr(n), ptr(n))) return;
      backoff.pause();
    }
  }
};
