// Known-good shared-plain fixture: every plain access to the rostered
// shared field happens either in a licensed owner function or in a
// function that shows the claimed happens-before token.
#pragma once

struct Box {
  std::atomic<bool> lock{false};
  int a = 0;
};

struct GoodUser {
  int owner_get(Box& x) { return x.a; }  // licensed owner function

  void locked_put(Box& x) {
    while (x.lock.exchange(true, std::memory_order_acquire)) {
    }
    x.a = 1;  // licensed by the lock token
    x.lock.store(false, std::memory_order_release);
  }
};
