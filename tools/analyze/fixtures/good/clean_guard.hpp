// Known-good guard fixture: every pool-node deref is discharged by one
// of the three licences pass 5 accepts — a dominating Guard scope, an
// LFRC acquisition, or a declared caller contract. The
// check_fixtures.py runner asserts this file analyzes clean.
#pragma once

struct GoodDeque {
  void walk() {
    reclaim::EbrDomain::Guard guard(dom_);
    Node* n = head();
    use(n->value);
    fetch();  // rostered callee, covered by the guard above
  }

  // DCD_GUARD_EXEMPT(single-threaded teardown; no concurrent frees)
  ~GoodDeque() {
    Node* n = head();
    use(n->value);
  }

  // DCD_REQUIRES_GUARD(caller pins the domain for the returned pointer)
  Node* fetch() {
    Node* n = head();
    use(n->value);
    return n;  // escape licensed by the caller contract
  }

  Node* acquire() {
    Node* t = R::load(top_);  // LFRC acquisition: carries its own unit
    use(t->value);
    return t;
  }
};
