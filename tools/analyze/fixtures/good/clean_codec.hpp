// Clean pass-8 shape: every bit expression lives inside a rostered
// helper span; call sites route word values through the helpers only.
// This file is also the fixture config's layout pin (kPayloadShift = 3).
#pragma once

inline constexpr std::uint64_t kPayloadShift = 3;
inline constexpr std::uint64_t kDeletedBit = 1ull << 1;

// Rostered helpers: the licensed home of the bit arithmetic.
constexpr std::uint64_t encode_payload(std::uint64_t p) noexcept {
  return p << kPayloadShift;
}
constexpr std::uint64_t decode_payload(std::uint64_t w) noexcept {
  return w >> kPayloadShift;
}
constexpr bool is_deleted(std::uint64_t w) noexcept {
  return (w & kDeletedBit) != 0;
}

struct CodecClean {
  bool probe(W& w) {
    const std::uint64_t v = Dcas::load(w.a);
    if (is_deleted(v)) return true;
    store_init(w.b, encode_payload(p));
    return false;
  }
};
