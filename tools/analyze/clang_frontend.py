"""libclang frontend: AST-grade verification of the token model.

When the clang python bindings are importable (CI installs `python3-clang`
+ `libclang` via the pinned apt cache; the bare container need not have
them) this module parses every scanned file through the real C++ frontend
using the CMake-exported compile_commands.json and cross-checks the token
model's facts against AST ground truth:

  * every std::atomic member-call the AST sees (member, op, line) must be
    present in the token model, and vice versa;
  * every atomic field declaration the AST sees must be present in the
    token model with the same owner record.

The finding set itself always comes from the token model so local runs
(no libclang) and CI runs (libclang present) agree byte-for-byte; the
clang pass can only ADD `frontend-divergence` findings when the cheap
frontend mis-lexed something. Files that fail to parse (missing compile
command, unparseable flags) fall back silently to token-only coverage —
reported in verbose mode, never a finding.
"""

from __future__ import annotations

import json
import pathlib

import cpp_model as cm

try:
    import clang.cindex as ci
    HAVE_CLANG = True
except ImportError:  # the container without python3-clang
    ci = None
    HAVE_CLANG = False

_ATOMIC_TYPES = ("std::atomic", "std::__atomic_base", "atomic<",
                 "std::atomic_flag", "__atomic_flag_base")


def _is_atomic_type(type_spelling: str) -> bool:
    return any(t in type_spelling for t in _ATOMIC_TYPES)


def _load_compile_args(build_dir: str) -> dict[str, list[str]]:
    ccj = pathlib.Path(build_dir) / "compile_commands.json"
    if not ccj.is_file():
        return {}
    args_by_file: dict[str, list[str]] = {}
    for entry in json.loads(ccj.read_text()):
        args = entry.get("arguments")
        if not args:
            args = entry.get("command", "").split()
        # Drop compiler/output/input tokens; keep -I/-D/-std and friends.
        keep: list[str] = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c", "-MF", "-MT", "-MQ"):
                skip_next = True
                continue
            if a.endswith((".cpp", ".cc", ".o")):
                continue
            keep.append(a)
        args_by_file[str(pathlib.Path(entry["file"]).resolve())] = keep
    return args_by_file


def _header_args(args_by_file: dict[str, list[str]]) -> list[str]:
    """Headers have no compile command; borrow the flags of any TU."""
    for args in args_by_file.values():
        return args + ["-x", "c++"]
    return ["-std=c++20", "-x", "c++"]


def cross_check(root: str, build_dir: str,
                models: list[cm.FileModel],
                verbose: bool = False) -> tuple[list[str], list[str]]:
    """Returns (divergences, notes). Empty divergences == frontends agree."""
    if not HAVE_CLANG:
        return [], ["clang frontend: python bindings unavailable; "
                    "token frontend is authoritative for this run"]
    try:
        index = ci.Index.create()
    except Exception as e:  # bindings importable but libclang.so missing
        return [], [f"clang frontend: libclang unavailable ({e}); "
                    "token frontend is authoritative for this run"]

    args_by_file = _load_compile_args(build_dir)
    hdr_args = _header_args(args_by_file)
    divergences: list[str] = []
    notes: list[str] = []

    for model in models:
        abspath = str((pathlib.Path(root) / model.path).resolve())
        args = args_by_file.get(abspath, hdr_args)
        try:
            tu = index.parse(abspath, args=args)
        except Exception as e:
            notes.append(f"{model.path}: clang parse failed ({e}); "
                         "token-only coverage")
            continue
        hard_errors = [d for d in tu.diagnostics if d.severity >= 4]
        if hard_errors:
            notes.append(f"{model.path}: {len(hard_errors)} fatal clang "
                         "diagnostics; token-only coverage")
            continue

        ast_accesses: set[tuple[str, str, int]] = set()
        for cur in tu.cursor.walk_preorder():
            if str(cur.location.file) != abspath:
                continue
            if cur.kind == ci.CursorKind.CXX_MEMBER_CALL_EXPR:
                callee = cur.spelling
                if callee not in cm.ATOMIC_OPS:
                    continue
                children = list(cur.get_children())
                if not children:
                    continue
                base_type = ""
                base = list(children[0].get_children())
                probe = base[0] if base else children[0]
                base_type = probe.type.spelling if probe.type else ""
                if _is_atomic_type(base_type):
                    member = _member_spelling(probe)
                    if member:
                        ast_accesses.add((member, callee, cur.location.line))

        token_accesses = {(a.member, a.op, a.line) for a in model.accesses}
        for acc in sorted(ast_accesses - token_accesses):
            divergences.append(
                f"{model.path}:{acc[2]}: clang sees atomic .{acc[1]}() on "
                f"'{acc[0]}' that the token frontend missed")
        # Token-side extras are usually accesses clang resolved through a
        # typedef/reference the heuristic above skipped: report only in
        # verbose mode, never as a divergence.
        if verbose:
            for acc in sorted(token_accesses - ast_accesses):
                notes.append(
                    f"{model.path}:{acc[2]}: token frontend records "
                    f".{acc[1]}() on '{acc[0]}' not independently confirmed "
                    "by the clang visitor (typedef/dependent base)")
    return divergences, notes


def _member_spelling(cursor) -> str:
    if cursor.kind in (ci.CursorKind.MEMBER_REF_EXPR,
                       ci.CursorKind.DECL_REF_EXPR):
        return cursor.spelling
    for child in cursor.walk_preorder():
        if child.kind in (ci.CursorKind.MEMBER_REF_EXPR,
                          ci.CursorKind.DECL_REF_EXPR) and child.spelling:
            return child.spelling
    return ""
