// Command-line front end for the DCAS model checker.
//
//   mc_cli list                       — builtin scenario roster
//   mc_cli explore <name> [--full] [--no-minimize] [--out FILE]
//                                     — explore one scenario; on violation
//                                       write a replay file (default
//                                       <name>.repro)
//   mc_cli replay <file> [--chaos]    — re-run a replay file through the
//                                       scheduled runtime or on real
//                                       threads under ChaosDcas
//   mc_cli suite                      — the CI job: explore every builtin,
//                                       print state/transition counts
//
// Exit code 0 = clean / expectations held, 1 = violation / mismatch,
// 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dcd/dcas/chaos.hpp"
#include "dcd/mc/explorer.hpp"
#include "dcd/mc/replay.hpp"
#include "dcd/mc/scenario.hpp"

namespace {

using namespace dcd;

void print_stats(const mc::ExploreStats& st) {
  std::printf("  executions=%llu pruned=%llu transitions=%llu "
              "states=%llu max_depth=%llu\n",
              static_cast<unsigned long long>(st.executions),
              static_cast<unsigned long long>(st.pruned_executions),
              static_cast<unsigned long long>(st.transitions),
              static_cast<unsigned long long>(st.distinct_states),
              static_cast<unsigned long long>(st.max_depth));
  for (std::size_t s = 0; s < dcas::kDcasShapeCount; ++s) {
    if (st.shape_steps[s] == 0) continue;
    std::printf("  shape %-22s steps=%llu executions=%llu\n",
                dcas::shape_name(static_cast<dcas::DcasShape>(s)),
                static_cast<unsigned long long>(st.shape_steps[s]),
                static_cast<unsigned long long>(st.shape_executions[s]));
  }
  if (st.two_deleted_states > 0) {
    std::printf("  two-deleted states=%llu\n",
                static_cast<unsigned long long>(st.two_deleted_states));
  }
}

int cmd_list() {
  for (const mc::Scenario& sc : mc::builtin_scenarios()) {
    std::printf("%s\n  %s\n", sc.name.c_str(), sc.describe().c_str());
  }
  return 0;
}

int explore_one(const mc::Scenario& sc, const mc::ExplorerOptions& opt,
                const std::string& out_path) {
  const mc::ExploreResult res = mc::explore(sc, opt);
  std::printf("%s: %s (%s)\n", sc.name.c_str(),
              res.ok ? "ok" : "VIOLATION",
              res.complete ? "complete" : "incomplete");
  print_stats(res.stats);
  std::printf("  distinct outcomes=%zu\n", res.distinct_outcomes.size());
  if (!res.message.empty()) std::printf("  %s\n", res.message.c_str());
  if (res.ok) return 0;

  const mc::ReplayFile file = mc::make_counterexample(sc, res.violation);
  const std::string path = out_path.empty() ? sc.name + ".repro" : out_path;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  out << serialize_replay(file);
  std::printf("  counterexample written to %s "
              "(schedule of %zu grants, minimized from %zu)\n",
              path.c_str(), res.violation.minimized_schedule.size(),
              res.violation.schedule.size());
  return 1;
}

int cmd_explore(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "explore: scenario name required\n");
    return 2;
  }
  mc::Scenario sc;
  if (!mc::find_builtin(args[0], sc)) {
    std::fprintf(stderr, "unknown scenario '%s' (try 'list')\n",
                 args[0].c_str());
    return 2;
  }
  mc::ExplorerOptions opt;
  std::string out_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--full") {
      opt.mode = mc::SearchMode::kFull;
    } else if (args[i] == "--no-minimize") {
      opt.minimize = false;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--mutation" && i + 1 < args.size()) {
      if (!mc::mutation_from_name(args[++i].c_str(), sc.mutation)) {
        std::fprintf(stderr, "unknown mutation '%s'\n", args[i].c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "explore: bad flag '%s'\n", args[i].c_str());
      return 2;
    }
  }
  return explore_one(sc, opt, out_path);
}

int cmd_replay(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "replay: file required\n");
    return 2;
  }
  bool chaos = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--chaos") {
      chaos = true;
    } else {
      std::fprintf(stderr, "replay: bad flag '%s'\n", args[i].c_str());
      return 2;
    }
  }
  mc::ReplayFile file;
  std::string error;
  if (!mc::load_replay_file(args[0], file, error)) {
    std::fprintf(stderr, "replay: %s\n", error.c_str());
    return 2;
  }
  const mc::ReplayOutcome out =
      chaos ? mc::run_replay_chaos(file) : mc::run_replay(file);
  std::printf("%s [%s]: %s\n", args[0].c_str(),
              chaos ? "chaos" : "scheduled", out.message.c_str());
  return out.ok ? 0 : 1;
}

int cmd_suite() {
  int rc = 0;
  for (const mc::Scenario& sc : mc::builtin_scenarios()) {
    const int one = explore_one(sc, mc::ExplorerOptions{}, "");
    if (one != 0) rc = one;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mc_cli list | explore <name> [--full] "
                 "[--no-minimize] [--out FILE] | replay <file> [--chaos] | "
                 "suite\n");
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "list") return cmd_list();
  if (cmd == "explore") return cmd_explore(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "suite") return cmd_suite();
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
