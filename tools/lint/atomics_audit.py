#!/usr/bin/env python3
"""Concurrency-hygiene auditor for the dcd source tree.

Walks src/ and flags patterns that the repo's correctness argument cannot
tolerate appearing silently (see tools/lint/README.md and
docs/STATIC_ANALYSIS.md for the rationale behind each rule):

  implicit-seq-cst        an atomic .load()/.store()/RMW call without an
                          explicit std::memory_order argument
  raw-new-delete          a new/delete expression inside reclaim-managed
                          paths (src/deque/, src/reclaim/)
  unjustified-nosanitize  DCD_NO_SANITIZE_THREAD / DCD_NO_SANITIZE_ADDRESS
                          without an adjacent justification comment
  tag-bits-outside-word   reserved-bit constants (kDescriptorBit etc.)
                          manipulated outside dcd/dcas/word.hpp
  unknown-sync-point      a sync-point name (arm_park("...") in C++, or
                          expect-shape:/chaos-park: in tests/replays/*.repro)
                          that is not in chaos.hpp's sync_point roster — a
                          typo'd point silently never fires, so the rule
                          also walks tests/ and tools/

Findings can be suppressed via atomics_audit.suppressions (same directory);
every suppression must carry a one-line justification after `#`.

Exit codes: 0 clean, 1 findings, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import io
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "pylib"))

import suppressions as sup  # noqa: E402  (path set up above)

# --- configuration ---------------------------------------------------------

SOURCE_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}

# Directories (relative to --root) the audit walks.
AUDIT_DIRS = ["src"]

# Atomic member calls that default to seq_cst when no order is passed.
ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set",
)

# Paths whose node lifetimes are owned by the reclamation layer; a raw
# new/delete there bypasses EBR grace periods / pool type-stability.
RECLAIM_MANAGED_DIRS = ("src/deque/", "src/reclaim/")

NOSANITIZE_MACROS = ("DCD_NO_SANITIZE_THREAD", "DCD_NO_SANITIZE_ADDRESS")
# A justification comment must appear on the macro's line or within this
# many lines above it.
NOSANITIZE_COMMENT_WINDOW = 5

TAG_BIT_TOKENS = ("kDescriptorBit", "kDeletedBit", "kSpecialBit",
                  "kPayloadShift")
# The single file allowed to do reserved-bit arithmetic. Everything else —
# including the compile-time audit layer — needs a justified suppression.
TAG_BIT_HOME = "src/dcas/include/dcd/dcas/word.hpp"

RULE_IDS = (
    "implicit-seq-cst",
    "raw-new-delete",
    "unjustified-nosanitize",
    "tag-bits-outside-word",
    "unknown-sync-point",
)

# The sync-point registry: the roster of valid names is parsed out of the
# `namespace sync_point { ... }` block here, so the linter never drifts
# from the source of truth.
SYNC_POINT_REGISTRY = "src/dcas/include/dcd/dcas/chaos.hpp"
SYNC_POINT_DECL_RE = re.compile(
    r'inline\s+constexpr\s+const\s+char\*\s+k\w+\s*=\s*"([a-z_.]+)"')

# Where sync-point *references* live: arm_park("...") calls in any C++
# source under these directories, and the replay corpus's directive lines.
SYNC_POINT_CODE_DIRS = ("src", "tests", "tools")
ARM_PARK_RE = re.compile(r'\barm_park\s*\(\s*"([^"]*)"')
REPLAY_CORPUS_DIR = "tests/replays"
REPLAY_POINT_RE = re.compile(
    r"^\s*(expect-shape|chaos-park)\s*:\s*(\S+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str
    line_text: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    {self.line_text.strip()}")


# Shared with tools/analyze (tools/pylib/suppressions.py). The lint keeps
# its stricter semantics: no path/rule wildcards, substrings match the
# finding's source line. `*` as the substring still suppresses the rule
# for the whole file (for files whose very purpose is the flagged
# pattern, e.g. the compile-time audit layer).
Suppression = sup.Suppression


# --- source masking --------------------------------------------------------

def mask_comments_and_strings(text: str) -> str:
    """Replace comment and string-literal contents with spaces.

    Preserves length and newlines so offsets/line numbers stay valid.
    Handles //, /* */, "..." and '...' with escapes; raw strings are rare
    in this codebase and treated as plain strings (good enough: their
    contents are masked until the closing quote).
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, DQ, SQ = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = DQ
                i += 1
                continue
            if c == "'":
                state = SQ
                i += 1
                continue
        elif state == LINE:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in (DQ, SQ):
            quote = '"' if state == DQ else "'"
            if c == "\\" and nxt:
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def line_text_at(lines: list[str], lineno: int) -> str:
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def extract_call_args(masked: str, open_paren: int) -> str | None:
    """Return the text between balanced parens starting at open_paren."""
    depth = 0
    for j in range(open_paren, len(masked)):
        c = masked[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return masked[open_paren + 1:j]
    return None  # unbalanced (truncated file); caller skips


# --- rules -----------------------------------------------------------------

ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*(\()")


def check_implicit_seq_cst(path: str, text: str, masked: str,
                           lines: list[str]) -> list[Finding]:
    findings = []
    for m in ATOMIC_CALL_RE.finditer(masked):
        op = m.group(1)
        args = extract_call_args(masked, m.start(2))
        if args is None:
            continue
        if "memory_order" in args:
            continue
        lineno = line_of(masked, m.start())
        findings.append(Finding(
            path, lineno, "implicit-seq-cst",
            f".{op}() without an explicit std::memory_order "
            "(implicit seq_cst — state the order you need and why)",
            line_text_at(lines, lineno)))
    return findings


NEW_DELETE_RE = re.compile(r"\b(new|delete)\b")


def check_raw_new_delete(path: str, text: str, masked: str,
                         lines: list[str]) -> list[Finding]:
    if not any(d in path for d in
               (p.rstrip("/") + "/" for p in RECLAIM_MANAGED_DIRS)):
        return []
    findings = []
    for m in NEW_DELETE_RE.finditer(masked):
        kw = m.group(1)
        before = masked[:m.start()].rstrip()
        # `= delete;` / `= delete ;` — deleted special member, not the
        # expression.
        if kw == "delete" and before.endswith("="):
            continue
        lineno = line_of(masked, m.start())
        # Preprocessor lines (e.g. `#include <new>`) are not expressions.
        if line_text_at(lines, lineno).lstrip().startswith("#"):
            continue
        findings.append(Finding(
            path, lineno, "raw-new-delete",
            f"`{kw}` inside a reclaim-managed path — node lifetimes here "
            "belong to NodePool/EBR (grace periods, type-stability)",
            line_text_at(lines, lineno)))
    return findings


def check_unjustified_nosanitize(path: str, text: str, masked: str,
                                 lines: list[str]) -> list[Finding]:
    findings = []
    for i, line in enumerate(lines, start=1):
        if not any(macro in line for macro in NOSANITIZE_MACROS):
            continue
        stripped = line.lstrip()
        # The definition site (sanitizer.hpp) is not a use.
        if stripped.startswith(("#define", "#undef", "#if", "#ifdef",
                                "#ifndef", "#elif")):
            continue
        window = lines[max(0, i - 1 - NOSANITIZE_COMMENT_WINDOW):i]
        if any("//" in w or "/*" in w or "*/" in w for w in window):
            continue
        macro = next(m for m in NOSANITIZE_MACROS if m in line)
        findings.append(Finding(
            path, i, "unjustified-nosanitize",
            f"{macro} without an adjacent justification comment (within "
            f"{NOSANITIZE_COMMENT_WINDOW} lines) — say which benign race "
            "this blesses and why it is benign",
            line))
    return findings


TAG_BIT_RE = re.compile(r"\b(" + "|".join(TAG_BIT_TOKENS) + r")\b")


def check_tag_bits_outside_word(path: str, text: str, masked: str,
                                lines: list[str]) -> list[Finding]:
    if path == TAG_BIT_HOME:
        return []
    findings = []
    for m in TAG_BIT_RE.finditer(masked):
        lineno = line_of(masked, m.start())
        findings.append(Finding(
            path, lineno, "tag-bits-outside-word",
            f"reserved-bit constant {m.group(1)} used outside word.hpp — "
            "encode/decode through word.hpp helpers so the bit layout has "
            "one owner",
            line_text_at(lines, lineno)))
    return findings


def parse_sync_point_roster(registry_text: str) -> set[str]:
    """Extract the valid sync-point names from chaos.hpp's declarations."""
    return set(SYNC_POINT_DECL_RE.findall(registry_text))


def audit_sync_points_cpp(path: str, text: str,
                          roster: set[str]) -> list[Finding]:
    """Flag arm_park("...") string literals naming unknown sync points.

    Works on the *unmasked* text (the names live inside string literals),
    so references via the sync_point::k* constants are untouched — those
    are checked by the compiler already.
    """
    lines = text.splitlines()
    findings = []
    for m in ARM_PARK_RE.finditer(text):
        point = m.group(1)
        if point in roster:
            continue
        lineno = line_of(text, m.start())
        findings.append(Finding(
            path, lineno, "unknown-sync-point",
            f'arm_park("{point}") names a sync point missing from '
            f"{SYNC_POINT_REGISTRY}'s roster — the rule would never fire "
            f"(known: {', '.join(sorted(roster))})",
            line_text_at(lines, lineno)))
    return findings


def audit_sync_points_replay(path: str, text: str,
                             roster: set[str]) -> list[Finding]:
    """Flag expect-shape:/chaos-park: directives naming unknown points."""
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = REPLAY_POINT_RE.match(line)
        if m is None:
            continue
        directive, point = m.group(1), m.group(2)
        if point in roster:
            continue
        findings.append(Finding(
            path, lineno, "unknown-sync-point",
            f"{directive}: names '{point}', which is missing from "
            f"{SYNC_POINT_REGISTRY}'s roster — the expectation/park could "
            "never match",
            line))
    return findings


CHECKS = (
    check_implicit_seq_cst,
    check_raw_new_delete,
    check_unjustified_nosanitize,
    check_tag_bits_outside_word,
)


def audit_text(path: str, text: str) -> list[Finding]:
    masked = mask_comments_and_strings(text)
    lines = text.splitlines()
    findings: list[Finding] = []
    for check in CHECKS:
        findings.extend(check(path, text, masked, lines))
    return findings


# --- suppressions ----------------------------------------------------------

def config_error(message: str):
    print(message, file=sys.stderr)
    raise SystemExit(2)


def parse_suppressions(text: str, origin: str) -> list[Suppression]:
    """Format, one per line:  <path-suffix> : <rule> : <substring>  # why

    Blank lines and lines starting with # are comments. A suppression
    without a justification is a configuration error (exit 2).
    """
    return sup.parse(text, origin, RULE_IDS, on_error=config_error)


def apply_suppressions(findings: list[Finding],
                       sups: list[Suppression]) -> list[Finding]:
    return sup.apply(findings, sups,
                     lambda f: (f.path, f.rule, (f.line_text,)))


# --- driver ----------------------------------------------------------------

def collect_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = []
    for d in AUDIT_DIRS:
        base = root / d
        if not base.is_dir():
            config_error(f"audit directory missing: {base}")
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in SOURCE_EXTENSIONS and p.is_file())
    return files


def collect_sync_point_files(
        root: pathlib.Path) -> tuple[list[pathlib.Path], list[pathlib.Path]]:
    """C++ sources that may call arm_park, and the replay corpus files."""
    cpp = []
    for d in SYNC_POINT_CODE_DIRS:
        base = root / d
        if base.is_dir():
            cpp.extend(p for p in sorted(base.rglob("*"))
                       if p.suffix in SOURCE_EXTENSIONS and p.is_file())
    corpus_dir = root / REPLAY_CORPUS_DIR
    corpus = (sorted(corpus_dir.glob("*.repro"))
              if corpus_dir.is_dir() else [])
    return cpp, corpus


def run_audit(root: pathlib.Path, suppression_path: pathlib.Path,
              verbose: bool, strict: bool = False) -> int:
    sups: list[Suppression] = []
    if suppression_path.is_file():
        sups = parse_suppressions(suppression_path.read_text(),
                                  str(suppression_path))
    findings: list[Finding] = []
    files = collect_files(root)
    for p in files:
        rel = p.relative_to(root).as_posix()
        findings.extend(audit_text(rel, p.read_text()))

    registry = root / SYNC_POINT_REGISTRY
    if not registry.is_file():
        config_error(f"sync-point registry missing: {registry}")
    roster = parse_sync_point_roster(registry.read_text())
    if not roster:
        config_error(f"no sync-point declarations found in {registry} "
                     "(did the declaration style change?)")
    cpp_files, corpus_files = collect_sync_point_files(root)
    for p in cpp_files:
        rel = p.relative_to(root).as_posix()
        findings.extend(audit_sync_points_cpp(rel, p.read_text(), roster))
    for p in corpus_files:
        rel = p.relative_to(root).as_posix()
        findings.extend(audit_sync_points_replay(rel, p.read_text(), roster))
    files = sorted(set(files) | set(cpp_files) | set(corpus_files))
    total = len(findings)
    findings = apply_suppressions(findings, sups)
    for f in findings:
        print(f.render())
    unused = [s for s in sups if not s.used]
    for s in unused:
        severity = "error" if strict else "warning"
        print(f"{severity}: unused suppression "
              f"({suppression_path.name}:{s.source_line}): "
              f"{s.path_suffix} : {s.rule} : {s.substring}",
              file=sys.stderr)
    if verbose or findings:
        print(f"atomics_audit: {len(files)} files, {total} raw findings, "
              f"{total - len(findings)} suppressed, "
              f"{len(findings)} reported", file=sys.stderr)
    if findings:
        return 1
    return 1 if (strict and unused) else 0


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (path, source, expected rule ids)
    ("src/deque/include/bad_atomic.hpp",
     "void f(std::atomic<int>& a) {\n"
     "  a.load();\n"
     "  a.store(1);\n"
     "  a.fetch_add(2, std::memory_order_relaxed);\n"
     "}\n",
     ["implicit-seq-cst", "implicit-seq-cst"]),
    ("src/deque/include/multiline.hpp",
     "bool g(std::atomic<long>& a, long& e) {\n"
     "  return a.compare_exchange_strong(\n"
     "      e, 42,\n"
     "      std::memory_order_acq_rel);\n"
     "}\n"
     "long h(std::atomic<long>& a) {\n"
     "  return a.load(\n"
     "  );\n"
     "}\n",
     ["implicit-seq-cst"]),
    ("src/deque/include/masked.hpp",
     "// a.load() in a comment is fine\n"
     "/* so is a.store(1) here */\n"
     "const char* s = \"x.load()\";\n",
     []),
    ("src/reclaim/include/bad_new.hpp",
     "struct S { S(const S&) = delete; };\n"
     "void f() {\n"
     "  auto* n = new S();\n"
     "  delete n;\n"
     "}\n",
     ["raw-new-delete", "raw-new-delete"]),
    ("src/util/include/ok_new.hpp",
     "void f() { auto* p = new int; delete p; }\n",
     []),  # outside reclaim-managed dirs
    ("src/util/include/bad_nosan.hpp",
     "DCD_NO_SANITIZE_THREAD\n"
     "void naked() {}\n"
     "\n"
     "// LFRC re-init of recycled headers: stale readers discard the value\n"
     "// via a failed validation DCAS, so the overlap is benign.\n"
     "DCD_NO_SANITIZE_ADDRESS\n"
     "void justified() {}\n",
     ["unjustified-nosanitize"]),
    ("src/dcas/include/bad_bits.hpp",
     "bool weird(std::uint64_t w) {\n"
     "  return (w & kDeletedBit) != 0;\n"
     "}\n",
     ["tag-bits-outside-word"]),
    ("src/dcas/include/dcd/dcas/word.hpp",
     "inline constexpr std::uint64_t kDeletedBit = 1ull << 1;\n",
     []),  # the one allowed home
]


def self_test() -> int:
    failures = []
    for path, source, expected in SELF_TEST_CASES:
        got = [f.rule for f in audit_text(path, source)]
        if sorted(got) != sorted(expected):
            failures.append(f"{path}: expected {expected}, got {got}")

    # Suppressions: a justified entry suppresses, and is marked used.
    findings = audit_text("src/deque/include/bad_atomic.hpp",
                          "void f(std::atomic<int>& a) { a.load(); }\n")
    sups = parse_suppressions(
        "bad_atomic.hpp : implicit-seq-cst : a.load  # quiescent test hook\n",
        "<selftest>")
    left = apply_suppressions(findings, sups)
    if left or not sups[0].used:
        failures.append("justified suppression did not apply")

    # A suppression without a justification must be rejected (exit 2; the
    # diagnostic itself is swallowed — it is the expected outcome here).
    try:
        with contextlib.redirect_stderr(io.StringIO()):
            parse_suppressions("x.hpp : implicit-seq-cst : foo\n",
                               "<selftest>")
        failures.append("missing justification was accepted")
    except SystemExit as e:
        if e.code != 2:
            failures.append("config error must exit 2")

    # An unrelated suppression must not hide the finding.
    sups = parse_suppressions(
        "other.hpp : implicit-seq-cst : a.load  # wrong file\n", "<selftest>")
    if not apply_suppressions(findings, sups):
        failures.append("unrelated suppression hid a finding")

    # ... and under --strict its unused entry must turn the run into a
    # failure: a clean source tree plus a stale suppression exits 1.
    # (Exercised via the used-flag the strict path keys on.)
    if sups[0].used:
        failures.append("unrelated suppression marked used")

    # `*` suppresses the whole file for one rule — and only that rule.
    bits = audit_text("src/dcas/include/audit_layer.hpp",
                      "static_assert((x & kDeletedBit) == 0);\n"
                      "void f(std::atomic<int>& a) { a.load(); }\n")
    sups = parse_suppressions(
        "audit_layer.hpp : tag-bits-outside-word : *  # audit layer\n",
        "<selftest>")
    left = apply_suppressions(bits, sups)
    if [f.rule for f in left] != ["implicit-seq-cst"]:
        failures.append("wildcard suppression scope wrong")

    # unknown-sync-point: the roster parses out of registry-style text, a
    # typo'd arm_park is flagged, valid names and constant references pass.
    roster = parse_sync_point_roster(
        'inline constexpr const char* kDcasAny = "dcas.any";\n'
        'inline constexpr const char* kLogicalDelete = '
        '"pop.logical_delete";\n')
    if roster != {"dcas.any", "pop.logical_delete"}:
        failures.append(f"roster parse wrong: {roster}")
    got = [f.rule for f in audit_sync_points_cpp(
        "tests/chaos_list_test.cpp",
        'c.arm_park("pop.logical_delete", 1);\n'
        'c.arm_park("pop.logical_delte", 1);\n'  # typo: must be flagged
        "c.arm_park(dcd::dcas::sync_point::kDcasAny, 1);\n",
        roster)]
    if got != ["unknown-sync-point"]:
        failures.append(f"arm_park scan wrong: {got}")
    got = [f.rule for f in audit_sync_points_replay(
        "tests/replays/x.repro",
        "expect-shape: dcas.any >= 1\n"
        "chaos-park: pop.logical_delete 1\n"
        "expect-shape: delete.two_nul_splice >= 1\n"  # typo: flagged
        "chaos-park: pop.logicaldelete 2\n"           # typo: flagged
        "schedule: 0 1 0\n",
        roster)]
    if got != ["unknown-sync-point", "unknown-sync-point"]:
        failures.append(f"replay directive scan wrong: {got}")

    # The PR-4 hot-path points (single-word elimination CASes + the magazine
    # allocator's shared-list windows) go through the same roster: the parse
    # regex must pick them up from registry-style text, and a typo in either
    # family must be flagged while the real names pass.
    roster = parse_sync_point_roster(
        'inline constexpr const char* kElimOffer = "elim.offer";\n'
        'inline constexpr const char* kElimTake = "elim.take";\n'
        'inline constexpr const char* kMagazineRefill = "magazine.refill";\n'
        'inline constexpr const char* kMagazineFlush = "magazine.flush";\n')
    if roster != {"elim.offer", "elim.take",
                  "magazine.refill", "magazine.flush"}:
        failures.append(f"hot-path roster parse wrong: {roster}")
    got = [f.rule for f in audit_sync_points_cpp(
        "tests/chaos_dcas_test.cpp",
        'c.arm_park("elim.take", 1);\n'
        'c.arm_park("magazine.refill", 2);\n'
        'c.arm_park("elim.takes", 1);\n'       # typo: must be flagged
        'c.arm_park("magazine.fill", 1);\n',   # typo: must be flagged
        roster)]
    if got != ["unknown-sync-point", "unknown-sync-point"]:
        failures.append(f"hot-path arm_park scan wrong: {got}")
    got = [f.rule for f in audit_sync_points_replay(
        "tests/replays/elim.repro",
        "expect-shape: elim.take >= 1\n"
        "expect-shape: elim.clear >= 1\n"      # not in this roster: flagged
        "chaos-park: magazine.flush 1\n",
        roster)]
    if got != ["unknown-sync-point"]:
        failures.append(f"hot-path replay directive scan wrong: {got}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(SELF_TEST_CASES)} seeded cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repo root (default: two levels up from this file)")
    ap.add_argument("--suppressions", type=pathlib.Path, default=None,
                    help="suppression file (default: atomics_audit."
                         "suppressions next to this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation self test and exit")
    ap.add_argument("--strict", action="store_true",
                    help="treat unused suppression entries as errors "
                         "(exit 1) instead of warnings")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    sup = (args.suppressions if args.suppressions is not None else
           pathlib.Path(__file__).resolve().parent /
           "atomics_audit.suppressions")
    return run_audit(args.root.resolve(), sup, args.verbose, args.strict)


if __name__ == "__main__":
    sys.exit(main())
