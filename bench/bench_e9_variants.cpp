// E9 — design-variant ablations (DESIGN.md §8: footnote 4 and §1.1).
//
// Two variant comparisons the paper discusses but does not measure:
//
//  1. Deleted *bit* vs dummy *node* (footnote 4 / Figure 10): the dummy
//     variant frees a pointer-word bit at the price of one extra node
//     allocation per pop and an extra dereference whenever a sentinel word
//     is inspected. Rows: FIFO cycling and pop-heavy traffic, bit vs dummy.
//
//  2. Split end words vs Greenwald-style packed {L,R} word (§1.1): packing
//     both indices into one word makes every operation DCAS the same word,
//     which "prevents concurrent access to the two deque ends" — visible as
//     the packed deque losing its same-end/opposite-end distinction while
//     ArrayDeque keeps opposite ends independent (modulo the DCAS
//     emulation's own serialisation).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/baseline/packed_ends_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/deque/list_deque_dummy.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::fill;
using dcd::bench::print_topology_once;
using dcd::bench::report_telemetry;
using dcd::bench::reset_telemetry;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;

// --- bit vs dummy ----------------------------------------------------------

template <typename D>
void BM_FifoCycle(benchmark::State& state) {
  print_topology_once();
  D d(1 << 14);
  for (int i = 0; i < 16; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_left());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  report_telemetry(state);
}

template <typename D>
void BM_PopHeavy(benchmark::State& state) {
  D d(1 << 14);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(1);
    (void)d.push_right(2);
    benchmark::DoNotOptimize(d.pop_right());
    benchmark::DoNotOptimize(d.pop_right());
    benchmark::DoNotOptimize(d.pop_right());  // empty
  }
  state.SetItemsProcessed(state.iterations() * 5);
  report_telemetry(state);
}

using ListBitGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListDummyGlobal = ListDequeDummy<std::uint64_t, GlobalLockDcas>;
using ListBitMcas = ListDeque<std::uint64_t, McasDcas>;
using ListDummyMcas = ListDequeDummy<std::uint64_t, McasDcas>;

BENCHMARK_TEMPLATE(BM_FifoCycle, ListBitGlobal)
    ->Name("E9_Fifo/bit/global_lock");
BENCHMARK_TEMPLATE(BM_FifoCycle, ListDummyGlobal)
    ->Name("E9_Fifo/dummy/global_lock");
BENCHMARK_TEMPLATE(BM_FifoCycle, ListBitMcas)->Name("E9_Fifo/bit/mcas");
BENCHMARK_TEMPLATE(BM_FifoCycle, ListDummyMcas)->Name("E9_Fifo/dummy/mcas");
BENCHMARK_TEMPLATE(BM_PopHeavy, ListBitGlobal)
    ->Name("E9_PopHeavy/bit/global_lock");
BENCHMARK_TEMPLATE(BM_PopHeavy, ListDummyGlobal)
    ->Name("E9_PopHeavy/dummy/global_lock");

// --- split vs packed end words ----------------------------------------------

template <typename D, bool kOpposite>
void BM_PackedTwoEnds(benchmark::State& state) {
  static D* d = nullptr;
  if (state.thread_index() == 0) {
    d = new D(1 << 12);
    fill(*d, 512);
  }
  const bool right = kOpposite ? (state.thread_index() % 2 == 0) : true;
  for (auto _ : state) {
    if (right) {
      (void)d->push_right(7);
      benchmark::DoNotOptimize(d->pop_right());
    } else {
      (void)d->push_left(7);
      benchmark::DoNotOptimize(d->pop_left());
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    delete d;
    d = nullptr;
  }
}

using ArraySplit = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayPacked =
    dcd::baseline::PackedEndsDeque<std::uint64_t, GlobalLockDcas>;

BENCHMARK_TEMPLATE(BM_PackedTwoEnds, ArraySplit, false)
    ->Name("E9_Ends_SameEnd/split_words")
    ->Threads(2)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_PackedTwoEnds, ArraySplit, true)
    ->Name("E9_Ends_Opposite/split_words")
    ->Threads(2)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_PackedTwoEnds, ArrayPacked, false)
    ->Name("E9_Ends_SameEnd/packed_word")
    ->Threads(2)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_PackedTwoEnds, ArrayPacked, true)
    ->Name("E9_Ends_Opposite/packed_word")
    ->Threads(2)
    ->UseRealTime();

// Retry pressure is the cleaner signal on a single-core host: count failed
// DCASes per op when opposite ends run on split vs packed words.
template <typename D>
void BM_OppositeRetries(benchmark::State& state) {
  static D* d = nullptr;
  if (state.thread_index() == 0) {
    reset_telemetry();
    d = new D(1 << 12);
    fill(*d, 512);
  }
  const bool right = state.thread_index() % 2 == 0;
  for (auto _ : state) {
    if (right) {
      (void)d->push_right(7);
      benchmark::DoNotOptimize(d->pop_right());
    } else {
      (void)d->push_left(7);
      benchmark::DoNotOptimize(d->pop_left());
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    const auto c = dcd::dcas::Telemetry::snapshot();
    state.counters["dcas_failures"] =
        static_cast<double>(c.dcas_failures);
    state.counters["dcas_calls"] = static_cast<double>(c.dcas_calls);
    delete d;
    d = nullptr;
  }
}

BENCHMARK_TEMPLATE(BM_OppositeRetries, ArraySplit)
    ->Name("E9_OppositeRetries/split_words")
    ->Threads(2)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_OppositeRetries, ArrayPacked)
    ->Name("E9_OppositeRetries/packed_word")
    ->Threads(2)
    ->UseRealTime();

}  // namespace
