// E6 — the load-balancing application (§1).
//
// "Deques ... currently used in load balancing algorithms [4]" — the
// paper's motivating workload, and the home turf of its related-work
// comparator: Arora-Blumofe-Plaxton's restricted CAS-only deque. Each
// iteration runs a complete fork-join tree to exhaustion over W workers;
// owners pop/push their own right end, idle workers steal the victim's left
// end. Expected shape: ABP wins (its restricted semantics exist for exactly
// this workload); among the general deques the array beats the list
// (no allocation), and lock-emulated DCAS beats MCAS (descriptor tax).
//
// Worker count sweeps 2/3/4/8 (state.range(0)); workers are pinned
// best-effort and the per-acquisition latency — from "try to get a task"
// to "got one", the number a work-stealing executor's responsiveness
// hangs on — is sampled into lat_p50/p99/p999_ns.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stats.hpp"
#include "dcd/util/topology.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::LatencySampler;
using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

constexpr std::uint64_t kSeedTasks = 16;
constexpr std::uint64_t kDepth = 6;  // 16 * 2^6 = 1024 leaf tasks

std::uint64_t make_task(std::uint64_t depth, std::uint64_t weight) {
  return (depth << 32) | weight;
}

// Generic run over (pop_own, push_own, steal) closures; returns leaf count
// and merges each worker's task-acquisition latency into `lat`.
template <typename Deques, typename PopOwn, typename PushOwn, typename Steal>
std::uint64_t run_tree(Deques& deques, int workers, PopOwn pop_own,
                       PushOwn push_own, Steal steal,
                       dcd::util::LatencyHistogram& lat) {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::int64_t> outstanding{0};
  for (std::uint64_t i = 0; i < kSeedTasks; ++i) {
    outstanding.fetch_add(1);
    push_own(static_cast<int>(i % workers), make_task(kDepth, i + 1));
  }
  dcd::util::SpinBarrier barrier(workers);
  std::vector<dcd::util::LatencyHistogram> lats(
      static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      dcd::util::pin_current_thread(static_cast<std::size_t>(w));
      dcd::util::Xoshiro256 rng(w + 1);
      // Tasks are chunky relative to a clock read; sample densely.
      LatencySampler sampler(8);
      barrier.arrive_and_wait();
      std::uint64_t t0 = sampler.begin();
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::optional<std::uint64_t> task = pop_own(w);
        if (!task) task = steal(static_cast<int>(rng.below(workers)));
        if (!task) {
          std::this_thread::yield();
          continue;  // keep t0: the wait is part of acquisition latency
        }
        sampler.end(t0);
        const std::uint64_t depth = *task >> 32;
        if (depth == 0) {
          executed.fetch_add(1, std::memory_order_relaxed);
          outstanding.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          const std::uint64_t child =
              make_task(depth - 1, *task & 0xffffffffull);
          push_own(w, child);
          push_own(w, child);
        }
        t0 = sampler.begin();
      }
      lats[static_cast<std::size_t>(w)] = sampler.histogram();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& h : lats) lat.merge(h);
  (void)deques;
  return executed.load();
}

template <typename D>
void BM_StealTreeGeneral(benchmark::State& state) {
  print_topology_once();
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t leaves = 0;
  dcd::util::LatencyHistogram lat;
  for (auto _ : state) {
    std::vector<std::unique_ptr<D>> deques;
    for (int w = 0; w < workers; ++w) {
      deques.push_back(std::make_unique<D>(1 << 14));
    }
    leaves = run_tree(
        deques, workers, [&](int w) { return deques[w]->pop_right(); },
        [&](int w, std::uint64_t t) {
          while (deques[w]->push_right(t) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        },
        [&](int v) { return deques[v]->pop_left(); }, lat);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves));
  state.counters["leaf_tasks"] = static_cast<double>(leaves);
  dcd::bench::report_latency(state, lat);
}

void BM_StealTreeAbp(benchmark::State& state) {
  using D = dcd::baseline::AroraDeque<std::uint64_t>;
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t leaves = 0;
  dcd::util::LatencyHistogram lat;
  for (auto _ : state) {
    std::vector<std::unique_ptr<D>> deques;
    for (int w = 0; w < workers; ++w) {
      deques.push_back(std::make_unique<D>(1 << 14));
    }
    leaves = run_tree(
        deques, workers, [&](int w) { return deques[w]->pop_bottom(); },
        [&](int w, std::uint64_t t) {
          while (deques[w]->push_bottom(t) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        },
        [&](int v) { return deques[v]->steal(); }, lat);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves));
  state.counters["leaf_tasks"] = static_cast<double>(leaves);
  dcd::bench::report_latency(state, lat);
}

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;

// Worker-count sweep; the row name carries the count (".../4"). 3 stays in
// the sweep so the pre-sweep recordings' shape remains comparable.
#define E6_SWEEP(benchfn)                \
  benchfn->Arg(2)                        \
      ->Arg(3)                           \
      ->Arg(4)                           \
      ->Arg(8)                           \
      ->Unit(benchmark::kMillisecond)    \
      ->UseRealTime();

E6_SWEEP(BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayGlobal)
             ->Name("E6_StealTree/array_global_lock"))
E6_SWEEP(BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayStriped)
             ->Name("E6_StealTree/array_striped_lock"))
E6_SWEEP(BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayMcas)
             ->Name("E6_StealTree/array_mcas"))
E6_SWEEP(BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ListGlobal)
             ->Name("E6_StealTree/list_global_lock"))
E6_SWEEP(BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ListMcas)
             ->Name("E6_StealTree/list_mcas"))
E6_SWEEP(BENCHMARK(BM_StealTreeAbp)->Name("E6_StealTree/baseline_abp"))

#undef E6_SWEEP

}  // namespace
