// E6 — the load-balancing application (§1).
//
// "Deques ... currently used in load balancing algorithms [4]" — the
// paper's motivating workload, and the home turf of its related-work
// comparator: Arora-Blumofe-Plaxton's restricted CAS-only deque. Each
// iteration runs a complete fork-join tree to exhaustion over W workers;
// owners pop/push their own right end, idle workers steal the victim's left
// end. Expected shape: ABP wins (its restricted semantics exist for exactly
// this workload); among the general deques the array beats the list
// (no allocation), and lock-emulated DCAS beats MCAS (descriptor tax).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

constexpr int kWorkers = 3;
constexpr std::uint64_t kSeedTasks = 16;
constexpr std::uint64_t kDepth = 6;  // 16 * 2^6 = 1024 leaf tasks

std::uint64_t make_task(std::uint64_t depth, std::uint64_t weight) {
  return (depth << 32) | weight;
}

// Generic run over (pop_own, push_own, steal) closures; returns leaf count.
template <typename Deques, typename PopOwn, typename PushOwn, typename Steal>
std::uint64_t run_tree(Deques& deques, PopOwn pop_own, PushOwn push_own,
                       Steal steal) {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::int64_t> outstanding{0};
  for (std::uint64_t i = 0; i < kSeedTasks; ++i) {
    outstanding.fetch_add(1);
    push_own(static_cast<int>(i % kWorkers), make_task(kDepth, i + 1));
  }
  dcd::util::SpinBarrier barrier(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      dcd::util::Xoshiro256 rng(w + 1);
      barrier.arrive_and_wait();
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::optional<std::uint64_t> task = pop_own(w);
        if (!task) task = steal(static_cast<int>(rng.below(kWorkers)));
        if (!task) {
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t depth = *task >> 32;
        if (depth == 0) {
          executed.fetch_add(1, std::memory_order_relaxed);
          outstanding.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          const std::uint64_t child =
              make_task(depth - 1, *task & 0xffffffffull);
          push_own(w, child);
          push_own(w, child);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  (void)deques;
  return executed.load();
}

template <typename D>
void BM_StealTreeGeneral(benchmark::State& state) {
  print_topology_once();
  std::uint64_t leaves = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<D>> deques;
    for (int w = 0; w < kWorkers; ++w) {
      deques.push_back(std::make_unique<D>(1 << 14));
    }
    leaves = run_tree(
        deques, [&](int w) { return deques[w]->pop_right(); },
        [&](int w, std::uint64_t t) {
          while (deques[w]->push_right(t) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        },
        [&](int v) { return deques[v]->pop_left(); });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves));
  state.counters["leaf_tasks"] = static_cast<double>(leaves);
}

void BM_StealTreeAbp(benchmark::State& state) {
  using D = dcd::baseline::AroraDeque<std::uint64_t>;
  std::uint64_t leaves = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<D>> deques;
    for (int w = 0; w < kWorkers; ++w) {
      deques.push_back(std::make_unique<D>(1 << 14));
    }
    leaves = run_tree(
        deques, [&](int w) { return deques[w]->pop_bottom(); },
        [&](int w, std::uint64_t t) {
          while (deques[w]->push_bottom(t) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        },
        [&](int v) { return deques[v]->steal(); });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves));
  state.counters["leaf_tasks"] = static_cast<double>(leaves);
}

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;

BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayGlobal)
    ->Name("E6_StealTree/array_global_lock")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayStriped)
    ->Name("E6_StealTree/array_striped_lock")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ArrayMcas)
    ->Name("E6_StealTree/array_mcas")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ListGlobal)
    ->Name("E6_StealTree/list_global_lock")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_StealTreeGeneral, ListMcas)
    ->Name("E6_StealTree/list_mcas")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_StealTreeAbp)
    ->Name("E6_StealTree/baseline_abp")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
