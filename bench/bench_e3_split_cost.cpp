// E3 — the cost of the pop-splitting technique (§1.2).
//
// "The cost of this splitting technique is an extra DCAS per pop
//  operation. The benefit is that it allows non-blocking completion
//  without needing to synchronize on both of the deque's end pointers
//  with a DCAS."
//
// Single-threaded (so Telemetry counters are exact), we measure push+pop
// pairs and report dcas/op. Expected shape: the array deque spends 1 DCAS
// per op; the list deque spends 1 DCAS per push plus ~2 per pop (logical
// delete + the physical delete performed by the next same-side operation) —
// i.e. the "extra DCAS per pop" the paper predicts, visible directly in the
// dcas/op counter.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::print_topology_once;
using dcd::bench::report_telemetry;
using dcd::bench::reset_telemetry;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

// One iteration = one push_right + one pop_right (steady state around a
// small population so boundary cases are rare).
template <typename D>
void BM_PushPopPair(benchmark::State& state) {
  print_topology_once();
  D d(1 << 10);
  for (int i = 0; i < 16; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_right());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  report_telemetry(state);
}

// FIFO traffic (push right, pop left) exercises both sides' delete paths.
template <typename D>
void BM_FifoPair(benchmark::State& state) {
  D d(1 << 10);
  for (int i = 0; i < 16; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_left());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  report_telemetry(state);
}

#define E3(D, tag)                                              \
  BENCHMARK(BM_PushPopPair<D>)->Name("E3_LifoPair/" tag);       \
  BENCHMARK(BM_FifoPair<D>)->Name("E3_FifoPair/" tag);

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListStriped = ListDeque<std::uint64_t, StripedLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;

E3(ArrayGlobal, "array_global_lock")
E3(ListGlobal, "list_global_lock")
E3(ArrayStriped, "array_striped_lock")
E3(ListStriped, "list_striped_lock")
E3(ArrayMcas, "array_mcas")
E3(ListMcas, "list_mcas")

#undef E3

}  // namespace
