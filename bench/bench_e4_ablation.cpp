// E4 — the §3 optimisation ablation.
//
// "We note that the algorithm would still be correct if line 7, and/or
//  lines 17 and 18, were deleted. ... While both of these code fragments
//  may avoid overhead in some cases, there is also overhead associated
//  with including them. Experimentation would be required to determine
//  whether either or both of these code fragments should be included for a
//  specific application and system context."
//
// This is that experiment. The four option combinations run three
// workloads:
//   EmptyHeavy — pops against a (mostly) empty deque: line 7's recheck and
//                lines 17-18's early-empty detection should pay off here;
//   FullHeavy  — pushes against a (mostly) full deque: symmetric;
//   Steady     — push+pop pairs mid-deque: the options are pure overhead
//                (lines 17-18 force the expensive strong DCAS form, which
//                for the MCAS emulation means snapshot loops on failure).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/deque/array_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::print_topology_once;
using dcd::bench::report_telemetry;
using dcd::bench::reset_telemetry;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;

constexpr ArrayOptions kBoth{true, true};
constexpr ArrayOptions kNeither{false, false};
constexpr ArrayOptions kRecheckOnly{true, false};
constexpr ArrayOptions kViewOnly{false, true};

template <typename P, ArrayOptions O>
void BM_EmptyHeavy(benchmark::State& state) {
  print_topology_once();
  ArrayDeque<std::uint64_t, P, O> d(64);
  reset_telemetry();
  // 7 pops against empty for each push+pop that actually moves data.
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.pop_right());
    benchmark::DoNotOptimize(d.pop_left());
    benchmark::DoNotOptimize(d.pop_right());
    (void)d.push_right(5);
    benchmark::DoNotOptimize(d.pop_left());
  }
  state.SetItemsProcessed(state.iterations() * 5);
  report_telemetry(state);
}

template <typename P, ArrayOptions O>
void BM_FullHeavy(benchmark::State& state) {
  ArrayDeque<std::uint64_t, P, O> d(16);
  for (int i = 0; i < 16; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(9);
    (void)d.push_left(9);
    (void)d.push_right(9);
    benchmark::DoNotOptimize(d.pop_left());
    (void)d.push_left(9);
  }
  state.SetItemsProcessed(state.iterations() * 5);
  report_telemetry(state);
}

template <typename P, ArrayOptions O>
void BM_Steady(benchmark::State& state) {
  ArrayDeque<std::uint64_t, P, O> d(1 << 10);
  for (int i = 0; i < 64; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_left());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  report_telemetry(state);
}

// Contended steady-state: 2 threads share the right end; failed DCASes are
// where the failure_view option changes the retry path.
template <typename P, ArrayOptions O>
void BM_ContendedEnd(benchmark::State& state) {
  static ArrayDeque<std::uint64_t, P, O>* d = nullptr;
  if (state.thread_index() == 0) {
    d = new ArrayDeque<std::uint64_t, P, O>(1 << 10);
    for (int i = 0; i < 64; ++i) (void)d->push_right(i + 1);
  }
  for (auto _ : state) {
    (void)d->push_right(7);
    benchmark::DoNotOptimize(d->pop_right());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    delete d;
    d = nullptr;
  }
}

#define E4_ROW(P, O, ptag, otag)                                       \
  BENCHMARK_TEMPLATE(BM_EmptyHeavy, P, O)                              \
      ->Name("E4_EmptyHeavy/" ptag "/" otag);                          \
  BENCHMARK_TEMPLATE(BM_FullHeavy, P, O)                               \
      ->Name("E4_FullHeavy/" ptag "/" otag);                           \
  BENCHMARK_TEMPLATE(BM_Steady, P, O)->Name("E4_Steady/" ptag "/" otag); \
  BENCHMARK_TEMPLATE(BM_ContendedEnd, P, O)                            \
      ->Name("E4_Contended/" ptag "/" otag)                            \
      ->Threads(2)                                                     \
      ->UseRealTime();

E4_ROW(GlobalLockDcas, kBoth, "global_lock", "recheck+view")
E4_ROW(GlobalLockDcas, kRecheckOnly, "global_lock", "recheck_only")
E4_ROW(GlobalLockDcas, kViewOnly, "global_lock", "view_only")
E4_ROW(GlobalLockDcas, kNeither, "global_lock", "neither")
E4_ROW(McasDcas, kBoth, "mcas", "recheck+view")
E4_ROW(McasDcas, kRecheckOnly, "mcas", "recheck_only")
E4_ROW(McasDcas, kViewOnly, "mcas", "view_only")
E4_ROW(McasDcas, kNeither, "mcas", "neither")

#undef E4_ROW

}  // namespace
