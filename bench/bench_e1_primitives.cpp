// E1 — primitive cost ladder (§2's architectural assumption).
//
// "We assume ... that DCAS is a relatively expensive operation, that is,
//  has longer latency than traditional CAS, which in turn has longer
//  latency than either a read or a write. We assume this is true even when
//  operations are executed sequentially."
//
// Rows: uncontended read / write / CAS(success|fail) / hardware-adjacent
// DCAS (cmpxchg16b) / each software DCAS emulation (success|fail), plus
// 2- and 4-thread contended CAS and DCAS. The expected shape:
//   read < write < CAS < cmpxchg16b < lock-emulated DCAS < MCAS DCAS,
// confirming the paper's ordering with software DCAS being *much* more
// expensive than the hardware the paper hoped for.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.hpp"
#include "dcd/dcas/cmpxchg16b.hpp"
#include "dcd/dcas/policies.hpp"

namespace {

using namespace dcd::dcas;
using dcd::bench::print_topology_once;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

// Shared targets: static so ->Threads(n) variants contend on one site.
Word g_a(val(0));
Word g_b(val(0));
std::atomic<std::uint64_t> g_word{0};
AdjacentPair g_pair;

void BM_Read(benchmark::State& state) {
  print_topology_once();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_word.load(std::memory_order_acquire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Read);

void BM_Write(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    g_word.store(++x, std::memory_order_release);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Write);

void BM_CasSuccess(benchmark::State& state) {
  std::uint64_t expected = g_word.load();
  for (auto _ : state) {
    if (!g_word.compare_exchange_strong(expected, expected + 1)) {
      // single-threaded: refresh and continue
    } else {
      ++expected;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasSuccess);

void BM_CasFailure(benchmark::State& state) {
  g_word.store(7);
  for (auto _ : state) {
    std::uint64_t wrong = 0xdead;
    benchmark::DoNotOptimize(
        g_word.compare_exchange_strong(wrong, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasFailure);

void BM_CasContended(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t cur = g_word.load(std::memory_order_relaxed);
    while (!g_word.compare_exchange_weak(cur, cur + 1)) {
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasContended)->Threads(2)->Threads(4);

void BM_HwAdjacentDcas(benchmark::State& state) {
  std::uint64_t lo = 0, hi = 0;
  Cmpxchg16bDcas::read(g_pair, lo, hi);
  for (auto _ : state) {
    if (!Cmpxchg16bDcas::dcas(g_pair, lo, hi, lo + 1, hi + 1)) {
      Cmpxchg16bDcas::read(g_pair, lo, hi);
    } else {
      ++lo;
      ++hi;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HwAdjacentDcas);
BENCHMARK(BM_HwAdjacentDcas)->Threads(2)->Threads(4);

template <typename P>
void BM_DcasSuccess(benchmark::State& state) {
  std::uint64_t x = decode_payload(P::load(g_a));
  std::uint64_t y = decode_payload(P::load(g_b));
  for (auto _ : state) {
    if (P::dcas(g_a, g_b, val(x), val(y), val(x + 1), val(y + 1))) {
      ++x;
      ++y;
    } else {
      x = decode_payload(P::load(g_a));
      y = decode_payload(P::load(g_b));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DcasSuccess<GlobalLockDcas>);
BENCHMARK(BM_DcasSuccess<StripedLockDcas>);
BENCHMARK(BM_DcasSuccess<McasDcas>);
BENCHMARK(BM_DcasSuccess<GlobalLockDcas>)->Threads(2)->Threads(4);
BENCHMARK(BM_DcasSuccess<StripedLockDcas>)->Threads(2)->Threads(4);
BENCHMARK(BM_DcasSuccess<McasDcas>)->Threads(2)->Threads(4);

template <typename P>
void BM_DcasFailure(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(P::dcas(g_a, g_b, val(1ull << 40),
                                     val(1ull << 40), val(0), val(0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DcasFailure<GlobalLockDcas>);
BENCHMARK(BM_DcasFailure<StripedLockDcas>);
BENCHMARK(BM_DcasFailure<McasDcas>);

// Managed load through each policy (MCAS loads may help in-flight ops).
template <typename P>
void BM_ManagedLoad(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(P::load(g_a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ManagedLoad<GlobalLockDcas>);
BENCHMARK(BM_ManagedLoad<StripedLockDcas>);
BENCHMARK(BM_ManagedLoad<McasDcas>);

}  // namespace
