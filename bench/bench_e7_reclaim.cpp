// E7 — the GC substitution (§2 footnote 2, related work [12]/[24]).
//
// "We assume the availability of a storage allocation/collection mechanism
//  as in Lisp and the Java programming language. ... the problem of
//  implementing a non-blocking storage allocator is not addressed in this
//  paper but would need to be solved."
//
// We solved it with EBR + a pooled allocator; this experiment prices that
// decision: ListDeque over {EBR, leaky} reclamation, pool vs general-heap
// allocation microbenches, and the raw cost of the EBR machinery (guard
// pin/unpin, retire+collect). The Hat-Trick follow-up [24] argues bulk
// allocation matters — the pool-vs-malloc rows quantify why.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/lfrc.hpp"
#include "dcd/reclaim/node_pool.hpp"
#include "dcd/reclaim/tagged_pool.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::reclaim::EbrDomain;
using dcd::reclaim::EbrReclaim;
using dcd::reclaim::LeakyReclaim;
using dcd::reclaim::NodePool;

// FIFO cycling: every op allocates or retires a node, the reclamation-
// heaviest traffic pattern. Leaky variants need a pool that outlives the
// run, so they use a large pool and we cap iterations.
template <typename P, typename R>
void BM_ListFifoCycle(benchmark::State& state) {
  print_topology_once();
  // Pool size from the benchmark arg: EBR recycles through a modest pool;
  // the leaky variant burns one node per push, so it gets a large pool and
  // a fixed iteration budget below it.
  ListDeque<std::uint64_t, P, R> d(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < 16; ++i) (void)d.push_right(i + 1);
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_left());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["pool_live"] = static_cast<double>(d.pool().live());
}

constexpr std::int64_t kEbrPool = 1 << 14;
constexpr std::int64_t kLeakyPool = 1 << 19;
constexpr std::int64_t kLeakyIters = (1 << 18) - 64;

BENCHMARK_TEMPLATE(BM_ListFifoCycle, GlobalLockDcas, EbrReclaim)
    ->Name("E7_ListFifo/global_lock/ebr")
    ->Arg(kEbrPool);
BENCHMARK_TEMPLATE(BM_ListFifoCycle, GlobalLockDcas, LeakyReclaim)
    ->Name("E7_ListFifo/global_lock/leaky")
    ->Arg(kLeakyPool)
    ->Iterations(kLeakyIters);
BENCHMARK_TEMPLATE(BM_ListFifoCycle, McasDcas, EbrReclaim)
    ->Name("E7_ListFifo/mcas/ebr")
    ->Arg(kEbrPool);
BENCHMARK_TEMPLATE(BM_ListFifoCycle, McasDcas, LeakyReclaim)
    ->Name("E7_ListFifo/mcas/leaky")
    ->Arg(kLeakyPool)
    ->Iterations(kLeakyIters);

// Allocator comparison: pooled free list vs the general-purpose heap.
void BM_PoolAllocFree(benchmark::State& state) {
  NodePool pool(192, 1 << 10);
  for (auto _ : state) {
    void* p = pool.allocate();
    benchmark::DoNotOptimize(p);
    pool.deallocate(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocFree)->Name("E7_Alloc/pool");

void BM_HeapAllocFree(benchmark::State& state) {
  for (auto _ : state) {
    void* p = ::operator new(192);
    benchmark::DoNotOptimize(p);
    ::operator delete(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapAllocFree)->Name("E7_Alloc/heap");

// EBR machinery costs.
void BM_EbrGuard(benchmark::State& state) {
  EbrDomain domain;
  for (auto _ : state) {
    EbrDomain::Guard guard(domain);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EbrGuard)->Name("E7_Ebr/guard_pin_unpin");

void BM_EbrNestedGuard(benchmark::State& state) {
  EbrDomain domain;
  EbrDomain::Guard outer(domain);
  for (auto _ : state) {
    EbrDomain::Guard guard(domain);  // nested: counter bump only
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EbrNestedGuard)->Name("E7_Ebr/nested_guard");

// LFRC ([12]'s methodology) priced against EBR: per-element push+pop cost
// on the LFRC stack (every pointer move touches counts; loads pay a DCAS)
// vs the same traffic on an EBR-guarded structure (E7_ListFifo above).
template <typename P>
void BM_LfrcStackCycle(benchmark::State& state) {
  dcd::reclaim::LfrcStack<std::uint64_t, P> s(1 << 12);
  for (int i = 0; i < 16; ++i) (void)s.push(i + 1);
  std::uint64_t v;
  for (auto _ : state) {
    (void)s.push(7);
    benchmark::DoNotOptimize(s.pop(&v));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_LfrcStackCycle, GlobalLockDcas)
    ->Name("E7_Lfrc/stack_cycle/global_lock");
BENCHMARK_TEMPLATE(BM_LfrcStackCycle, McasDcas)
    ->Name("E7_Lfrc/stack_cycle/mcas");

void BM_TaggedPoolAllocFree(benchmark::State& state) {
  dcd::reclaim::TaggedNodePool pool(192, 1 << 10);
  for (auto _ : state) {
    void* p = pool.allocate();
    benchmark::DoNotOptimize(p);
    pool.deallocate(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaggedPoolAllocFree)->Name("E7_Alloc/tagged_pool");

void BM_EbrRetireCycle(benchmark::State& state) {
  // Order matters: the domain's destructor drains retired nodes back into
  // the pool, so the pool must outlive the domain.
  NodePool pool(64, 1 << 12);
  EbrDomain domain;
  for (auto _ : state) {
    EbrDomain::Guard guard(domain);
    void* p = pool.allocate();
    if (p != nullptr) {
      domain.retire(p, NodePool::deallocate_cb, &pool);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pending"] = static_cast<double>(domain.pending_count());
}
BENCHMARK(BM_EbrRetireCycle)->Name("E7_Ebr/retire_reclaim_cycle");

}  // namespace
