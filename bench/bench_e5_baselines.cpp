// E5 — DCAS deques vs conventional alternatives (§6).
//
// "[CAS-only] implementations are complicated and entail significant
//  overhead; it seems very likely that our DCAS-based algorithms would
//  perform much better. (Of course, without detailed knowledge of the
//  implementation of a particular system supporting DCAS, we cannot
//  quantify this comparison.)"
//
// We *can* quantify it for our DCAS substitutes: a uniform mixed workload
// (25% each op) runs over every deque at 1/2/4 threads. Expected shape on
// emulated DCAS: the blocking baselines win raw throughput (their critical
// sections are one CAS-free lock), the lock-emulated DCAS deques sit in the
// middle, and the fully lock-free MCAS deques pay the descriptor tax — the
// paper's conjecture holds only under *hardware* DCAS (approximated by E1's
// cmpxchg16b row), which is precisely the paper's argument for building it.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/baseline/spin_deque.hpp"
#include "dcd/baseline/two_lock_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::fill;
using dcd::bench::mixed_op;
using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

constexpr std::size_t kCapacity = 1 << 12;
constexpr std::size_t kPrefill = 256;

template <typename D>
void BM_Mixed(benchmark::State& state) {
  static D* d = nullptr;
  if (state.thread_index() == 0) {
    print_topology_once();
    d = new D(kCapacity);
    fill(*d, kPrefill);
  }
  dcd::util::Xoshiro256 rng(state.thread_index() + 1);
  std::uint64_t v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed_op(*d, rng, v++));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete d;
    d = nullptr;
  }
}

#define E5(DequeType, tag)                  \
  BENCHMARK_TEMPLATE(BM_Mixed, DequeType)   \
      ->Name("E5_Mixed/" tag)               \
      ->Threads(1)                          \
      ->Threads(2)                          \
      ->Threads(4)                          \
      ->UseRealTime();

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListStriped = ListDeque<std::uint64_t, StripedLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;
using MutexD = dcd::baseline::MutexDeque<std::uint64_t>;
using SpinD = dcd::baseline::SpinDeque<std::uint64_t>;
using TwoLockD = dcd::baseline::TwoLockDeque<std::uint64_t>;

E5(ArrayGlobal, "array_global_lock")
E5(ArrayStriped, "array_striped_lock")
E5(ArrayMcas, "array_mcas")
E5(ListGlobal, "list_global_lock")
E5(ListStriped, "list_striped_lock")
E5(ListMcas, "list_mcas")
E5(MutexD, "baseline_mutex")
E5(SpinD, "baseline_spin")
E5(TwoLockD, "baseline_two_lock")

#undef E5

}  // namespace
