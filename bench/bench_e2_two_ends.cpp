// E2 — non-interfering ends (§1.2, §6).
//
// "The first [algorithm] ... allows uninterrupted concurrent access to both
//  ends of the deque" / "Both support non-interfering concurrent access to
//  opposite ends of the deque whenever possible."
//
// N threads work a deque pre-filled to mid-size, each doing push+pop
// pairs so the population stays centred (the ends never meet):
//   *_SameEnd      — all threads on the right end (worst case),
//   *_OppositeEnds — threads split across the ends by parity (the paper's
//                    claim: ~no interference beyond the memory system /
//                    DCAS emulation used).
// The baselines calibrate: MutexDeque serialises everything regardless;
// TwoLockDeque is the blocking analogue of the claim.
//
// Contention sweep: threads 2/4/8 per configuration (the recorded
// trajectory compares rows by full name, threads:N included). Workers are
// pinned best-effort (pinned_threads counter), per-op latency is sampled
// into lat_p50/p99/p999_ns, and retry pressure is reported as exact
// pause/yield-escalation deltas from the deques' thread-local
// AdaptiveBackoff sessions (retries/op, yields/op).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/baseline/two_lock_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::BackoffSnapshot;
using dcd::bench::fill;
using dcd::bench::LatencySampler;
using dcd::bench::print_topology_once;
using dcd::bench::RunTelemetry;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

constexpr std::size_t kPrefill = 512;
constexpr std::size_t kCapacity = 1 << 12;

template <typename D>
D* make_prefilled() {
  auto* d = new D(kCapacity);
  fill(*d, kPrefill);
  return d;
}

// Each iteration: one push+pop pair at this thread's assigned end.
template <typename D, bool kOpposite>
void BM_TwoEnds(benchmark::State& state) {
  static D* d = nullptr;
  static RunTelemetry* telemetry = nullptr;
  if (state.thread_index() == 0) {
    print_topology_once();
    d = make_prefilled<D>();
    telemetry = new RunTelemetry(state.threads());
  }
  dcd::bench::pin_bench_thread(state);
  const bool right = kOpposite ? (state.thread_index() % 2 == 0) : true;
  std::uint64_t v = 1000 + state.thread_index();
  LatencySampler lat;
  const BackoffSnapshot before = BackoffSnapshot::take();
  for (auto _ : state) {
    const std::uint64_t t0 = lat.begin();
    if (right) {
      (void)d->push_right(v);
      benchmark::DoNotOptimize(d->pop_right());
    } else {
      (void)d->push_left(v);
      benchmark::DoNotOptimize(d->pop_left());
    }
    lat.end(t0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  telemetry->submit(lat.histogram(), before);
  if (state.thread_index() == 0) {
    telemetry->report(state);
    dcd::bench::report_pinning(state);
    delete telemetry;
    telemetry = nullptr;
    delete d;
    d = nullptr;
  }
}

#define E2(DequeType, tag)                                       \
  BENCHMARK_TEMPLATE(BM_TwoEnds, DequeType, false)               \
      ->Name("E2_SameEnd/" tag)                                  \
      ->Threads(2)                                               \
      ->Threads(4)                                               \
      ->Threads(8)                                               \
      ->UseRealTime();                                           \
  BENCHMARK_TEMPLATE(BM_TwoEnds, DequeType, true)                \
      ->Name("E2_OppositeEnds/" tag)                             \
      ->Threads(2)                                               \
      ->Threads(4)                                               \
      ->Threads(8)                                               \
      ->UseRealTime();

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListStriped = ListDeque<std::uint64_t, StripedLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;
using MutexD = dcd::baseline::MutexDeque<std::uint64_t>;
using TwoLockD = dcd::baseline::TwoLockDeque<std::uint64_t>;

E2(ArrayGlobal, "array_global_lock")
E2(ArrayStriped, "array_striped_lock")
E2(ArrayMcas, "array_mcas")
E2(ListGlobal, "list_global_lock")
E2(ListStriped, "list_striped_lock")
E2(ListMcas, "list_mcas")
E2(MutexD, "baseline_mutex")
E2(TwoLockD, "baseline_two_lock")

#undef E2

// Single-thread reference: the cost of a push+pop pair with no contention.
// Latency percentiles come along so the sweep has an uncontended tail to
// compare against.
template <typename D>
void BM_OneThreadPair(benchmark::State& state) {
  D d(kCapacity);
  fill(d, kPrefill);
  LatencySampler lat;
  for (auto _ : state) {
    const std::uint64_t t0 = lat.begin();
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_right());
    lat.end(t0);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  dcd::bench::report_latency(state, lat.histogram());
}
BENCHMARK(BM_OneThreadPair<ArrayMcas>)->Name("E2_OneThread/array_mcas");
BENCHMARK(BM_OneThreadPair<ListMcas>)->Name("E2_OneThread/list_mcas");
BENCHMARK(BM_OneThreadPair<ArrayGlobal>)
    ->Name("E2_OneThread/array_global_lock");
BENCHMARK(BM_OneThreadPair<MutexD>)->Name("E2_OneThread/baseline_mutex");

}  // namespace
