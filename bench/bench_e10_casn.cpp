// E10 — emulated multi-word CAS cost vs width (§1, §1.1).
//
// The paper motivates DCAS by noting that "software emulations of stronger
// primitives from weaker ones are still too complex to be considered
// practical" [1,5,8,9,30], and its §1.1 critique of Greenwald's first
// deque hinges on the cost of treating "the two-word DCAS as if it were a
// three-word operation". This experiment measures the emulation cost curve
// directly: uncontended casn success for widths 1-4 from the same engine
// that provides the deques' DCAS, against raw CAS and the hardware
// adjacent pair. Expected shape: roughly linear in width (descriptor
// installs/removals per word), with a constant overhead that dwarfs a raw
// CAS — the quantitative case for hardware support at *some* width, and
// for algorithms that keep that width at two.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dcd/dcas/cmpxchg16b.hpp"
#include "dcd/dcas/mcas.hpp"

namespace {

using namespace dcd::dcas;
using dcd::bench::print_topology_once;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

Word g_words[McasDcas::kMaxCasnWidth];
std::atomic<std::uint64_t> g_raw{0};
AdjacentPair g_pair;

void BM_RawCas(benchmark::State& state) {
  print_topology_once();
  std::uint64_t x = g_raw.load();
  for (auto _ : state) {
    if (g_raw.compare_exchange_strong(x, x + 1)) {
      ++x;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawCas)->Name("E10_Width/cas_raw");

void BM_HwPair(benchmark::State& state) {
  std::uint64_t lo = 0, hi = 0;
  Cmpxchg16bDcas::read(g_pair, lo, hi);
  for (auto _ : state) {
    if (Cmpxchg16bDcas::dcas(g_pair, lo, hi, lo + 1, hi + 1)) {
      ++lo;
      ++hi;
    } else {
      Cmpxchg16bDcas::read(g_pair, lo, hi);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HwPair)->Name("E10_Width/hw_adjacent_pair");

void BM_CasnWidth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Re-establish the all-words-equal invariant: a previous (narrower) run
  // leaves the tail words behind, which would turn every casn below into a
  // guaranteed failure.
  for (auto& w : g_words) McasDcas::store_init(w, val(0));
  Word* addrs[McasDcas::kMaxCasnWidth];
  std::uint64_t olds[McasDcas::kMaxCasnWidth];
  std::uint64_t news[McasDcas::kMaxCasnWidth];
  for (std::size_t i = 0; i < n; ++i) addrs[i] = &g_words[i];
  std::uint64_t x = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      olds[i] = val(x);
      news[i] = val(x + 1);
    }
    if (McasDcas::casn(addrs, olds, news, n)) {
      ++x;
    } else {
      x = decode_payload(McasDcas::load(g_words[0]));  // unreachable here
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasnWidth)
    ->Name("E10_Width/casn_emulated")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4);

// Contended: the helping protocol's cost also grows with width (wider
// descriptors occupy more words for longer, so conflicts are likelier).
void BM_CasnWidthContended(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  if (state.thread_index() == 0) {
    for (auto& w : g_words) McasDcas::store_init(w, val(0));
  }
  Word* addrs[McasDcas::kMaxCasnWidth];
  std::uint64_t olds[McasDcas::kMaxCasnWidth];
  std::uint64_t news[McasDcas::kMaxCasnWidth];
  for (std::size_t i = 0; i < n; ++i) addrs[i] = &g_words[i];
  for (auto _ : state) {
    for (;;) {
      const std::uint64_t v = McasDcas::load(g_words[0]);
      const std::uint64_t x = decode_payload(v);
      for (std::size_t i = 0; i < n; ++i) {
        olds[i] = val(x);
        news[i] = val(x + 1);
      }
      if (McasDcas::casn(addrs, olds, news, n)) break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CasnWidthContended)
    ->Name("E10_Width/casn_contended")
    ->Arg(2)
    ->Arg(4)
    ->Threads(2)
    ->UseRealTime();

}  // namespace
