// E12 — steal-throughput scaling of the fork/join executor (src/exec).
//
// E6 measures the deques under a hand-rolled steal loop; E12 measures the
// real subsystem: Executor<Deque> with its eventcount park/unpark path,
// worker-local task freelists, and randomized victim scans. Each iteration
// submits one fork/join tree (depth 11 → 4095 tasks) from an external
// thread and waits for the executor to drain it, so the parked→woken edge
// and the injection path are inside the measured region — exactly the
// traffic a server's request loop generates.
//
// Accounting is served-only: items processed = tasks actually executed
// (read back from the executor's single-writer telemetry), never the
// submitted count. The per-acquisition latency histogram is the executor's
// own (cfg.latency_stride sampling), merged at quiescence.
//
// Sweep: workers 2/4/8 (state.range(0)) × {list,array} × {global-lock,
// striped-lock, MCAS} DCAS policies, plus the Arora-Blumofe-Plaxton
// restricted baseline (whose external submissions take the mutex inbox —
// the re-injection asymmetry DESIGN.md §14 documents).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "bench_common.hpp"
#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/exec/executor.hpp"

namespace {

using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::exec::ExecConfig;
using dcd::exec::ExecStats;
using dcd::exec::Executor;
using dcd::exec::Task;
using dcd::exec::TaskContext;

constexpr std::uint64_t kDepth = 11;  // 2^12 - 1 = 4095 tasks per tree

std::atomic<std::uint64_t> g_sum{0};

void tree_task(TaskContext& ctx, Task& t) {
  const std::uint64_t depth = t.args[0];
  const std::uint64_t weight = t.args[1];
  g_sum.fetch_add(depth * 0x9e3779b97f4a7c15ull + weight,
                  std::memory_order_relaxed);
  if (depth == 0) return;
  for (std::uint64_t k = 0; k < 2; ++k) {
    ctx.fork(ctx.create(&tree_task, nullptr, 0, depth - 1, weight * 2 + k));
  }
}

std::uint64_t tree_expected(std::uint64_t depth, std::uint64_t weight) {
  std::uint64_t sum = depth * 0x9e3779b97f4a7c15ull + weight;
  if (depth == 0) return sum;
  for (std::uint64_t k = 0; k < 2; ++k) {
    sum += tree_expected(depth - 1, weight * 2 + k);
  }
  return sum;
}

template <typename Deque>
void BM_ExecutorTree(benchmark::State& state) {
  print_topology_once();
  ExecConfig cfg;
  cfg.workers = static_cast<std::size_t>(state.range(0));
  cfg.latency_stride = 8;  // tasks are chunky; sample densely
  Executor<Deque> ex(cfg);
  g_sum.store(0, std::memory_order_relaxed);
  std::uint64_t trees = 0;
  for (auto _ : state) {
    ex.submit(ex.create(&tree_task, nullptr, 0, kDepth, 1));
    ex.wait_all();
    ++trees;
  }
  if (g_sum.load(std::memory_order_relaxed) !=
      trees * tree_expected(kDepth, 1)) {
    state.SkipWithError("schedule-independent checksum mismatch");
    return;
  }
  const ExecStats st = ex.stats();
  // Served-only: count what the workers actually executed.
  state.SetItemsProcessed(static_cast<std::int64_t>(st.executed));
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(st.steals), avg);
  state.counters["failed_steals"] =
      benchmark::Counter(static_cast<double>(st.failed_steals), avg);
  state.counters["parks"] =
      benchmark::Counter(static_cast<double>(st.parks), avg);
  state.counters["injected"] =
      benchmark::Counter(static_cast<double>(st.injected), avg);
  dcd::bench::report_latency(state, ex.latency());
}

using ListGlobal = dcd::deque::ListDeque<Task*, GlobalLockDcas>;
using ListStriped = dcd::deque::ListDeque<Task*, StripedLockDcas>;
using ListMcas = dcd::deque::ListDeque<Task*, McasDcas>;
using ArrayGlobal = dcd::deque::ArrayDeque<Task*, GlobalLockDcas>;
using ArrayMcas = dcd::deque::ArrayDeque<Task*, McasDcas>;
using Abp = dcd::baseline::AroraDeque<Task*>;

// Worker-count sweep; the row name carries the count (".../4").
#define E12_SWEEP(benchfn)               \
  benchfn->Arg(2)                        \
      ->Arg(4)                           \
      ->Arg(8)                           \
      ->Unit(benchmark::kMillisecond)    \
      ->UseRealTime();

E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListGlobal)
              ->Name("E12_ExecutorTree/list_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListStriped)
              ->Name("E12_ExecutorTree/list_striped_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListMcas)
              ->Name("E12_ExecutorTree/list_mcas"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ArrayGlobal)
              ->Name("E12_ExecutorTree/array_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ArrayMcas)
              ->Name("E12_ExecutorTree/array_mcas"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, Abp)
              ->Name("E12_ExecutorTree/baseline_abp"))

#undef E12_SWEEP

}  // namespace
