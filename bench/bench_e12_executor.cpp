// E12 — steal-throughput scaling of the fork/join executor (src/exec).
//
// E6 measures the deques under a hand-rolled steal loop; E12 measures the
// real subsystem: Executor<Deque> with its eventcount park/unpark path,
// worker-local task freelists, and randomized victim scans. Each iteration
// submits one fork/join tree (depth 11 → 4095 tasks) from an external
// thread and waits for the executor to drain it, so the parked→woken edge
// and the injection path are inside the measured region — exactly the
// traffic a server's request loop generates.
//
// Accounting is served-only: items processed = tasks actually executed
// (read back from the executor's single-writer telemetry), never the
// submitted count. The per-acquisition latency histogram is the executor's
// own (cfg.latency_stride sampling), merged at quiescence.
//
// Sweep: workers 2/4/8 (state.range(0)) × {list,array} × {global-lock,
// striped-lock, MCAS} DCAS policies, plus the Arora-Blumofe-Plaxton
// restricted baseline (whose external submissions take the mutex inbox —
// the re-injection asymmetry DESIGN.md §14 documents), plus the null
// hypothesis: a single shared mutex-FIFO queue (no stealing at all).
//
// Two workloads: ExecutorTree (fork/join drain — steal-path pressure) and
// ExecutorSubmitBurst (a submission-heavy request-replay mix: bursts of
// independent leaf tasks injected from an external thread, so the
// submit path itself is the contended resource — lock-free left-push on
// the general deques vs ABP's serialized mutex inbox, DESIGN.md §14.3).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "bench_common.hpp"
#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/exec/executor.hpp"

namespace {

// Single shared-queue baseline: the classic one-lock thread pool. Every
// Worker's "deque" is a handle onto ONE process-wide mutex-protected
// FIFO, so owner pushes, owner pops, steal sweeps, and remote injections
// all serialize on the same lock. The DequeTraits specialization below
// maps the executor's verbs straight onto enqueue/dequeue, which turns
// Executor<SharedFifoQueue> into the bar DESIGN.md §14.3 measures the
// per-worker deques against. The queue is deliberately static: the bench
// runs one executor at a time and drains it (wait_all) before teardown,
// so the queue is always empty between runs.
class SharedFifoQueue {
 public:
  using value_type = dcd::exec::Task*;

  explicit SharedFifoQueue(std::size_t capacity) : cap_(capacity) {}

  dcd::deque::PushResult enqueue(dcd::exec::Task* t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.size() >= cap_) return dcd::deque::PushResult::kFull;
    q_.push_back(t);
    return dcd::deque::PushResult::kOkay;
  }

  std::optional<dcd::exec::Task*> dequeue() {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return std::nullopt;
    dcd::exec::Task* t = q_.front();
    q_.pop_front();
    return t;
  }

 private:
  std::size_t cap_;
  inline static std::mutex mu_;
  inline static std::deque<dcd::exec::Task*> q_;
};

}  // namespace

namespace dcd::exec {

// Every verb is the same FIFO under the same lock. kRemoteInject keeps
// external submissions on the queue itself (there is no cheaper path to
// fall back to), and "steals" from any instance hit the shared queue, so
// the randomized victim sweep degenerates to re-polling the one queue.
template <>
struct DequeTraits<SharedFifoQueue> {
  static constexpr bool kRemoteInject = true;

  static deque::PushResult push_own(SharedFifoQueue& d, Task* t) {
    return d.enqueue(t);
  }
  static std::optional<Task*> pop_own(SharedFifoQueue& d) {
    return d.dequeue();
  }
  static std::optional<Task*> steal(SharedFifoQueue& d) {
    return d.dequeue();
  }
  static deque::PushResult inject(SharedFifoQueue& d, Task* t) {
    return d.enqueue(t);
  }
};

}  // namespace dcd::exec

namespace {

using dcd::bench::print_topology_once;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::exec::ExecConfig;
using dcd::exec::ExecStats;
using dcd::exec::Executor;
using dcd::exec::Task;
using dcd::exec::TaskContext;

constexpr std::uint64_t kDepth = 11;  // 2^12 - 1 = 4095 tasks per tree

std::atomic<std::uint64_t> g_sum{0};

void tree_task(TaskContext& ctx, Task& t) {
  const std::uint64_t depth = t.args[0];
  const std::uint64_t weight = t.args[1];
  g_sum.fetch_add(depth * 0x9e3779b97f4a7c15ull + weight,
                  std::memory_order_relaxed);
  if (depth == 0) return;
  for (std::uint64_t k = 0; k < 2; ++k) {
    ctx.fork(ctx.create(&tree_task, nullptr, 0, depth - 1, weight * 2 + k));
  }
}

std::uint64_t tree_expected(std::uint64_t depth, std::uint64_t weight) {
  std::uint64_t sum = depth * 0x9e3779b97f4a7c15ull + weight;
  if (depth == 0) return sum;
  for (std::uint64_t k = 0; k < 2; ++k) {
    sum += tree_expected(depth - 1, weight * 2 + k);
  }
  return sum;
}

template <typename Deque>
void BM_ExecutorTree(benchmark::State& state) {
  print_topology_once();
  ExecConfig cfg;
  cfg.workers = static_cast<std::size_t>(state.range(0));
  cfg.latency_stride = 8;  // tasks are chunky; sample densely
  Executor<Deque> ex(cfg);
  g_sum.store(0, std::memory_order_relaxed);
  std::uint64_t trees = 0;
  for (auto _ : state) {
    ex.submit(ex.create(&tree_task, nullptr, 0, kDepth, 1));
    ex.wait_all();
    ++trees;
  }
  if (g_sum.load(std::memory_order_relaxed) !=
      trees * tree_expected(kDepth, 1)) {
    state.SkipWithError("schedule-independent checksum mismatch");
    return;
  }
  const ExecStats st = ex.stats();
  // Served-only: count what the workers actually executed.
  state.SetItemsProcessed(static_cast<std::int64_t>(st.executed));
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(st.steals), avg);
  state.counters["failed_steals"] =
      benchmark::Counter(static_cast<double>(st.failed_steals), avg);
  state.counters["parks"] =
      benchmark::Counter(static_cast<double>(st.parks), avg);
  state.counters["injected"] =
      benchmark::Counter(static_cast<double>(st.injected), avg);
  dcd::bench::report_latency(state, ex.latency());
}

// Submission-heavy mix: each iteration replays a burst of independent
// leaf requests from the (external, non-worker) bench thread and waits
// for the pool to drain it. There is no forking, so throughput is gated
// by the injection path: general deques take the lock-free left push,
// ABP serializes every submission through its mutex inbox, and the
// shared FIFO serializes everything. Accounting stays served-only.
constexpr std::uint64_t kBurst = 512;  // external submissions per iteration

void leaf_task(TaskContext&, Task& t) {
  g_sum.fetch_add(t.args[0] * 0x9e3779b97f4a7c15ull + t.args[1],
                  std::memory_order_relaxed);
}

std::uint64_t burst_expected(std::uint64_t bursts) {
  std::uint64_t sum = 0;
  for (std::uint64_t b = 0; b < bursts; ++b) {
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      sum += i * 0x9e3779b97f4a7c15ull + b;
    }
  }
  return sum;
}

template <typename Deque>
void BM_ExecutorSubmitBurst(benchmark::State& state) {
  print_topology_once();
  ExecConfig cfg;
  cfg.workers = static_cast<std::size_t>(state.range(0));
  cfg.latency_stride = 8;
  Executor<Deque> ex(cfg);
  g_sum.store(0, std::memory_order_relaxed);
  std::uint64_t bursts = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      ex.submit(ex.create(&leaf_task, nullptr, 0, i, bursts));
    }
    ex.wait_all();
    ++bursts;
  }
  if (g_sum.load(std::memory_order_relaxed) != burst_expected(bursts)) {
    state.SkipWithError("schedule-independent checksum mismatch");
    return;
  }
  const ExecStats st = ex.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(st.executed));
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(st.steals), avg);
  state.counters["failed_steals"] =
      benchmark::Counter(static_cast<double>(st.failed_steals), avg);
  state.counters["parks"] =
      benchmark::Counter(static_cast<double>(st.parks), avg);
  state.counters["injected"] =
      benchmark::Counter(static_cast<double>(st.injected), avg);
  dcd::bench::report_latency(state, ex.latency());
}

using ListGlobal = dcd::deque::ListDeque<Task*, GlobalLockDcas>;
using ListStriped = dcd::deque::ListDeque<Task*, StripedLockDcas>;
using ListMcas = dcd::deque::ListDeque<Task*, McasDcas>;
using ArrayGlobal = dcd::deque::ArrayDeque<Task*, GlobalLockDcas>;
using ArrayMcas = dcd::deque::ArrayDeque<Task*, McasDcas>;
using Abp = dcd::baseline::AroraDeque<Task*>;

// Worker-count sweep; the row name carries the count (".../4").
#define E12_SWEEP(benchfn)               \
  benchfn->Arg(2)                        \
      ->Arg(4)                           \
      ->Arg(8)                           \
      ->Unit(benchmark::kMillisecond)    \
      ->UseRealTime();

E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListGlobal)
              ->Name("E12_ExecutorTree/list_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListStriped)
              ->Name("E12_ExecutorTree/list_striped_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ListMcas)
              ->Name("E12_ExecutorTree/list_mcas"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ArrayGlobal)
              ->Name("E12_ExecutorTree/array_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, ArrayMcas)
              ->Name("E12_ExecutorTree/array_mcas"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, Abp)
              ->Name("E12_ExecutorTree/baseline_abp"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorTree, SharedFifoQueue)
              ->Name("E12_ExecutorTree/baseline_shared_fifo"))

// Submission-heavy mix: one representative general deque per layout, the
// ABP inbox path, and the single-queue bar.
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorSubmitBurst, ListGlobal)
              ->Name("E12_ExecutorSubmitBurst/list_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorSubmitBurst, ArrayGlobal)
              ->Name("E12_ExecutorSubmitBurst/array_global_lock"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorSubmitBurst, Abp)
              ->Name("E12_ExecutorSubmitBurst/baseline_abp"))
E12_SWEEP(BENCHMARK_TEMPLATE(BM_ExecutorSubmitBurst, SharedFifoQueue)
              ->Name("E12_ExecutorSubmitBurst/baseline_shared_fifo"))

#undef E12_SWEEP

}  // namespace
