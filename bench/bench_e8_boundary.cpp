// E8 — boundary-case cost ("the tricky boundary cases", §1.2/§3).
//
// The paper's claim is qualitative: the algorithms return appropriate
// exceptions "in the tricky boundary cases when the deque is empty or
// full" while keeping the common case fast. This experiment prices those
// boundary returns: an empty pop / full push still costs a confirming DCAS
// (it cannot be answered from a plain read), so boundary-heavy traffic is
// *not* cheaper than useful work on emulated DCAS. Rows compare
// empty-pop / full-push / steady-state op cost, single-threaded (exact
// telemetry) and with 2 threads hammering the same boundary.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::print_topology_once;
using dcd::bench::report_telemetry;
using dcd::bench::reset_telemetry;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename D>
void BM_EmptyPop(benchmark::State& state) {
  print_topology_once();
  D d(64);
  reset_telemetry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.pop_right());
  }
  state.SetItemsProcessed(state.iterations());
  report_telemetry(state);
}

template <typename D>
void BM_FullPush(benchmark::State& state) {
  D d(64);
  for (int i = 0; i < 64; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.push_right(9));
  }
  state.SetItemsProcessed(state.iterations());
  report_telemetry(state);
}

template <typename D>
void BM_SteadyOp(benchmark::State& state) {
  D d(64);
  for (int i = 0; i < 32; ++i) (void)d.push_right(i + 1);
  reset_telemetry();
  for (auto _ : state) {
    (void)d.push_right(7);
    benchmark::DoNotOptimize(d.pop_right());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  report_telemetry(state);
}

// Two threads both popping an empty deque: the boundary-confirming DCASes
// contend on {R, S[R-1]} even though no data moves.
template <typename D>
void BM_EmptyPopContended(benchmark::State& state) {
  static D* d = nullptr;
  if (state.thread_index() == 0) {
    d = new D(64);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.thread_index() % 2 == 0 ? d->pop_right()
                                                           : d->pop_left());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete d;
    d = nullptr;
  }
}

using ArrayGlobal = ArrayDeque<std::uint64_t, GlobalLockDcas>;
using ArrayStriped = ArrayDeque<std::uint64_t, StripedLockDcas>;
using ArrayMcas = ArrayDeque<std::uint64_t, McasDcas>;
using ListGlobal = ListDeque<std::uint64_t, GlobalLockDcas>;
using ListMcas = ListDeque<std::uint64_t, McasDcas>;

#define E8_ARRAY(D, tag)                                            \
  BENCHMARK_TEMPLATE(BM_EmptyPop, D)->Name("E8_EmptyPop/" tag);     \
  BENCHMARK_TEMPLATE(BM_FullPush, D)->Name("E8_FullPush/" tag);     \
  BENCHMARK_TEMPLATE(BM_SteadyOp, D)->Name("E8_Steady/" tag);       \
  BENCHMARK_TEMPLATE(BM_EmptyPopContended, D)                       \
      ->Name("E8_EmptyPop2T/" tag)                                  \
      ->Threads(2)                                                  \
      ->UseRealTime();

E8_ARRAY(ArrayGlobal, "array_global_lock")
E8_ARRAY(ArrayStriped, "array_striped_lock")
E8_ARRAY(ArrayMcas, "array_mcas")
E8_ARRAY(ListGlobal, "list_global_lock")
E8_ARRAY(ListMcas, "list_mcas")

#undef E8_ARRAY

}  // namespace
