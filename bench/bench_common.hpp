// Shared helpers for the experiment harness (E1–E8).
//
// Conventions: every binary prints the host topology once (single-core
// hosts interleave preemptively — see EXPERIMENTS.md), reports items/sec
// via state.SetItemsProcessed, and attaches primitive-operation counts from
// dcd::dcas::Telemetry where they are exact (single-threaded runs).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdint>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/util/backoff.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/topology.hpp"

namespace dcd::bench {

inline void print_topology_once() {
  static const bool done = [] {
    std::printf("# %s\n", util::probe_topology().describe().c_str());
    return true;
  }();
  (void)done;
}

// Pre-fills a deque to `n` items via push_right.
template <typename D>
void fill(D& d, std::size_t n, std::uint64_t base = 1) {
  for (std::size_t i = 0; i < n; ++i) {
    (void)d.push_right(base + i);
  }
}

// One op of a mixed workload; returns +1/-1/0 population delta.
template <typename D>
int mixed_op(D& d, util::Xoshiro256& rng, std::uint64_t value) {
  switch (rng.below(4)) {
    case 0:
      return d.push_right(value) == deque::PushResult::kOkay ? 1 : 0;
    case 1:
      return d.push_left(value) == deque::PushResult::kOkay ? 1 : 0;
    case 2:
      return d.pop_right().has_value() ? -1 : 0;
    default:
      return d.pop_left().has_value() ? -1 : 0;
  }
}

// Attaches exact per-op DCAS/CAS/load counters to a *single-threaded*
// benchmark: call reset_telemetry() before the loop and
// report_telemetry(state) after it.
inline void reset_telemetry() { dcas::Telemetry::reset(); }

inline void report_telemetry(benchmark::State& state) {
  const dcas::Counters c = dcas::Telemetry::snapshot();
  const auto iters = static_cast<double>(state.iterations());
  if (iters == 0) return;
  state.counters["dcas/op"] =
      static_cast<double>(c.dcas_calls) / iters;
  state.counters["dcas_fail/op"] =
      static_cast<double>(c.dcas_failures) / iters;
  state.counters["cas/op"] = static_cast<double>(c.cas_ops) / iters;
  state.counters["load/op"] = static_cast<double>(c.loads) / iters;
}

// Attaches a retry-pressure counter from a set of Backoff objects, one per
// worker. Backoff::pauses() is the *exact* number of pause() calls — i.e.
// failed attempts — including those made in the yield regime. (It used to
// be derived from the spin budget, which stops doubling once the backoff
// escalates to yield, silently capping the reported pressure; E2's
// contention rows rely on the exact count.)
template <typename BackoffRange>
void report_backoff_pressure(benchmark::State& state,
                             const BackoffRange& backoffs) {
  std::uint64_t total = 0;
  for (const auto& b : backoffs) total += b.pauses();
  const auto iters = static_cast<double>(state.iterations());
  if (iters == 0) return;
  state.counters["retries/op"] = static_cast<double>(total) / iters;
}

}  // namespace dcd::bench
