// Shared helpers for the experiment harness (E1–E8).
//
// Conventions: every binary prints the host topology once (single-core
// hosts interleave preemptively — see EXPERIMENTS.md), registers the
// compiler / build type / affinity mechanism as benchmark context (so the
// JSON artifacts record how honest the run was — scripts/bench_to_json.py
// refuses debug-build or single-CPU recordings), reports items/sec via
// state.SetItemsProcessed, and attaches primitive-operation counts from
// dcd::dcas::Telemetry where they are exact (single-threaded runs).
// Contention sweeps additionally pin each worker to a CPU (best effort,
// recorded as the pinned_threads counter) and sample per-op latency into
// sub-bucketed histograms reported as lat_p50/p99/p999_ns.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/util/backoff.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stats.hpp"
#include "dcd/util/topology.hpp"

namespace dcd::bench {

namespace detail {

inline std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

// Registered before main() via the inline-variable initializer below, so
// the keys are in the reporter's context block (which google-benchmark
// prints before any benchmark runs). AddCustomContext is safe pre-main:
// the library's global context map is a lazily-allocated static pointer.
// dcd_build_type is OUR binaries' NDEBUG state — gbench's own
// library_build_type describes how libbenchmark was compiled, which says
// nothing about whether the code under test ran with asserts on;
// bench_to_json.py refuses a recording when either says "debug".
inline const bool kContextRegistered = [] {
  benchmark::AddCustomContext("dcd_compiler", compiler_id());
  benchmark::AddCustomContext("dcd_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::AddCustomContext("dcd_affinity", util::affinity_mechanism());
  return true;
}();

inline std::atomic<std::int64_t> pinned_count{0};

}  // namespace detail

inline void print_topology_once() {
  (void)detail::kContextRegistered;  // odr-use keeps the initializer live
  static const bool done = [] {
    // stderr, not stdout: --benchmark_format=json writes the report to
    // stdout and a comment line mid-stream corrupts it.
    std::fprintf(stderr, "# %s\n", util::probe_topology().describe().c_str());
    return true;
  }();
  (void)done;
}

// Best-effort pin of this benchmark thread to CPU thread_index (mod the
// CPU count). Call once per thread before the timed loop; thread 0
// reports and resets the tally post-loop via report_pinning, so the
// artifact row says how many of the sweep's threads actually ran pinned
// (0 on hosts without pthread_setaffinity_np — recorded, not fatal).
inline void pin_bench_thread(benchmark::State& state) {
  if (util::pin_current_thread(
          static_cast<std::size_t>(state.thread_index()))) {
    detail::pinned_count.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void report_pinning(benchmark::State& state) {
  state.counters["pinned_threads"] = static_cast<double>(
      detail::pinned_count.exchange(0, std::memory_order_relaxed));
}

// Pre-fills a deque to `n` items via push_right.
template <typename D>
void fill(D& d, std::size_t n, std::uint64_t base = 1) {
  for (std::size_t i = 0; i < n; ++i) {
    (void)d.push_right(base + i);
  }
}

// One op of a mixed workload; returns +1/-1/0 population delta.
template <typename D>
int mixed_op(D& d, util::Xoshiro256& rng, std::uint64_t value) {
  switch (rng.below(4)) {
    case 0:
      return d.push_right(value) == deque::PushResult::kOkay ? 1 : 0;
    case 1:
      return d.push_left(value) == deque::PushResult::kOkay ? 1 : 0;
    case 2:
      return d.pop_right().has_value() ? -1 : 0;
    default:
      return d.pop_left().has_value() ? -1 : 0;
  }
}

// Samples the latency of every stride-th operation into a per-thread
// LatencyHistogram. Stride sampling keeps the two steady_clock reads off
// most iterations so the measurement does not dominate ns-scale ops; the
// histogram still accumulates thousands of samples per second of run.
// begin() returns 0 when this op is not sampled (a real steady_clock
// timestamp is never 0ns).
class LatencySampler {
 public:
  explicit LatencySampler(std::uint32_t stride = 64) noexcept
      : stride_(stride == 0 ? 1 : stride) {}

  std::uint64_t begin() noexcept {
    if (tick_++ % stride_ != 0) return 0;
    return now_ns();
  }

  void end(std::uint64_t t0) noexcept {
    if (t0 == 0) return;
    const std::uint64_t t1 = now_ns();
    hist_.record(t1 > t0 ? t1 - t0 : 0);
  }

  const util::LatencyHistogram& histogram() const noexcept { return hist_; }

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::uint32_t stride_;
  std::uint32_t tick_ = 0;
  util::LatencyHistogram hist_;
};

// Attaches the standard latency-percentile counters from a merged
// histogram. These are the columns bench_compare.py's p99-inflation gate
// reads; keep the names stable.
inline void report_latency(benchmark::State& state,
                           const util::LatencyHistogram& h) {
  if (h.total() == 0) return;
  state.counters["lat_p50_ns"] = static_cast<double>(h.percentile(0.50));
  state.counters["lat_p99_ns"] = static_cast<double>(h.percentile(0.99));
  state.counters["lat_p999_ns"] = static_cast<double>(h.percentile(0.999));
  state.counters["lat_samples"] = static_cast<double>(h.total());
}

// Snapshot of the calling thread's persistent AdaptiveBackoff counters
// (the deques back off through AdaptiveBackoff::tl() sessions — see
// DESIGN.md §13.2 — so a bench-owned Backoff object never sees their
// retries; deltas around the timed loop do).
struct BackoffSnapshot {
  std::uint64_t pauses = 0;
  std::uint64_t yields = 0;

  static BackoffSnapshot take() noexcept {
    const auto& b = util::AdaptiveBackoff::tl();
    return {b.pauses(), b.yields()};
  }
};

// Per-run collector for worker-thread telemetry: latency histograms and
// backoff-pressure deltas. Protocol (mirrors the static-D* setup/teardown
// idiom google-benchmark documents for multithreaded benches):
//
//   thread 0, pre-loop:   telemetry = new RunTelemetry(state.threads());
//   every thread, pre-loop:  auto before = BackoffSnapshot::take();
//   every thread, post-loop: telemetry->submit(sampler.histogram(), before);
//   thread 0, post-loop:  telemetry->report(state); delete telemetry;
//
// report() spin-waits for the remaining submissions; the wait is bounded
// because every thread has already left the timed loop through the
// library's stop barrier before any post-loop code runs.
class RunTelemetry {
 public:
  explicit RunTelemetry(int threads) noexcept : pending_(threads) {}

  void submit(const util::LatencyHistogram& h, const BackoffSnapshot& before) {
    const auto& b = util::AdaptiveBackoff::tl();
    pauses_.fetch_add(b.pauses() - before.pauses, std::memory_order_relaxed);
    yields_.fetch_add(b.yields() - before.yields, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      merged_.merge(h);
    }
    pending_.fetch_sub(1, std::memory_order_release);
  }

  void report(benchmark::State& state) {
    while (pending_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    report_latency(state, merged_);
    const auto ops = static_cast<double>(state.iterations()) *
                     static_cast<double>(state.threads());
    if (ops > 0) {
      state.counters["retries/op"] =
          static_cast<double>(pauses_.load(std::memory_order_relaxed)) / ops;
      state.counters["yields/op"] =
          static_cast<double>(yields_.load(std::memory_order_relaxed)) / ops;
    }
  }

 private:
  std::mutex mu_;
  util::LatencyHistogram merged_;
  std::atomic<std::uint64_t> pauses_{0};
  std::atomic<std::uint64_t> yields_{0};
  std::atomic<int> pending_;
};

// Attaches exact per-op DCAS/CAS/load counters to a *single-threaded*
// benchmark: call reset_telemetry() before the loop and
// report_telemetry(state) after it.
inline void reset_telemetry() { dcas::Telemetry::reset(); }

inline void report_telemetry(benchmark::State& state) {
  const dcas::Counters c = dcas::Telemetry::snapshot();
  const auto iters = static_cast<double>(state.iterations());
  if (iters == 0) return;
  state.counters["dcas/op"] =
      static_cast<double>(c.dcas_calls) / iters;
  state.counters["dcas_fail/op"] =
      static_cast<double>(c.dcas_failures) / iters;
  state.counters["cas/op"] = static_cast<double>(c.cas_ops) / iters;
  state.counters["load/op"] = static_cast<double>(c.loads) / iters;
}

// Attaches retry-pressure counters from a set of Backoff objects, one per
// worker, for benches that drive their own Backoff instances. Both
// numbers are *exact event counts*: pauses() is every pause() call and
// yields() is every escalation to sched_yield. Neither may be derived
// from the spin budget — the budget stops doubling once the backoff
// escalates to yield, so a budget-derived pressure silently caps exactly
// where the contention gets interesting (util_test's
// YieldsCountsEscalationsExactly pins this down). Benches over the
// deques' internal thread-local sessions use RunTelemetry instead.
template <typename BackoffRange>
void report_backoff_pressure(benchmark::State& state,
                             const BackoffRange& backoffs) {
  std::uint64_t pauses = 0;
  std::uint64_t yields = 0;
  for (const auto& b : backoffs) {
    pauses += b.pauses();
    yields += b.yields();
  }
  const auto iters = static_cast<double>(state.iterations());
  if (iters == 0) return;
  state.counters["retries/op"] = static_cast<double>(pauses) / iters;
  state.counters["yields/op"] = static_cast<double>(yields) / iters;
}

}  // namespace dcd::bench
