// E11 — allocation scalability: per-thread magazines vs the shared slab
// (DESIGN.md §13).
//
// The paper assumes a garbage collector, so its cost model never prices
// allocation. Our substitution (NodePool + EBR) put every push's allocate
// and every reclaimed pop's deallocate on ONE Treiber head — a shared CAS
// hot spot the paper's DCAS analysis never sees. E11 measures the fix:
//
//   E11_DequeMixed/*    — the list deque under a mixed 4-op workload, the
//                         magazine pool (default) against the shared
//                         NodePool, threads 1/2/4/8. Magazine rows attach
//                         magazine_hit/op (allocator ops served without
//                         touching the shared head) and refill/flush rates.
//   E11_PoolCycle/*     — the allocator alone: allocate + EBR-retire per
//                         iteration (frees must flow through EBR; a direct
//                         concurrent deallocate would break the free-list
//                         ABA contract in node_pool.hpp).
//   E11_OneThread/*     — single-threaded acceptance gate with exact
//                         telemetry: dcas/op and cas/op must be IDENTICAL
//                         for magazine and shared rows (the magazine layer
//                         adds no policy-level operations; its own atomics
//                         are raw and thread-local).
//
// Single-core hosts (the CI box): threads 2..8 are preemptively
// interleaved, so absolute throughput compresses, but the magazine rows
// still win by dodging the shared head's failed-CAS retries — the
// magazine_hit/op column explains exactly why.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/magazine_pool.hpp"
#include "dcd/reclaim/node_pool.hpp"
#include "dcd/reclaim/policies.hpp"

namespace {

using namespace dcd::deque;
using dcd::bench::BackoffSnapshot;
using dcd::bench::fill;
using dcd::bench::LatencySampler;
using dcd::bench::mixed_op;
using dcd::bench::print_topology_once;
using dcd::bench::report_telemetry;
using dcd::bench::reset_telemetry;
using dcd::bench::RunTelemetry;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::reclaim::EbrDomain;
using dcd::reclaim::EbrReclaim;
using dcd::reclaim::MagazinePool;
using dcd::reclaim::MagazineStats;
using dcd::reclaim::NodePool;

constexpr std::size_t kPrefill = 256;
// Generous: EBR limbo holds churn-rate x grace-latency nodes in flight
// (Little's law); an undersized pool would make this an exhaustion
// benchmark instead of an allocation one.
constexpr std::size_t kCapacity = 1 << 16;

template <typename D>
constexpr bool kHasMagazine =
    requires(const D& d) { d.pool().stats(); };

// Attach allocator telemetry for magazine-backed deques: hit share of all
// allocator ops plus refill/flush frequency (the shared-head touches that
// remain). Quiescent-exact — called after the workers stop.
template <typename D>
void attach_pool_counters(benchmark::State& state, const D& d,
                          double total_ops) {
  if constexpr (kHasMagazine<D>) {
    const MagazineStats s = d.pool().stats();
    const double allocs = static_cast<double>(s.hits + s.misses);
    if (allocs > 0) {
      state.counters["magazine_hit_rate"] =
          static_cast<double>(s.hits) / allocs;
    }
    if (total_ops > 0) {
      state.counters["magazine_hit/op"] =
          static_cast<double>(s.hits) / total_ops;
      state.counters["refill/op"] =
          static_cast<double>(s.refills) / total_ops;
      state.counters["flush/op"] =
          static_cast<double>(s.flushes) / total_ops;
    }
  }
}

// --- deque-level mixed workload ---------------------------------------------

template <typename D>
void BM_DequeMixed(benchmark::State& state) {
  static D* d = nullptr;
  static RunTelemetry* telemetry = nullptr;
  if (state.thread_index() == 0) {
    print_topology_once();
    d = new D(kCapacity);
    fill(*d, kPrefill);
    telemetry = new RunTelemetry(state.threads());
  }
  dcd::bench::pin_bench_thread(state);
  dcd::util::Xoshiro256 rng(0x5eedULL +
                            static_cast<std::uint64_t>(state.thread_index()));
  const std::uint64_t v = 1000 + static_cast<std::uint64_t>(
                                     state.thread_index());
  // Hand-rolled mixed_op so push-full failures are distinguishable from
  // pop-empty: an empty pop is a completed (linearizable) operation, but a
  // full push is allocator starvation — counting its near-no-op retry as
  // throughput would reward the starving configuration.
  std::int64_t push_full = 0;
  LatencySampler lat;
  const BackoffSnapshot before = BackoffSnapshot::take();
  for (auto _ : state) {
    const std::uint64_t t0 = lat.begin();
    switch (rng.below(4)) {
      case 0:
        if (d->push_right(v) != PushResult::kOkay) ++push_full;
        break;
      case 1:
        if (d->push_left(v) != PushResult::kOkay) ++push_full;
        break;
      case 2:
        benchmark::DoNotOptimize(d->pop_right());
        break;
      default:
        benchmark::DoNotOptimize(d->pop_left());
        break;
    }
    lat.end(t0);
  }
  state.SetItemsProcessed(state.iterations() - push_full);
  telemetry->submit(lat.histogram(), before);
  if (state.thread_index() == 0) {
    telemetry->report(state);
    dcd::bench::report_pinning(state);
    delete telemetry;
    telemetry = nullptr;
    attach_pool_counters(state, *d,
                         static_cast<double>(state.iterations()) *
                             static_cast<double>(state.threads()));
    delete d;
    d = nullptr;
  }
}

using ListMcasMagazine =
    ListDeque<std::uint64_t, McasDcas, EbrReclaim, MagazinePool>;
using ListMcasShared = ListDeque<std::uint64_t, McasDcas, EbrReclaim, NodePool>;
using ListStripedMagazine =
    ListDeque<std::uint64_t, StripedLockDcas, EbrReclaim, MagazinePool>;
using ListStripedShared =
    ListDeque<std::uint64_t, StripedLockDcas, EbrReclaim, NodePool>;

#define E11_MIXED(DequeType, tag)                 \
  BENCHMARK_TEMPLATE(BM_DequeMixed, DequeType)    \
      ->Name("E11_DequeMixed/" tag)               \
      ->Threads(1)                                \
      ->Threads(2)                                \
      ->Threads(4)                                \
      ->Threads(8)                                \
      ->UseRealTime();

E11_MIXED(ListMcasMagazine, "list_mcas_magazine")
E11_MIXED(ListMcasShared, "list_mcas_shared")
E11_MIXED(ListStripedMagazine, "list_striped_magazine")
E11_MIXED(ListStripedShared, "list_striped_shared")

#undef E11_MIXED

// --- allocator-only cycle ---------------------------------------------------

// One allocate + one EBR retire per iteration: the allocator's own
// scalability with the deque out of the picture. The EBR callbacks recycle
// nodes into the retiring thread's magazine (or back onto the shared
// head), so this is the steady-state alloc/free loop a deque workload
// induces.
template <typename PoolT>
void BM_PoolCycle(benchmark::State& state) {
  static PoolT* pool = nullptr;
  static EbrDomain* domain = nullptr;
  static RunTelemetry* telemetry = nullptr;
  if (state.thread_index() == 0) {
    print_topology_once();
    pool = new PoolT(64, 1 << 15);
    domain = new EbrDomain();
    telemetry = new RunTelemetry(state.threads());
  }
  dcd::bench::pin_bench_thread(state);
  std::int64_t served = 0;
  LatencySampler lat;
  const BackoffSnapshot before = BackoffSnapshot::take();
  for (auto _ : state) {
    const std::uint64_t t0 = lat.begin();
    EbrDomain::Guard guard(*domain);
    void* p = pool->allocate();
    if (p == nullptr) {
      // Same discipline as ListDeque::allocate_node: exhaustion usually
      // means the inventory is aging in limbo — collect and retry.
      domain->collect();
      p = pool->allocate();
    }
    if (p != nullptr) {
      domain->retire(p, PoolT::deallocate_cb, pool);
      ++served;
    }
    benchmark::DoNotOptimize(p);
    lat.end(t0);
  }
  // Only completed cycles count: when limbo outpaces the grace period a
  // failed allocate is a near-no-op, and counting it would reward
  // exhaustion with apparent throughput.
  state.SetItemsProcessed(served);
  telemetry->submit(lat.histogram(), before);
  if (state.thread_index() == 0) {
    telemetry->report(state);
    dcd::bench::report_pinning(state);
    delete telemetry;
    telemetry = nullptr;
    attach_pool_counters(state, *pool, 0);
    delete domain;  // drains limbo back into the pool
    delete pool;
    domain = nullptr;
    pool = nullptr;
  }
}

// MagazinePool exposes stats() directly; adapt it to the deque-style
// `pool()` accessor attach_pool_counters expects.
struct MagazinePoolRef {
  const MagazinePool& p;
  const MagazinePool& pool() const { return p; }
};

template <>
void attach_pool_counters<MagazinePool>(benchmark::State& state,
                                        const MagazinePool& p,
                                        double total_ops) {
  attach_pool_counters(state, MagazinePoolRef{p}, total_ops);
}

#define E11_CYCLE(PoolType, tag)                \
  BENCHMARK_TEMPLATE(BM_PoolCycle, PoolType)    \
      ->Name("E11_PoolCycle/" tag)              \
      ->Threads(1)                              \
      ->Threads(2)                              \
      ->Threads(4)                              \
      ->Threads(8)                              \
      ->UseRealTime();

E11_CYCLE(MagazinePool, "magazine")
E11_CYCLE(NodePool, "shared")

#undef E11_CYCLE

// --- single-thread acceptance gate ------------------------------------------

template <typename D>
void BM_OneThreadMixed(benchmark::State& state) {
  D d(kCapacity);
  fill(d, kPrefill);
  dcd::util::Xoshiro256 rng(0x5eedULL);
  reset_telemetry();
  for (auto _ : state) {
    (void)mixed_op(d, rng, 7);
  }
  report_telemetry(state);  // dcas/op must match across the two rows
  attach_pool_counters(state, d, static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_OneThreadMixed<ListMcasMagazine>)
    ->Name("E11_OneThread/list_mcas_magazine");
BENCHMARK(BM_OneThreadMixed<ListMcasShared>)
    ->Name("E11_OneThread/list_mcas_shared");

}  // namespace
