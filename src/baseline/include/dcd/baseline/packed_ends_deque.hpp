// A Greenwald-style array deque with both end indices packed in one word.
//
// §1.1 critiques Greenwald's first array-based deque (pp. 196-197 of [16]):
// it "uses the two-word DCAS as if it were a three-word operation, keeping
// the two deque end pointers in the same memory word, and DCAS-ing on it
// and a second word containing a value. Apart from the fact that this
// limits applicability by cutting the index range to half a memory word, it
// also prevents concurrent access to the two deque ends."
//
// This class is that design, rebuilt on our substrate so the critique is
// measurable (E2's packed_ends rows): every operation — left or right —
// DCASes the single {L,R} word, so opposite-end operations conflict
// unconditionally, and each index is confined to 29 bits of the 61-bit
// payload. The per-operation logic mirrors ArrayDeque (cells disambiguate
// empty vs full), but with both indices visible atomically the boundary
// checks need no separate confirming re-read of the index word.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::baseline {

template <typename T, dcas::DcasPolicy Dcas = dcas::DefaultDcas>
class PackedEndsDeque {
  static_assert(dcas::DcasPolicy<Dcas>,
                "PackedEndsDeque requires a policy providing both Figure 1 "
                "DCAS forms (see dcd/dcas/concepts.hpp)");
  static_assert(std::is_trivially_copyable_v<T>,
                "values are stored as raw 61-bit word payloads");

 public:
  using value_type = T;
  using Codec = deque::ValueCodec<T>;

  static constexpr std::size_t kMaxCapacity = (1ull << 29) - 1;

  explicit PackedEndsDeque(std::size_t capacity) : n_(capacity) {
    DCD_ASSERT(capacity >= 1 && capacity <= kMaxCapacity);
    s_ = std::make_unique<dcas::Word[]>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      Dcas::store_init(s_[i], dcas::kNull);
    }
    Dcas::store_init(*ends_, pack(0, 1 % n_));
  }

  PackedEndsDeque(const PackedEndsDeque&) = delete;
  PackedEndsDeque& operator=(const PackedEndsDeque&) = delete;

  std::size_t capacity() const noexcept { return n_; }

  deque::PushResult push_right(T v) {
    const std::uint64_t vw = Codec::encode(v);
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t ends = Dcas::load(*ends_);
      const std::size_t l = left_of(ends), r = right_of(ends);
      const std::uint64_t cell = Dcas::load(s_[r]);
      if (!dcas::is_null(cell)) {
        // Both indices were read atomically, but fullness still needs the
        // cell content (same ambiguity as §3), confirmed by DCAS.
        // DCD_SYNC(empty.confirm)
        if (Dcas::dcas(*ends_, s_[r], ends, cell, ends, cell)) {
          return deque::PushResult::kFull;
        }
        // DCD_SYNC(dcas.any)
      } else if (Dcas::dcas(*ends_, s_[r], ends, cell,
                            pack(l, mod_inc(r)), vw)) {
        return deque::PushResult::kOkay;
      }
      backoff.pause();
    }
  }

  deque::PushResult push_left(T v) {
    const std::uint64_t vw = Codec::encode(v);
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t ends = Dcas::load(*ends_);
      const std::size_t l = left_of(ends), r = right_of(ends);
      const std::uint64_t cell = Dcas::load(s_[l]);
      if (!dcas::is_null(cell)) {
        // DCD_SYNC(empty.confirm)
        if (Dcas::dcas(*ends_, s_[l], ends, cell, ends, cell)) {
          return deque::PushResult::kFull;
        }
        // DCD_SYNC(dcas.any)
      } else if (Dcas::dcas(*ends_, s_[l], ends, cell,
                            pack(mod_dec(l), r), vw)) {
        return deque::PushResult::kOkay;
      }
      backoff.pause();
    }
  }

  std::optional<T> pop_right() {
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t ends = Dcas::load(*ends_);
      const std::size_t l = left_of(ends), r = right_of(ends);
      const std::size_t target = mod_dec(r);
      const std::uint64_t cell = Dcas::load(s_[target]);
      if (dcas::is_null(cell)) {
        // DCD_SYNC(empty.confirm)
        if (Dcas::dcas(*ends_, s_[target], ends, cell, ends, cell)) {
          return std::nullopt;
        }
        // DCD_SYNC(pop.commit)
      } else if (Dcas::dcas(*ends_, s_[target], ends, cell,
                            pack(l, target), dcas::kNull)) {
        return Codec::decode(cell);
      }
      backoff.pause();
    }
  }

  std::optional<T> pop_left() {
    util::Backoff backoff;
    for (;;) {
      const std::uint64_t ends = Dcas::load(*ends_);
      const std::size_t l = left_of(ends), r = right_of(ends);
      const std::size_t target = mod_inc(l);
      const std::uint64_t cell = Dcas::load(s_[target]);
      if (dcas::is_null(cell)) {
        // DCD_SYNC(empty.confirm)
        if (Dcas::dcas(*ends_, s_[target], ends, cell, ends, cell)) {
          return std::nullopt;
        }
        // DCD_SYNC(pop.commit)
      } else if (Dcas::dcas(*ends_, s_[target], ends, cell,
                            pack(target, r), dcas::kNull)) {
        return Codec::decode(cell);
      }
      backoff.pause();
    }
  }

  // Quiescent inspection (tests only): acquire pairs with the releasing
  // DCAS of whichever operation last wrote each cell.
  std::size_t size_unsynchronized() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (!dcas::is_null(s_[i].raw.load(std::memory_order_acquire))) ++count;
    }
    return count;
  }

 private:
  static std::uint64_t pack(std::size_t l, std::size_t r) noexcept {
    return dcas::encode_payload((static_cast<std::uint64_t>(l) << 29) |
                                static_cast<std::uint64_t>(r));
  }
  static std::size_t left_of(std::uint64_t ends) noexcept {
    return static_cast<std::size_t>(dcas::decode_payload(ends) >> 29);
  }
  static std::size_t right_of(std::uint64_t ends) noexcept {
    return static_cast<std::size_t>(dcas::decode_payload(ends) &
                                    ((1ull << 29) - 1));
  }
  std::size_t mod_inc(std::size_t i) const noexcept { return (i + 1) % n_; }
  std::size_t mod_dec(std::size_t i) const noexcept {
    return (i + n_ - 1) % n_;
  }

  std::size_t n_;
  util::CacheAligned<dcas::Word> ends_;  // {L:29, R:29} in one word
  std::unique_ptr<dcas::Word[]> s_;
};

}  // namespace dcd::baseline
