// Coarse-grained blocking baseline: one mutex around std::deque.
//
// The simplest correct implementation; E5 uses it as the "what you get
// without any cleverness" floor/ceiling. Bounded so it satisfies the same
// §2.2 sequential specification as ArrayDeque.
#pragma once

#include <deque>
#include <mutex>
#include <optional>

#include "dcd/deque/types.hpp"

namespace dcd::baseline {

template <typename T>
class MutexDeque {
 public:
  using value_type = T;

  explicit MutexDeque(std::size_t capacity) : capacity_(capacity) {}

  deque::PushResult push_right(T v) {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.size() >= capacity_) return deque::PushResult::kFull;
    items_.push_back(std::move(v));
    return deque::PushResult::kOkay;
  }

  deque::PushResult push_left(T v) {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.size() >= capacity_) return deque::PushResult::kFull;
    items_.push_front(std::move(v));
    return deque::PushResult::kOkay;
  }

  std::optional<T> pop_right() {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.back());
    items_.pop_back();
    return v;
  }

  std::optional<T> pop_left() {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace dcd::baseline
