// Spinlock-protected ring-buffer deque.
//
// Same coarse-grained structure as MutexDeque but with a TTAS spinlock and
// an inline ring buffer — no allocator traffic, no futex syscalls. This is
// the strongest *simple* blocking baseline for E5's short-critical-section
// workloads.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "dcd/deque/types.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::baseline {

template <typename T>
class SpinDeque {
 public:
  using value_type = T;

  explicit SpinDeque(std::size_t capacity)
      : capacity_(capacity), buf_(std::make_unique<T[]>(capacity)) {}

  deque::PushResult push_right(T v) {
    Lock g(*this);
    if (size_ == capacity_) return deque::PushResult::kFull;
    buf_[(head_ + size_) % capacity_] = std::move(v);
    ++size_;
    return deque::PushResult::kOkay;
  }

  deque::PushResult push_left(T v) {
    Lock g(*this);
    if (size_ == capacity_) return deque::PushResult::kFull;
    head_ = (head_ + capacity_ - 1) % capacity_;
    buf_[head_] = std::move(v);
    ++size_;
    return deque::PushResult::kOkay;
  }

  std::optional<T> pop_right() {
    Lock g(*this);
    if (size_ == 0) return std::nullopt;
    --size_;
    return std::move(buf_[(head_ + size_) % capacity_]);
  }

  std::optional<T> pop_left() {
    Lock g(*this);
    if (size_ == 0) return std::nullopt;
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return v;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  class Lock {
   public:
    explicit Lock(SpinDeque& d) : d_(d) {
      util::Backoff backoff;
      for (;;) {
        if (!d_.flag_.exchange(true, std::memory_order_acquire)) return;
        while (d_.flag_.load(std::memory_order_relaxed)) backoff.pause();
      }
    }
    ~Lock() { d_.flag_.store(false, std::memory_order_release); }

   private:
    SpinDeque& d_;
  };

  const std::size_t capacity_;
  std::unique_ptr<T[]> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::atomic<bool> flag_{false};
};

}  // namespace dcd::baseline
