// Fine-grained blocking baseline: one lock per end.
//
// A doubly-linked list between two sentinels, with a left lock and a right
// lock. When the deque is long, the ends touch disjoint nodes and proceed
// in parallel (the blocking analogue of the paper's "uninterrupted
// concurrent access to both ends"); when the population falls below a
// safety margin, operations take both locks (in a fixed order) because the
// ends' working sets overlap. E2/E5 compare this against the DCAS deques.
//
// Safety argument for the margin: an end operation touches at most the
// outermost two nodes of its end. Single-lock operations require
// count >= kBothLockThreshold (= 4) *under their own lock* before touching
// the list, so even with one in-flight single-lock operation per end the
// two working sets are separated by at least one node.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>

#include "dcd/deque/types.hpp"

namespace dcd::baseline {

template <typename T>
class TwoLockDeque {
 public:
  using value_type = T;

  explicit TwoLockDeque(std::size_t capacity) : capacity_(capacity) {
    head_.next = &tail_;
    tail_.prev = &head_;
  }

  ~TwoLockDeque() {
    Node* n = head_.next;
    while (n != &tail_) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  TwoLockDeque(const TwoLockDeque&) = delete;
  TwoLockDeque& operator=(const TwoLockDeque&) = delete;

  deque::PushResult push_right(T v) {
    for (;;) {
      if (fast_region_for_push()) {
        std::lock_guard<std::mutex> g(right_mu_);
        if (!fast_region_for_push()) continue;  // shrank/grew; use both locks
        return insert_before(&tail_, std::move(v));
      }
      std::scoped_lock g(left_mu_, right_mu_);
      return insert_before(&tail_, std::move(v));
    }
  }

  deque::PushResult push_left(T v) {
    for (;;) {
      if (fast_region_for_push()) {
        std::lock_guard<std::mutex> g(left_mu_);
        if (!fast_region_for_push()) continue;
        return insert_after(&head_, std::move(v));
      }
      std::scoped_lock g(left_mu_, right_mu_);
      return insert_after(&head_, std::move(v));
    }
  }

  std::optional<T> pop_right() {
    for (;;) {
      if (fast_region_for_pop()) {
        std::lock_guard<std::mutex> g(right_mu_);
        if (!fast_region_for_pop()) continue;
        return remove(tail_.prev);
      }
      std::scoped_lock g(left_mu_, right_mu_);
      if (count_.load(std::memory_order_relaxed) == 0) return std::nullopt;
      return remove(tail_.prev);
    }
  }

  std::optional<T> pop_left() {
    for (;;) {
      if (fast_region_for_pop()) {
        std::lock_guard<std::mutex> g(left_mu_);
        if (!fast_region_for_pop()) continue;
        return remove(head_.next);
      }
      std::scoped_lock g(left_mu_, right_mu_);
      if (count_.load(std::memory_order_relaxed) == 0) return std::nullopt;
      return remove(head_.next);
    }
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Node {
    Node* prev = nullptr;
    Node* next = nullptr;
    T value{};
  };

  static constexpr std::size_t kBothLockThreshold = 4;

  bool fast_region_for_pop() const noexcept {
    // DCD_HB_EXEMPT(heuristic mode pick; the taken lock carries the real edge and a stale read only costs a slow-path trip)
    return count_.load(std::memory_order_acquire) >= kBothLockThreshold;
  }
  bool fast_region_for_push() const noexcept {
    // DCD_HB_EXEMPT(heuristic mode pick; the taken lock carries the real edge and a stale read only costs a slow-path trip)
    const std::size_t c = count_.load(std::memory_order_acquire);
    // Stay out of both-lock mode only when comfortably inside the
    // boundaries: far from empty (end collision) and far from capacity
    // (so concurrent pushes cannot overshoot the bound).
    return c >= kBothLockThreshold && c + 2 <= capacity_;
  }

  deque::PushResult insert_before(Node* pos, T v) {
    if (count_.load(std::memory_order_relaxed) >= capacity_) {
      return deque::PushResult::kFull;
    }
    Node* n = new Node{pos->prev, pos, std::move(v)};
    pos->prev->next = n;
    pos->prev = n;
    count_.fetch_add(1, std::memory_order_release);
    return deque::PushResult::kOkay;
  }

  deque::PushResult insert_after(Node* pos, T v) {
    if (count_.load(std::memory_order_relaxed) >= capacity_) {
      return deque::PushResult::kFull;
    }
    Node* n = new Node{pos, pos->next, std::move(v)};
    pos->next->prev = n;
    pos->next = n;
    count_.fetch_add(1, std::memory_order_release);
    return deque::PushResult::kOkay;
  }

  std::optional<T> remove(Node* n) {
    T v = std::move(n->value);
    n->prev->next = n->next;
    n->next->prev = n->prev;
    count_.fetch_sub(1, std::memory_order_release);
    delete n;
    return v;
  }

  const std::size_t capacity_;
  std::mutex left_mu_;
  std::mutex right_mu_;
  std::atomic<std::size_t> count_{0};
  Node head_;  // left sentinel
  Node tail_;  // right sentinel
};

}  // namespace dcd::baseline
