// The CAS-only work-stealing deque of Arora, Blumofe & Plaxton [4].
//
// The paper positions this as the "elegant CAS-based deque" with restricted
// semantics: one end (here: the bottom/right) is used only by a single
// owner thread for push/pop, the other end (top/left) supports only pops
// ("steals") — exactly the restrictions that let ABP avoid DCAS. E5/E6
// compare it against the general DCAS deques on its own legal workload.
//
// The age word packs {tag, top} so that popBottom's reset of top and the
// tag increment happen in one CAS — the classic ABA defence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::baseline {

template <typename T>
class AroraDeque {
 public:
  using value_type = T;
  using Codec = deque::ValueCodec<T>;

  explicit AroraDeque(std::size_t capacity)
      : capacity_(capacity),
        cells_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)) {
    DCD_ASSERT(capacity >= 1 && capacity <= 0xffffffffull);
  }

  // Owner only.
  deque::PushResult push_bottom(T v) {
    const std::uint64_t bot = bot_->load(std::memory_order_relaxed);
    const std::uint64_t top = top_of(age_->load(std::memory_order_acquire));
    if (bot - top >= capacity_) return deque::PushResult::kFull;
    cells_[bot % capacity_].store(Codec::encode(v),
                                  std::memory_order_relaxed);
    // DCD_HB(abp.age.protocol, role=release)
    bot_->store(bot + 1, std::memory_order_release);
    return deque::PushResult::kOkay;
  }

  // Owner only. Verbatim ABP PopBottom: when the last element is (or may
  // be) contended with thieves, the deque is reset to the canonical empty
  // state {top = 0, bot = 0} with the tag bumped so stale thief CASes
  // cannot succeed against the new round.
  std::optional<T> pop_bottom() {
    std::uint64_t bot = bot_->load(std::memory_order_relaxed);
    if (bot == 0) return std::nullopt;  // empty (canonical)
    --bot;
    bot_->store(bot, std::memory_order_seq_cst);
    const std::uint64_t word =
        cells_[bot % capacity_].load(std::memory_order_relaxed);
    const std::uint64_t old_age = age_->load(std::memory_order_seq_cst);
    const std::uint64_t top = top_of(old_age);
    if (bot > top) {
      return Codec::decode(word);  // no conflict possible
    }
    bot_->store(0, std::memory_order_seq_cst);
    const std::uint64_t new_age = make_age(tag_of(old_age) + 1, 0);
    if (bot == top) {
      std::uint64_t expected = old_age;
      // DCD_SYNC(baseline-rival)
      if (age_->compare_exchange_strong(expected, new_age,
                                        std::memory_order_seq_cst)) {
        return Codec::decode(word);  // won the race against thieves
      }
    }
    age_->store(new_age, std::memory_order_seq_cst);
    return std::nullopt;
  }

  // Any thread ("thief").
  std::optional<T> steal() {
    const std::uint64_t old_age = age_->load(std::memory_order_seq_cst);
    const std::uint64_t bot = bot_->load(std::memory_order_seq_cst);
    const std::uint64_t top = top_of(old_age);
    if (bot <= top) return std::nullopt;  // empty
    const std::uint64_t word =
        cells_[top % capacity_].load(std::memory_order_relaxed);
    std::uint64_t expected = old_age;
    // DCD_SYNC(baseline-rival)
    // DCD_HB(abp.age.protocol, role=acquire)
    if (age_->compare_exchange_strong(expected,
                                      make_age(tag_of(old_age), top + 1),
                                      std::memory_order_seq_cst)) {
      return Codec::decode(word);
    }
    return std::nullopt;  // lost to another thief or the owner
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size_estimate() const noexcept {
    const std::uint64_t bot = bot_->load(std::memory_order_acquire);
    const std::uint64_t top = top_of(age_->load(std::memory_order_acquire));
    return bot > top ? static_cast<std::size_t>(bot - top) : 0;
  }

 private:
  static std::uint64_t top_of(std::uint64_t age) noexcept {
    return age & 0xffffffffull;
  }
  static std::uint64_t tag_of(std::uint64_t age) noexcept { return age >> 32; }
  static std::uint64_t make_age(std::uint64_t tag, std::uint64_t top) noexcept {
    return (tag << 32) | (top & 0xffffffffull);
  }

  const std::size_t capacity_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  util::CacheAligned<std::atomic<std::uint64_t>> age_;  // {tag, top}
  util::CacheAligned<std::atomic<std::uint64_t>> bot_;
};

}  // namespace dcd::baseline
