#include "dcd/util/topology.hpp"

#include <thread>

namespace dcd::util {

Topology probe_topology() {
  const unsigned hw = std::thread::hardware_concurrency();
  Topology t;
  t.hardware_threads = hw == 0 ? 1 : hw;
  t.single_core = t.hardware_threads <= 1;
  return t;
}

std::string Topology::describe() const {
  std::string s = "hardware_threads=" + std::to_string(hardware_threads);
  if (single_core) {
    s += " (single core: thread interleaving is preemptive, throughput "
         "numbers measure algorithmic overhead, not parallel speedup)";
  }
  return s;
}

}  // namespace dcd::util
