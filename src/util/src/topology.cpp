#include "dcd/util/topology.hpp"

#include <thread>

// glibc's pthread_setaffinity_np needs _GNU_SOURCE, which libstdc++
// defines unconditionally on Linux; gate on the platform + the macro so a
// non-GNU libc simply reports "unsupported" instead of failing to build.
#if defined(__linux__) && defined(_GNU_SOURCE)
#define DCD_HAVE_PTHREAD_AFFINITY 1
#include <pthread.h>
#include <sched.h>
#else
#define DCD_HAVE_PTHREAD_AFFINITY 0
#endif

namespace dcd::util {

Topology probe_topology() {
  const unsigned hw = std::thread::hardware_concurrency();
  Topology t;
  t.hardware_threads = hw == 0 ? 1 : hw;
  t.single_core = t.hardware_threads <= 1;
  return t;
}

std::string Topology::describe() const {
  std::string s = "hardware_threads=" + std::to_string(hardware_threads);
  if (single_core) {
    s += " (single core: thread interleaving is preemptive, throughput "
         "numbers measure algorithmic overhead, not parallel speedup)";
  }
  return s;
}

bool pin_current_thread(std::size_t slot) noexcept {
#if DCD_HAVE_PTHREAD_AFFINITY
  const std::size_t ncpu = probe_topology().hardware_threads;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(slot % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

const char* affinity_mechanism() noexcept {
#if DCD_HAVE_PTHREAD_AFFINITY
  return "pthread_setaffinity_np";
#else
  return "unsupported";
#endif
}

}  // namespace dcd::util
