#include "dcd/util/stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace dcd::util {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  n_ += other.n_;
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Log2Histogram::add(std::uint64_t x) noexcept {
  const int bucket = x == 0 ? 0 : std::bit_width(x) - 1;
  ++buckets_[bucket];
  ++total_;
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

std::uint64_t Log2Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 63 ? ~0ull : (1ull << (i + 1)) - 1;
    }
  }
  return ~0ull;
}

int LatencyHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<int>(v);  // exact region
  const int top = std::bit_width(v) - 1;     // >= kSubBits
  const int shift = top - kSubBits;
  const int sub = static_cast<int>((v >> shift) & (kSub - 1));
  return (top - kSubBits + 1) * kSub + sub;
}

std::uint64_t LatencyHistogram::bucket_representative(int index) noexcept {
  if (index < kSub) return static_cast<std::uint64_t>(index);
  const int block = index / kSub;            // >= 1
  const int sub = index % kSub;
  const int top = block + kSubBits - 1;
  const int shift = top - kSubBits;
  const std::uint64_t lower =
      (static_cast<std::uint64_t>(kSub + sub)) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return lower + width / 2;
}

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  ++buckets_[bucket_index(ns)];
  ++total_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b = 0;
  total_ = 0;
}

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_representative(i);
  }
  return bucket_representative(kBuckets - 1);
}

std::string Log2Histogram::to_string() const {
  std::string out;
  char line[96];
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "[2^%02d, 2^%02d): %llu\n", i, i + 1,
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

}  // namespace dcd::util
