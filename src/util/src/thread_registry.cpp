#include "dcd/util/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace dcd::util {

CacheAligned<ThreadRegistry::Slot>
    ThreadRegistry::slots_[ThreadRegistry::kMaxThreads];
std::atomic<std::size_t> ThreadRegistry::watermark_{0};

struct ThreadRegistry::Lease {
  std::size_t slot = kMaxThreads;

  ~Lease() {
    if (slot < kMaxThreads) {
      slots_[slot]->taken.store(false, std::memory_order_release);
    }
  }
};

std::size_t ThreadRegistry::self() {
  thread_local Lease lease;
  if (lease.slot < kMaxThreads) {
    return lease.slot;
  }
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i]->taken.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      lease.slot = i;
      // Publish the highest slot index ever used so scanners can stop early.
      std::size_t wm = watermark_.load(std::memory_order_relaxed);
      while (wm < i + 1 && !watermark_.compare_exchange_weak(
                               wm, i + 1, std::memory_order_acq_rel)) {
      }
      return i;
    }
  }
  std::fprintf(stderr,
               "dcd::util::ThreadRegistry: more than %zu live threads\n",
               kMaxThreads);
  std::abort();
}

std::size_t ThreadRegistry::high_watermark() {
  return watermark_.load(std::memory_order_acquire);
}

bool ThreadRegistry::slot_live(std::size_t slot) {
  return slot < kMaxThreads &&
         slots_[slot]->taken.load(std::memory_order_acquire);
}

}  // namespace dcd::util
