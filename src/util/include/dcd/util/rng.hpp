// Small deterministic PRNGs for workloads and tests.
//
// Tests and benchmarks must be reproducible from a seed, so everything
// random in this repo flows through SplitMix64 (seeding) and Xoshiro256**
// (bulk generation). Both are public-domain algorithms by Blackman/Vigna.
#pragma once

#include <cstdint>

namespace dcd::util {

// SplitMix64: good for expanding one 64-bit seed into independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: fast general-purpose generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace dcd::util
