// Sense-reversing spin barrier for benchmark start lines.
//
// std::barrier is heavier than needed and its completion callback ordering
// is inconvenient for measurement windows; this barrier lets every worker
// hit the timed region within a handful of cycles of each other and yields
// while waiting so it behaves on machines with fewer cores than threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "dcd/util/backoff.hpp"

namespace dcd::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    Backoff backoff(64);
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      backoff.pause();
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace dcd::util
