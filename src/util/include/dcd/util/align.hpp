// Cache-line layout helpers.
//
// Contended shared words are padded to a destructive-interference boundary
// so that independent words (e.g. the deque's L and R indices, which the
// paper stresses can be operated on concurrently) never share a line.
#pragma once

#include <cstddef>
#include <new>

namespace dcd::util {

// std::hardware_destructive_interference_size is 64 on every x86-64 libc we
// target but is not always defined; pin the value so ABI does not drift.
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps T in its own cache line. T must be at most one line wide.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CacheAligned<char>) == kCacheLineSize);
static_assert(alignof(CacheAligned<char>) == kCacheLineSize);

}  // namespace dcd::util
