// Monotonic timing helper.
#pragma once

#include <chrono>
#include <cstdint>

namespace dcd::util {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  clock::time_point start_;
};

}  // namespace dcd::util
