// Process-wide small-integer thread identities.
//
// The EBR reclamation domain and the MCAS descriptor pools need a dense
// per-thread slot index. A thread claims a slot the first time it calls
// ThreadRegistry::self() and releases it automatically at thread exit, so
// short-lived test threads recycle slots instead of exhausting them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "dcd/util/align.hpp"

namespace dcd::util {

class ThreadRegistry {
 public:
  // Upper bound on concurrently live registered threads. Slots recycle, so
  // the total number of threads over a process lifetime is unbounded.
  static constexpr std::size_t kMaxThreads = 128;

  // Dense id of the calling thread in [0, kMaxThreads). Claims a slot on
  // first use; aborts if more than kMaxThreads threads are live at once.
  static std::size_t self();

  // Number of slots that have ever been claimed and are currently live.
  // Used by EBR's epoch scan.
  static std::size_t high_watermark();

  // True if the slot is currently owned by a live thread.
  static bool slot_live(std::size_t slot);

 private:
  struct Slot {
    std::atomic<bool> taken{false};
  };

  struct Lease;  // RAII releaser, defined in the .cpp.

  static CacheAligned<Slot> slots_[kMaxThreads];
  static std::atomic<std::size_t> watermark_;
};

}  // namespace dcd::util
