// Host topology probe.
//
// The benchmark harness reports hardware concurrency alongside results so
// that single-core hosts (where "parallel" throughput is really preemptive
// interleaving) are distinguishable from true multiprocessors — see
// EXPERIMENTS.md for why this matters when comparing against the paper's
// qualitative claims.
#pragma once

#include <cstddef>
#include <string>

namespace dcd::util {

struct Topology {
  std::size_t hardware_threads;
  bool single_core;  // true when hardware_threads <= 1

  std::string describe() const;
};

Topology probe_topology();

}  // namespace dcd::util
