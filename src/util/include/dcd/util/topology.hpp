// Host topology probe.
//
// The benchmark harness reports hardware concurrency alongside results so
// that single-core hosts (where "parallel" throughput is really preemptive
// interleaving) are distinguishable from true multiprocessors — see
// EXPERIMENTS.md for why this matters when comparing against the paper's
// qualitative claims.
#pragma once

#include <cstddef>
#include <string>

namespace dcd::util {

struct Topology {
  std::size_t hardware_threads;
  bool single_core;  // true when hardware_threads <= 1

  std::string describe() const;
};

Topology probe_topology();

// Best-effort pinning of the calling thread to hardware CPU
// `slot % hardware_threads`. Returns true when the affinity call exists on
// this platform AND succeeded; false otherwise (the caller keeps running
// unpinned — benches record the outcome instead of failing). Pinning is
// what makes a contention sweep honest on a multi-core host: without it
// the scheduler migrates the threads mid-run and the per-thread-count
// rows measure placement luck, not the algorithm.
bool pin_current_thread(std::size_t slot) noexcept;

// The mechanism pin_current_thread compiles down to, for recording in the
// benchmark context: "pthread_setaffinity_np" or "unsupported".
const char* affinity_mechanism() noexcept;

}  // namespace dcd::util
