// Latency/throughput summaries for the benchmark harness.
//
// google-benchmark reports wall time per iteration; the experiment harness
// additionally wants retry counts and tail latencies, which it collects
// through these types and prints as extra counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcd::util {

// Streaming summary: count / mean / min / max / variance (Welford).
class Summary {
 public:
  void add(double x) noexcept;
  void merge(const Summary& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket log2 histogram of non-negative integer samples (e.g. retry
// counts, cycle latencies). Bucket i holds samples in [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t x) noexcept;
  void merge(const Log2Histogram& other) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(int i) const noexcept { return buckets_[i]; }

  // Approximate p-quantile (0 < q <= 1) as the upper bound of the bucket
  // containing it.
  std::uint64_t quantile(double q) const noexcept;

  std::string to_string() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

// Per-op latency histogram with enough resolution for a regression gate.
//
// Log2Histogram's power-of-two buckets quantise a p99 to within 2x — too
// coarse to compare across runs. This variant splits every octave into 16
// linear sub-buckets (values below 16 are exact), bounding the relative
// error of any reported percentile to ~1/16 while staying a fixed-size
// array of counters: single-writer record() is one increment, merge() is a
// vector add, so per-thread instances can be combined after a run with no
// synchronisation on the hot path.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;                       // 16 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSub;

  void record(std::uint64_t ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;
  void reset() noexcept;

  std::uint64_t total() const noexcept { return total_; }

  // Value at quantile q (0 < q <= 1): the representative (midpoint) of the
  // bucket holding the ceil(q * total)-th smallest sample; 0 when empty.
  std::uint64_t percentile(double q) const noexcept;

  // Bucket mapping, exposed so the quantisation error is unit-testable
  // without recording 2^40 samples: for any v,
  //   bucket_representative(bucket_index(v)) is within v/16 of v.
  static int bucket_index(std::uint64_t v) noexcept;
  static std::uint64_t bucket_representative(int index) noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace dcd::util
