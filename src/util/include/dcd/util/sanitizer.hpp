// Sanitizer interop.
//
// DCD_NO_SANITIZE_THREAD disables ThreadSanitizer instrumentation for one
// function. Used only where a benign-by-design race is inherent to a
// published algorithm: LFRC re-initialises recycled (type-stable) object
// headers that stale readers may still probe — the stale value is always
// discarded via a failed validation DCAS, but the C++ memory model calls
// the overlap a race. Keep the annotation on the *re-init* side so readers
// stay fully instrumented.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define DCD_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DCD_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define DCD_NO_SANITIZE_THREAD
#endif
#else
#define DCD_NO_SANITIZE_THREAD
#endif

// DCD_NO_SANITIZE_ADDRESS mirrors the above for AddressSanitizer. Same
// policy applies: annotate only functions whose out-of-lifetime access is
// part of a published algorithm's contract (type-stable pools probed by
// stale readers), never to paper over an actual bug, and always with an
// adjacent comment saying why — the atomics auditor enforces the comment.
#if defined(__SANITIZE_ADDRESS__)
#define DCD_NO_SANITIZE_ADDRESS __attribute__((no_sanitize("address")))
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DCD_NO_SANITIZE_ADDRESS __attribute__((no_sanitize("address")))
#else
#define DCD_NO_SANITIZE_ADDRESS
#endif
#else
#define DCD_NO_SANITIZE_ADDRESS
#endif
