// Lightweight always-on invariant checks for the dcd library.
//
// Lock-free code fails in ways that ordinary asserts compiled out in release
// builds would silently miss, so DCD_ASSERT stays enabled in all build
// types. The cost is a predictable branch per check; none of the checks sit
// on an operation's retry path.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dcd::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "dcd assertion failed: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace dcd::util

#define DCD_ASSERT(expr)                                     \
  do {                                                       \
    if (!(expr)) {                                           \
      ::dcd::util::assert_fail(#expr, __FILE__, __LINE__);   \
    }                                                        \
  } while (0)

// Checks that document algorithm invariants but are too hot for release
// builds; enabled when NDEBUG is not defined.
#ifndef NDEBUG
#define DCD_DEBUG_ASSERT(expr) DCD_ASSERT(expr)
#else
#define DCD_DEBUG_ASSERT(expr) \
  do {                         \
  } while (0)
#endif
