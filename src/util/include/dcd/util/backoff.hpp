// Bounded exponential backoff for retry loops.
//
// On a machine with fewer hardware threads than software threads (notably
// the single-core CI host this repo is developed on), pure spinning starves
// the thread that would make progress, so the backoff escalates from PAUSE
// to sched_yield once the spin budget is exhausted. All retry loops in the
// deque implementations take an optional Backoff so tests can run reliably
// regardless of core count.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dcd::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier so the loop is not optimised into a
  // re-read-free spin.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // `spin_limit` bounds the number of PAUSE iterations in the final
  // doubling step before the backoff starts yielding the CPU.
  explicit Backoff(std::uint32_t spin_limit = 1024) noexcept
      : spin_limit_(spin_limit) {}

  // Call once per failed attempt.
  void pause() noexcept {
    if (current_ <= spin_limit_) {
      for (std::uint32_t i = 0; i < current_; ++i) {
        cpu_relax();
      }
      current_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { current_ = 1; }

  // Number of pause() calls since construction/reset; used by benches to
  // report retry pressure.
  std::uint64_t pauses() const noexcept { return count_helper(); }

 private:
  std::uint64_t count_helper() const noexcept {
    // current_ doubles from 1, so log2(current_) == number of spin rounds.
    std::uint64_t n = 0;
    for (std::uint32_t c = current_; c > 1; c /= 2) ++n;
    return n;
  }

  std::uint32_t spin_limit_;
  std::uint32_t current_ = 1;
};

}  // namespace dcd::util
