// Bounded exponential backoff for retry loops.
//
// On a machine with fewer hardware threads than software threads (notably
// the single-core CI host this repo is developed on), pure spinning starves
// the thread that would make progress, so the backoff escalates from PAUSE
// to sched_yield once the spin budget is exhausted. All retry loops in the
// deque implementations take an optional Backoff so tests can run reliably
// regardless of core count.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dcd::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier so the loop is not optimised into a
  // re-read-free spin.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  // `spin_limit` bounds the number of PAUSE iterations in the final
  // doubling step before the backoff starts yielding the CPU.
  explicit Backoff(std::uint32_t spin_limit = 1024) noexcept
      : spin_limit_(spin_limit) {}

  // Call once per failed attempt.
  void pause() noexcept {
    ++pauses_;
    if (current_ <= spin_limit_) {
      for (std::uint32_t i = 0; i < current_; ++i) {
        cpu_relax();
      }
      current_ = next_budget(current_);
    } else {
      ++yields_;
      std::this_thread::yield();
    }
  }

  void reset() noexcept {
    current_ = 1;
    pauses_ = 0;
    yields_ = 0;
  }

  // Exact number of pause() calls since construction/reset — spin and
  // yield regime alike; used by benches to report retry pressure. (An
  // earlier version derived this as log2 of the spin budget, which froze
  // once escalation to yield() stopped the budget from doubling.)
  std::uint64_t pauses() const noexcept { return pauses_; }

  // Exact number of pause() calls that escalated to sched_yield. The spin
  // budget itself is useless as an escalation metric: it stops doubling at
  // the spin limit, so "how hard did we back off" derived from it silently
  // caps the moment the interesting regime begins. Benches report this
  // count directly (yields/op) instead.
  std::uint64_t yields() const noexcept { return yields_; }

  // Next spin budget: doubles, saturating instead of wrapping. Without the
  // saturation a spin_limit >= 2^31 let `current_ * 2` wrap a uint32_t to
  // 0, degenerating every later pause() into a zero-spin busy loop. Pure
  // so the overflow boundary is unit-testable without spinning 2^31 times.
  static constexpr std::uint32_t next_budget(std::uint32_t current) noexcept {
    constexpr std::uint32_t kMax = ~std::uint32_t{0};
    return current > kMax / 2 ? kMax : current * 2;
  }

  // Current spin budget (diagnostics/tests).
  std::uint32_t spin_budget() const noexcept { return current_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t current_ = 1;
  std::uint64_t pauses_ = 0;
  std::uint64_t yields_ = 0;
};

// Persistent per-thread adaptive backoff.
//
// A fresh `Backoff` local restarts its spin budget at 1 on every operation,
// so under sustained contention every call re-learns the contention level
// from scratch — and the early short spins are exactly the retries that
// fail and steal the cache line from the thread about to succeed. This
// variant keeps the budget in a thread_local: each failed attempt spins the
// current budget and doubles it (saturating at the spin limit, where it
// escalates to yield like Backoff), and each *completed* operation halves
// it, so the budget tracks the recent failure/success ratio across
// operations instead of being thrown away.
class AdaptiveBackoff {
 public:
  static constexpr std::uint32_t kDefaultSpinLimit = 1024;

  // The calling thread's persistent state.
  static AdaptiveBackoff& tl() noexcept {
    thread_local AdaptiveBackoff state;
    return state;
  }

  // Call once per failed attempt: spins the current budget, then grows it.
  void on_failure() noexcept {
    ++pauses_;
    if (current_ <= spin_limit_) {
      for (std::uint32_t i = 0; i < current_; ++i) {
        cpu_relax();
      }
      current_ = Backoff::next_budget(current_);
    } else {
      ++yields_;
      std::this_thread::yield();
    }
  }

  // Call once per completed operation: decays the budget toward 1 so a
  // burst of contention does not tax the quiet period after it.
  void on_success() noexcept {
    if (current_ > spin_limit_) current_ = spin_limit_;
    current_ = current_ > 1 ? current_ / 2 : 1;
  }

  std::uint32_t spin_budget() const noexcept { return current_; }
  std::uint64_t pauses() const noexcept { return pauses_; }
  // Exact count of failures that escalated to sched_yield (see
  // Backoff::yields() for why the spin budget cannot stand in for this).
  std::uint64_t yields() const noexcept { return yields_; }
  void reset() noexcept {
    current_ = 1;
    pauses_ = 0;
    yields_ = 0;
  }

  // Drop-in replacement for a `util::Backoff backoff;` local in a retry
  // loop: pause() feeds failures into the thread's persistent state, and
  // leaving the operation (the destructor) records the success decay.
  class Session {
   public:
    Session() noexcept : state_(tl()) {}
    ~Session() { state_.on_success(); }

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    void pause() noexcept { state_.on_failure(); }

   private:
    AdaptiveBackoff& state_;
  };

 private:
  std::uint32_t spin_limit_ = kDefaultSpinLimit;
  std::uint32_t current_ = 1;
  std::uint64_t pauses_ = 0;
  std::uint64_t yields_ = 0;
};

}  // namespace dcd::util
