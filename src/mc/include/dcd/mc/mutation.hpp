// Seeded bug injection for model-checker sensitivity tests.
//
// A verifier that has never failed is untrustworthy; these mutations plant
// the §5 bugs the paper's proofs rule out, so the test suite can demand
// that the explorer (a) catches each one and (b) emits a counterexample
// that replays — including under ChaosDcas on real threads.
//
// MutantDcasT sits *under* the observation wrapper (SchedDcasT or
// ChaosDcas), so schedulers and park rules classify the DCAS the algorithm
// *intended* — the mutation corrupts only what reaches memory:
//
//     deque → SchedDcasT<MutantDcasT<GlobalLockDcas>>   (model checking)
//     deque → ChaosDcas<MutantDcasT<GlobalLockDcas>>    (counterexample
//                                                        replay on threads)
#pragma once

#include <cstdint>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::mc {

enum class Mutation : std::uint8_t {
  kNone = 0,
  // List deque: the logical-delete DCAS nulls the value but "forgets" the
  // deleted bit on the sentinel's inward pointer. The popped node is left
  // looking like a live node holding null — an unlicensed null the §5
  // invariant forbids, and later pops on that side report empty while the
  // deque still holds elements.
  kDropDeletedBit,
  // Array deque: the pop-commit DCAS moves the index but "forgets" to null
  // the popped cell. The cell is then a non-null value inside the
  // supposedly-null region (Figure 18 violation) and gets popped twice.
  kPopKeepsValue,
};

const char* mutation_name(Mutation m) noexcept;
// Returns false (and leaves `out` untouched) for unknown names.
bool mutation_from_name(const char* name, Mutation& out) noexcept;

// Process-wide active mutation (kNone = policies are faithful wrappers).
Mutation active_mutation() noexcept;
void set_active_mutation(Mutation m) noexcept;

class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) { set_active_mutation(m); }
  ~ScopedMutation() { set_active_mutation(Mutation::kNone); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

template <dcas::DcasPolicy Inner>
class MutantDcasT {
 public:
  static constexpr const char* kName = "mutant";
  static constexpr bool kLockFree = Inner::kLockFree;

  using InnerPolicy = Inner;

  static std::uint64_t load(const dcas::Word& w) noexcept {
    return Inner::load(w);
  }

  static void store_init(dcas::Word& w, std::uint64_t v) noexcept {
    Inner::store_init(w, v);
  }

  static bool cas(dcas::Word& w, std::uint64_t oldv,
                  std::uint64_t newv) noexcept {
    return Inner::cas(w, oldv, newv);
  }

  static bool dcas(dcas::Word& a, dcas::Word& b, std::uint64_t oa,
                   std::uint64_t ob, std::uint64_t na,
                   std::uint64_t nb) noexcept {
    mutate(oa, ob, na, nb);
    return Inner::dcas(a, b, oa, ob, na, nb);
  }

  static bool dcas_view(dcas::Word& a, dcas::Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept {
    mutate(oa, ob, na, nb);
    return Inner::dcas_view(a, b, oa, ob, na, nb);
  }

 private:
  static void mutate(std::uint64_t oa, std::uint64_t ob, std::uint64_t& na,
                     std::uint64_t& nb) noexcept {
    const Mutation m = active_mutation();
    if (m == Mutation::kNone) return;
    const dcas::DcasShape s = dcas::classify_dcas(oa, ob, na, nb);
    if (m == Mutation::kDropDeletedBit &&
        s == dcas::DcasShape::kLogicalDelete) {
      na = dcas::clear_deleted(na);
    } else if (m == Mutation::kPopKeepsValue &&
               s == dcas::DcasShape::kPopCommit) {
      nb = ob;
    }
  }
};

static_assert(dcas::DcasPolicy<MutantDcasT<dcas::GlobalLockDcas>>);

}  // namespace dcd::mc
