// Cooperative deterministic scheduler for model threads.
//
// The Runtime owns N persistent worker threads (reused across the many
// executions of one exploration — thread spawn would dominate otherwise)
// and installs itself as the process's SchedClient. Execution protocol:
//
//   * begin(bodies) hands each worker a thread body; every worker first
//     parks at a *start pseudo-step* before running any of it. Making
//     thread startup an explicit schedulable step pins down everything the
//     body does before its first policy access (history tickets, node-pool
//     allocation), so an execution is a pure function of the grant
//     sequence.
//   * A worker's every SchedDcas access parks in before_access until the
//     controller grants it via step(t); the worker then executes that one
//     access and keeps running thread-local code until its next access (or
//     body completion). step(t) blocks until the worker is parked again or
//     finished, then reports what the step did — at most one model thread
//     is ever runnable, which is what makes mid-execution invariant audits
//     of the live deque safe.
//   * Threads the Runtime does not manage (the explorer's control thread
//     doing setup/drain ops, ordinary test threads) pass through
//     before_access untouched.
//
// Blocking discipline: the inner DCAS policy may take locks *inside* a
// granted step but never holds one across a park (all policy locks are
// scoped to a single load/cas/dcas call), and every parked thread is
// enabled — there are no blocking operations at the model level. Any
// schedule therefore drives every thread to completion; the deques'
// obstruction-freedom guarantees a thread granted steps alone finishes its
// remaining ops (Runtime::drain exploits this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dcd/dcas/sched.hpp"

namespace dcd::mc {

// What a parked model thread will do when granted.
struct PendingStep {
  bool valid = false;
  bool is_start = false;       // start pseudo-step: no shared footprint
  dcas::SchedAccess access;    // meaningful when valid && !is_start
};

// One executed (granted) step.
struct StepRecord {
  int tid = -1;
  bool is_start = false;
  dcas::AccessKind kind = dcas::AccessKind::kLoad;
  const dcas::Word* a = nullptr;
  const dcas::Word* b = nullptr;
  dcas::DcasShape shape = dcas::DcasShape::kGeneric;
  bool wrote = false;  // a cas/dcas that succeeded
};

class Runtime final : public dcas::SchedClient {
 public:
  // Spawns `threads` workers and installs this Runtime as the global
  // SchedClient (at most one Runtime may live at a time).
  explicit Runtime(int threads);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int threads() const noexcept { return static_cast<int>(workers_.size()); }

  // Starts one execution; returns once every worker is parked at its start
  // pseudo-step. Requires the previous execution (if any) fully finished.
  void begin(std::vector<std::function<void()>> bodies);

  bool parked(int t) const;
  bool finished(int t) const;
  bool all_finished() const;
  // Requires parked(t).
  PendingStep pending(int t) const;

  // Grants thread t its pending step and blocks until t parks again or
  // finishes. Requires parked(t).
  StepRecord step(int t);

  // Runs every unfinished thread to completion, one thread at a time
  // (sound because each runs in isolation once the others are parked).
  // Used to abandon sleep-set-pruned or violating executions cleanly.
  void drain();

  // SchedClient interface (called from worker threads).
  void before_access(const dcas::SchedAccess& access) override;
  void after_access(const dcas::SchedAccess& access, bool wrote) override;

 private:
  enum class Phase : std::uint8_t {
    kIdle,      // waiting for a body
    kAssigned,  // body handed over, not yet parked at start
    kParked,    // pending step published, waiting for grant
    kGranted,   // controller granted; worker about to run
    kRunning,   // executing thread-local code / the granted access
    kFinished,  // body returned
  };

  struct Worker {
    std::thread thread;
    std::function<void()> body;
    Phase phase = Phase::kIdle;
    PendingStep pending;
    bool last_wrote = false;
  };

  void worker_main(int slot);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<Worker> workers_;
  bool shutdown_ = false;
};

}  // namespace dcd::mc
