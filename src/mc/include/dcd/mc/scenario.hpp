// Bounded model-checking scenarios.
//
// A scenario is what the explorer enumerates interleavings *of*: a deque
// kind and bound, a single-threaded setup prefix, and a small per-thread
// program of operations (2–3 threads × 3–5 ops keeps the interleaving
// space in the 10^4–10^6 range DPOR handles in seconds). The builtin
// corpus covers the ISSUE acceptance set — array deques of capacity 2 and
// 3 under 2 threads × 3 ops, list deques under 2 threads × 3 ops, and a
// scenario engineered to drive the list deque through Figure 16's
// two-logically-deleted-nodes state and its double-splice resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dcd/mc/mutation.hpp"
#include "dcd/verify/history.hpp"

namespace dcd::mc {

// kListElim is the list deque with the per-end elimination layer compiled
// in (one slot, one poll — the smallest configuration that still exercises
// every protocol transition; see DESIGN.md §13).
enum class DequeKind : std::uint8_t { kArray, kList, kListElim };

const char* deque_kind_name(DequeKind k) noexcept;
bool deque_kind_from_name(const char* name, DequeKind& out) noexcept;

struct ScenarioOp {
  verify::OpType type = verify::OpType::kPushRight;
  std::uint64_t arg = 0;  // pushes only
};

struct Scenario {
  std::string name;
  DequeKind deque = DequeKind::kList;
  // Array: length_S. List: node-pool bound — size it generously (the
  // default 64 nodes) so a parked popper's pinned limbo nodes can never
  // starve the allocator and surface a spurious "full" the linearizability
  // spec would reject.
  std::size_t capacity = 64;
  std::vector<ScenarioOp> setup;  // run solo by the controller, recorded
  std::vector<std::vector<ScenarioOp>> threads;
  Mutation mutation = Mutation::kNone;

  std::size_t total_ops() const noexcept;
  std::string describe() const;
};

// "pushRight(5)" / "popLeft" — the textual form replay files use.
std::string format_op(const ScenarioOp& op);
bool parse_op(const std::string& text, ScenarioOp& out);

// The named suite the acceptance tests and the CI `mc` job run.
std::vector<Scenario> builtin_scenarios();
// Lookup by name; returns false if absent.
bool find_builtin(const std::string& name, Scenario& out);

// The engineered Figure 16 scenario (also part of builtin_scenarios):
// two items, one popper per end popping twice — the second pops find the
// opposite end's logical delete and race their two-null double splices.
Scenario figure16_scenario();

}  // namespace dcd::mc
