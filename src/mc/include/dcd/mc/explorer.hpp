// Exhaustive stateless model checker over DCAS sync points.
//
// Explores every interleaving of a bounded Scenario's shared-memory steps
// against the *production* deque templates (dcd::model is the abstract
// counterpart: spec-level step machines; this explorer compiles
// ArrayDeque/ListDeque over SchedDcasT and schedules the real code). Each
// execution re-runs the scenario under a forced grant sequence; classic
// Flanagan–Godefroid DPOR (vector-clock race detection + backtrack sets)
// with sleep sets prunes interleavings that only reorder independent
// steps, preserving coverage of every Mazurkiewicz trace.
//
// At every explored state the §5 representation invariant is audited
// (verify::RepAuditor over the deque's live rep view — safe because all
// model threads are parked *between* atomic steps); at the end of every
// execution the recorded history goes to the WGL linearizability checker.
// The first violation stops the search and is reported with the exact
// grant schedule that produced it, greedily minimized (fewer context
// switches) while it still reproduces; replay.hpp turns that schedule into
// a one-command repro file.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dcd/dcas/chaos.hpp"
#include "dcd/mc/scenario.hpp"

namespace dcd::mc {

enum class SearchMode : std::uint8_t {
  kDpor,  // sleep sets + DPOR backtrack points
  kFull,  // backtrack everything: brute-force baseline the tests compare
          // DPOR's outcome coverage against (tiny scenarios only)
};

struct ExplorerOptions {
  SearchMode mode = SearchMode::kDpor;
  // Hard stops so a buggy search degrades into a reported partial result
  // instead of a hung job.
  std::uint64_t max_executions = 1'000'000;
  std::uint64_t max_steps_per_execution = 100'000;
  bool audit_rep = true;
  bool check_linearizability = true;
  std::uint64_t linearizability_state_limit = 5'000'000;
  // Greedy schedule minimization of a found violation (re-runs the
  // scenario up to `minimize_budget` more times).
  bool minimize = true;
  std::uint64_t minimize_budget = 200;
};

enum class ViolationKind : std::uint8_t {
  kNone = 0,
  kRepInvariant,     // RepAuditor clause failed at an explored state
  kNotLinearizable,  // WGL checker rejected an execution's history
  kCheckerLimit,     // WGL budget exhausted (no verdict for an execution)
  kStepBudget,       // execution exceeded max_steps_per_execution
};

const char* violation_kind_name(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kNone;
  std::string detail;
  // Grant sequence (thread ids, start pseudo-steps included) reproducing
  // the violation, and its minimized form (equal if minimization is off
  // or found nothing shorter).
  std::vector<int> schedule;
  std::vector<int> minimized_schedule;
};

struct ExploreStats {
  std::uint64_t executions = 0;
  std::uint64_t pruned_executions = 0;  // abandoned as sleep-set-redundant
  std::uint64_t transitions = 0;        // granted steps in explored runs
  std::uint64_t distinct_states = 0;    // schedule-tree nodes created
  std::uint64_t max_depth = 0;
  // Successful DCAS writes per shape across all explored steps, and the
  // number of executions containing at least one such write. The Figure 16
  // acceptance test keys on shape kTwoNullSplice here.
  std::array<std::uint64_t, dcas::kDcasShapeCount> shape_steps{};
  std::array<std::uint64_t, dcas::kDcasShapeCount> shape_executions{};
  // Explored states (list scenarios) where *both* sentinels carried the
  // deleted bit — the two-logically-deleted-nodes state Figure 16 races
  // to resolve.
  std::uint64_t two_deleted_states = 0;
};

struct ExploreResult {
  bool ok = false;        // no violation found
  bool complete = false;  // the whole reduced interleaving space was
                          // visited (false if a cap stopped the search)
  Violation violation;
  ExploreStats stats;
  // Sorted distinct per-execution outcomes (every op's result + the final
  // structural state). DPOR prunes *interleavings*, never outcomes, so
  // this set must be identical between kDpor and kFull on the same
  // scenario — the cross-validation tests assert exactly that.
  std::vector<std::string> distinct_outcomes;
  std::string message;
};

ExploreResult explore(const Scenario& scenario,
                      const ExplorerOptions& options = {});

// Re-runs one grant schedule (e.g. a counterexample) with the same
// auditing as the explorer. Forced grants naming threads that are not
// currently runnable are skipped; once the schedule is exhausted the run
// continues smallest-runnable-first to completion.
struct ScheduleRunReport {
  ViolationKind kind = ViolationKind::kNone;
  std::string detail;
  std::vector<int> schedule_executed;
  std::array<std::uint64_t, dcas::kDcasShapeCount> shape_steps{};
  std::uint64_t two_deleted_states = 0;
};

ScheduleRunReport run_schedule(const Scenario& scenario,
                               const std::vector<int>& forced,
                               const ExplorerOptions& options = {});

}  // namespace dcd::mc
