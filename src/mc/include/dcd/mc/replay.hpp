// Replayable counterexample files.
//
// A violation found by the explorer is only useful if it reproduces
// outside the explorer, so every counterexample serializes to a small text
// file carrying the full scenario (deque kind, capacity, mutation, setup
// and per-thread ops), the minimized grant schedule, and the expected
// verdict. Two independent executors consume the same file:
//
//   * run_replay        — the model-checker runtime re-applies the grant
//                         schedule step by step (deterministic, exact);
//   * run_replay_chaos  — real preemptive threads under
//                         ChaosDcas<MutantDcasT<GlobalLockDcas>>, with the
//                         file's `chaos-park` rules staging the racy
//                         window; this is the "one command repro" path
//                         that shows the bug is not an artifact of the
//                         cooperative scheduler.
//
// Format (one directive per line; '#' starts a comment):
//
//   name: array-n2-mixed
//   deque: array | list
//   capacity: 64
//   mutation: none | drop-deleted-bit | pop-keeps-value
//   setup: pushRight(1) pushRight(2)
//   thread: popLeft popLeft          # one line per model thread
//   thread: popRight popRight
//   expect: none | any | rep-invariant | not-linearizable | ...
//   expect-shape: delete.two_null_splice >= 1
//   expect-two-deleted: >= 1
//   schedule: 0 0 1 1 0 ...
//   chaos-park: pop.logical_delete 1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcd/mc/explorer.hpp"
#include "dcd/mc/scenario.hpp"

namespace dcd::mc {

struct ReplayFile {
  Scenario scenario;
  std::vector<int> schedule;

  // `expect:` — absent means "don't check the verdict".
  bool has_expect = false;
  bool expect_any = false;  // any violation (kind irrelevant)
  ViolationKind expect_kind = ViolationKind::kNone;

  // `expect-shape:` — minimum successful DCAS writes of a named sync
  // point's shape ("dcas.any" sums every shape).
  struct ShapeExpect {
    std::string point;
    std::uint64_t min = 1;
  };
  std::vector<ShapeExpect> shape_expects;

  // `expect-two-deleted:` — minimum explored states with both sentinel
  // deleted bits set (list scenarios; scheduled replay only).
  std::uint64_t min_two_deleted = 0;

  // `chaos-park:` — rules armed on the ChaosController before the real
  // threads start (chaos replay only).
  struct ChaosPark {
    std::string point;
    std::uint64_t nth = 1;
  };
  std::vector<ChaosPark> chaos_parks;
};

bool parse_replay(const std::string& text, ReplayFile& out,
                  std::string& error);
bool load_replay_file(const std::string& path, ReplayFile& out,
                      std::string& error);
std::string serialize_replay(const ReplayFile& file);

// Packages a violation the explorer found into a file whose scheduled
// replay must reproduce the same ViolationKind.
ReplayFile make_counterexample(const Scenario& scenario,
                               const Violation& violation);

struct ReplayOutcome {
  bool ok = false;          // every expectation in the file held
  ViolationKind kind = ViolationKind::kNone;  // what this run observed
  std::string message;      // first failed expectation, or a summary
  ScheduleRunReport report;  // scheduled replay only (empty for chaos)
};

// Deterministic replay through the model-checker runtime.
ReplayOutcome run_replay(const ReplayFile& file,
                         const ExplorerOptions& options = {});

// Real-thread replay under ChaosDcas; `park_timeout_ms` bounds each
// wait_parked (a rule that never fires is reported, not hung on).
ReplayOutcome run_replay_chaos(const ReplayFile& file,
                               std::uint64_t park_timeout_ms = 5000);

}  // namespace dcd::mc
