#include "dcd/mc/explorer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/sched.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/mc/mutation.hpp"
#include "dcd/mc/runtime.hpp"
#include "dcd/reclaim/policies.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"
#include "dcd/verify/rep_auditor.hpp"
#include "dcd/verify/spec_deque.hpp"

namespace dcd::mc {

const char* violation_kind_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kNone: return "none";
    case ViolationKind::kRepInvariant: return "rep-invariant";
    case ViolationKind::kNotLinearizable: return "not-linearizable";
    case ViolationKind::kCheckerLimit: return "checker-limit";
    case ViolationKind::kStepBudget: return "step-budget";
  }
  return "?";
}

namespace {

// The model-checking policy stack: scheduler on the outside (classifies
// the access the algorithm intended), mutation underneath (corrupts what
// reaches memory), serialising lock policy at the bottom.
using McPolicy = dcas::SchedDcasT<MutantDcasT<dcas::GlobalLockDcas>>;
using McArray = deque::ArrayDeque<std::uint64_t, McPolicy>;
using McList = deque::ListDeque<std::uint64_t, McPolicy, reclaim::EbrReclaim>;
// Elimination variant: one slot and one poll keep the extra interleaving
// depth minimal while every protocol transition (offer/take/cancel/clear)
// stays reachable. The magazine pool's internal atomics are raw
// std::atomic, not policy Words, so the allocator adds no scheduling
// points in either list variant.
using McListElim =
    deque::ListDeque<std::uint64_t, McPolicy, reclaim::EbrReclaim,
                     reclaim::MagazinePool,
                     deque::ListOptions{.elimination = true,
                                        .elim_slots = 1,
                                        .elim_polls = 1}>;

static_assert(dcas::DcasPolicy<McPolicy>);

template <typename D>
struct DequeTraits;

template <>
struct DequeTraits<McArray> {
  static std::unique_ptr<McArray> make(const Scenario& sc) {
    return std::make_unique<McArray>(sc.capacity);
  }
  static std::size_t checker_capacity(const Scenario& sc) {
    return sc.capacity;
  }
  static verify::AuditResult audit(const McArray& d) {
    return verify::RepAuditor::audit_array(d.rep_view_unsynchronized());
  }
  static bool two_deleted(const McArray&) { return false; }
  static std::string state_fingerprint(const McArray& d) {
    const deque::ArrayRepView v = d.rep_view_unsynchronized();
    std::string s = "L" + std::to_string(v.l) + "R" + std::to_string(v.r);
    for (const std::uint64_t w : v.cells) s += "," + std::to_string(w);
    return s;
  }
};

// Shared by the plain and elimination list variants: the elimination layer
// is invisible to the list representation (slots are quiescent — back to
// kNull — whenever audit or fingerprint taps run between steps of a
// completed protocol, and an in-flight offer lives outside the rep view).
template <typename D>
struct ListDequeTraits {
  static std::unique_ptr<D> make(const Scenario& sc) {
    return std::make_unique<D>(sc.capacity);
  }
  static std::size_t checker_capacity(const Scenario&) {
    return verify::SpecDeque::kUnbounded;
  }
  static verify::AuditResult audit(const D& d) {
    return verify::RepAuditor::audit_list(d.rep_view_unsynchronized());
  }
  static bool two_deleted(const D& d) {
    return d.left_deleted_bit_unsynchronized() &&
           d.right_deleted_bit_unsynchronized();
  }
  static std::string state_fingerprint(const D& d) {
    const deque::ListRepView v = d.rep_view_unsynchronized();
    std::string s = v.left_deleted ? "D[" : "[";
    for (const std::uint64_t w : v.values) s += std::to_string(w) + ",";
    s += v.right_deleted ? "]D" : "]";
    return s;
  }
};

template <>
struct DequeTraits<McList> : ListDequeTraits<McList> {};

template <>
struct DequeTraits<McListElim> : ListDequeTraits<McListElim> {};

std::string op_summary(const verify::Operation& op) {
  std::string s = verify::op_name(op.type);
  if (op.type == verify::OpType::kPushRight ||
      op.type == verify::OpType::kPushLeft) {
    s += "(" + std::to_string(op.arg) + ")->" + (op.push_ok ? "ok" : "full");
  } else {
    s += "->" + (op.pop_has_value ? std::to_string(op.pop_value)
                                  : std::string("empty"));
  }
  return s;
}

// Per-exploration scenario executor: fresh deque + recorded setup per
// execution, thread bodies recording their ops, audit/fingerprint taps.
template <typename D>
class Harness {
 public:
  explicit Harness(const Scenario& sc) : sc_(sc) {}

  void reset() {
    deque_.reset();
    deque_ = DequeTraits<D>::make(sc_);
    setup_.ops.clear();
    thread_ops_.assign(sc_.threads.size(), {});
    for (const ScenarioOp& op : sc_.setup) {
      setup_.append(verify::recorded_op(*deque_, op.type, op.arg));
    }
  }

  std::vector<std::function<void()>> bodies() {
    std::vector<std::function<void()>> out;
    out.reserve(sc_.threads.size());
    for (std::size_t t = 0; t < sc_.threads.size(); ++t) {
      out.push_back([this, t] {
        for (const ScenarioOp& op : sc_.threads[t]) {
          thread_ops_[t].push_back(
              verify::recorded_op(*deque_, op.type, op.arg));
        }
      });
    }
    return out;
  }

  verify::History history() const {
    verify::History h = setup_;
    for (const auto& ops : thread_ops_) {
      for (const verify::Operation& op : ops) h.append(op);
    }
    return h;
  }

  verify::AuditResult audit() const { return DequeTraits<D>::audit(*deque_); }
  bool two_deleted() const { return DequeTraits<D>::two_deleted(*deque_); }
  std::size_t checker_capacity() const {
    return DequeTraits<D>::checker_capacity(sc_);
  }

  std::string outcome_fingerprint() const {
    std::string s;
    for (const auto& ops : thread_ops_) {
      for (const verify::Operation& op : ops) {
        s += op_summary(op);
        s += ';';
      }
      s += '|';
    }
    s += DequeTraits<D>::state_fingerprint(*deque_);
    return s;
  }

 private:
  const Scenario& sc_;
  std::unique_ptr<D> deque_;
  verify::History setup_;
  std::vector<std::vector<verify::Operation>> thread_ops_;
};

// --- step/footprint plumbing ----------------------------------------------

struct Footprint {
  const void* addr[2] = {nullptr, nullptr};
  int n = 0;
  bool may_write = false;
};

Footprint footprint_of(const PendingStep& p) {
  Footprint f;
  if (p.is_start || !p.valid) return f;
  f.addr[f.n++] = p.access.a;
  if (p.access.b != nullptr) f.addr[f.n++] = p.access.b;
  f.may_write = p.access.may_write();
  return f;
}

struct TraceStep {
  int tid = -1;
  bool is_start = false;
  const void* addr[2] = {nullptr, nullptr};
  int naddr = 0;
  bool wrote = false;
  dcas::DcasShape shape = dcas::DcasShape::kGeneric;
  bool is_dcas = false;
  bool is_cas = false;  // single-word CAS — elimination-slot transitions
};

TraceStep trace_step_of(const StepRecord& rec) {
  TraceStep ts;
  ts.tid = rec.tid;
  ts.is_start = rec.is_start;
  if (!rec.is_start) {
    ts.addr[ts.naddr++] = rec.a;
    if (rec.b != nullptr) ts.addr[ts.naddr++] = rec.b;
    ts.wrote = rec.wrote;
    ts.shape = rec.shape;
    ts.is_dcas = rec.kind == dcas::AccessKind::kDcas ||
                 rec.kind == dcas::AccessKind::kDcasView;
    ts.is_cas = rec.kind == dcas::AccessKind::kCas;
  }
  return ts;
}

// Successful DCAS *and* single-word CAS steps both count toward the shape
// stats: the elimination protocol's transitions are classified CASes
// (elim.offer/take/cancel/clear), and the acceptance tests assert the
// explorer actually drove them.
bool counts_toward_shapes(const TraceStep& ts) {
  return (ts.is_dcas || ts.is_cas) && ts.wrote;
}

bool overlaps(const Footprint& f, const TraceStep& s) {
  for (int i = 0; i < f.n; ++i) {
    for (int j = 0; j < s.naddr; ++j) {
      if (f.addr[i] == s.addr[j]) return true;
    }
  }
  return false;
}

// A sleeping thread stays asleep across an executed step iff its pending
// transition commutes with it: disjoint footprints, or a shared address no
// side writes (the executed step's write is exact; the pending side's is
// conservative may-write).
bool independent(const Footprint& pending, const TraceStep& executed) {
  if (pending.n == 0 || executed.naddr == 0) return true;
  if (!overlaps(pending, executed)) return true;
  return !executed.wrote && !pending.may_write;
}

// --- DPOR race analysis ---------------------------------------------------

struct Node {
  int chosen = -1;
  std::set<int> backtrack;
  std::set<int> done;
  std::set<int> sleep_base;  // sleep set on entry to this state
};

void join_clock(std::vector<std::uint32_t>& a,
                const std::vector<std::uint32_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
}

// Flanagan–Godefroid backtrack-point computation over one completed
// execution: vector clocks order the trace by program order + conflicts;
// for each conflicting, concurrent pair (i, j) the first alternative that
// could reverse it is added to the backtrack set at pre(i).
void dpor_analyze(const std::vector<TraceStep>& trace,
                  std::vector<Node>& nodes, int threads) {
  const int n = static_cast<int>(trace.size());
  std::vector<int> last_step_of(static_cast<std::size_t>(threads), -1);
  for (int i = 0; i < n; ++i) last_step_of[static_cast<std::size_t>(trace[static_cast<std::size_t>(i)].tid)] = i;
  // Executions run every thread to completion, so "q enabled at pre(i)"
  // reduces to "q still has a step at or after i".
  const auto enabled_at = [&](int i, int q) {
    return last_step_of[static_cast<std::size_t>(q)] >= i;
  };

  std::vector<std::vector<std::uint32_t>> clock_of(
      static_cast<std::size_t>(n));
  std::vector<std::vector<std::uint32_t>> per_thread(
      static_cast<std::size_t>(threads),
      std::vector<std::uint32_t>(static_cast<std::size_t>(threads), 0));
  std::map<const void*, std::vector<std::uint32_t>> write_clock;
  std::map<const void*, std::vector<std::uint32_t>> read_clock;
  std::map<const void*, int> last_write;
  std::map<const void*, std::vector<int>> last_reads;

  std::vector<std::pair<int, int>> races;
  for (int j = 0; j < n; ++j) {
    const TraceStep& s = trace[static_cast<std::size_t>(j)];
    const std::size_t p = static_cast<std::size_t>(s.tid);
    per_thread[p][p] += 1;
    // Race test against the clock *before* joining this address's history
    // (joining first would order i before j through the very edge under
    // test).
    const std::vector<std::uint32_t> base = per_thread[p];
    const auto happens_before = [&](int i) {
      const std::size_t ti =
          static_cast<std::size_t>(trace[static_cast<std::size_t>(i)].tid);
      return clock_of[static_cast<std::size_t>(i)][ti] <= base[ti];
    };
    for (int ai = 0; ai < s.naddr; ++ai) {
      const void* a = s.addr[ai];
      const auto wit = last_write.find(a);
      if (wit != last_write.end() &&
          trace[static_cast<std::size_t>(wit->second)].tid != s.tid &&
          !happens_before(wit->second)) {
        races.emplace_back(wit->second, j);
      }
      if (s.wrote) {
        const auto rit = last_reads.find(a);
        if (rit != last_reads.end()) {
          for (int q = 0; q < threads; ++q) {
            const int i = rit->second[static_cast<std::size_t>(q)];
            if (i >= 0 && q != s.tid && !happens_before(i)) {
              races.emplace_back(i, j);
            }
          }
        }
      }
    }
    std::vector<std::uint32_t> clk = base;
    for (int ai = 0; ai < s.naddr; ++ai) {
      const void* a = s.addr[ai];
      const auto wit = write_clock.find(a);
      if (wit != write_clock.end()) join_clock(clk, wit->second);
      if (s.wrote) {
        const auto rit = read_clock.find(a);
        if (rit != read_clock.end()) join_clock(clk, rit->second);
      }
    }
    clock_of[static_cast<std::size_t>(j)] = clk;
    per_thread[p] = clk;
    for (int ai = 0; ai < s.naddr; ++ai) {
      const void* a = s.addr[ai];
      if (s.wrote) {
        write_clock[a] = clk;
        read_clock.erase(a);
        last_write[a] = j;
        last_reads[a].assign(static_cast<std::size_t>(threads), -1);
      }
      // Every access (including a successful write) reads its footprint.
      auto& rc = read_clock[a];
      if (rc.empty()) rc.assign(static_cast<std::size_t>(threads), 0);
      join_clock(rc, clk);
      auto& lr = last_reads[a];
      if (lr.empty()) lr.assign(static_cast<std::size_t>(threads), -1);
      lr[p] = j;
    }
  }

  for (const auto& [i, j] : races) {
    // Threads that could run at pre(i) and lead to j's side of the race:
    // j's own thread, or anything with a step in (i, j) happens-before j.
    std::set<int> alternatives;
    for (int q = 0; q < threads; ++q) {
      if (!enabled_at(i, q)) continue;
      if (q == trace[static_cast<std::size_t>(j)].tid) {
        alternatives.insert(q);
        continue;
      }
      for (int k = i + 1; k < j; ++k) {
        const TraceStep& sk = trace[static_cast<std::size_t>(k)];
        if (sk.tid == q &&
            clock_of[static_cast<std::size_t>(k)][static_cast<std::size_t>(
                q)] <=
                clock_of[static_cast<std::size_t>(j)][static_cast<std::size_t>(
                    q)]) {
          alternatives.insert(q);
          break;
        }
      }
    }
    Node& nd = nodes[static_cast<std::size_t>(i)];
    bool covered = false;
    for (const int q : alternatives) {
      if (nd.backtrack.count(q) != 0) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    if (!alternatives.empty()) {
      nd.backtrack.insert(*alternatives.begin());
    } else {
      for (int q = 0; q < threads; ++q) {
        if (enabled_at(i, q)) nd.backtrack.insert(q);
      }
    }
  }
}

// --- forced-schedule runner (replay + minimization) ------------------------

template <typename D>
ScheduleRunReport run_forced(Runtime& rt, Harness<D>& harness,
                             const std::vector<int>& forced,
                             const ExplorerOptions& opt) {
  ScheduleRunReport rep;
  harness.reset();
  rt.begin(harness.bodies());
  std::size_t fi = 0;
  std::uint64_t steps = 0;
  for (;;) {
    int choice = -1;
    while (fi < forced.size()) {
      const int t = forced[fi++];
      if (t >= 0 && t < rt.threads() && rt.parked(t)) {
        choice = t;
        break;
      }
    }
    if (choice < 0) {
      for (int t = 0; t < rt.threads(); ++t) {
        if (rt.parked(t)) {
          choice = t;
          break;
        }
      }
    }
    if (choice < 0) break;  // all finished
    const StepRecord rec = rt.step(choice);
    rep.schedule_executed.push_back(choice);
    const TraceStep ts = trace_step_of(rec);
    if (counts_toward_shapes(ts)) {
      rep.shape_steps[static_cast<std::size_t>(ts.shape)] += 1;
    }
    if (opt.audit_rep) {
      if (harness.two_deleted()) ++rep.two_deleted_states;
      const verify::AuditResult a = harness.audit();
      if (!a.ok) {
        rep.kind = ViolationKind::kRepInvariant;
        rep.detail = a.detail + " after step " +
                     std::to_string(rep.schedule_executed.size() - 1);
        rt.drain();
        return rep;
      }
    }
    if (++steps > opt.max_steps_per_execution) {
      rep.kind = ViolationKind::kStepBudget;
      rep.detail = "execution exceeded " +
                   std::to_string(opt.max_steps_per_execution) + " steps";
      rt.drain();
      return rep;
    }
  }
  if (opt.check_linearizability) {
    const verify::CheckResult cr =
        verify::check_linearizable(harness.history(),
                                   harness.checker_capacity(),
                                   opt.linearizability_state_limit);
    if (cr.verdict == verify::Verdict::kNotLinearizable) {
      rep.kind = ViolationKind::kNotLinearizable;
      rep.detail = cr.message;
    } else if (cr.verdict == verify::Verdict::kLimitExceeded) {
      rep.kind = ViolationKind::kCheckerLimit;
      rep.detail = cr.message;
    }
  }
  return rep;
}

// Greedy context-switch reduction: try to splice a later run of a thread's
// steps onto an earlier run; accept whenever the violation still
// reproduces. Each acceptance strictly decreases the number of context
// switches, so this terminates; `budget` bounds the replays either way.
template <typename D>
std::vector<int> minimize_schedule(Runtime& rt, Harness<D>& harness,
                                   const ExplorerOptions& opt,
                                   std::vector<int> schedule,
                                   ViolationKind kind) {
  std::uint64_t budget = opt.minimize_budget;
  const auto reproduces = [&](const std::vector<int>& cand) {
    if (budget == 0) return false;
    --budget;
    return run_forced(rt, harness, cand, opt).kind == kind;
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    // Compress into (tid, length) runs.
    std::vector<std::pair<int, std::size_t>> runs;
    for (const int t : schedule) {
      if (!runs.empty() && runs.back().first == t) {
        ++runs.back().second;
      } else {
        runs.emplace_back(t, 1);
      }
    }
    for (std::size_t i = 0; i + 1 < runs.size() && !improved; ++i) {
      for (std::size_t j = i + 2; j < runs.size(); ++j) {
        if (runs[j].first != runs[i].first) continue;
        std::vector<int> cand;
        for (std::size_t k = 0; k < runs.size(); ++k) {
          if (k == j) continue;
          cand.insert(cand.end(), runs[k].second, runs[k].first);
          if (k == i) cand.insert(cand.end(), runs[j].second, runs[j].first);
        }
        if (reproduces(cand)) {
          schedule = std::move(cand);
          improved = true;
        }
        break;  // only the nearest later run of this tid is a candidate
      }
    }
  }
  return schedule;
}

// --- the explorer ----------------------------------------------------------

template <typename D>
ExploreResult explore_impl(const Scenario& sc, const ExplorerOptions& opt) {
  ExploreResult res;
  const int threads = static_cast<int>(sc.threads.size());
  DCD_ASSERT(threads >= 1);
  ScopedMutation mutation(sc.mutation);
  Harness<D> harness(sc);
  Runtime rt(threads);

  std::vector<Node> nodes;
  std::set<std::string> outcomes;

  const auto finish_violation = [&](ViolationKind kind, std::string detail,
                                    std::vector<int> schedule) {
    res.violation.kind = kind;
    res.violation.detail = std::move(detail);
    res.violation.schedule = std::move(schedule);
    res.violation.minimized_schedule =
        opt.minimize ? minimize_schedule(rt, harness, opt,
                                         res.violation.schedule, kind)
                     : res.violation.schedule;
    res.ok = false;
    res.complete = false;
    res.message = sc.name + ": " +
                  std::string(violation_kind_name(kind)) + " — " +
                  res.violation.detail;
  };

  for (;;) {
    if (res.stats.executions + res.stats.pruned_executions >=
        opt.max_executions) {
      res.ok = true;  // nothing found, but the space was not exhausted
      res.complete = false;
      res.message = sc.name + ": stopped at max_executions";
      break;
    }

    harness.reset();
    rt.begin(harness.bodies());
    std::set<int> sleep;
    std::vector<TraceStep> trace;
    bool pruned = false;
    ViolationKind vkind = ViolationKind::kNone;
    std::string vdetail;
    std::array<bool, dcas::kDcasShapeCount> exec_shapes{};
    std::size_t depth = 0;

    for (;;) {
      std::vector<int> enabled;
      for (int t = 0; t < threads; ++t) {
        if (rt.parked(t)) enabled.push_back(t);
      }
      if (enabled.empty()) break;  // all finished

      int choice = -1;
      if (depth < nodes.size()) {
        choice = nodes[depth].chosen;
        DCD_ASSERT(rt.parked(choice));
      } else {
        for (const int t : enabled) {
          if (sleep.count(t) == 0) {
            choice = t;
            break;
          }
        }
        if (choice < 0) {
          pruned = true;  // every enabled thread is asleep: redundant run
          break;
        }
        Node nd;
        nd.chosen = choice;
        nd.backtrack.insert(choice);
        if (opt.mode == SearchMode::kFull) {
          for (const int t : enabled) nd.backtrack.insert(t);
        }
        nd.done.insert(choice);
        nd.sleep_base = sleep;
        nodes.push_back(std::move(nd));
        ++res.stats.distinct_states;
      }

      // Sleep set entering this state: inherited + already-explored
      // siblings; capture their pending footprints before stepping.
      std::set<int> sleep_here = sleep;
      for (const int q : nodes[depth].done) {
        if (q != choice) sleep_here.insert(q);
      }
      std::map<int, Footprint> sleeping_footprints;
      for (const int q : sleep_here) {
        sleeping_footprints.emplace(q, footprint_of(rt.pending(q)));
      }

      const StepRecord rec = rt.step(choice);
      ++res.stats.transitions;
      const TraceStep ts = trace_step_of(rec);
      trace.push_back(ts);
      if (counts_toward_shapes(ts)) {
        res.stats.shape_steps[static_cast<std::size_t>(ts.shape)] += 1;
        exec_shapes[static_cast<std::size_t>(ts.shape)] = true;
      }

      sleep.clear();
      for (const auto& [q, f] : sleeping_footprints) {
        if (independent(f, ts)) sleep.insert(q);
      }
      ++depth;

      if (opt.audit_rep) {
        if (harness.two_deleted()) ++res.stats.two_deleted_states;
        const verify::AuditResult a = harness.audit();
        if (!a.ok) {
          vkind = ViolationKind::kRepInvariant;
          vdetail = a.detail + " after step " + std::to_string(depth - 1);
          break;
        }
      }
      if (trace.size() > opt.max_steps_per_execution) {
        vkind = ViolationKind::kStepBudget;
        vdetail = "execution exceeded " +
                  std::to_string(opt.max_steps_per_execution) + " steps";
        break;
      }
    }

    if (pruned) {
      ++res.stats.pruned_executions;
      rt.drain();
    } else {
      ++res.stats.executions;
      res.stats.max_depth = std::max<std::uint64_t>(res.stats.max_depth,
                                                    trace.size());
      std::vector<int> schedule;
      schedule.reserve(trace.size());
      for (const TraceStep& t : trace) schedule.push_back(t.tid);

      if (vkind != ViolationKind::kNone) {
        rt.drain();
        finish_violation(vkind, std::move(vdetail), std::move(schedule));
        return res;
      }

      for (std::size_t s = 0; s < dcas::kDcasShapeCount; ++s) {
        if (exec_shapes[s]) res.stats.shape_executions[s] += 1;
      }
      outcomes.insert(harness.outcome_fingerprint());

      if (opt.check_linearizability) {
        const verify::CheckResult cr = verify::check_linearizable(
            harness.history(), harness.checker_capacity(),
            opt.linearizability_state_limit);
        if (cr.verdict == verify::Verdict::kNotLinearizable) {
          finish_violation(ViolationKind::kNotLinearizable, cr.message,
                           std::move(schedule));
          return res;
        }
        if (cr.verdict == verify::Verdict::kLimitExceeded) {
          finish_violation(ViolationKind::kCheckerLimit, cr.message,
                           std::move(schedule));
          return res;
        }
      }

      if (opt.mode == SearchMode::kDpor) {
        dpor_analyze(trace, nodes, threads);
      }
    }

    // Advance to the next unexplored schedule (deepest-first).
    bool advanced = false;
    while (!nodes.empty()) {
      Node& nd = nodes.back();
      int cand = -1;
      for (const int q : nd.backtrack) {
        if (nd.done.count(q) == 0) {
          cand = q;
          break;
        }
      }
      if (cand < 0) {
        nodes.pop_back();
        continue;
      }
      nd.done.insert(cand);
      // A candidate asleep at this node is already covered from an
      // earlier branch point.
      if (nd.sleep_base.count(cand) != 0) continue;
      nd.chosen = cand;
      advanced = true;
      break;
    }
    if (!advanced) {
      res.ok = true;
      res.complete = true;
      res.message = sc.name + ": exhaustive, no violation";
      break;
    }
  }

  res.distinct_outcomes.assign(outcomes.begin(), outcomes.end());
  return res;
}

}  // namespace

ExploreResult explore(const Scenario& scenario,
                      const ExplorerOptions& options) {
  switch (scenario.deque) {
    case DequeKind::kArray:
      return explore_impl<McArray>(scenario, options);
    case DequeKind::kList:
      return explore_impl<McList>(scenario, options);
    case DequeKind::kListElim:
      return explore_impl<McListElim>(scenario, options);
  }
  return {};
}

ScheduleRunReport run_schedule(const Scenario& scenario,
                               const std::vector<int>& forced,
                               const ExplorerOptions& options) {
  const int threads = static_cast<int>(scenario.threads.size());
  DCD_ASSERT(threads >= 1);
  ScopedMutation mutation(scenario.mutation);
  switch (scenario.deque) {
    case DequeKind::kArray: {
      Harness<McArray> harness(scenario);
      Runtime rt(threads);
      return run_forced(rt, harness, forced, options);
    }
    case DequeKind::kList: {
      Harness<McList> harness(scenario);
      Runtime rt(threads);
      return run_forced(rt, harness, forced, options);
    }
    case DequeKind::kListElim: {
      Harness<McListElim> harness(scenario);
      Runtime rt(threads);
      return run_forced(rt, harness, forced, options);
    }
  }
  return {};
}

}  // namespace dcd::mc
