#include "dcd/mc/runtime.hpp"

#include <utility>

#include "dcd/util/assert.hpp"

namespace dcd::mc {

namespace {
// Slot index of the current thread when it is a managed model thread, -1
// otherwise (control thread, ordinary test threads): the passthrough test
// before_access runs on every policy access.
thread_local int t_slot = -1;
}  // namespace

Runtime::Runtime(int threads) : workers_(static_cast<std::size_t>(threads)) {
  DCD_ASSERT(threads >= 1);
  dcas::install_sched_client(this);
  for (int t = 0; t < threads; ++t) {
    workers_[static_cast<std::size_t>(t)].thread =
        std::thread([this, t] { worker_main(t); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Tear down only between executions: a worker parked mid-body cannot
    // unwind (its stack is inside a deque operation).
    for (const Worker& w : workers_) {
      DCD_ASSERT(w.phase == Phase::kIdle || w.phase == Phase::kFinished ||
                 (w.phase == Phase::kParked && w.pending.is_start));
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (Worker& w : workers_) w.thread.join();
  dcas::uninstall_sched_client(this);
}

void Runtime::worker_main(int slot) {
  t_slot = slot;
  Worker& w = workers_[static_cast<std::size_t>(slot)];
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return shutdown_ || w.phase == Phase::kAssigned; });
    if (shutdown_) return;
    // Park at the start pseudo-step; the body only runs once granted.
    w.pending = PendingStep{};
    w.pending.valid = true;
    w.pending.is_start = true;
    w.phase = Phase::kParked;
    cv_.notify_all();
    cv_.wait(lk, [&] { return shutdown_ || w.phase == Phase::kGranted; });
    if (shutdown_) return;
    w.phase = Phase::kRunning;
    w.pending.valid = false;
    w.last_wrote = false;
    std::function<void()> body = std::move(w.body);
    lk.unlock();
    body();
    lk.lock();
    w.phase = Phase::kFinished;
    cv_.notify_all();
  }
}

void Runtime::begin(std::vector<std::function<void()>> bodies) {
  DCD_ASSERT(bodies.size() == workers_.size());
  std::unique_lock<std::mutex> lk(mu_);
  for (std::size_t t = 0; t < workers_.size(); ++t) {
    Worker& w = workers_[t];
    DCD_ASSERT(w.phase == Phase::kIdle || w.phase == Phase::kFinished);
    w.body = std::move(bodies[t]);
    w.phase = Phase::kAssigned;
    w.last_wrote = false;
  }
  cv_.notify_all();
  cv_.wait(lk, [&] {
    for (const Worker& w : workers_) {
      if (w.phase != Phase::kParked) return false;
    }
    return true;
  });
}

bool Runtime::parked(int t) const {
  std::lock_guard<std::mutex> lk(mu_);
  return workers_[static_cast<std::size_t>(t)].phase == Phase::kParked;
}

bool Runtime::finished(int t) const {
  std::lock_guard<std::mutex> lk(mu_);
  return workers_[static_cast<std::size_t>(t)].phase == Phase::kFinished;
}

bool Runtime::all_finished() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Worker& w : workers_) {
    if (w.phase != Phase::kFinished) return false;
  }
  return true;
}

PendingStep Runtime::pending(int t) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Worker& w = workers_[static_cast<std::size_t>(t)];
  DCD_ASSERT(w.phase == Phase::kParked && w.pending.valid);
  return w.pending;
}

StepRecord Runtime::step(int t) {
  std::unique_lock<std::mutex> lk(mu_);
  Worker& w = workers_[static_cast<std::size_t>(t)];
  DCD_ASSERT(w.phase == Phase::kParked && w.pending.valid);
  StepRecord rec;
  rec.tid = t;
  rec.is_start = w.pending.is_start;
  if (!rec.is_start) {
    rec.kind = w.pending.access.kind;
    rec.a = w.pending.access.a;
    rec.b = w.pending.access.b;
    rec.shape = w.pending.access.shape;
  }
  w.last_wrote = false;
  w.phase = Phase::kGranted;
  cv_.notify_all();
  cv_.wait(lk, [&] {
    return w.phase == Phase::kParked || w.phase == Phase::kFinished;
  });
  // last_wrote was written by after_access of exactly the granted step
  // (the worker cannot reach a later access without parking first).
  rec.wrote = w.last_wrote;
  return rec;
}

void Runtime::drain() {
  for (int t = 0; t < threads(); ++t) {
    while (!finished(t)) step(t);
  }
}

void Runtime::before_access(const dcas::SchedAccess& access) {
  if (t_slot < 0) return;  // unmanaged thread: plain passthrough
  Worker& w = workers_[static_cast<std::size_t>(t_slot)];
  std::unique_lock<std::mutex> lk(mu_);
  w.pending.valid = true;
  w.pending.is_start = false;
  w.pending.access = access;
  w.phase = Phase::kParked;
  cv_.notify_all();
  cv_.wait(lk, [&] { return w.phase == Phase::kGranted; });
  w.phase = Phase::kRunning;
  w.pending.valid = false;
}

void Runtime::after_access(const dcas::SchedAccess&, bool wrote) {
  if (t_slot < 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  workers_[static_cast<std::size_t>(t_slot)].last_wrote = wrote;
}

}  // namespace dcd::mc
