#include "dcd/mc/scenario.hpp"

#include <cstring>

namespace dcd::mc {

using verify::OpType;

const char* deque_kind_name(DequeKind k) noexcept {
  switch (k) {
    case DequeKind::kArray: return "array";
    case DequeKind::kList: return "list";
    case DequeKind::kListElim: return "list-elim";
  }
  return "?";
}

bool deque_kind_from_name(const char* name, DequeKind& out) noexcept {
  for (const DequeKind k :
       {DequeKind::kArray, DequeKind::kList, DequeKind::kListElim}) {
    if (std::strcmp(name, deque_kind_name(k)) == 0) {
      out = k;
      return true;
    }
  }
  return false;
}

std::size_t Scenario::total_ops() const noexcept {
  std::size_t n = setup.size();
  for (const auto& t : threads) n += t.size();
  return n;
}

std::string Scenario::describe() const {
  std::string s = name + ": " + deque_kind_name(deque) +
                  "(cap=" + std::to_string(capacity) + ")";
  if (!setup.empty()) {
    s += " setup";
    for (const ScenarioOp& op : setup) s += " " + format_op(op);
  }
  for (std::size_t t = 0; t < threads.size(); ++t) {
    s += " | t" + std::to_string(t);
    for (const ScenarioOp& op : threads[t]) s += " " + format_op(op);
  }
  if (mutation != Mutation::kNone) {
    s += " | mutation=" + std::string(mutation_name(mutation));
  }
  return s;
}

std::string format_op(const ScenarioOp& op) {
  std::string s = op_name(op.type);
  if (op.type == OpType::kPushRight || op.type == OpType::kPushLeft) {
    s += "(" + std::to_string(op.arg) + ")";
  }
  return s;
}

bool parse_op(const std::string& text, ScenarioOp& out) {
  std::string head = text;
  std::uint64_t arg = 0;
  bool has_arg = false;
  const std::size_t paren = text.find('(');
  if (paren != std::string::npos) {
    if (text.back() != ')') return false;
    head = text.substr(0, paren);
    const std::string digits = text.substr(paren + 1,
                                           text.size() - paren - 2);
    if (digits.empty()) return false;
    for (const char c : digits) {
      if (c < '0' || c > '9') return false;
      arg = arg * 10 + static_cast<std::uint64_t>(c - '0');
    }
    has_arg = true;
  }
  for (const OpType t : {OpType::kPushRight, OpType::kPushLeft,
                         OpType::kPopRight, OpType::kPopLeft}) {
    if (head == op_name(t)) {
      const bool is_push = t == OpType::kPushRight || t == OpType::kPushLeft;
      if (is_push != has_arg) return false;
      out.type = t;
      out.arg = arg;
      return true;
    }
  }
  return false;
}

namespace {

ScenarioOp push_r(std::uint64_t v) { return {OpType::kPushRight, v}; }
ScenarioOp push_l(std::uint64_t v) { return {OpType::kPushLeft, v}; }
ScenarioOp pop_r() { return {OpType::kPopRight, 0}; }
ScenarioOp pop_l() { return {OpType::kPopLeft, 0}; }

}  // namespace

Scenario figure16_scenario() {
  Scenario s;
  s.name = "list-fig16-double-splice";
  s.deque = DequeKind::kList;
  s.capacity = 64;
  s.setup = {push_r(1), push_r(2)};
  // Each popper's first pop logically deletes its end; the second pops
  // then race the Figure 16 physical double splice. Some interleavings
  // visit the two-deleted state (both sentinels' bits set) and execute a
  // successful delete.two_null_splice DCAS — the explorer's stats assert
  // both were reached.
  s.threads = {{pop_l(), pop_l()}, {pop_r(), pop_r()}};
  return s;
}

std::vector<Scenario> builtin_scenarios() {
  std::vector<Scenario> all;

  // Array deques, N ∈ {2, 3}, 2 threads × 3 ops (acceptance set). The ops
  // keep both ends and the (L+1) mod N == R boundary busy: pushes compete
  // with pops for the last slot / last element (Figure 6's interference
  // case) and for the empty-vs-full disambiguation.
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}}) {
    Scenario s;
    s.name = "array-n" + std::to_string(n) + "-mixed";
    s.deque = DequeKind::kArray;
    s.capacity = n;
    s.setup = {push_r(1)};
    s.threads = {{push_l(2), pop_r(), pop_r()}, {pop_l(), push_r(3), pop_l()}};
    all.push_back(s);
  }

  // Array boundary race: one element, both ends pop it — exactly one may
  // win; the loser must prove emptiness via the ambiguous L==R-1 boundary.
  {
    Scenario s;
    s.name = "array-n2-boundary-race";
    s.deque = DequeKind::kArray;
    s.capacity = 2;
    s.setup = {push_r(7)};
    s.threads = {{pop_r(), push_r(8), pop_l()}, {pop_l(), pop_l()}};
    all.push_back(s);
  }

  // List deque, 2 threads × 3 ops with concurrent pushes and pops (splice
  // vs push interference on the sentinel words).
  {
    Scenario s;
    s.name = "list-mixed";
    s.deque = DequeKind::kList;
    s.setup = {push_r(1)};
    s.threads = {{push_r(2), pop_l(), pop_l()}, {pop_r(), push_l(3), pop_r()}};
    all.push_back(s);
  }

  all.push_back(figure16_scenario());

  // Elimination layer (DESIGN.md §13): same-end traffic engineered so a
  // failed pop can meet a pending offer. Two right-pushers contend — in
  // some interleavings one push's DCAS loses and posts an elimination
  // offer; the popper, whose own DCAS the winning push invalidated, then
  // scans the slot and takes the offer (elim.take — the linearization
  // point of both the push and the pop). Other interleavings exercise
  // elim.cancel (offer unclaimed) and elim.clear (pusher acknowledging the
  // take). The explorer's shape stats assert all of these were reached,
  // and the linearizability checker validates every outcome including the
  // eliminated pair that never touched the list representation.
  {
    Scenario s;
    s.name = "list-elim-same-end";
    s.deque = DequeKind::kListElim;
    s.setup = {push_r(10)};
    s.threads = {{push_r(1)}, {push_r(2)}, {pop_r()}};
    all.push_back(s);
  }

  // Executor steal-vs-own-pop race (src/exec, DESIGN.md §14): the owner
  // works its deque from the right (pop_own = popRight, and forks re-push
  // there) while a thief steals from the left. With two tasks queued the
  // contested middle element is handed off exactly once in every
  // interleaving — the shape the executor's complete()/steal accounting
  // relies on. Bound mirrors list-mixed (2 threads, 3+2 ops).
  {
    Scenario s;
    s.name = "list-exec-steal-vs-own-pop";
    s.deque = DequeKind::kList;
    s.setup = {push_r(1), push_r(2)};
    s.threads = {{pop_r(), push_r(3), pop_r()}, {pop_l(), pop_l()}};
    all.push_back(s);
  }

  // Suspended-popper shape: both threads pop the single element; one pop's
  // logical delete can sit unresolved (parked popper, §5.2) while the
  // other end must still prove emptiness or perform the physical delete.
  {
    Scenario s;
    s.name = "list-single-item-pop-race";
    s.deque = DequeKind::kList;
    s.setup = {push_r(5)};
    s.threads = {{pop_r(), pop_r()}, {pop_l(), pop_l()}};
    all.push_back(s);
  }

  return all;
}

bool find_builtin(const std::string& name, Scenario& out) {
  for (Scenario& s : builtin_scenarios()) {
    if (s.name == name) {
      out = std::move(s);
      return true;
    }
  }
  return false;
}

}  // namespace dcd::mc
