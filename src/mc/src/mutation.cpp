#include "dcd/mc/mutation.hpp"

#include <atomic>
#include <cstring>

namespace dcd::mc {

namespace {
std::atomic<Mutation> g_mutation{Mutation::kNone};
}  // namespace

const char* mutation_name(Mutation m) noexcept {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kDropDeletedBit: return "drop-deleted-bit";
    case Mutation::kPopKeepsValue: return "pop-keeps-value";
  }
  return "?";
}

bool mutation_from_name(const char* name, Mutation& out) noexcept {
  for (const Mutation m : {Mutation::kNone, Mutation::kDropDeletedBit,
                           Mutation::kPopKeepsValue}) {
    if (std::strcmp(name, mutation_name(m)) == 0) {
      out = m;
      return true;
    }
  }
  return false;
}

Mutation active_mutation() noexcept {
  return g_mutation.load(std::memory_order_acquire);
}

void set_active_mutation(Mutation m) noexcept {
  g_mutation.store(m, std::memory_order_release);
}

}  // namespace dcd::mc
