#include "dcd/mc/replay.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/mc/mutation.hpp"
#include "dcd/reclaim/policies.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"
#include "dcd/verify/rep_auditor.hpp"
#include "dcd/verify/spec_deque.hpp"

namespace dcd::mc {

namespace {

const char* const kSyncPoints[] = {
    dcas::sync_point::kDcasAny,      dcas::sync_point::kEmptyConfirm,
    dcas::sync_point::kPopCommit,    dcas::sync_point::kLogicalDelete,
    dcas::sync_point::kSplice,       dcas::sync_point::kTwoNullSplice,
};

bool known_sync_point(const std::string& name) {
  for (const char* p : kSyncPoints) {
    if (name == p) return true;
  }
  return false;
}

// Shape whose successful writes a sync-point name counts ("dcas.any" is
// handled by the caller as the sum over all shapes).
bool shape_of_point(const std::string& name, dcas::DcasShape& out) {
  using dcas::DcasShape;
  if (name == dcas::sync_point::kEmptyConfirm) {
    out = DcasShape::kEmptyConfirm;
  } else if (name == dcas::sync_point::kPopCommit) {
    out = DcasShape::kPopCommit;
  } else if (name == dcas::sync_point::kLogicalDelete) {
    out = DcasShape::kLogicalDelete;
  } else if (name == dcas::sync_point::kSplice) {
    out = DcasShape::kSplice;
  } else if (name == dcas::sync_point::kTwoNullSplice) {
    out = DcasShape::kTwoNullSplice;
  } else {
    return false;
  }
  return true;
}

std::uint64_t count_for_point(
    const std::string& point,
    const std::array<std::uint64_t, dcas::kDcasShapeCount>& shape_steps) {
  if (point == dcas::sync_point::kDcasAny) {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : shape_steps) sum += c;
    return sum;
  }
  dcas::DcasShape s{};
  if (!shape_of_point(point, s)) return 0;
  return shape_steps[static_cast<std::size_t>(s)];
}

bool parse_kind(const std::string& word, ViolationKind& out) {
  for (const ViolationKind k :
       {ViolationKind::kNone, ViolationKind::kRepInvariant,
        ViolationKind::kNotLinearizable, ViolationKind::kCheckerLimit,
        ViolationKind::kStepBudget}) {
    if (word == violation_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string w;
  while (is >> w) out.push_back(w);
  return out;
}

bool parse_ops(const std::string& rest, std::vector<ScenarioOp>& out,
               std::string& error) {
  for (const std::string& tok : split_ws(rest)) {
    ScenarioOp op;
    if (!parse_op(tok, op)) {
      error = "bad op '" + tok + "'";
      return false;
    }
    out.push_back(op);
  }
  return true;
}

}  // namespace

bool parse_replay(const std::string& text, ReplayFile& out,
                  std::string& error) {
  out = ReplayFile{};
  out.scenario.setup.clear();
  out.scenario.threads.clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& why) {
    error = "line " + std::to_string(lineno) + ": " + why;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t colon = line.find(':');
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (colon == std::string::npos) return fail("expected 'key: value'");
    const std::string key = line.substr(0, colon);
    const std::string rest = line.substr(colon + 1);
    const std::vector<std::string> words = split_ws(rest);
    if (key == "name") {
      out.scenario.name = words.empty() ? "" : words[0];
    } else if (key == "deque") {
      if (words.size() != 1 ||
          !deque_kind_from_name(words[0].c_str(), out.scenario.deque)) {
        return fail("deque must be 'array' or 'list'");
      }
    } else if (key == "capacity") {
      if (words.size() != 1) return fail("capacity takes one integer");
      out.scenario.capacity =
          static_cast<std::size_t>(std::stoull(words[0]));
      if (out.scenario.capacity == 0) return fail("capacity must be >= 1");
    } else if (key == "mutation") {
      if (words.size() != 1 ||
          !mutation_from_name(words[0].c_str(), out.scenario.mutation)) {
        return fail("unknown mutation '" +
                    (words.empty() ? "" : words[0]) + "'");
      }
    } else if (key == "setup") {
      if (!parse_ops(rest, out.scenario.setup, error)) return fail(error);
    } else if (key == "thread") {
      std::vector<ScenarioOp> ops;
      if (!parse_ops(rest, ops, error)) return fail(error);
      if (ops.empty()) return fail("thread line needs at least one op");
      out.scenario.threads.push_back(std::move(ops));
    } else if (key == "expect") {
      if (words.size() != 1) return fail("expect takes one word");
      out.has_expect = true;
      if (words[0] == "any") {
        out.expect_any = true;
      } else if (!parse_kind(words[0], out.expect_kind)) {
        return fail("unknown expect verdict '" + words[0] + "'");
      }
    } else if (key == "expect-shape") {
      // "<point> >= N"
      if (words.size() != 3 || words[1] != ">=") {
        return fail("expect-shape wants '<point> >= N'");
      }
      if (!known_sync_point(words[0])) {
        return fail("unknown sync point '" + words[0] + "'");
      }
      out.shape_expects.push_back({words[0], std::stoull(words[2])});
    } else if (key == "expect-two-deleted") {
      if (words.size() != 2 || words[0] != ">=") {
        return fail("expect-two-deleted wants '>= N'");
      }
      out.min_two_deleted = std::stoull(words[1]);
    } else if (key == "schedule") {
      for (const std::string& w : words) {
        out.schedule.push_back(std::stoi(w));
      }
    } else if (key == "chaos-park") {
      if (words.size() != 2) return fail("chaos-park wants '<point> <nth>'");
      if (!known_sync_point(words[0])) {
        return fail("unknown sync point '" + words[0] + "'");
      }
      out.chaos_parks.push_back({words[0], std::stoull(words[1])});
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (out.scenario.threads.empty()) {
    error = "no 'thread:' lines";
    return false;
  }
  for (const int t : out.schedule) {
    if (t < 0 || t >= static_cast<int>(out.scenario.threads.size())) {
      error = "schedule names thread " + std::to_string(t) +
              " but only " + std::to_string(out.scenario.threads.size()) +
              " exist";
      return false;
    }
  }
  return true;
}

bool load_replay_file(const std::string& path, ReplayFile& out,
                      std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay(buf.str(), out, error);
}

std::string serialize_replay(const ReplayFile& file) {
  std::ostringstream out;
  if (!file.scenario.name.empty()) out << "name: " << file.scenario.name << "\n";
  out << "deque: " << deque_kind_name(file.scenario.deque) << "\n";
  out << "capacity: " << file.scenario.capacity << "\n";
  out << "mutation: " << mutation_name(file.scenario.mutation) << "\n";
  if (!file.scenario.setup.empty()) {
    out << "setup:";
    for (const ScenarioOp& op : file.scenario.setup) {
      out << " " << format_op(op);
    }
    out << "\n";
  }
  for (const auto& ops : file.scenario.threads) {
    out << "thread:";
    for (const ScenarioOp& op : ops) out << " " << format_op(op);
    out << "\n";
  }
  if (file.has_expect) {
    out << "expect: "
        << (file.expect_any ? "any" : violation_kind_name(file.expect_kind))
        << "\n";
  }
  for (const ReplayFile::ShapeExpect& e : file.shape_expects) {
    out << "expect-shape: " << e.point << " >= " << e.min << "\n";
  }
  if (file.min_two_deleted > 0) {
    out << "expect-two-deleted: >= " << file.min_two_deleted << "\n";
  }
  if (!file.schedule.empty()) {
    out << "schedule:";
    for (const int t : file.schedule) out << " " << t;
    out << "\n";
  }
  for (const ReplayFile::ChaosPark& p : file.chaos_parks) {
    out << "chaos-park: " << p.point << " " << p.nth << "\n";
  }
  return out.str();
}

ReplayFile make_counterexample(const Scenario& scenario,
                               const Violation& violation) {
  ReplayFile file;
  file.scenario = scenario;
  file.schedule = violation.minimized_schedule.empty()
                      ? violation.schedule
                      : violation.minimized_schedule;
  file.has_expect = true;
  file.expect_kind = violation.kind;
  return file;
}

namespace {

// `any_kind`: the chaos executor audits only the final state (the model
// runtime audits every step), so a mid-run rep corruption legitimately
// surfaces there under a different verdict — e.g. the kPopKeepsValue
// double-pop shows up as a non-linearizable history once the corrupted
// cell is popped again. Chaos replays therefore accept any violation when
// the file expects a specific one.
ReplayOutcome check_expectations(
    const ReplayFile& file, ViolationKind kind, const std::string& detail,
    const std::array<std::uint64_t, dcas::kDcasShapeCount>& shape_steps,
    std::uint64_t two_deleted, bool any_kind) {
  ReplayOutcome out;
  out.kind = kind;
  if (file.has_expect) {
    const bool want_any =
        file.expect_any ||
        (any_kind && file.expect_kind != ViolationKind::kNone);
    if (want_any) {
      if (kind == ViolationKind::kNone) {
        out.message = "expected a violation, run was clean";
        return out;
      }
    } else if (kind != file.expect_kind) {
      out.message = std::string("expected ") +
                    violation_kind_name(file.expect_kind) + ", got " +
                    violation_kind_name(kind) +
                    (detail.empty() ? "" : " (" + detail + ")");
      return out;
    }
  }
  for (const ReplayFile::ShapeExpect& e : file.shape_expects) {
    const std::uint64_t got = count_for_point(e.point, shape_steps);
    if (got < e.min) {
      out.message = "expect-shape " + e.point + " >= " +
                    std::to_string(e.min) + " but saw " +
                    std::to_string(got);
      return out;
    }
  }
  if (two_deleted < file.min_two_deleted) {
    out.message = "expect-two-deleted >= " +
                  std::to_string(file.min_two_deleted) + " but saw " +
                  std::to_string(two_deleted);
    return out;
  }
  out.ok = true;
  out.message = std::string("replay ok: ") + violation_kind_name(kind) +
                (detail.empty() ? "" : " — " + detail);
  return out;
}

}  // namespace

ReplayOutcome run_replay(const ReplayFile& file,
                         const ExplorerOptions& options) {
  const ScheduleRunReport rep =
      run_schedule(file.scenario, file.schedule, options);
  ReplayOutcome out = check_expectations(file, rep.kind, rep.detail,
                                         rep.shape_steps,
                                         rep.two_deleted_states,
                                         /*any_kind=*/false);
  out.report = rep;
  return out;
}

namespace {

// The chaos reproduction stack: same mutation layer as the model checker,
// but faults come from the preemptive ChaosController instead of the
// cooperative scheduler.
using ChaosPolicy = dcas::ChaosDcas<MutantDcasT<dcas::GlobalLockDcas>>;
using ChaosArray = deque::ArrayDeque<std::uint64_t, ChaosPolicy>;
using ChaosList = deque::ListDeque<std::uint64_t, ChaosPolicy,
                                   reclaim::EbrReclaim>;
// Mirrors the explorer's McListElim configuration so a list-elim
// counterexample replays against the same protocol the checker explored —
// with the elimination CASes visible to chaos park rules (elim.offer &c).
using ChaosListElim =
    deque::ListDeque<std::uint64_t, ChaosPolicy, reclaim::EbrReclaim,
                     reclaim::MagazinePool,
                     deque::ListOptions{.elimination = true,
                                        .elim_slots = 1,
                                        .elim_polls = 1}>;

template <typename D>
inline constexpr bool kIsListKind =
    std::is_same_v<D, ChaosList> || std::is_same_v<D, ChaosListElim>;

template <typename D>
ReplayOutcome run_chaos_impl(const ReplayFile& file, std::size_t capacity,
                             std::size_t checker_capacity,
                             std::uint64_t park_timeout_ms) {
  const Scenario& sc = file.scenario;
  ScopedMutation mutation(sc.mutation);

  dcas::ChaosSchedule schedule;  // parks only: no random delays/failures
  schedule.seed = dcas::chaos_seed_from_env(0);
  dcas::ChaosController controller(schedule);
  std::vector<std::size_t> rules;
  rules.reserve(file.chaos_parks.size());
  for (const ReplayFile::ChaosPark& p : file.chaos_parks) {
    rules.push_back(controller.arm_park(p.point.c_str(), p.nth));
  }

  D deque(capacity);
  verify::History history;
  for (const ScenarioOp& op : sc.setup) {
    history.append(verify::recorded_op(deque, op.type, op.arg));
  }

  std::vector<std::vector<verify::Operation>> thread_ops(sc.threads.size());
  std::vector<std::thread> threads;
  threads.reserve(sc.threads.size());
  for (std::size_t t = 0; t < sc.threads.size(); ++t) {
    threads.emplace_back([&, t] {
      for (const ScenarioOp& op : sc.threads[t]) {
        thread_ops[t].push_back(verify::recorded_op(deque, op.type, op.arg));
      }
    });
  }

  std::string park_note;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!controller.wait_parked(rules[i], park_timeout_ms)) {
      park_note += std::string(park_note.empty() ? "" : "; ") +
                   "chaos-park " + file.chaos_parks[i].point +
                   " never fired";
    }
  }
  // Two-deleted probe while the poppers are held in the staged window.
  std::uint64_t two_deleted = 0;
  if constexpr (kIsListKind<D>) {
    if (deque.left_deleted_bit_unsynchronized() &&
        deque.right_deleted_bit_unsynchronized()) {
      two_deleted = 1;
    }
  }
  controller.release_all();
  for (std::thread& th : threads) th.join();

  for (const auto& ops : thread_ops) {
    for (const verify::Operation& op : ops) history.append(op);
  }

  ViolationKind kind = ViolationKind::kNone;
  std::string detail;
  verify::AuditResult audit;
  if constexpr (kIsListKind<D>) {
    audit = verify::RepAuditor::audit_list(deque.rep_view_unsynchronized());
  } else {
    audit = verify::RepAuditor::audit_array(deque.rep_view_unsynchronized());
  }
  if (!audit.ok) {
    kind = ViolationKind::kRepInvariant;
    detail = audit.detail;
  } else {
    const verify::CheckResult cr =
        verify::check_linearizable(history, checker_capacity);
    if (cr.verdict == verify::Verdict::kNotLinearizable) {
      kind = ViolationKind::kNotLinearizable;
      detail = cr.message;
    } else if (cr.verdict == verify::Verdict::kLimitExceeded) {
      kind = ViolationKind::kCheckerLimit;
      detail = cr.message;
    }
  }

  std::array<std::uint64_t, dcas::kDcasShapeCount> successes{};
  for (std::size_t s = 0; s < dcas::kDcasShapeCount; ++s) {
    successes[s] = controller.successes(static_cast<dcas::DcasShape>(s));
  }
  ReplayOutcome out = check_expectations(file, kind, detail, successes,
                                         two_deleted, /*any_kind=*/true);
  if (!park_note.empty()) {
    out.message += " [" + park_note + "]";
  }
  return out;
}

}  // namespace

ReplayOutcome run_replay_chaos(const ReplayFile& file,
                               std::uint64_t park_timeout_ms) {
  switch (file.scenario.deque) {
    case DequeKind::kArray:
      return run_chaos_impl<ChaosArray>(file, file.scenario.capacity,
                                        file.scenario.capacity,
                                        park_timeout_ms);
    case DequeKind::kList:
      return run_chaos_impl<ChaosList>(file, file.scenario.capacity,
                                       verify::SpecDeque::kUnbounded,
                                       park_timeout_ms);
    case DequeKind::kListElim:
      return run_chaos_impl<ChaosListElim>(file, file.scenario.capacity,
                                           verify::SpecDeque::kUnbounded,
                                           park_timeout_ms);
  }
  return {};
}

}  // namespace dcd::mc
