#include "dcd/reclaim/ebr.hpp"

#include "dcd/util/assert.hpp"

namespace dcd::reclaim {

EbrDomain::EbrDomain() { global_epoch_->store(1, std::memory_order_relaxed); }

EbrDomain::~EbrDomain() {
  // Precondition: no thread is pinned. Everything in limbo is then safe to
  // free immediately.
  for (auto& slot : slots_) {
    drain(*slot, /*force=*/true);
  }
}

std::size_t EbrDomain::enter() {
  const std::size_t s = util::ThreadRegistry::self();
  SlotState& slot = *slots_[s];
  if (slot.nesting++ == 0) {
    // DCD_HB(ebr.epoch.grace, role=acquire)
    const std::uint64_t e = global_epoch_->load(std::memory_order_acquire);
    slot.pinned.store(e, std::memory_order_relaxed);
    // Order the pin before any subsequent shared-memory load and make it
    // visible to the advance scan.
    // DCD_HB(ebr.pin.scan, role=fence-release)
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  return s;
}

void EbrDomain::exit(std::size_t s) {
  SlotState& slot = *slots_[s];
  DCD_ASSERT(slot.nesting > 0);
  if (--slot.nesting == 0) {
    slot.pinned.store(0, std::memory_order_release);
  }
}

void EbrDomain::retire(void* p, Deleter deleter, void* ctx) {
  const std::size_t s = util::ThreadRegistry::self();
  SlotState& slot = *slots_[s];
  slot.limbo.push_back(
      Retired{p, deleter, ctx, global_epoch_->load(std::memory_order_relaxed)});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (++slot.since_drain >= kDrainThreshold) {
    slot.since_drain = 0;
    try_advance();
    drain(slot, /*force=*/false);
  }
}

void EbrDomain::collect() {
  const std::size_t s = util::ThreadRegistry::self();
  try_advance();
  drain(*slots_[s], /*force=*/false);
}

bool EbrDomain::try_advance() {
  const std::uint64_t g = global_epoch_->load(std::memory_order_seq_cst);
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pinned =
        // DCD_HB(ebr.pin.scan, role=acquire)
        slots_[i]->pinned.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned != g) {
      return false;  // A straggler pins an older epoch.
    }
  }
  std::uint64_t expected = g;
  // DCD_SYNC(allocator-internal)
  // DCD_HB(ebr.epoch.grace, role=release)
  return global_epoch_->compare_exchange_strong(expected, g + 1,
                                                std::memory_order_acq_rel);
}

void EbrDomain::drain(SlotState& slot, bool force) {
  if (slot.limbo.empty()) return;
  const std::uint64_t g = global_epoch_->load(std::memory_order_acquire);
  std::size_t kept = 0;
  for (auto& r : slot.limbo) {
    // Grace: two epoch advances since retirement (see header for why this
    // is sufficient even with stale pins).
    if (force || r.epoch + 2 <= g) {
      r.deleter(r.p, r.ctx);
      freed_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.limbo[kept++] = r;
    }
  }
  slot.limbo.resize(kept);
}

EbrDomain& global_ebr_domain() {
  static EbrDomain domain;
  return domain;
}

}  // namespace dcd::reclaim
