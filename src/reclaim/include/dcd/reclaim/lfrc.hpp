// Lock-Free Reference Counting (LFRC) — the authors' GC-elimination
// methodology ("Lock-free reference counting", Detlefs, Martin, Moir,
// Steele, PODC 2001 — reference [12] of the deque paper, which states the
// deque algorithms "can be transformed into equivalent ones that do not
// depend on garbage collection" with it).
//
// The key primitive is LFRC's pointer *load*: DCAS atomically verifies the
// shared pointer slot still holds the object while incrementing the
// object's count, closing the classic "read pointer, then increment a
// possibly-freed object's count" race — this is one of the cleanest
// demonstrations of what DCAS buys over CAS, and exactly on-theme for the
// paper.
//
// Counting discipline (one "unit" per reference):
//   * every shared pointer slot that stores the object holds one unit;
//   * every live local reference (a raw pointer returned by load/copy and
//     not yet consumed by store_slot/cas/destroy) holds one unit;
//   * when the count reaches zero the object's release hook runs (dropping
//     units on its own outgoing pointer slots, possibly recursively) and
//     the object is freed.
//
// Objects embed the count as their first member (`dcas::Word rc;`) and
// provide `lfrc_dispose()`, which drops units on outgoing slots and
// releases the storage.
//
// Type-stability requirement (as in the original paper): load() may read a
// just-freed object's count word before its validating DCAS fails, so
// LFRC-managed storage must stay mapped and type-homogeneous for the
// manager's lifetime — never handed back to the general heap while shared
// slots may still be probed. LfrcStack satisfies this with a
// TaggedNodePool; ad-hoc objects must arrange the same (see the tests).
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/reclaim/concepts.hpp"
#include "dcd/reclaim/tagged_pool.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/sanitizer.hpp"

namespace dcd::reclaim {

// T requirements:
//   dcas::Word rc;        // first member; count, payload-encoded integer
//   void lfrc_dispose();  // drop outgoing refs, then free own storage
//   8-aligned allocation (pointers stored raw in slots).
template <typename T, dcas::DcasPolicy P = dcas::DefaultDcas>
class Lfrc {
  static_assert(LfrcManaged<T>,
                "LFRC-managed objects need a `dcas::Word rc` count word and "
                "an lfrc_dispose() hook (see dcd/reclaim/concepts.hpp)");

 public:
  static std::uint64_t encode(T* p) noexcept {
    return reinterpret_cast<std::uint64_t>(p);
  }
  static T* decode(std::uint64_t w) noexcept {
    return reinterpret_cast<T*>(w & ~0x7ull);
  }

  // Allocates the initial unit: a freshly created object starts with
  // count 1, owned by the creating local reference.
  static void init_count(T* p) noexcept {
    P::store_init(p->rc, dcas::encode_payload(1));
  }

  static std::int64_t count(T* p) noexcept {
    return static_cast<std::int64_t>(dcas::decode_payload(P::load(p->rc)));
  }

  // LFRCLoad: read `slot` and acquire a unit on the target atomically.
  // Returns nullptr (no unit) if the slot is null.
  static T* load(dcas::Word& slot) noexcept {
    for (;;) {
      const std::uint64_t w = P::load(slot);
      T* p = decode(w);
      if (p == nullptr) return nullptr;
      const std::uint64_t c = P::load(p->rc);
      // The DCAS is the LFRC trick: the increment lands only while the
      // slot still references p, so a concurrent final release cannot have
      // freed p before our unit exists.
      if (P::dcas(slot, p->rc, w, c,
                  w, dcas::encode_payload(dcas::decode_payload(c) + 1))) {
        return p;
      }
    }
  }

  // Duplicate a local reference (+1 unit). p may be nullptr.
  static T* copy(T* p) noexcept {
    if (p != nullptr) add(p, +1);
    return p;
  }

  // Drop a local reference (-1 unit); disposes at zero. p may be nullptr.
  static void destroy(T* p) {
    if (p == nullptr) return;
    if (add(p, -1) == 0) {
      p->lfrc_dispose();  // drops units on outgoing slots + frees storage
    }
  }

  // Store into a *private* slot (no concurrent access): the slot's old
  // reference is dropped, the new value's unit is transferred from the
  // caller's local reference (which is consumed).
  static void store_private(dcas::Word& slot, T* p) {
    T* old = decode(P::load(slot));
    P::store_init(slot, encode(p));
    destroy(old);
  }

  // LFRCCAS on a shared slot. On success the slot's unit moves from
  // `expected` to `desired` (the slot drops one unit on expected, gains
  // one on desired). Caller-held local references are NOT consumed.
  static bool cas(dcas::Word& slot, T* expected, T* desired) {
    if (desired != nullptr) add(desired, +1);  // the slot's prospective unit
    if (P::cas(slot, encode(expected), encode(desired))) {
      destroy(expected);  // the slot's old unit
      return true;
    }
    if (desired != nullptr) destroy(desired);  // roll back
    return false;
  }

 private:
  // Count arithmetic via single-word CAS; returns the new count.
  static std::int64_t add(T* p, std::int64_t delta) noexcept {
    for (;;) {
      const std::uint64_t c = P::load(p->rc);
      const auto cur = static_cast<std::int64_t>(dcas::decode_payload(c));
      DCD_ASSERT(cur > 0 || delta > 0);
      const auto next = cur + delta;
      DCD_ASSERT(next >= 0);
      if (P::cas(p->rc, c,
                 dcas::encode_payload(static_cast<std::uint64_t>(next)))) {
        return next;
      }
    }
  }
};

// A lock-free Treiber stack whose nodes are reclaimed purely by LFRC — no
// EBR, no grace periods. Demonstrates the full methodology of [12] end to
// end (load's DCAS, cas's unit transfer, recursive release through the
// next pointers). Node storage lives in a TaggedNodePool for the
// type-stability LFRC requires.
template <typename T, dcas::DcasPolicy P = dcas::DefaultDcas>
class LfrcStack {
 public:
  struct Node {
    dcas::Word rc;
    dcas::Word next;  // LFRC-managed slot
    LfrcStack* owner;
    T value;

    // Nodes are never constructed or destroyed: recycled type-stable
    // storage is probed by stale LFRC readers, and even a C++20 atomic's
    // constructor is a non-atomic-looking write to them. Fields are
    // (re)initialised with atomic stores in push(); hence the
    // trivially-copyable requirement on T.
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);

    void lfrc_dispose() {
      // Drop the unit our next slot holds (deep chains would recurse;
      // the stack destructor drains iteratively instead).
      Node* n = Lfrc<Node, P>::decode(P::load(next));
      P::store_init(next, 0);
      owner->pool_.deallocate(this);
      Lfrc<Node, P>::destroy(n);
    }
  };
  using R = Lfrc<Node, P>;

  explicit LfrcStack(std::size_t max_nodes = 1 << 16)
      : pool_(sizeof(Node), max_nodes) {
    P::store_init(top_, 0);
  }

  ~LfrcStack() {
    // Drain iteratively: dropping the head's unit directly would release
    // the whole chain through recursive lfrc_release calls, which on a
    // long stack overflows the call stack.
    T tmp;
    while (pop(&tmp)) {
    }
  }

  LfrcStack(const LfrcStack&) = delete;
  LfrcStack& operator=(const LfrcStack&) = delete;

  // Returns false when the node pool is exhausted.
  // DCD_GUARD_EXEMPT(node is thread-private and holds a local LFRC unit until the publishing CAS)
  bool push(T v) {
    void* raw = pool_.allocate();
    if (raw == nullptr) return false;
    Node* n = static_cast<Node*>(raw);  // storage reuse, no construction
    R::init_count(n);                   // local unit (atomic store)
    P::store_init(n->next, 0);
    n->owner = this;
    n->value = std::move(v);
    for (;;) {
      Node* t = R::load(top_);          // local unit on current top
      R::store_private(n->next, t);     // transfer it into n->next
      // DCD_PUBLISHES(allocator-internal, rc+next+owner+value)
      if (R::cas(top_, t, n)) {         // slot: -t +n
        R::destroy(n);                  // drop our local unit on n
        return true;
      }
      // retry: n->next still holds a (stale) unit; the next
      // store_private drops it.
    }
  }

  bool pop(T* out) {
    for (;;) {
      Node* t = R::load(top_);  // local unit
      if (t == nullptr) return false;
      Node* nx = R::load(t->next);  // local unit (may be null)
      if (R::cas(top_, t, nx)) {    // slot: -t +nx
        *out = t->value;
        R::destroy(nx);  // local unit
        R::destroy(t);   // local unit; node frees when its last unit drops
        return true;
      }
      R::destroy(nx);
      R::destroy(t);
    }
  }

  bool empty() const {
    return P::load(const_cast<dcas::Word&>(top_)) == 0;
  }

 private:
  dcas::Word top_;
  TaggedNodePool pool_;
};

}  // namespace dcd::reclaim
