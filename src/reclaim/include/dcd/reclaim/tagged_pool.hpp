// Type-stable node pool with an ABA-proof free list.
//
// LFRC (PODC'01) frees objects at arbitrary moments — there is no grace
// period — yet LFRCLoad may still *read* a just-freed object's count word
// before its slot-validation DCAS fails. That is sound only under two
// conditions this pool provides and the general heap does not:
//
//   1. type-stability: freed storage stays mapped and is only ever reused
//      for the same node type, so the stale read returns a harmless word
//      (in particular never a value with the descriptor bit set, which
//      would send the MCAS engine chasing a garbage pointer);
//   2. an ABA-proof free list: pushes happen at arbitrary times (no EBR
//      deferral is possible), so the Treiber head carries a version tag
//      updated with a double-width CAS (cmpxchg16b). On non-x86-64 targets
//      a spinlock fallback provides the same interface; the fallback is
//      also used under ThreadSanitizer, which cannot see the inline-asm
//      CAS as a synchronisation edge and would report false races on the
//      recycled storage.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "dcd/dcas/cmpxchg16b.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"

#if defined(__x86_64__) && !defined(__SANITIZE_THREAD__)
#define DCD_TAGGED_POOL_LOCKFREE 1
#else
#define DCD_TAGGED_POOL_LOCKFREE 0
#endif

namespace dcd::reclaim {

class TaggedNodePool {
 public:
  // DCD_GUARD_EXEMPT(single-threaded construction; the free list is private until the pool is shared)
  TaggedNodePool(std::size_t node_size, std::size_t capacity)
      : node_size_(round_up(node_size)), capacity_(capacity) {
    DCD_ASSERT(capacity > 0);
    slab_ = static_cast<std::byte*>(::operator new(
        node_size_ * capacity_, std::align_val_t{util::kCacheLineSize}));
    // Zero the slab so stale reads of never-used nodes see clean words.
    for (std::size_t i = 0; i < node_size_ * capacity_; ++i) {
      slab_[i] = std::byte{0};
    }
    FreeNode* head = nullptr;
    for (std::size_t i = capacity_; i-- > 0;) {
      auto* fn = reinterpret_cast<FreeNode*>(slab_ + i * node_size_);
      fn->next.store(head, std::memory_order_relaxed);
      head = fn;
    }
    head_.lo.store(reinterpret_cast<std::uint64_t>(head),
                   std::memory_order_relaxed);
    head_.hi.store(0, std::memory_order_relaxed);
  }

  ~TaggedNodePool() {
    ::operator delete(slab_, std::align_val_t{util::kCacheLineSize});
  }

  TaggedNodePool(const TaggedNodePool&) = delete;
  TaggedNodePool& operator=(const TaggedNodePool&) = delete;

  // DCD_GUARD_EXEMPT(version tag detects recycling; the speculative next read is discarded on tag mismatch)
  void* allocate() noexcept {
#if DCD_TAGGED_POOL_LOCKFREE
    util::Backoff backoff;
    for (;;) {
      std::uint64_t head, tag;
      dcas::Cmpxchg16bDcas::read(head_, head, tag);
      auto* fn = reinterpret_cast<FreeNode*>(head);
      if (fn == nullptr) return nullptr;
      // The tag makes a stale `next` harmless: if the head changed and
      // changed back, the tag differs and the CAS fails. (The relaxed read
      // may race a reused node's live data; the value is discarded then.)
      FreeNode* next = fn->next.load(std::memory_order_relaxed);
      if (dcas::Cmpxchg16bDcas::dcas(head_, head, tag,
                                     reinterpret_cast<std::uint64_t>(next),
                                     tag + 1)) {
        return fn;
      }
      backoff.pause();
    }
#else
    Lock g(lock_);
    auto* fn = reinterpret_cast<FreeNode*>(
        head_.lo.load(std::memory_order_relaxed));
    if (fn == nullptr) return nullptr;
    head_.lo.store(reinterpret_cast<std::uint64_t>(
                       fn->next.load(std::memory_order_relaxed)),
                   std::memory_order_relaxed);
    return fn;
#endif
  }

  // DCD_GUARD_EXEMPT(caller owns the node exclusively — post-grace callback or never shared)
  void deallocate(void* p) noexcept {
    DCD_DEBUG_ASSERT(owns(p));
    auto* fn = static_cast<FreeNode*>(p);
#if DCD_TAGGED_POOL_LOCKFREE
    util::Backoff backoff;
    for (;;) {
      std::uint64_t head, tag;
      dcas::Cmpxchg16bDcas::read(head_, head, tag);
      fn->next.store(reinterpret_cast<FreeNode*>(head),
                     std::memory_order_relaxed);
      if (dcas::Cmpxchg16bDcas::dcas(head_, head, tag,
                                     reinterpret_cast<std::uint64_t>(fn),
                                     tag + 1)) {
        return;
      }
      backoff.pause();
    }
#else
    Lock g(lock_);
    fn->next.store(reinterpret_cast<FreeNode*>(
                       head_.lo.load(std::memory_order_relaxed)),
                   std::memory_order_relaxed);
    head_.lo.store(reinterpret_cast<std::uint64_t>(fn),
                   std::memory_order_relaxed);
#endif
  }

  bool owns(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= slab_ && b < slab_ + node_size_ * capacity_ &&
           (static_cast<std::size_t>(b - slab_) % node_size_) == 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t node_size() const noexcept { return node_size_; }

 private:
  struct FreeNode {
    std::atomic<FreeNode*> next;
  };

  class Lock {
   public:
    explicit Lock(std::atomic<bool>& flag) : flag_(flag) {
      util::Backoff backoff;
      while (flag_.exchange(true, std::memory_order_acquire)) {
        backoff.pause();
      }
    }
    ~Lock() { flag_.store(false, std::memory_order_release); }

   private:
    std::atomic<bool>& flag_;
  };

  static std::size_t round_up(std::size_t n) noexcept {
    const std::size_t a = util::kCacheLineSize;
    return (n + a - 1) / a * a;
  }

  std::size_t node_size_;
  std::size_t capacity_;
  std::byte* slab_ = nullptr;
  dcas::AdjacentPair head_;  // {pointer, version tag}
  std::atomic<bool> lock_{false};
};

}  // namespace dcd::reclaim
