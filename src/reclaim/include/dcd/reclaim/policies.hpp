// Reclamation policies for the linked-list deque.
//
// The paper assumes GC (§2); ListDeque is parameterised on one of these
// policies so experiment E7 can compare the substitutes. A policy provides
// a Guard (pinned for the duration of every operation) and retire()
// (called once a node has been physically unlinked).
#pragma once

#include "dcd/reclaim/concepts.hpp"
#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/magazine_pool.hpp"
#include "dcd/reclaim/node_pool.hpp"

namespace dcd::reclaim {

// Epoch-based reclamation: nodes return to the pool after a grace period.
// This is the default and the closest match to GC's guarantees (no
// use-after-free, no address reuse while an operation might hold a
// reference — hence no ABA).
class EbrReclaim {
 public:
  static constexpr const char* kName = "ebr";

  class Guard {
   public:
    explicit Guard(EbrReclaim& r) : g_(r.domain_) {}

   private:
    EbrDomain::Guard g_;
  };

  // Templated over the pool so the same policy serves NodePool and
  // MagazinePool: the node returns through Pool::deallocate_cb once its
  // grace period has elapsed.
  template <PoolPolicy Pool>
  void retire(void* node, Pool& pool) {
    domain_.retire(node, Pool::deallocate_cb, &pool);
  }

  // Prompt best-effort reclamation (tests).
  void collect() { domain_.collect(); }

  EbrDomain& domain() { return domain_; }

 private:
  EbrDomain domain_;
};

// No reclamation: unlinked nodes are abandoned until the owning deque is
// destroyed (their slab storage is released wholesale with the pool). The
// E7 upper bound: zero reclamation overhead, unbounded memory growth.
class LeakyReclaim {
 public:
  static constexpr const char* kName = "leaky";

  LeakyReclaim() = default;
  LeakyReclaim(const LeakyReclaim&) = delete;
  LeakyReclaim& operator=(const LeakyReclaim&) = delete;

  class Guard {
   public:
    explicit Guard(LeakyReclaim&) {}
  };

  template <PoolPolicy Pool>
  void retire(void* node, Pool& pool) {
    (void)node;
    (void)pool;
  }

  void collect() {}
};

// Re-certify the roster whenever any policy changes (mirrors the DcasPolicy
// static_asserts in dcd/dcas/policies.hpp).
static_assert(ReclaimPolicy<EbrReclaim>);
static_assert(ReclaimPolicy<LeakyReclaim>);
static_assert(PoolPolicy<MagazinePool>);

}  // namespace dcd::reclaim
