// Fixed-capacity, cache-line-aligned node pool.
//
// The paper's New() allocator is modelled as a lock-free free list over a
// pre-allocated slab. Allocation failure is observable (returns nullptr),
// which drives the paper's "push returns full when the allocator fails"
// path (footnote 3).
//
// ABA-freedom of the Treiber free list relies on the usage contract:
// pops happen inside an EBR guard and pushes happen only through EBR
// reclamation callbacks (or before any concurrency starts). A node can then
// never leave and re-enter the free list within one guard, so the classic
// pop-pop-push ABA interleaving is impossible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::reclaim {

class NodePool {
 public:
  // Every allocation is `node_size` bytes, aligned to a cache line (which
  // also guarantees the low 3 bits of node addresses are zero — the word
  // encoding in dcd::dcas relies on this).
  NodePool(std::size_t node_size, std::size_t capacity)
      : node_size_(round_up(node_size)), capacity_(capacity) {
    DCD_ASSERT(capacity > 0);
    slab_ = static_cast<std::byte*>(::operator new(
        node_size_ * capacity_, std::align_val_t{util::kCacheLineSize}));
    // Thread the free list through the slab; construction is
    // single-threaded so plain pushes are fine.
    FreeNode* head = nullptr;
    for (std::size_t i = capacity_; i-- > 0;) {
      auto* fn = reinterpret_cast<FreeNode*>(slab_ + i * node_size_);
      fn->next.store(head, std::memory_order_relaxed);
      head = fn;
    }
    head_->store(head, std::memory_order_relaxed);
  }

  ~NodePool() {
    ::operator delete(slab_, std::align_val_t{util::kCacheLineSize});
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Pops a node; nullptr when exhausted. Caller must hold an EBR guard if
  // other threads may be deallocating concurrently.
  void* allocate() noexcept {
    FreeNode* head = head_->load(std::memory_order_acquire);
    while (head != nullptr) {
      FreeNode* next = head->next.load(std::memory_order_relaxed);
      if (head_->compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        live_.fetch_add(1, std::memory_order_relaxed);
        return head;
      }
    }
    failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Pushes a node back. Safe only from EBR reclamation callbacks or when
  // the caller owns the node exclusively (see class comment).
  void deallocate(void* p) noexcept {
    DCD_DEBUG_ASSERT(owns(p));
    auto* fn = static_cast<FreeNode*>(p);
    FreeNode* head = head_->load(std::memory_order_relaxed);
    do {
      fn->next.store(head, std::memory_order_relaxed);
    } while (!head_->compare_exchange_weak(head, fn,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  // EbrDomain-compatible deleter: ctx is the pool.
  static void deallocate_cb(void* p, void* ctx) {
    static_cast<NodePool*>(ctx)->deallocate(p);
  }

  bool owns(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= slab_ && b < slab_ + node_size_ * capacity_ &&
           (static_cast<std::size_t>(b - slab_) % node_size_) == 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t node_size() const noexcept { return node_size_; }
  std::uint64_t live() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocation_failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  struct FreeNode {
    // Atomic: the link overlays node field words, and a speculative
    // allocate() may read it while another thread's re-initialising
    // atomic store to the reused node lands on the same bytes.
    std::atomic<FreeNode*> next;
  };

  static std::size_t round_up(std::size_t n) noexcept {
    const std::size_t a = util::kCacheLineSize;
    return (n + a - 1) / a * a;
  }

  std::size_t node_size_;
  std::size_t capacity_;
  std::byte* slab_ = nullptr;
  util::CacheAligned<std::atomic<FreeNode*>> head_;
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace dcd::reclaim
