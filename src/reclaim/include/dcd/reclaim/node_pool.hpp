// Fixed-capacity, cache-line-aligned node pool.
//
// The paper's New() allocator is modelled as a lock-free free list over a
// pre-allocated slab. Allocation failure is observable (returns nullptr),
// which drives the paper's "push returns full when the allocator fails"
// path (footnote 3).
//
// ABA-freedom of the Treiber free list relies on the usage contract:
// pops happen inside an EBR guard and pushes happen only through EBR
// reclamation callbacks (or before any concurrency starts). A node can then
// never leave and re-enter the free list within one guard, so the classic
// pop-pop-push ABA interleaving is impossible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::reclaim {

class NodePool {
 public:
  // Every allocation is `node_size` bytes, aligned to a cache line (which
  // also guarantees the low 3 bits of node addresses are zero — the word
  // encoding in dcd::dcas relies on this).
  // DCD_GUARD_EXEMPT(single-threaded construction; the free list is private until the pool is shared)
  NodePool(std::size_t node_size, std::size_t capacity)
      : node_size_(round_up(node_size)), capacity_(capacity) {
    DCD_ASSERT(capacity > 0);
    slab_ = static_cast<std::byte*>(::operator new(
        node_size_ * capacity_, std::align_val_t{util::kCacheLineSize}));
    // Thread the free list through the slab; construction is
    // single-threaded so plain pushes are fine.
    FreeNode* head = nullptr;
    for (std::size_t i = capacity_; i-- > 0;) {
      auto* fn = reinterpret_cast<FreeNode*>(slab_ + i * node_size_);
      fn->next.store(head, std::memory_order_relaxed);
      head = fn;
    }
    head_->store(head, std::memory_order_relaxed);
  }

  ~NodePool() {
    ::operator delete(slab_, std::align_val_t{util::kCacheLineSize});
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Pops a node; nullptr when exhausted. Caller must hold an EBR guard if
  // other threads may be deallocating concurrently.
  // DCD_REQUIRES_GUARD(Treiber pop reads head->next; the caller's EBR guard keeps head unreclaimed)
  void* allocate() noexcept {
    // DCD_HB(pool.free-list.reuse, role=acquire)
    FreeNode* head = head_->load(std::memory_order_acquire);
    while (head != nullptr) {
      FreeNode* next = head->next.load(std::memory_order_relaxed);
      // DCD_SYNC(allocator-internal)
      if (head_->compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        live_->fetch_add(1, std::memory_order_relaxed);
        return head;
      }
    }
    failures_->fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Pushes a node back. Safe only from EBR reclamation callbacks or when
  // the caller owns the node exclusively (see class comment).
  // DCD_GUARD_EXEMPT(caller owns the node exclusively — post-grace callback or never shared)
  void deallocate(void* p) noexcept {
    DCD_DEBUG_ASSERT(owns(p));
    auto* fn = static_cast<FreeNode*>(p);
    FreeNode* head = head_->load(std::memory_order_relaxed);
    // DCD_PROGRESS(Treiber push: a failed CAS means another push or pop committed; the loop only re-links and retries)
    do {
      fn->next.store(head, std::memory_order_relaxed);
      // DCD_SYNC(allocator-internal)
      // DCD_HB(pool.free-list.reuse, role=release)
    } while (!head_->compare_exchange_weak(head, fn,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    live_->fetch_sub(1, std::memory_order_relaxed);
  }

  // EbrDomain-compatible deleter: ctx is the pool.
  static void deallocate_cb(void* p, void* ctx) {
    static_cast<NodePool*>(ctx)->deallocate(p);
  }

  // --- chain (batch) operations for MagazinePool ---------------------------
  //
  // Both sides of a batch transfer are a *single* CAS on head_, so a
  // magazine refill/flush costs the shared line one RMW regardless of K.
  //
  // ABA safety of the multi-node detach follows from the same usage
  // contract as allocate(): the caller holds an EBR guard, so no node can
  // leave and re-enter the free list while we hold `head` — if the final
  // CAS succeeds, head never moved, and nodes below an unmoved head are
  // frozen (popping them would require popping head first). The walk may
  // still read a *recycled* node's next word (same benign race as the
  // FreeNode comment below); the only real hazard is following a garbage
  // link out of the slab, so every link is validated with owns() and the
  // walk restarts on the first invalid one (a corrupt chain implies head
  // already moved, so the CAS would have failed anyway).

  // Detaches up to `want` nodes as a linked chain; returns the chain head
  // (links readable via chain_next) and writes the actual count to *got.
  // nullptr / 0 when the free list is empty. Caller must hold an EBR guard.
  // DCD_REQUIRES_GUARD(chain walk reads free-list links; the caller's EBR guard keeps them unreclaimed)
  void* allocate_chain(std::size_t want, std::size_t* got) noexcept {
    DCD_ASSERT(want > 0);
    FreeNode* head = head_->load(std::memory_order_acquire);
    while (head != nullptr) {
      // Walk want-1 links past head to find the first node NOT taken.
      FreeNode* tail = head;
      std::size_t n = 1;
      bool valid = true;
      while (n < want) {
        FreeNode* next = tail->next.load(std::memory_order_relaxed);
        if (next == nullptr) break;
        if (!owns(next)) {  // stale read off a recycled node: restart
          valid = false;
          break;
        }
        tail = next;
        ++n;
      }
      if (!valid) {
        head = head_->load(std::memory_order_acquire);
        continue;
      }
      FreeNode* rest = tail->next.load(std::memory_order_relaxed);
      if (rest != nullptr && !owns(rest)) {
        head = head_->load(std::memory_order_acquire);
        continue;
      }
      // DCD_SYNC(allocator-internal)
      if (head_->compare_exchange_weak(head, rest, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        // Terminate the detached chain so callers can walk it safely.
        tail->next.store(nullptr, std::memory_order_relaxed);
        live_->fetch_add(n, std::memory_order_relaxed);
        *got = n;
        return head;
      }
    }
    failures_->fetch_add(1, std::memory_order_relaxed);
    *got = 0;
    return nullptr;
  }

  // Pushes a pre-linked chain [first .. last] of `count` nodes back with
  // one CAS. Same ownership contract as deallocate(): the caller must own
  // every node in the chain exclusively (magazine flushes qualify — their
  // nodes arrived via deallocate paths, i.e. post-grace or never shared).
  // DCD_GUARD_EXEMPT(caller owns every chain node exclusively — post-grace or never shared)
  void deallocate_chain(void* first, void* last, std::size_t count) noexcept {
    DCD_DEBUG_ASSERT(owns(first) && owns(last));
    auto* f = static_cast<FreeNode*>(first);
    auto* l = static_cast<FreeNode*>(last);
    FreeNode* head = head_->load(std::memory_order_relaxed);
    // DCD_PROGRESS(Treiber chain push: a failed CAS means another push or pop committed; the loop only re-links and retries)
    do {
      l->next.store(head, std::memory_order_relaxed);
      // DCD_SYNC(allocator-internal)
    } while (!head_->compare_exchange_weak(head, f, std::memory_order_acq_rel,
                                           std::memory_order_relaxed));
    live_->fetch_sub(count, std::memory_order_relaxed);
  }

  // Chain-link accessors so MagazinePool can thread private (unshared)
  // chains through node storage without knowing FreeNode's layout. Only
  // valid on nodes the caller owns exclusively.
  // DCD_GUARD_EXEMPT(valid only on exclusively-owned chain nodes per the accessor contract)
  static void* chain_next(void* p) noexcept {
    return static_cast<FreeNode*>(p)->next.load(std::memory_order_relaxed);
  }
  // DCD_GUARD_EXEMPT(valid only on exclusively-owned chain nodes per the accessor contract)
  static void chain_set_next(void* p, void* next) noexcept {
    static_cast<FreeNode*>(p)->next.store(static_cast<FreeNode*>(next),
                                          std::memory_order_relaxed);
  }

  bool owns(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= slab_ && b < slab_ + node_size_ * capacity_ &&
           (static_cast<std::size_t>(b - slab_) % node_size_) == 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t node_size() const noexcept { return node_size_; }
  std::uint64_t live() const noexcept {
    return live_->load(std::memory_order_relaxed);
  }
  std::uint64_t allocation_failures() const noexcept {
    return failures_->load(std::memory_order_relaxed);
  }

 private:
  struct FreeNode {
    // Atomic: the link overlays node field words, and a speculative
    // allocate() may read it while another thread's re-initialising
    // atomic store to the reused node lands on the same bytes.
    std::atomic<FreeNode*> next;
  };

  static std::size_t round_up(std::size_t n) noexcept {
    const std::size_t a = util::kCacheLineSize;
    return (n + a - 1) / a * a;
  }

  std::size_t node_size_;
  std::size_t capacity_;
  std::byte* slab_ = nullptr;
  // head_ is the hot RMW word; live_/failures_ are bumped on every
  // alloc/dealloc by whichever thread ran it. Each gets its own line so
  // counter traffic never invalidates the line the CAS loop spins on.
  util::CacheAligned<std::atomic<FreeNode*>> head_;
  util::CacheAligned<std::atomic<std::uint64_t>> live_;
  util::CacheAligned<std::atomic<std::uint64_t>> failures_;
};

}  // namespace dcd::reclaim
