// Per-thread node magazines over the shared NodePool free list.
//
// Under multi-thread load the list deque's serialization point is not the
// DCAS the paper reasons about but the allocator: every push pops and every
// reclaimed pop pushes the *same* Treiber head. MagazinePool interposes a
// bounded per-thread cache (a "magazine", after Bonwick's slab magazines):
// the common alloc/free hits thread-private state guarded by an
// uncontended try-lock, and the shared head is touched only in batches —
// one CAS detaches a whole K-node chain (NodePool::allocate_chain) and one
// CAS returns one (NodePool::deallocate_chain).
//
// Memory bound (cf. Aksenov et al., PAPERS.md): a magazine holds at most
// batch-1 nodes on its allocation chain plus batch-1 on its free chain, so
// the total strandable inventory is bounded by 2*(batch-1)*threads — and
// exhaustion is *not* reported until a sweep over every magazine has come
// up empty, preserving the paper's footnote 3 contract that push returns
// "full" only when the allocator is truly out of nodes.
//
// ABA contract: the magazine layer introduces no new free-list orderings.
// Refills detach under the caller's EBR guard (the allocate_chain proof in
// node_pool.hpp); refilled nodes live on the *allocation* chain and are
// only ever handed out, never re-pushed to the shared list; the free chain
// accepts only nodes arriving through deallocate() — i.e. post-grace via
// EBR callbacks or exclusively owned — which is exactly the precondition
// deallocate_chain requires for the flush.
//
// Two magazine chains, and why they are never merged:
//   allocation chain — nodes detached from the shared list with no grace
//       period since; safe to hand out, NOT safe to re-push while any
//       guard from before the detach might still hold the old head.
//   free chain       — nodes returned through deallocate(); safe anywhere.
//
// Threading: each ThreadRegistry slot owns one cache-line-isolated
// magazine. Only the owner touches it on the hot path; the exhaustion
// sweep may steal from any magazine, so every access goes through a
// per-magazine try-lock (acquire/release exchange — TSan-clean). A failed
// try-lock never waits: the caller falls through to the shared pool, so a
// thread parked inside a magazine (fault injection) degrades throughput,
// never progress.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "dcd/reclaim/node_pool.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/thread_registry.hpp"

namespace dcd::reclaim {

// Named observability points on the magazine slow paths, fired through an
// installable process-wide hook. The fault-injection layer installs
// ChaosController's trampoline here (chaos.cpp) so park/delay rules can
// target the refill/flush windows; the names mirror
// dcd::dcas::sync_point::{kMagazineRefill,kMagazineFlush} — the reclaim
// layer cannot include chaos.hpp (dcd_dcas links dcd_reclaim, not the
// reverse), so the strings are duplicated and the atomics linter checks
// arm_park() literals against the chaos.hpp roster.
namespace magazine_sync {
inline constexpr const char* kRefill = "magazine.refill";
inline constexpr const char* kFlush = "magazine.flush";
}  // namespace magazine_sync

using MagazineHook = void (*)(const char* point);

inline std::atomic<MagazineHook>& magazine_hook() noexcept {
  static std::atomic<MagazineHook> hook{nullptr};
  return hook;
}

// Aggregate telemetry over all magazines (relaxed counters; exact when
// sampled quiescent, like dcas::Telemetry).
struct MagazineStats {
  std::uint64_t hits = 0;      // served from the calling thread's magazine
  std::uint64_t misses = 0;    // magazine empty (or locked by a sweeper)
  std::uint64_t refills = 0;   // successful chain detaches
  std::uint64_t flushes = 0;   // successful chain flushes
};

class MagazinePool {
 public:
  static constexpr std::size_t kDefaultBatch = 32;

  // Drop-in for NodePool(node_size, capacity); `batch` is K, the chain
  // length a refill detaches and a flush returns.
  MagazinePool(std::size_t node_size, std::size_t capacity,
               std::size_t batch = kDefaultBatch)
      : pool_(node_size, capacity), batch_(batch < 2 ? 2 : batch) {}

  MagazinePool(const MagazinePool&) = delete;
  MagazinePool& operator=(const MagazinePool&) = delete;

  // Pops a node; nullptr only when the shared list AND every magazine are
  // empty. Same caller contract as NodePool::allocate (EBR guard held if
  // frees are concurrent) — the refill path detaches under that guard.
  // DCD_REQUIRES_GUARD(refill detaches from the shared free list under the caller's EBR guard)
  void* allocate() noexcept {
    Magazine& m = my_magazine();
    if (m.lock.exchange(true, std::memory_order_acquire)) {
      // A sweeper holds our magazine; don't wait on it.
      bump(m.misses);
      return pool_.allocate();
    }
    if (void* p = take_locked(m)) {
      bump(m.hits);
      m.lock.store(false, std::memory_order_release);
      return p;
    }
    bump(m.misses);
    fire(magazine_sync::kRefill);
    std::size_t got = 0;
    if (void* chain = pool_.allocate_chain(batch_, &got)) {
      bump(m.refills);
      m.alloc_head = NodePool::chain_next(chain);
      m.alloc_count = got - 1;
      m.lock.store(false, std::memory_order_release);
      return chain;
    }
    m.lock.store(false, std::memory_order_release);
    // Shared list empty: the remaining inventory (if any) is stranded in
    // other threads' magazines. Sweep them before reporting exhaustion.
    return sweep_allocate();
  }

  // Returns a node. Contract follows NodePool::deallocate: callers are EBR
  // reclamation callbacks or exclusive owners, so the node is safe to
  // re-push — it joins the free chain and leaves in a one-CAS batch flush.
  void deallocate(void* p) noexcept {
    DCD_DEBUG_ASSERT(pool_.owns(p));
    Magazine& m = my_magazine();
    if (m.lock.exchange(true, std::memory_order_acquire)) {
      pool_.deallocate(p);
      return;
    }
    NodePool::chain_set_next(p, m.free_head);
    m.free_head = p;
    if (m.free_tail == nullptr) m.free_tail = p;
    ++m.free_count;
    if (m.free_count >= batch_) {
      fire(magazine_sync::kFlush);
      pool_.deallocate_chain(m.free_head, m.free_tail, m.free_count);
      m.free_head = m.free_tail = nullptr;
      m.free_count = 0;
      bump(m.flushes);
    }
    m.lock.store(false, std::memory_order_release);
  }

  // EbrDomain-compatible deleter: ctx is this MagazinePool.
  static void deallocate_cb(void* p, void* ctx) {
    static_cast<MagazinePool*>(ctx)->deallocate(p);
  }

  // --- NodePool-compatible surface ----------------------------------------

  bool owns(const void* p) const noexcept { return pool_.owns(p); }
  std::size_t capacity() const noexcept { return pool_.capacity(); }
  std::size_t node_size() const noexcept { return pool_.node_size(); }
  std::uint64_t live() const noexcept { return pool_.live(); }
  std::uint64_t allocation_failures() const noexcept {
    return pool_.allocation_failures();
  }
  std::size_t batch() const noexcept { return batch_; }

  // Sum over all magazines. Quiescence caveat as in dcas::Telemetry.
  MagazineStats stats() const noexcept {
    MagazineStats s;
    for (const Magazine& m : mags_) {
      s.hits += m.hits.load(std::memory_order_relaxed);
      s.misses += m.misses.load(std::memory_order_relaxed);
      s.refills += m.refills.load(std::memory_order_relaxed);
      s.flushes += m.flushes.load(std::memory_order_relaxed);
    }
    return s;
  }

  // Nodes currently cached across all magazines (quiescent-exact; a test
  // hook for the flush/sweep accounting).
  std::size_t cached_unsynchronized() const noexcept {
    std::size_t n = 0;
    for (const Magazine& m : mags_) n += m.alloc_count + m.free_count;
    return n;
  }

 private:
  // One line for the lock + chains, so hot-path ops touch exactly one line
  // and neighbouring slots never false-share. The counters ride in the
  // same block: only the owner bumps them (sweepers don't), and stats() is
  // a quiescent read.
  struct alignas(util::kCacheLineSize) Magazine {
    std::atomic<bool> lock{false};
    void* alloc_head = nullptr;  // detached from shared list; alloc-only
    std::size_t alloc_count = 0;
    void* free_head = nullptr;  // from deallocate(); flushable
    void* free_tail = nullptr;
    std::size_t free_count = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> flushes{0};
  };

  static void fire(const char* point) noexcept {
    // DCD_HB(magazine.hook.install, role=acquire)
    if (MagazineHook h = magazine_hook().load(std::memory_order_acquire)) {
      h(point);
    }
  }

  // ThreadRegistry::self() is an out-of-line call; at one call per
  // allocator op it shows up on the hot path. A thread's slot id is stable
  // for its whole lifetime, so a one-entry per-thread cache keyed by pool
  // identity is safe: a hit returns the exact magazine self() would have
  // picked, and a thread touching a different (or reconstructed) pool
  // misses and recomputes. Cache identity uses the pool address — if a new
  // pool is constructed at a recycled address, the cached pointer lands at
  // the same member offset of the new object, which is still correct.
  Magazine& my_magazine() noexcept {
    struct Cache {
      const MagazinePool* pool;
      Magazine* mag;
    };
    static thread_local Cache cache{nullptr, nullptr};
    if (cache.pool != this) {
      cache = {this, &mags_[util::ThreadRegistry::self()]};
    }
    return *cache.mag;
  }

  // Counters are single-writer (only the slot's owner bumps them; sweepers
  // never touch a victim's counters), so a plain load+store increment
  // suffices — a fetch_add would put a locked RMW on every hot-path op,
  // costing the magazine the very serialization it exists to avoid.
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  // Caller holds m.lock. Allocation chain first: its nodes must drain
  // through allocations (see header comment), the free chain's may also
  // flush later.
  static void* take_locked(Magazine& m) noexcept {
    if (m.alloc_head != nullptr) {
      void* p = m.alloc_head;
      m.alloc_head = NodePool::chain_next(p);
      --m.alloc_count;
      return p;
    }
    if (m.free_head != nullptr) {
      void* p = m.free_head;
      m.free_head = NodePool::chain_next(p);
      if (m.free_head == nullptr) m.free_tail = nullptr;
      --m.free_count;
      return p;
    }
    return nullptr;
  }

  // Exhaustion path: steal one node from any magazine that yields its
  // try-lock. This is also what makes a dead thread's inventory reachable
  // — its magazine stays stealable after the slot recycles, so "flush on
  // thread exit" is realised lazily by whoever needs the nodes.
  // DCD_REQUIRES_GUARD(falls through to NodePool::allocate; same EBR-guard contract)
  void* sweep_allocate() noexcept {
    for (Magazine& v : mags_) {
      if (v.lock.exchange(true, std::memory_order_acquire)) continue;
      void* p = take_locked(v);
      v.lock.store(false, std::memory_order_release);
      if (p != nullptr) return p;
    }
    // A concurrent flush may have restocked the shared list mid-sweep;
    // this final attempt also counts the definitive failure.
    return pool_.allocate();
  }

  NodePool pool_;
  std::size_t batch_;
  Magazine mags_[util::ThreadRegistry::kMaxThreads];
};

}  // namespace dcd::reclaim
