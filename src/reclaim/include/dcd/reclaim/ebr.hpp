// Epoch-based reclamation (EBR).
//
// The paper assumes a garbage collector reclaims list nodes (§2 and footnote
// 2). This domain is the substitution: a node retired after being unlinked
// is freed only after two global epoch advances, which guarantees that no
// operation that could still hold a reference is in flight. Because a node
// also cannot be *reused* before that grace period, EBR additionally gives
// the deque algorithms the ABA-freedom on node addresses that GC provided.
//
// Usage contract:
//   * Every operation that reads shared pointers holds a Guard for its whole
//     duration. Guards are reentrant per thread (the MCAS engine pins its
//     own domain inside deque operations that already hold a guard on
//     another domain; both patterns are safe).
//   * retire() is called only after the object is unreachable from shared
//     memory (i.e. after the unlinking DCAS succeeded).
//   * The domain destructor frees everything still retired; the caller must
//     guarantee no thread is pinned in the domain at that point (the usual
//     "no concurrent access during destruction" rule).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dcd/util/align.hpp"
#include "dcd/util/thread_registry.hpp"

namespace dcd::reclaim {

class EbrDomain {
 public:
  using Deleter = void (*)(void*, void*);  // (object, context)

  EbrDomain();
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // RAII pin. Nested guards on the same domain are counted, not re-pinned.
  class Guard {
   public:
    explicit Guard(EbrDomain& domain)
        : domain_(domain), slot_(domain.enter()) {}
    ~Guard() { domain_.exit(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain& domain_;
    std::size_t slot_;
  };

  // Defers `deleter(p, ctx)` until the grace period has elapsed.
  void retire(void* p, Deleter deleter, void* ctx);

  // Convenience: retire an object allocated with `new`.
  template <typename T>
  void retire_delete(T* p) {
    retire(
        p, [](void* q, void*) { delete static_cast<T*>(q); }, nullptr);
  }

  // Best-effort: advance the epoch if possible and drain the calling
  // thread's retired list. Useful in tests to make reclamation prompt.
  void collect();

  // Diagnostics.
  std::uint64_t retired_count() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const {
    return freed_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t pending_count() const {
    return retired_count() - freed_count();
  }
  std::uint64_t epoch() const {
    return global_epoch_->load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* p;
    Deleter deleter;
    void* ctx;
    std::uint64_t epoch;
  };

  struct SlotState {
    // 0 = quiescent; otherwise the epoch this thread pinned.
    std::atomic<std::uint64_t> pinned{0};
    // Nesting depth; touched only by the owning thread.
    std::uint32_t nesting = 0;
    // Retired-but-not-freed objects; touched only by the owning thread
    // (slot ownership is exclusive via ThreadRegistry).
    std::vector<Retired> limbo;
    // Retires since the last drain attempt.
    std::uint32_t since_drain = 0;
  };

  // Attempt one global epoch advance; succeeds iff every pinned slot is at
  // the current epoch.
  bool try_advance();

  // Free entries in `slot`'s limbo list whose grace period has elapsed.
  void drain(SlotState& slot, bool force);

  std::size_t enter();
  void exit(std::size_t slot);

  static constexpr std::uint32_t kDrainThreshold = 64;

  util::CacheAligned<std::atomic<std::uint64_t>> global_epoch_;
  util::CacheAligned<SlotState> slots_[util::ThreadRegistry::kMaxThreads];
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};
};

// Process-wide default domain (used by the MCAS engine's descriptors).
EbrDomain& global_ebr_domain();

}  // namespace dcd::reclaim
