// Compile-time contracts for the reclamation layer.
//
// The paper assumes GC (§2); the list deques substitute a pluggable policy.
// ReclaimPolicy pins the surface the deques consume — an RAII Guard pinned
// for an operation's whole duration, retire() for nodes that have been
// physically unlinked, and collect() for prompt best-effort reclamation in
// tests — so a policy that silently drops part of the contract (say, a
// Guard that is not constructible from the policy, leaving operations
// unpinned) fails at the instantiation site instead of as a use-after-free
// under load.
//
// LfrcManaged captures the object contract of the LFRC methodology ([12]):
// a count word named `rc` managed through the policy layer, and a
// lfrc_dispose() hook that drops outgoing references and frees storage.
#pragma once

#include <concepts>
#include <type_traits>

#include "dcd/dcas/word.hpp"
#include "dcd/reclaim/node_pool.hpp"

namespace dcd::reclaim {

template <typename R>
concept ReclaimPolicy = requires(R r, void* node, NodePool& pool) {
  { R::kName } -> std::convertible_to<const char*>;
  typename R::Guard;
  requires std::is_constructible_v<typename R::Guard, R&>;
  requires !std::is_copy_constructible_v<R>;  // a policy owns limbo state
  { r.retire(node, pool) };
  { r.collect() };
};

// The allocator surface the deques consume (NodePool and MagazinePool both
// model it): pop/push with observable exhaustion, an EbrDomain-compatible
// deleter for retire(), and the introspection the tests and benches read.
// A pool that drops the static deleter would silently break every
// ReclaimPolicy::retire instantiation; this fails it at the deque instead.
template <typename P>
concept PoolPolicy =
    requires(P p, const P cp, void* node, std::size_t n) {
      requires !std::is_copy_constructible_v<P>;  // owns slab storage
      { p.allocate() } noexcept -> std::same_as<void*>;
      { p.deallocate(node) } noexcept;
      { P::deallocate_cb(node, static_cast<void*>(&p)) };
      { cp.owns(node) } noexcept -> std::convertible_to<bool>;
      { cp.capacity() } noexcept -> std::convertible_to<std::size_t>;
      { cp.node_size() } noexcept -> std::convertible_to<std::size_t>;
      { cp.live() } noexcept -> std::convertible_to<std::uint64_t>;
      { cp.allocation_failures() } noexcept
          -> std::convertible_to<std::uint64_t>;
    };

static_assert(PoolPolicy<NodePool>);

// Objects reclaimed purely by lock-free reference counting. The count word
// must be the object's first member so a stale LFRC load that probes
// recycled storage lands on a Word, never on arbitrary payload bytes.
template <typename T>
concept LfrcManaged = requires(T t) {
  { t.rc } -> std::convertible_to<const dcas::Word&>;
  { t.lfrc_dispose() };
};

}  // namespace dcd::reclaim
