// Compile-time contract layer for the DCAS substrate.
//
// Two kinds of static guarantee live here, both consumed by static_asserts
// at every instantiation site (the deques, the fault-injection wrapper, the
// test fixtures):
//
//   1. the DcasPolicy concept — the exact surface the paper's Figure 1
//      assumes (both DCAS forms) plus the managed load/initial-store through
//      which all shared-word traffic flows;
//   2. word-layout audits — the reserved-bit encoding of word.hpp is the
//      repo's substitute for the paper's typed `val` set, and every
//      algorithm's correctness argument leans on it. The asserts below pin
//      the layout so a change that would silently break tag-bit headroom,
//      special-value disjointness or payload round-tripping fails to
//      compile instead of failing under some scheduler interleaving.
//
// This header is include-light on purpose (word.hpp only): chaos.hpp and
// the policy headers can constrain their templates without pulling in the
// full policy list from policies.hpp.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <type_traits>

#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

// A DcasPolicy supplies the two DCAS forms of Figure 1 plus the managed
// load/initial-store. The deque templates are parameterised on a policy so
// every algorithm runs unchanged over each emulation — the repo's
// substitute for "running on DCAS hardware".
template <typename P>
concept DcasPolicy = requires(Word& w, const Word& cw, std::uint64_t v,
                              std::uint64_t& vr) {
  { P::kName } -> std::convertible_to<const char*>;
  { P::kLockFree } -> std::convertible_to<bool>;
  { P::load(cw) } -> std::same_as<std::uint64_t>;
  { P::store_init(w, v) };
  { P::cas(w, v, v) } -> std::same_as<bool>;
  { P::dcas(w, w, v, v, v, v) } -> std::same_as<bool>;
  { P::dcas_view(w, w, vr, vr, v, v) } -> std::same_as<bool>;
};

// --- word-layout audit ----------------------------------------------------

// The shared word is exactly one lock-free 64-bit atomic; every policy
// (including the inline-asm cmpxchg16b path) relies on its object
// representation being the bare value.
static_assert(sizeof(Word) == 8 && alignof(Word) == 8,
              "Word must be a bare 64-bit cell");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared words must be natively atomic");
static_assert(std::is_trivially_copyable_v<std::uint64_t> &&
                  std::is_trivially_destructible_v<std::atomic<std::uint64_t>>,
              "value words must stay trivially copyable (type-stable pools "
              "recycle their storage without re-construction)");

// The three reserved bits are distinct and together span exactly the bits
// below the payload — no gap a rogue encoding could hide in, no overlap.
static_assert((kDescriptorBit & kDeletedBit) == 0 &&
                  (kDescriptorBit & kSpecialBit) == 0 &&
                  (kDeletedBit & kSpecialBit) == 0,
              "reserved bits must be disjoint");
static_assert((kDescriptorBit | kDeletedBit | kSpecialBit) ==
                  (1ull << kPayloadShift) - 1,
              "reserved bits must fill the sub-payload space exactly");

// Tag-bit headroom: payloads are 64 - kPayloadShift bits, and the encode /
// decode pair round-trips the full range without touching reserved bits.
static_assert(kMaxPayload == (~0ull >> kPayloadShift),
              "kMaxPayload must match the payload width");
static_assert(decode_payload(encode_payload(kMaxPayload)) == kMaxPayload &&
                  decode_payload(encode_payload(0)) == 0,
              "payload encode/decode must round-trip at the extremes");
static_assert((encode_payload(kMaxPayload) &
               (kDescriptorBit | kDeletedBit | kSpecialBit)) == 0,
              "encoded payloads must keep every reserved bit clear");

// The paper's distinguished values are mutually distinct, carry the special
// flag, and can never be mistaken for in-flight descriptors or deleted
// pointers.
static_assert(kNull != kSentL && kNull != kSentR && kSentL != kSentR &&
                  kNull != kDummy && kSentL != kDummy && kSentR != kDummy,
              "distinguished values must be distinct");
static_assert(is_special(kNull) && is_special(kSentL) && is_special(kSentR) &&
                  is_special(kDummy),
              "distinguished values must carry the special flag");
static_assert(!is_descriptor(kNull) && !is_descriptor(kSentL) &&
                  !is_descriptor(kSentR) && !is_descriptor(kDummy),
              "distinguished values must not look like MCAS descriptors");
static_assert(!deleted_of(kNull) && !deleted_of(kSentL) &&
                  !deleted_of(kSentR) && !deleted_of(kDummy),
              "distinguished values must not carry the deleted bit");

}  // namespace dcd::dcas
