// Lock-free DCAS built from single-word CAS.
//
// This is the substitution for the DCAS hardware the paper anticipated and
// that never shipped: a two-word instance of the multi-word CAS of Harris,
// Fraser & Pratt ("A practical multi-word compare-and-swap operation",
// DISC 2002), which itself is in the lineage of the cooperative software
// emulations the paper cites ([8] Barnes, [30] Shavit & Touitou). Using it
// as the deques' DCAS policy preserves the paper's end-to-end non-blocking
// progress claim on CAS-only hardware.
//
// Structure:
//   * An operation publishes an McasDesc and installs a marked pointer to
//     it in each target word via RDCSS (a restricted DCAS that makes the
//     installation conditional on the operation still being UNDECIDED).
//   * Any thread that encounters a marked word helps the operation to
//     completion, so a stalled owner never blocks others (lock-freedom).
//   * The operation's outcome is decided by a single CAS on the status
//     word; phase 2 replaces the marks with new (success) or old (failure)
//     values.
//
// Descriptor lifetime is managed by the process-wide EBR domain: helpers
// only dereference descriptors while pinned, and descriptors are retired
// after phase 2, so the grace period prevents both use-after-free and
// descriptor-address ABA.
//
// Words managed by this policy must keep bit 0 clear in all user-visible
// values (guaranteed by the dcd::dcas word encoding).
#pragma once

#include <cstdint>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

class McasDcas {
 public:
  static constexpr const char* kName = "mcas";
  static constexpr bool kLockFree = true;

  // Reads a word, helping (and thereby removing) any in-flight descriptor
  // it encounters. Returns a clean user value.
  static std::uint64_t load(const Word& w) noexcept;

  static void store_init(Word& w, std::uint64_t v) noexcept {
    w.raw.store(v, std::memory_order_release);
  }

  // Single-word CAS coexisting with in-flight MCAS descriptors: a marked
  // word is first helped to completion, then a raw CAS applies (a raw CAS
  // can never clobber a descriptor because the expected value is clean).
  static bool cas(Word& w, std::uint64_t oldv, std::uint64_t newv) noexcept;

  // Figure 1, first form.
  static bool dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                   std::uint64_t na, std::uint64_t nb) noexcept;

  // Figure 1, second form. A failed MCAS does not intrinsically produce an
  // atomic view of the two words, so failure falls back to a snapshot loop:
  // read both words, then validate the pair with an identity DCAS. The loop
  // is lock-free (each failed validation implies some other operation's
  // DCAS succeeded). E4 measures the cost of algorithms that rely on this
  // stronger form.
  static bool dcas_view(Word& a, Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept;

  // Atomic snapshot of two words (exposed for tests): loops an identity
  // DCAS until it witnesses an unchanged pair.
  static void snapshot(Word& a, Word& b, std::uint64_t& va,
                       std::uint64_t& vb) noexcept;

  // General N-word CAS (N in [1, kMaxCasnWidth]) from the same engine —
  // DCAS is casn with n == 2. Exposed to measure how emulation cost grows
  // with width (experiment E10): the paper's related work (§1.1) leans on
  // exactly this trade-off when it criticises designs that treat "the
  // two-word DCAS as if it were a three-word operation".
  static constexpr std::size_t kMaxCasnWidth = 4;
  static bool casn(Word* const* addrs, const std::uint64_t* olds,
                   const std::uint64_t* news, std::size_t n) noexcept;
};

}  // namespace dcd::dcas
