// DCAS emulation with a single global spinlock.
//
// This is the "blocking software emulation" the paper cites (Agesen &
// Cartwright [2]). DCASes serialise on one lock; single-word loads stay
// lock-free. The deque algorithms remain correct because every conclusion
// drawn from plain loads is either re-validated by a DCAS (which serialises
// with all other DCASes) or follows from invariants over immutable fields
// (the sentinels' value fields) — the same structure §5's proof relies on.
// Progress is of course blocking; E5 quantifies what that costs.
#pragma once

#include <atomic>
#include <cstdint>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

class GlobalLockDcas {
 public:
  static constexpr const char* kName = "global_lock";
  static constexpr bool kLockFree = false;

  static std::uint64_t load(const Word& w) noexcept {
    ++Telemetry::tl().loads;
    // DCD_HB(deque.word.publish, role=acquire)
    return w.raw.load(std::memory_order_acquire);
  }

  // Initialisation-time store (no concurrency yet).
  static void store_init(Word& w, std::uint64_t v) noexcept {
    w.raw.store(v, std::memory_order_release);
  }

  // Single-word CAS that serialises with DCASes (used by LFRC's count
  // manipulation, which shares words with DCAS).
  static bool cas(Word& w, std::uint64_t oldv, std::uint64_t newv) noexcept;

  // Figure 1, first form: boolean result.
  static bool dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                   std::uint64_t na, std::uint64_t nb) noexcept;

  // Figure 1, second form: on failure, *oa/*ob receive an atomic view of
  // the two locations.
  static bool dcas_view(Word& a, Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept;
};

}  // namespace dcd::dcas
