// The shared-word representation every DCAS policy operates on.
//
// All memory the deque algorithms synchronise through is expressed as
// 64-bit Words with the low three bits reserved:
//
//   bit 0  descriptor mark   — set only by the lock-free MCAS engine while
//                              an operation is in flight; user-visible
//                              values always have it clear
//   bit 1  second mark /     — inside a marked word, distinguishes RDCSS
//          "deleted" bit       from MCAS descriptors; in a clean pointer
//                              word it is the paper's `deleted` bit (§4)
//   bit 2  special flag      — the word holds one of the paper's three
//                              distinguished values (null / sentL / sentR)
//                              instead of a user payload
//
// User payloads are therefore 61 bits wide and stored shifted left by 3.
// Node addresses come from a 64-aligned pool, so pointer words store the
// address directly (its low bits are naturally zero) plus the deleted bit.
#pragma once

#include <atomic>
#include <cstdint>

#include "dcd/util/assert.hpp"

namespace dcd::dcas {

// A DCAS-managed shared word. Plain loads/stores must go through the
// policy (Policy::load / Policy::store_init) so that the MCAS engine can
// strip in-flight descriptors.
class Word {
 public:
  // NOTE: construction writes (C++20 atomics value-initialise), so
  // recycled type-stable storage that stale readers may still probe (the
  // LFRC pattern) must NOT be re-constructed — reuse the storage and
  // re-initialise through Policy::store_init instead (see LfrcStack).
  Word() noexcept : raw(0) {}
  explicit Word(std::uint64_t v) noexcept : raw(v) {}

  Word(const Word&) = delete;
  Word& operator=(const Word&) = delete;

  std::atomic<std::uint64_t> raw;
};

static_assert(sizeof(Word) == 8);

// --- reserved-bit layout -------------------------------------------------

inline constexpr std::uint64_t kDescriptorBit = 1ull << 0;
inline constexpr std::uint64_t kDeletedBit = 1ull << 1;
inline constexpr std::uint64_t kSpecialBit = 1ull << 2;
inline constexpr unsigned kPayloadShift = 3;

// The paper's three distinguished values (§2.2, §4).
inline constexpr std::uint64_t kNull = kSpecialBit | (0ull << kPayloadShift);
inline constexpr std::uint64_t kSentL = kSpecialBit | (1ull << kPayloadShift);
inline constexpr std::uint64_t kSentR = kSpecialBit | (2ull << kPayloadShift);
// Marks a "delete-bit" dummy record (footnote 4 / Figure 10): a node whose
// value word holds kDummy is not a list element but an indirection standing
// in for a set deleted bit.
inline constexpr std::uint64_t kDummy = kSpecialBit | (3ull << kPayloadShift);
// Elimination-slot state: a popper that consumed an offer parks this in the
// slot so the pusher can observe the handoff (see deque/elimination.hpp).
inline constexpr std::uint64_t kElimTaken =
    kSpecialBit | (4ull << kPayloadShift);

constexpr bool is_descriptor(std::uint64_t v) noexcept {
  return (v & kDescriptorBit) != 0;
}
constexpr bool is_special(std::uint64_t v) noexcept {
  return !is_descriptor(v) && (v & kSpecialBit) != 0;
}
constexpr bool is_null(std::uint64_t v) noexcept { return v == kNull; }

// Encode/decode a 61-bit payload.
constexpr std::uint64_t encode_payload(std::uint64_t payload) noexcept {
  return payload << kPayloadShift;
}
constexpr std::uint64_t decode_payload(std::uint64_t word) noexcept {
  return word >> kPayloadShift;
}
inline constexpr std::uint64_t kMaxPayload = (1ull << 61) - 1;

// --- pointer words (list deque, §4) ---------------------------------------

// Pointer words store a 64-aligned node address plus the deleted bit.
template <typename NodeT>
constexpr std::uint64_t encode_pointer(NodeT* p, bool deleted) noexcept {
  const auto bits = reinterpret_cast<std::uint64_t>(p);
  return bits | (deleted ? kDeletedBit : 0ull);
}

template <typename NodeT>
NodeT* pointer_of(std::uint64_t word) noexcept {
  return reinterpret_cast<NodeT*>(word & ~(kDescriptorBit | kDeletedBit));
}

constexpr bool deleted_of(std::uint64_t word) noexcept {
  return (word & kDeletedBit) != 0;
}

// Strips the deleted bit from a pointer word (leaving the address and any
// other reserved bits untouched). The mutation-injection layer of the model
// checker uses this to express "this DCAS forgot to set the deleted bit"
// without doing reserved-bit arithmetic outside this header.
constexpr std::uint64_t clear_deleted(std::uint64_t word) noexcept {
  return word & ~kDeletedBit;
}

// --- elimination-slot words (deque/elimination.hpp) ------------------------
//
// An elimination slot cycles kNull -> offer -> (kNull | kElimTaken). An
// offer wraps an already-encoded *value* word (payload words keep their low
// three bits clear), tagged with kDeletedBit so it can never be confused
// with kNull/kElimTaken (special bit set) or an in-flight MCAS descriptor
// (descriptor bit set).

constexpr std::uint64_t encode_elim_offer(std::uint64_t value_word) noexcept {
  return value_word | kDeletedBit;
}

constexpr bool is_elim_offer(std::uint64_t word) noexcept {
  return (word & (kDescriptorBit | kDeletedBit | kSpecialBit)) == kDeletedBit;
}

// Recovers the encoded value word from an offer.
constexpr std::uint64_t elim_offer_value(std::uint64_t word) noexcept {
  return word & ~kDeletedBit;
}

}  // namespace dcd::dcas
