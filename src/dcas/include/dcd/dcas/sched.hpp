// Deterministic-scheduling DCAS wrapper ("SchedDcas") — the policy the
// stateless model checker (dcd::mc) instruments.
//
// ChaosDcas (chaos.hpp) perturbs schedules *probabilistically*; SchedDcas
// hands schedule control to an installed SchedClient *exactly*: every
// policy-layer access (load / cas / both DCAS forms) first parks the
// calling model thread in SchedClient::before_access until the scheduler
// grants it the step, then executes the access through the inner policy and
// reports the result via after_access. Because the scheduler admits one
// model thread at a time, an execution is a deterministic function of the
// sequence of grants — which is what lets dcd::mc::Explorer enumerate
// interleavings exhaustively and replay any one of them from a schedule
// file (see docs/MODEL_CHECKING.md).
//
// The sync-point classification is shared with the chaos registry: each
// DCAS access carries the DcasShape recovered by classify_dcas(), so a
// counterexample schedule can name the same sync points
// (pop.logical_delete, delete.two_null_splice, ...) that ChaosDcas park
// rules use — the bridge that makes mc counterexamples reproducible under
// fault injection.
//
// store_init is deliberately NOT a scheduling point: its contract
// (word.hpp) restricts it to initialisation of words no other thread can
// reach yet (constructors, a push's private node before its publishing
// DCAS), so interleaving it cannot change any observable behaviour and
// would only deepen every explored trace.
#pragma once

#include <atomic>
#include <cstdint>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

// The kind of policy-layer access about to execute.
enum class AccessKind : std::uint8_t {
  kLoad,
  kCas,
  kDcas,
  kDcasView,
};

const char* access_kind_name(AccessKind k) noexcept;

// One shared-memory step, described *before* it executes (the scheduler
// needs the footprint to decide independence; whether a CAS/DCAS will
// actually write is unknowable beforehand, so may-write is conservative).
struct SchedAccess {
  AccessKind kind = AccessKind::kLoad;
  const Word* a = nullptr;  // every access touches a
  const Word* b = nullptr;  // DCAS forms also touch b
  DcasShape shape = DcasShape::kGeneric;  // chaos-registry classification
  std::uint64_t oa = 0, ob = 0, na = 0, nb = 0;

  bool may_write() const noexcept { return kind != AccessKind::kLoad; }
};

// The scheduler a SchedDcas call yields to. before_access blocks the
// calling thread until the scheduler grants the step; after_access reports
// whether the step wrote (successful cas/dcas) — the dependency information
// DPOR race analysis runs on. Implementations must tolerate calls from
// threads they do not manage (the model-checker control thread walking a
// deque during setup) by returning immediately.
class SchedClient {
 public:
  virtual ~SchedClient() = default;
  virtual void before_access(const SchedAccess& access) = 0;
  virtual void after_access(const SchedAccess& access, bool wrote) = 0;
};

// Process-wide installed client (at most one; nullptr = every SchedDcas
// call is a plain passthrough to the inner policy).
SchedClient* sched_client() noexcept;
// Installing over an existing client (or uninstalling nothing) asserts.
void install_sched_client(SchedClient* client) noexcept;
void uninstall_sched_client(SchedClient* client) noexcept;

// The wrapper policy. Satisfies DcasPolicy whenever Inner does. With no
// client installed every call is one relaxed load away from Inner; with a
// client installed, every access is a scheduling point.
template <DcasPolicy Inner = GlobalLockDcas>
class SchedDcasT {
 public:
  static constexpr const char* kName = "sched";
  // The wrapper serialises model threads, so the composite is trivially
  // not lock-free at runtime; kLockFree advertises Inner's property because
  // the *algorithms under test* are explored unchanged.
  static constexpr bool kLockFree = Inner::kLockFree;

  using InnerPolicy = Inner;

  static std::uint64_t load(const Word& w) noexcept {
    SchedClient* c = sched_client();
    if (c == nullptr) return Inner::load(w);
    SchedAccess acc;
    acc.kind = AccessKind::kLoad;
    acc.a = &w;
    c->before_access(acc);
    const std::uint64_t v = Inner::load(w);
    c->after_access(acc, /*wrote=*/false);
    return v;
  }

  static void store_init(Word& w, std::uint64_t v) noexcept {
    Inner::store_init(w, v);  // initialisation only — never a sync point
  }

  static bool cas(Word& w, std::uint64_t oldv, std::uint64_t newv) noexcept {
    SchedClient* c = sched_client();
    if (c == nullptr) return Inner::cas(w, oldv, newv);  // DCD_SYNC(policy-internal)
    SchedAccess acc;
    acc.kind = AccessKind::kCas;
    acc.a = &w;
    acc.shape = classify_cas(oldv, newv);  // elim slots; else kGeneric
    acc.oa = oldv;
    acc.na = newv;
    c->before_access(acc);
    const bool ok = Inner::cas(w, oldv, newv);  // DCD_SYNC(policy-internal)
    c->after_access(acc, ok);
    return ok;
  }

  static bool dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                   std::uint64_t na, std::uint64_t nb) noexcept {
    SchedClient* c = sched_client();
    if (c == nullptr) return Inner::dcas(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    SchedAccess acc;
    acc.kind = AccessKind::kDcas;
    acc.a = &a;
    acc.b = &b;
    acc.shape = classify_dcas(oa, ob, na, nb);
    acc.oa = oa;
    acc.ob = ob;
    acc.na = na;
    acc.nb = nb;
    c->before_access(acc);
    const bool ok = Inner::dcas(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    c->after_access(acc, ok);
    return ok;
  }

  static bool dcas_view(Word& a, Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept {
    SchedClient* c = sched_client();
    if (c == nullptr) return Inner::dcas_view(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    SchedAccess acc;
    acc.kind = AccessKind::kDcasView;
    acc.a = &a;
    acc.b = &b;
    acc.shape = classify_dcas(oa, ob, na, nb);
    acc.oa = oa;
    acc.ob = ob;
    acc.na = na;
    acc.nb = nb;
    c->before_access(acc);
    const bool ok = Inner::dcas_view(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    c->after_access(acc, ok);
    return ok;
  }
};

using SchedDcas = SchedDcasT<GlobalLockDcas>;

}  // namespace dcd::dcas
