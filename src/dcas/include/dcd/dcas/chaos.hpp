// Fault-injecting DCAS wrapper ("ChaosDcas") + the sync-point registry it
// reports into.
//
// The paper's robustness claims (§5.2) are about *adversarial schedules*: a
// popper suspended between its logical and physical delete must never block
// other threads, and the Figure 16 two-null-node race must resolve with
// exactly one DCAS winner. Plain stress tests only sample schedules the OS
// happens to produce; ChaosDcas<Inner> lets a test *force* the schedules
// the proofs reason about. It satisfies DcasPolicy, delegates every
// operation to any inner policy, and injects three kinds of fault from a
// seeded, replayable schedule:
//
//   * delay windows       — randomized spin delays before loads/DCASes,
//                           widening the windows the algorithms must
//                           tolerate;
//   * forced DCAS failure — a boolean-form DCAS returns false without
//                           touching memory (a spurious retry; safe because
//                           every boolean-DCAS caller treats failure as
//                           "loop again"). Never applied to dcas_view: its
//                           failure contract hands back an *atomic view*
//                           that callers act on (the lines-17/18 paths),
//                           which a fake failure cannot produce;
//   * pause/kill at named sync points — a thread is parked (resumably) or
//                           killed (parked until teardown) when it hits a
//                           named point, e.g. right after a list pop's
//                           logical delete and before anyone's physical
//                           delete.
//
// Sync points are derived *at the policy layer* by classifying each DCAS
// call from the word encoding of its operands (word.hpp's reserved bits
// make every algorithmic DCAS shape distinguishable), so the deque sources
// stay byte-identical: the retry loops tap the registry purely through
// their existing Dcas::load/Dcas::dcas call sites.
//
//   shape                   fires                       when
//   ---------------------   -------------------------   -------------------
//   any DCAS                "dcas.any"                  before the attempt
//   identity (na==oa,nb==ob)"empty.confirm"             before the attempt
//   nb==null, na has
//     deleted bit           "pop.logical_delete"        after success
//   nb==null otherwise      "pop.commit"                after success
//   oa or ob deleted bit    "delete.splice"             before the attempt
//   oa AND ob deleted bit   "delete.two_null_splice"    before the attempt
//
// "pop.logical_delete" is the list deque's split-pop linearization point
// (§4); parking there is exactly the paper's suspended popper.
// "delete.two_null_splice" is the Figure 16 double splice; parking the
// first two threads there stages the two-winner race deterministically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

// The algorithmic shape of a DCAS call, recovered from its operands.
// The kElim* shapes are single-word CAS transitions of an elimination slot
// (deque/elimination.hpp), classified by classify_cas below.
enum class DcasShape : std::uint8_t {
  kGeneric = 0,        // pushes, MCAS internals, anything unclassified
  kEmptyConfirm,       // identity DCAS confirming an empty/full snapshot
  kPopCommit,          // array-style pop: cell nulled, index moved
  kLogicalDelete,      // list pop: deleted bit set + value nulled
  kSplice,             // physical delete, single-node splice
  kTwoNullSplice,      // physical delete, Figure 16 double splice
  kElimOffer,          // pusher installs an offer into an empty slot
  kElimTake,           // popper consumes an offer (the pair's lin. point)
  kElimCancel,         // pusher withdraws an unconsumed offer
  kElimClear,          // pusher reclaims a consumed (kElimTaken) slot
  kCount_,
};

constexpr std::size_t kDcasShapeCount =
    static_cast<std::size_t>(DcasShape::kCount_);

const char* shape_name(DcasShape s) noexcept;

constexpr DcasShape classify_dcas(std::uint64_t oa, std::uint64_t ob,
                                  std::uint64_t na,
                                  std::uint64_t nb) noexcept {
  if (na == oa && nb == ob) return DcasShape::kEmptyConfirm;
  if (deleted_of(oa) && deleted_of(ob)) return DcasShape::kTwoNullSplice;
  if (deleted_of(oa) || deleted_of(ob)) return DcasShape::kSplice;
  if (nb == kNull) {
    return deleted_of(na) ? DcasShape::kLogicalDelete : DcasShape::kPopCommit;
  }
  return DcasShape::kGeneric;
}

// Classifies a single-word CAS from its operands. Only the elimination
// slot transitions are recognisable (their words carry the reserved-bit
// signatures word.hpp defines); everything else — MCAS internals, tests —
// stays kGeneric and takes the uninstrumented fast path in ChaosDcas::cas.
constexpr DcasShape classify_cas(std::uint64_t oldv,
                                 std::uint64_t newv) noexcept {
  if (oldv == kNull && is_elim_offer(newv)) return DcasShape::kElimOffer;
  if (is_elim_offer(oldv)) {
    if (newv == kElimTaken) return DcasShape::kElimTake;
    if (newv == kNull) return DcasShape::kElimCancel;
    return DcasShape::kGeneric;
  }
  if (oldv == kElimTaken && newv == kNull) return DcasShape::kElimClear;
  return DcasShape::kGeneric;
}

// Everything randomized in a chaos run derives deterministically from one
// seed, so a failing run replays from the seed alone (the repo-wide
// reproducibility rule; see docs/FAULT_INJECTION.md for the workflow).
struct ChaosSchedule {
  std::uint64_t seed = 0;
  // Probability (per mille) that a load / DCAS call site delays, and the
  // delay window in cpu_relax() iterations drawn uniformly from
  // [0, max_delay_spins).
  std::uint32_t delay_per_mille = 0;
  std::uint32_t max_delay_spins = 0;
  // Probability (per mille) that a boolean-form DCAS spuriously fails.
  std::uint32_t dcas_fail_per_mille = 0;

  // Canonical seed → parameters mapping (pure function of `seed`).
  static ChaosSchedule from_seed(std::uint64_t seed) noexcept;

  // One-line description for CI logs: re-running with the same seed must
  // print the identical line.
  std::string describe() const;
};

// Installable fault controller. At most one is active process-wide;
// construction installs, destruction releases every parked thread and
// uninstalls. Arm all park rules before concurrent traffic starts.
//
// Thread-safety: hit counters and stats are atomics; parking uses a
// mutex/condvar (TSan-clean); per-thread RNG/fingerprint state is indexed
// by ThreadRegistry slot and touched only by its owner.
class ChaosController {
 public:
  static constexpr std::size_t kMaxRules = 16;
  static constexpr std::uint64_t kNoRule = ~std::uint64_t{0};

  explicit ChaosController(const ChaosSchedule& schedule);
  ~ChaosController();

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  // The installed controller, or nullptr (the fast path every ChaosDcas
  // call checks first).
  static ChaosController* active() noexcept {
    // DCD_HB(chaos.controller.install, role=acquire)
    return active_.load(std::memory_order_acquire);
  }

  // Pin the controller for the duration of one wrapped call (nullptr if
  // none installed). The destructor wakes every parked thread and then
  // waits for the pin count to drain before freeing its state, so a thread
  // it resumes can finish the call it was parked inside. Pin-then-check
  // ordering guarantees any thread that obtained a non-null controller is
  // counted before the destructor's drain.
  static ChaosController* acquire() noexcept {
    pins_.fetch_add(1, std::memory_order_seq_cst);
    ChaosController* c = active_.load(std::memory_order_seq_cst);
    if (c == nullptr) pins_.fetch_sub(1, std::memory_order_release);
    return c;
  }
  static void unpin() noexcept {
    // DCD_HB(chaos.pin.teardown, role=release)
    pins_.fetch_sub(1, std::memory_order_release);
  }

  const ChaosSchedule& schedule() const noexcept { return schedule_; }

  // --- test-facing rule API ----------------------------------------------

  // Park the thread that produces the nth (1-based) hit of `point` until
  // release(). "Kill" is a park the test never releases: the victim stays
  // parked until controller teardown, modelling a thread that dies at the
  // sync point. Returns a rule handle.
  std::size_t arm_park(const char* point, std::uint64_t nth);

  // True while a thread is blocked inside rule `r`'s park.
  bool parked(std::size_t r) const;

  // Blocks until a thread parks at rule `r`; false on timeout.
  bool wait_parked(std::size_t r, std::uint64_t timeout_ms) const;

  void release(std::size_t r);
  void release_all();

  // --- stats --------------------------------------------------------------

  std::uint64_t attempts(DcasShape s) const noexcept;
  std::uint64_t successes(DcasShape s) const noexcept;
  std::uint64_t forced_failures() const noexcept;
  std::uint64_t delays_injected() const noexcept;

  // XOR over per-thread FNV-1a digests of every injected decision
  // (shape, delay?, spins, forced-fail?). For a fixed single-threaded call
  // sequence this is a pure function of the schedule seed — the replay
  // determinism tests key on it.
  std::uint64_t fingerprint() const noexcept;

  // --- ChaosDcas-facing hooks (hot path) ----------------------------------

  void on_load() noexcept;
  void before_dcas(DcasShape s) noexcept;
  // Only boolean-form DCAS calls consult this (see header comment).
  bool maybe_force_fail(DcasShape s) noexcept;
  void after_dcas(DcasShape s, bool ok) noexcept;

  // Classified single-word CAS hooks (elimination slots). No forced
  // failures (a lost CAS re-scans, it does not retry the same transition,
  // so a spurious miss would silently skip protocol states) and no
  // "dcas.any" — only the shape's own point fires: kElimOffer/kElimCancel/
  // kElimClear before the attempt, kElimTake after success (it is the
  // exchange's linearization point, like pop.logical_delete).
  void before_cas(DcasShape s) noexcept;
  void after_cas(DcasShape s, bool ok) noexcept;

  // Fires `point` rules outside any DCAS/CAS context — the magazine
  // allocator reports its refill/flush windows through this via the
  // reclaim::magazine_hook() trampoline chaos.cpp installs. Deliberately
  // does not consume schedule RNG, so magazine traffic cannot shift the
  // injected-fault fingerprint of the DCAS stream.
  void notify(const char* point) noexcept;

 private:
  struct Impl;
  Impl* impl_;
  ChaosSchedule schedule_;

  static std::atomic<ChaosController*> active_;
  // Threads currently inside a wrapped call (process-wide: at most one
  // controller is ever active, and the count must survive its teardown).
  static std::atomic<std::size_t> pins_;
};

// Reads DCD_CHAOS_SEED from the environment, falling back to `fallback`.
// CI pins this variable so schedule-dependent failures replay from the log
// (mirroring fuzz_replay_test's printed-seed workflow).
std::uint64_t chaos_seed_from_env(std::uint64_t fallback) noexcept;

// The wrapper policy. Satisfies DcasPolicy whenever Inner does (the
// constraint rejects non-policies at the instantiation site); with no
// controller installed every call is a single relaxed load away from the
// inner policy.
template <DcasPolicy Inner>
class ChaosDcas {
 public:
  static constexpr const char* kName = "chaos";
  // Progress caveat: parking a thread models that thread dying, so the
  // wrapper preserves Inner's progress property for the *other* threads —
  // which is precisely the claim the chaos suites exercise.
  static constexpr bool kLockFree = Inner::kLockFree;

  using InnerPolicy = Inner;

  static std::uint64_t load(const Word& w) noexcept {
    if (ChaosController* c = ChaosController::acquire()) {
      c->on_load();
      ChaosController::unpin();
    }
    return Inner::load(w);
  }

  static void store_init(Word& w, std::uint64_t v) noexcept {
    Inner::store_init(w, v);
  }

  static bool cas(Word& w, std::uint64_t oldv, std::uint64_t newv) noexcept {
    const DcasShape s = classify_cas(oldv, newv);
    if (s == DcasShape::kGeneric) return Inner::cas(w, oldv, newv);  // DCD_SYNC(policy-internal)
    ChaosController* c = ChaosController::acquire();
    if (c == nullptr) return Inner::cas(w, oldv, newv);  // DCD_SYNC(policy-internal)
    c->before_cas(s);
    const bool ok = Inner::cas(w, oldv, newv);  // DCD_SYNC(policy-internal)
    c->after_cas(s, ok);
    ChaosController::unpin();
    return ok;
  }

  static bool dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                   std::uint64_t na, std::uint64_t nb) noexcept {
    ChaosController* c = ChaosController::acquire();
    if (c == nullptr) return Inner::dcas(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    const DcasShape s = classify_dcas(oa, ob, na, nb);
    c->before_dcas(s);
    if (c->maybe_force_fail(s)) {
      ChaosController::unpin();
      return false;
    }
    const bool ok = Inner::dcas(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    c->after_dcas(s, ok);
    ChaosController::unpin();
    return ok;
  }

  static bool dcas_view(Word& a, Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept {
    ChaosController* c = ChaosController::acquire();
    if (c == nullptr) return Inner::dcas_view(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    const DcasShape s = classify_dcas(oa, ob, na, nb);
    c->before_dcas(s);
    const bool ok = Inner::dcas_view(a, b, oa, ob, na, nb);  // DCD_SYNC(policy-internal)
    c->after_dcas(s, ok);
    ChaosController::unpin();
    return ok;
  }
};

// Named sync points (the strings fire() compares against; see the table in
// the header comment for timing).
namespace sync_point {
inline constexpr const char* kDcasAny = "dcas.any";
inline constexpr const char* kEmptyConfirm = "empty.confirm";
inline constexpr const char* kPopCommit = "pop.commit";
inline constexpr const char* kLogicalDelete = "pop.logical_delete";
inline constexpr const char* kSplice = "delete.splice";
inline constexpr const char* kTwoNullSplice = "delete.two_null_splice";
// Elimination-slot CAS transitions (deque/elimination.hpp). Timing: offer/
// cancel/clear fire before the attempt, take fires after success.
inline constexpr const char* kElimOffer = "elim.offer";
inline constexpr const char* kElimTake = "elim.take";
inline constexpr const char* kElimCancel = "elim.cancel";
inline constexpr const char* kElimClear = "elim.clear";
// Magazine allocator windows (reclaim/magazine_pool.hpp), fired through
// ChaosController::notify while the calling thread holds its magazine
// try-lock — parking here proves other threads keep allocating.
inline constexpr const char* kMagazineRefill = "magazine.refill";
inline constexpr const char* kMagazineFlush = "magazine.flush";
// Executor idle-path windows (exec/executor.hpp), fired through
// ChaosController::notify directly (dcd_exec links dcd_dcas, so no hook
// indirection is needed). kExecSteal fires at the top of every victim
// sweep, kExecPark right before a worker blocks on the eventcount, and
// kExecInject on the external-submission path — parking at any of them
// must leave the remaining workers draining the task graph.
inline constexpr const char* kExecSteal = "exec.steal";
inline constexpr const char* kExecPark = "exec.park";
inline constexpr const char* kExecInject = "exec.inject";
}  // namespace sync_point

}  // namespace dcd::dcas
