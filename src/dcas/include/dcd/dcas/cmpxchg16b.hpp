// Hardware double-width CAS on *adjacent* words (x86-64 cmpxchg16b).
//
// Real DCAS hardware (the 68040's CAS2 the paper builds on) takes two
// arbitrary addresses; the closest primitive modern ISAs offer is a
// double-width CAS on one 16-byte-aligned pair. The deque algorithms DCAS
// non-adjacent words (an index and an array cell; a sentinel pointer and a
// node's value), so this policy cannot run them — it exists to give
// experiment E1 the "what DCAS would cost if you had it in hardware"
// reference point, and to support the E-series ablation that packs two
// logically-related words into one aligned pair.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::dcas {

// A 16-byte-aligned pair of words that the hardware can CAS as a unit.
struct alignas(16) AdjacentPair {
  std::atomic<std::uint64_t> lo{0};
  std::atomic<std::uint64_t> hi{0};
};

// cmpxchg16b operand contract: the inline asm below addresses the pair as
// one 16-byte memory operand, so the struct must be exactly two adjacent
// 64-bit words on a 16-byte boundary with lo at offset 0 (RAX/RBX pair) and
// hi at offset 8 (RDX/RCX pair) — and each half natively atomic.
static_assert(sizeof(AdjacentPair) == 16 && alignof(AdjacentPair) == 16,
              "cmpxchg16b needs a 16-byte-aligned 16-byte operand");
static_assert(std::is_standard_layout_v<AdjacentPair>,
              "offsetof below requires standard layout");
static_assert(offsetof(AdjacentPair, lo) == 0 &&
                  offsetof(AdjacentPair, hi) == 8,
              "lo/hi must be adjacent and in asm operand order");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "each half must be a native atomic word");

class Cmpxchg16bDcas {
 public:
  static constexpr const char* kName = "cmpxchg16b";
  static constexpr bool kLockFree = true;

  static bool available() noexcept {
#if defined(__x86_64__)
    return true;
#else
    return false;
#endif
  }

  static bool dcas(AdjacentPair& pair, std::uint64_t olo, std::uint64_t ohi,
                   std::uint64_t nlo, std::uint64_t nhi) noexcept {
#if defined(__x86_64__)
    // Counted separately from policy-level DCAS: this primitive also backs
    // pool internals, which must not distort the algorithms' dcas/op rows.
    // Counted only where a hardware DCAS actually executes — the non-x86
    // branch asserts before touching memory, and charging it would make the
    // E1 telemetry claim hardware calls that never happened.
    ++Telemetry::tl().hw_dcas_calls;
    bool ok;
    asm volatile("lock cmpxchg16b %1"
                 : "=@ccz"(ok), "+m"(pair), "+a"(olo), "+d"(ohi)
                 : "b"(nlo), "c"(nhi)
                 : "memory");
    if (!ok) ++Telemetry::tl().hw_dcas_failures;
    return ok;
#else
    (void)pair; (void)olo; (void)ohi; (void)nlo; (void)nhi;
    DCD_ASSERT(false && "cmpxchg16b unavailable on this architecture");
    return false;
#endif
  }

  // Atomic read of the pair (cmpxchg16b with equal old/new is the portable
  // way to load 16 bytes atomically without TSX).
  static void read(AdjacentPair& pair, std::uint64_t& lo,
                   std::uint64_t& hi) noexcept {
#if defined(__x86_64__)
    lo = 0;
    hi = 0;
    asm volatile("lock cmpxchg16b %0"
                 : "+m"(pair), "+a"(lo), "+d"(hi)
                 : "b"(lo), "c"(hi)
                 : "cc", "memory");
#else
    // No 16-byte atomic load without the instruction. Two independent
    // acquire loads would be a *torn* read dressed up as an atomic one, so
    // take the same global lock both fields share nothing else with — the
    // only honest option here. Callers needing lock-freedom already gate on
    // available() / DCD_TAGGED_POOL_LOCKFREE, and dcas() asserts out on
    // this architecture anyway.
    static std::atomic_flag lock = ATOMIC_FLAG_INIT;
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
    lo = pair.lo.load(std::memory_order_relaxed);
    hi = pair.hi.load(std::memory_order_relaxed);
    lock.clear(std::memory_order_release);
#endif
  }
};

}  // namespace dcd::dcas
