// Per-thread operation counters shared by all DCAS policies.
//
// Experiment E3 measures the paper's claim that the pop-splitting technique
// "costs an extra DCAS per pop", and E2 reports retry pressure at the two
// deque ends — both need exact primitive-operation counts, which the
// policies record here. Counters live in per-thread cache lines (keyed by
// ThreadRegistry slot) so recording them never introduces sharing of its
// own; snapshot() sums the slots and is meant to be called while workers
// are quiesced.
#pragma once

#include <cstdint>

#include "dcd/util/align.hpp"

namespace dcd::dcas {

struct Counters {
  std::uint64_t loads = 0;
  std::uint64_t cas_ops = 0;         // single-word CASes issued internally
  std::uint64_t dcas_calls = 0;       // policy-level DCAS operations
  std::uint64_t dcas_failures = 0;
  std::uint64_t hw_dcas_calls = 0;    // raw cmpxchg16b ops (pools, E1)
  std::uint64_t hw_dcas_failures = 0;
  std::uint64_t helps = 0;           // MCAS helping episodes
  std::uint64_t descriptors = 0;     // descriptors allocated

  Counters& operator+=(const Counters& o) noexcept {
    loads += o.loads;
    cas_ops += o.cas_ops;
    dcas_calls += o.dcas_calls;
    dcas_failures += o.dcas_failures;
    hw_dcas_calls += o.hw_dcas_calls;
    hw_dcas_failures += o.hw_dcas_failures;
    helps += o.helps;
    descriptors += o.descriptors;
    return *this;
  }
};

// The per-thread blocks are stored as util::CacheAligned<Counters>
// (telemetry.cpp): each slot must fill at most its own line, or two
// threads' hot counters start sharing one and every policy op pays a
// coherence miss. Growing Counters past 8 fields means widening the
// padding scheme, not silently spilling.
static_assert(sizeof(Counters) <= util::kCacheLineSize,
              "Counters must fit one cache line — see telemetry.cpp");

class Telemetry {
 public:
  // The calling thread's counter block.
  static Counters& tl();

  // Sum over all thread slots. Call with workers quiesced for exact values.
  static Counters snapshot();

  // Zero all slots. Same quiescence caveat.
  static void reset();
};

}  // namespace dcd::dcas
