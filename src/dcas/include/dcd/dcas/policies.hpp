// Policy concept + the canonical policy list.
//
// A DcasPolicy supplies the two DCAS forms of Figure 1 plus the managed
// load/initial-store through which all shared-word traffic flows. The deque
// templates are parameterised on a policy so every algorithm runs unchanged
// over each emulation — the repo's substitute for "running on DCAS
// hardware".
#pragma once

#include <concepts>
#include <cstdint>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/mcas.hpp"
#include "dcd/dcas/striped_lock.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

template <typename P>
concept DcasPolicy = requires(Word& w, const Word& cw, std::uint64_t v,
                              std::uint64_t& vr) {
  { P::kName } -> std::convertible_to<const char*>;
  { P::kLockFree } -> std::convertible_to<bool>;
  { P::load(cw) } -> std::same_as<std::uint64_t>;
  { P::store_init(w, v) };
  { P::cas(w, v, v) } -> std::same_as<bool>;
  { P::dcas(w, w, v, v, v, v) } -> std::same_as<bool>;
  { P::dcas_view(w, w, vr, vr, v, v) } -> std::same_as<bool>;
};

static_assert(DcasPolicy<GlobalLockDcas>);
static_assert(DcasPolicy<StripedLockDcas>);
static_assert(DcasPolicy<McasDcas>);
// The fault-injection wrapper is a policy over any policy (chaos suites run
// the deques unchanged under it — see chaos.hpp).
static_assert(DcasPolicy<ChaosDcas<GlobalLockDcas>>);
static_assert(DcasPolicy<ChaosDcas<StripedLockDcas>>);
static_assert(DcasPolicy<ChaosDcas<McasDcas>>);

// Default policy for user-facing typedefs: the lock-free emulation, which
// preserves the paper's progress guarantee end-to-end.
using DefaultDcas = McasDcas;

}  // namespace dcd::dcas
