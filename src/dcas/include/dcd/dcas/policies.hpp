// The canonical policy list, certified against the DcasPolicy concept.
//
// The concept itself (and the word-layout audit) lives in concepts.hpp so
// headers can constrain templates without pulling in every emulation; this
// header is the one place the full policy roster is re-certified whenever
// any of it changes.
#pragma once

#include <cstdint>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/mcas.hpp"
#include "dcd/dcas/sched.hpp"
#include "dcd/dcas/striped_lock.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

static_assert(DcasPolicy<GlobalLockDcas>);
static_assert(DcasPolicy<StripedLockDcas>);
static_assert(DcasPolicy<McasDcas>);
// The fault-injection wrapper is a policy over any policy (chaos suites run
// the deques unchanged under it — see chaos.hpp).
static_assert(DcasPolicy<ChaosDcas<GlobalLockDcas>>);
static_assert(DcasPolicy<ChaosDcas<StripedLockDcas>>);
static_assert(DcasPolicy<ChaosDcas<McasDcas>>);
// The model checker's deterministic-scheduling wrapper (sched.hpp) is a
// policy over any policy, same as the fault-injection wrapper.
static_assert(DcasPolicy<SchedDcas>);
static_assert(DcasPolicy<SchedDcasT<McasDcas>>);

// Default policy for user-facing typedefs: the lock-free emulation, which
// preserves the paper's progress guarantee end-to-end.
using DefaultDcas = McasDcas;

}  // namespace dcd::dcas
