// DCAS emulation with address-hashed striped spinlocks.
//
// A cheap OS/runtime-style emulation: each word hashes to one of 2^k
// stripes; a DCAS acquires its two stripes in ascending index order
// (deadlock-free), so DCASes on disjoint stripes proceed in parallel. This
// is the emulation that preserves the paper's "uninterrupted concurrent
// access to both ends" property (E2) while staying blocking.
#pragma once

#include <cstdint>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/dcas/word.hpp"

namespace dcd::dcas {

class StripedLockDcas {
 public:
  static constexpr const char* kName = "striped_lock";
  static constexpr bool kLockFree = false;
  static constexpr std::size_t kStripes = 64;

  static std::uint64_t load(const Word& w) noexcept {
    ++Telemetry::tl().loads;
    return w.raw.load(std::memory_order_acquire);
  }

  static void store_init(Word& w, std::uint64_t v) noexcept {
    w.raw.store(v, std::memory_order_release);
  }

  static bool cas(Word& w, std::uint64_t oldv, std::uint64_t newv) noexcept;

  static bool dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                   std::uint64_t na, std::uint64_t nb) noexcept;

  static bool dcas_view(Word& a, Word& b, std::uint64_t& oa,
                        std::uint64_t& ob, std::uint64_t na,
                        std::uint64_t nb) noexcept;
};

}  // namespace dcd::dcas
