#include "dcd/dcas/striped_lock.hpp"

#include <utility>

#include "dcd/util/align.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::dcas {

namespace {

class SpinLock {
 public:
  void lock() noexcept {
    util::Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

util::CacheAligned<SpinLock> g_stripes[StripedLockDcas::kStripes];

std::size_t stripe_of(const Word& w) noexcept {
  // Mix the address; words in one cache line share a stripe, which is fine.
  auto x = reinterpret_cast<std::uint64_t>(&w) >> 3;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<std::size_t>(x) % StripedLockDcas::kStripes;
}

// Acquires the stripes of both words in index order; returns them so the
// caller can release in reverse.
std::pair<std::size_t, std::size_t> acquire_ordered(const Word& a,
                                                    const Word& b) noexcept {
  std::size_t sa = stripe_of(a);
  std::size_t sb = stripe_of(b);
  if (sa > sb) std::swap(sa, sb);
  g_stripes[sa]->lock();
  if (sb != sa) g_stripes[sb]->lock();
  return {sa, sb};
}

void release(std::pair<std::size_t, std::size_t> held) noexcept {
  if (held.second != held.first) g_stripes[held.second]->unlock();
  g_stripes[held.first]->unlock();
}

}  // namespace

bool StripedLockDcas::cas(Word& w, std::uint64_t oldv,
                          std::uint64_t newv) noexcept {
  ++Telemetry::tl().cas_ops;
  auto& stripe = *g_stripes[stripe_of(w)];
  stripe.lock();
  const std::uint64_t v = w.raw.load(std::memory_order_relaxed);
  const bool ok = (v == oldv);
  if (ok) w.raw.store(newv, std::memory_order_seq_cst);
  stripe.unlock();
  return ok;
}

bool StripedLockDcas::dcas(Word& a, Word& b, std::uint64_t oa,
                           std::uint64_t ob, std::uint64_t na,
                           std::uint64_t nb) noexcept {
  auto& c = Telemetry::tl();
  ++c.dcas_calls;
  const auto held = acquire_ordered(a, b);
  const std::uint64_t va = a.raw.load(std::memory_order_relaxed);
  const std::uint64_t vb = b.raw.load(std::memory_order_relaxed);
  const bool ok = (va == oa && vb == ob);
  if (ok) {
    a.raw.store(na, std::memory_order_seq_cst);
    b.raw.store(nb, std::memory_order_seq_cst);
  }
  release(held);
  if (!ok) ++c.dcas_failures;
  return ok;
}

bool StripedLockDcas::dcas_view(Word& a, Word& b, std::uint64_t& oa,
                                std::uint64_t& ob, std::uint64_t na,
                                std::uint64_t nb) noexcept {
  auto& c = Telemetry::tl();
  ++c.dcas_calls;
  const auto held = acquire_ordered(a, b);
  const std::uint64_t va = a.raw.load(std::memory_order_relaxed);
  const std::uint64_t vb = b.raw.load(std::memory_order_relaxed);
  const bool ok = (va == oa && vb == ob);
  if (ok) {
    a.raw.store(na, std::memory_order_seq_cst);
    b.raw.store(nb, std::memory_order_seq_cst);
  } else {
    oa = va;
    ob = vb;
  }
  release(held);
  if (!ok) ++c.dcas_failures;
  return ok;
}

}  // namespace dcd::dcas
