#include "dcd/dcas/global_lock.hpp"

#include "dcd/util/align.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::dcas {

namespace {

class SpinLock {
 public:
  void lock() noexcept {
    util::Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

util::CacheAligned<SpinLock> g_lock;

}  // namespace

bool GlobalLockDcas::cas(Word& w, std::uint64_t oldv,
                         std::uint64_t newv) noexcept {
  ++Telemetry::tl().cas_ops;
  g_lock->lock();
  const std::uint64_t v = w.raw.load(std::memory_order_relaxed);
  const bool ok = (v == oldv);
  // DCD_HB(deque.word.publish, role=release)
  if (ok) w.raw.store(newv, std::memory_order_seq_cst);
  g_lock->unlock();
  return ok;
}

bool GlobalLockDcas::dcas(Word& a, Word& b, std::uint64_t oa,
                          std::uint64_t ob, std::uint64_t na,
                          std::uint64_t nb) noexcept {
  auto& c = Telemetry::tl();
  ++c.dcas_calls;
  g_lock->lock();
  const std::uint64_t va = a.raw.load(std::memory_order_relaxed);
  const std::uint64_t vb = b.raw.load(std::memory_order_relaxed);
  bool ok = (va == oa && vb == ob);
  if (ok) {
    // seq_cst so lock-free readers that observe the second store also
    // observe the first (DCAS must look atomic to single-word loads).
    a.raw.store(na, std::memory_order_seq_cst);
    b.raw.store(nb, std::memory_order_seq_cst);
  }
  g_lock->unlock();
  if (!ok) ++c.dcas_failures;
  return ok;
}

bool GlobalLockDcas::dcas_view(Word& a, Word& b, std::uint64_t& oa,
                               std::uint64_t& ob, std::uint64_t na,
                               std::uint64_t nb) noexcept {
  auto& c = Telemetry::tl();
  ++c.dcas_calls;
  g_lock->lock();
  const std::uint64_t va = a.raw.load(std::memory_order_relaxed);
  const std::uint64_t vb = b.raw.load(std::memory_order_relaxed);
  bool ok = (va == oa && vb == ob);
  if (ok) {
    a.raw.store(na, std::memory_order_seq_cst);
    b.raw.store(nb, std::memory_order_seq_cst);
  } else {
    oa = va;
    ob = vb;
  }
  g_lock->unlock();
  if (!ok) ++c.dcas_failures;
  return ok;
}

}  // namespace dcd::dcas
