#include "dcd/dcas/mcas.hpp"

#include <utility>

#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/tagged_pool.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::dcas {

namespace {

// Mark layout inside a descriptor-carrying word: bit0 set; bit1 selects the
// descriptor kind. Descriptors are 64-aligned so the payload bits recover
// the address exactly.
constexpr std::uint64_t kRdcssMark = 0b01;
constexpr std::uint64_t kMcasMark = 0b11;
constexpr std::uint64_t kMarkBits = 0b11;

constexpr bool is_marked(std::uint64_t v) { return is_descriptor(v); }
constexpr bool is_rdcss(std::uint64_t v) { return (v & kMarkBits) == kRdcssMark; }
constexpr bool is_mcas(std::uint64_t v) { return (v & kMarkBits) == kMcasMark; }

constexpr std::uint64_t kUndecided = 0;
constexpr std::uint64_t kSucceeded = 1;
constexpr std::uint64_t kFailed = 2;

struct alignas(64) McasDesc {
  Word* addr[McasDcas::kMaxCasnWidth];
  std::uint64_t oldv[McasDcas::kMaxCasnWidth];
  std::uint64_t newv[McasDcas::kMaxCasnWidth];
  std::size_t width;
  std::atomic<std::uint64_t> status{kUndecided};
  bool pooled;  // storage origin, for the dispose path
};

// RDCSS sub-descriptor: "install newv into *data if *data == oldv and the
// operation's status is still UNDECIDED".
struct alignas(64) RdcssDesc {
  std::atomic<std::uint64_t>* cond;  // &owner->status
  Word* data;
  std::uint64_t oldv;
  std::uint64_t newv;  // mcas-marked owner descriptor
  bool pooled;
};

// Descriptor storage. A heap `new` would route the "lock-free" DCAS
// through malloc's locks, so descriptors come from lock-free type-stable
// pools (heap fallback only under exhaustion, which the sizing makes
// effectively unreachable). The pools are immortal (leaked singletons):
// the global EBR domain's force-drain at process exit returns the last
// descriptors to them, so they must outlive every static destructor.
reclaim::TaggedNodePool& mcas_desc_pool() {
  static auto* pool = new reclaim::TaggedNodePool(sizeof(McasDesc), 1 << 14);
  return *pool;
}
reclaim::TaggedNodePool& rdcss_desc_pool() {
  static auto* pool =
      new reclaim::TaggedNodePool(sizeof(RdcssDesc), 1 << 14);
  return *pool;
}

// DCD_REQUIRES_GUARD(descriptor is handed out raw; the pinned entry point's guard covers it until retire)
McasDesc* alloc_mcas_desc() {
  ++Telemetry::tl().descriptors;
  if (void* raw = mcas_desc_pool().allocate()) {
    auto* d = new (raw) McasDesc;
    d->pooled = true;
    return d;
  }
  auto* d = new McasDesc;
  d->pooled = false;
  return d;
}

// DCD_REQUIRES_GUARD(descriptor is handed out raw; the pinned entry point's guard covers it until retire)
RdcssDesc* alloc_rdcss_desc(std::atomic<std::uint64_t>* cond, Word* data,
                            std::uint64_t oldv, std::uint64_t newv) {
  ++Telemetry::tl().descriptors;
  if (void* raw = rdcss_desc_pool().allocate()) {
    auto* d = new (raw) RdcssDesc{cond, data, oldv, newv, true};
    return d;
  }
  return new RdcssDesc{cond, data, oldv, newv, false};
}

// DCD_GUARD_EXEMPT(post-grace EBR callback; the descriptor is exclusively owned here)
void dispose_mcas_desc(void* p, void*) {
  auto* d = static_cast<McasDesc*>(p);
  if (d->pooled) {
    d->~McasDesc();
    mcas_desc_pool().deallocate(d);
  } else {
    delete d;
  }
}

// DCD_GUARD_EXEMPT(post-grace EBR callback; the descriptor is exclusively owned here)
void dispose_rdcss_desc(void* p, void*) {
  auto* d = static_cast<RdcssDesc*>(p);
  if (d->pooled) {
    d->~RdcssDesc();
    rdcss_desc_pool().deallocate(d);
  } else {
    delete d;
  }
}

std::uint64_t mark(RdcssDesc* d) {
  return reinterpret_cast<std::uint64_t>(d) | kRdcssMark;
}
std::uint64_t mark(McasDesc* d) {
  return reinterpret_cast<std::uint64_t>(d) | kMcasMark;
}
RdcssDesc* rdcss_of(std::uint64_t v) {
  return reinterpret_cast<RdcssDesc*>(v & ~kMarkBits);
}
McasDesc* mcas_of(std::uint64_t v) {
  return reinterpret_cast<McasDesc*>(v & ~kMarkBits);
}

// Finishes an installed RDCSS: replace the sub-descriptor mark with either
// the MCAS mark (condition still UNDECIDED) or the original value.
// DCD_REQUIRES_GUARD(caller is pinned in the global EBR domain by the load/dcas/casn entry guard)
void rdcss_complete(RdcssDesc* d) {
  const std::uint64_t cond = d->cond->load(std::memory_order_acquire);
  std::uint64_t expected = mark(d);
  const std::uint64_t replacement = (cond == kUndecided) ? d->newv : d->oldv;
  // DCD_SYNC(policy-internal)
  d->data->raw.compare_exchange_strong(expected, replacement,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
  ++Telemetry::tl().cas_ops;
}

// The RDCSS operation itself. Returns the value logically read from *data:
// d->oldv on success, otherwise the conflicting content (a clean value or
// an mcas-marked word; rdcss marks are resolved internally).
// DCD_REQUIRES_GUARD(caller is pinned in the global EBR domain by the load/dcas/casn entry guard)
std::uint64_t rdcss(RdcssDesc* d) {
  // DCD_PROGRESS(CAS failure means another thread's install or help committed; conflicting rdcss marks are resolved before retrying)
  for (;;) {
    std::uint64_t expected = d->oldv;
    ++Telemetry::tl().cas_ops;
    // DCD_SYNC(policy-internal)
    if (d->data->raw.compare_exchange_strong(expected, mark(d),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      rdcss_complete(d);
      return d->oldv;
    }
    if (is_rdcss(expected)) {
      rdcss_complete(rdcss_of(expected));
      continue;
    }
    return expected;
  }
}

// Runs an MCAS to completion (owner and helpers execute the same code).
// Caller must be pinned in the global EBR domain.
// DCD_REQUIRES_GUARD(caller is pinned in the global EBR domain by the dcas/casn entry guard)
bool mcas_help(McasDesc* d) {
  // DCD_HB(mcas.status.decide, role=acquire)
  if (d->status.load(std::memory_order_acquire) == kUndecided) {
    // Phase 1: install the descriptor in both words (ascending address
    // order — established at creation — so concurrent MCASes cannot
    // livelock each other).
    std::uint64_t desired = kSucceeded;
    for (std::size_t i = 0; i < d->width && desired == kSucceeded; ++i) {
      for (;;) {
        auto* rd =
            alloc_rdcss_desc(&d->status, d->addr[i], d->oldv[i], mark(d));
        const std::uint64_t r = rdcss(rd);
        reclaim::global_ebr_domain().retire(rd, dispose_rdcss_desc, nullptr);
        if (is_mcas(r)) {
          if (r == mark(d)) break;  // a helper already installed for us
          ++Telemetry::tl().helps;
          mcas_help(mcas_of(r));  // clear the conflicting operation first
          continue;
        }
        if (r == d->oldv[i]) break;  // installed by the rdcss above
        desired = kFailed;           // genuine value mismatch
        break;
      }
    }
    std::uint64_t expected = kUndecided;
    // DCD_SYNC(policy-internal)
    // DCD_HB(mcas.status.decide, role=release)
    d->status.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
    ++Telemetry::tl().cas_ops;
  }

  // Phase 2: swap the marks for the outcome's values. Idempotent; any
  // subset of owner/helpers may execute it.
  const bool ok = d->status.load(std::memory_order_acquire) == kSucceeded;
  for (std::size_t i = 0; i < d->width; ++i) {
    std::uint64_t expected = mark(d);
    // DCD_SYNC(policy-internal)
    d->addr[i]->raw.compare_exchange_strong(
        expected, ok ? d->newv[i] : d->oldv[i], std::memory_order_acq_rel,
        std::memory_order_relaxed);
    ++Telemetry::tl().cas_ops;
  }
  return ok;
}

}  // namespace

std::uint64_t McasDcas::load(const Word& w) noexcept {
  ++Telemetry::tl().loads;
  std::uint64_t v = w.raw.load(std::memory_order_acquire);
  if (!is_marked(v)) return v;

  // Slow path: pin first, then re-read, so the descriptor we dereference
  // cannot be reclaimed under us.
  reclaim::EbrDomain::Guard guard(reclaim::global_ebr_domain());
  auto& word = const_cast<Word&>(w);
  for (;;) {
    v = word.raw.load(std::memory_order_acquire);
    if (!is_marked(v)) return v;
    ++Telemetry::tl().helps;
    if (is_rdcss(v)) {
      rdcss_complete(rdcss_of(v));
    } else {
      mcas_help(mcas_of(v));
    }
  }
}

bool McasDcas::cas(Word& w, std::uint64_t oldv,
                   std::uint64_t newv) noexcept {
  DCD_DEBUG_ASSERT(!is_marked(oldv) && !is_marked(newv));
  auto& c = Telemetry::tl();
  // DCD_PROGRESS(every retry first helps the conflicting descriptor to completion via load(); a clean mismatch returns false)
  for (;;) {
    const std::uint64_t v = load(w);  // helps any descriptor away
    if (v != oldv) return false;
    std::uint64_t expected = oldv;
    ++c.cas_ops;
    // DCD_SYNC(policy-internal)
    if (w.raw.compare_exchange_strong(expected, newv,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      return true;
    }
    if (!is_marked(expected)) return false;  // clean conflicting value
    // A descriptor slipped in; help it out and retry the comparison.
  }
}

bool McasDcas::dcas(Word& a, Word& b, std::uint64_t oa, std::uint64_t ob,
                    std::uint64_t na, std::uint64_t nb) noexcept {
  DCD_ASSERT(&a != &b);
  DCD_DEBUG_ASSERT(!is_marked(oa) && !is_marked(ob) && !is_marked(na) &&
                   !is_marked(nb));
  auto& c = Telemetry::tl();
  ++c.dcas_calls;

  reclaim::EbrDomain::Guard guard(reclaim::global_ebr_domain());
  auto* d = alloc_mcas_desc();
  d->width = 2;
  // Ascending address order (see mcas_help).
  if (&a < &b) {
    d->addr[0] = &a; d->addr[1] = &b;
    d->oldv[0] = oa; d->oldv[1] = ob;
    d->newv[0] = na; d->newv[1] = nb;
  } else {
    d->addr[0] = &b; d->addr[1] = &a;
    d->oldv[0] = ob; d->oldv[1] = oa;
    d->newv[0] = nb; d->newv[1] = na;
  }
  const bool ok = mcas_help(d);
  reclaim::global_ebr_domain().retire(d, dispose_mcas_desc, nullptr);
  if (!ok) ++c.dcas_failures;
  return ok;
}

bool McasDcas::casn(Word* const* addrs, const std::uint64_t* olds,
                    const std::uint64_t* news, std::size_t n) noexcept {
  DCD_ASSERT(n >= 1 && n <= kMaxCasnWidth);
  auto& c = Telemetry::tl();
  ++c.dcas_calls;

  reclaim::EbrDomain::Guard guard(reclaim::global_ebr_domain());
  auto* d = alloc_mcas_desc();
  d->width = n;
  for (std::size_t i = 0; i < n; ++i) {
    d->addr[i] = addrs[i];
    d->oldv[i] = olds[i];
    d->newv[i] = news[i];
    DCD_DEBUG_ASSERT(!is_marked(olds[i]) && !is_marked(news[i]));
  }
  // Ascending address order (livelock freedom); distinct addresses
  // required, as with dcas.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = i; j > 0 && d->addr[j] < d->addr[j - 1]; --j) {
      std::swap(d->addr[j], d->addr[j - 1]);
      std::swap(d->oldv[j], d->oldv[j - 1]);
      std::swap(d->newv[j], d->newv[j - 1]);
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    DCD_ASSERT(d->addr[i] != d->addr[i - 1]);
  }
  const bool ok = mcas_help(d);
  reclaim::global_ebr_domain().retire(d, dispose_mcas_desc, nullptr);
  if (!ok) ++c.dcas_failures;
  return ok;
}

void McasDcas::snapshot(Word& a, Word& b, std::uint64_t& va,
                        std::uint64_t& vb) noexcept {
  for (;;) {
    va = load(a);
    vb = load(b);
    // An identity DCAS that succeeds proves (va, vb) was an atomic pair.
    if (dcas(a, b, va, vb, va, vb)) return;
  }
}

bool McasDcas::dcas_view(Word& a, Word& b, std::uint64_t& oa,
                         std::uint64_t& ob, std::uint64_t na,
                         std::uint64_t nb) noexcept {
  for (;;) {
    if (dcas(a, b, oa, ob, na, nb)) return true;
    std::uint64_t va, vb;
    snapshot(a, b, va, vb);
    if (va == oa && vb == ob) {
      // The failure was transient (a competing operation was mid-flight at
      // decision time but the words have returned to the expected pair);
      // by DCAS semantics this counts as "should have succeeded", so retry.
      continue;
    }
    oa = va;
    ob = vb;
    return false;
  }
}

}  // namespace dcd::dcas
