#include "dcd/dcas/chaos.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "dcd/reclaim/magazine_pool.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/thread_registry.hpp"

namespace dcd::dcas {

namespace {

// Bridges reclaim::magazine_hook() (the reclaim layer cannot see chaos)
// to the active controller. Installed on first controller construction and
// left in place: with no controller it is one acquire() check, and the
// magazine only fires it on refill/flush slow paths.
void magazine_trampoline(const char* point) {
  if (ChaosController* c = ChaosController::acquire()) {
    c->notify(point);
    ChaosController::unpin();
  }
}

// FNV-1a fold of one decision word into a running digest.
constexpr std::uint64_t fnv1a(std::uint64_t digest, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (word >> (8 * i)) & 0xff;
    digest *= 0x100000001b3ull;
  }
  return digest;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

}  // namespace

const char* shape_name(DcasShape s) noexcept {
  switch (s) {
    case DcasShape::kGeneric: return sync_point::kDcasAny;
    case DcasShape::kEmptyConfirm: return sync_point::kEmptyConfirm;
    case DcasShape::kPopCommit: return sync_point::kPopCommit;
    case DcasShape::kLogicalDelete: return sync_point::kLogicalDelete;
    case DcasShape::kSplice: return sync_point::kSplice;
    case DcasShape::kTwoNullSplice: return sync_point::kTwoNullSplice;
    case DcasShape::kElimOffer: return sync_point::kElimOffer;
    case DcasShape::kElimTake: return sync_point::kElimTake;
    case DcasShape::kElimCancel: return sync_point::kElimCancel;
    case DcasShape::kElimClear: return sync_point::kElimClear;
    case DcasShape::kCount_: break;
  }
  return "?";
}

ChaosSchedule ChaosSchedule::from_seed(std::uint64_t seed) noexcept {
  // Expand the seed through SplitMix64 so nearby seeds give unrelated
  // parameters; keep the ranges mild enough that chaos suites still finish
  // quickly under sanitizers.
  util::SplitMix64 sm(seed);
  ChaosSchedule s;
  s.seed = seed;
  s.delay_per_mille = 20 + static_cast<std::uint32_t>(sm.next() % 80);
  s.max_delay_spins = 16u << (sm.next() % 5);  // 16..256
  s.dcas_fail_per_mille = 10 + static_cast<std::uint32_t>(sm.next() % 90);
  return s;
}

std::string ChaosSchedule::describe() const {
  return "chaos{seed=" + std::to_string(seed) +
         ", delay=" + std::to_string(delay_per_mille) + "/1000*" +
         std::to_string(max_delay_spins) +
         ", dcas_fail=" + std::to_string(dcas_fail_per_mille) + "/1000}";
}

std::uint64_t chaos_seed_from_env(std::uint64_t fallback) noexcept {
  const char* v = std::getenv("DCD_CHAOS_SEED");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 0);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::atomic<ChaosController*> ChaosController::active_{nullptr};
std::atomic<std::size_t> ChaosController::pins_{0};

struct ChaosController::Impl {
  struct Rule {
    const char* point = nullptr;
    std::uint64_t nth = 0;                  // 1-based hit index to trap
    std::atomic<std::uint64_t> hits{0};
    // 0 = armed, 1 = a thread is parked here, 2 = released.
    std::atomic<int> state{0};
  };

  // Per-thread injection state, owned exclusively by its registry slot.
  struct alignas(util::kCacheLineSize) ThreadState {
    util::Xoshiro256 rng{0};
    std::uint64_t fingerprint = kFnvOffset;
    bool initialised = false;
  };

  explicit Impl(const ChaosSchedule& s) : schedule(s) {}

  ThreadState& self() {
    ThreadState& t = threads[util::ThreadRegistry::self()];
    if (!t.initialised) {
      t.rng = util::Xoshiro256(schedule.seed * 0x9e3779b97f4a7c15ull +
                               util::ThreadRegistry::self() + 1);
      t.fingerprint = kFnvOffset;
      t.initialised = true;
    }
    return t;
  }

  // Spin (never block) so delays perturb timing without hiding the
  // algorithms' own progress behaviour.
  void maybe_delay(ThreadState& t) {
    if (schedule.delay_per_mille == 0) return;
    if (!t.rng.chance(schedule.delay_per_mille, 1000)) {
      t.fingerprint = fnv1a(t.fingerprint, 0);
      return;
    }
    const std::uint64_t spins = t.rng.below(schedule.max_delay_spins);
    t.fingerprint = fnv1a(t.fingerprint, (spins << 1) | 1);
    delays.fetch_add(1, std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < spins; ++i) util::cpu_relax();
  }

  void fire(const char* point) {
    // DCD_HB(chaos.rules.publish, role=acquire)
    const std::size_t n = rule_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      Rule& r = rules[i];
      if (std::strcmp(point, r.point) != 0) continue;
      const std::uint64_t hit =
          r.hits.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (hit != r.nth) continue;
      std::unique_lock<std::mutex> lk(mu);
      // A rule released before its nth hit is spent, not re-armed.
      // DCD_HB(chaos.rule.fire, role=acquire)
      if (shutting_down || r.state.load(std::memory_order_acquire) == 2) {
        continue;
      }
      // DCD_HB(chaos.rule.fire, role=release)
      r.state.store(1, std::memory_order_release);
      cv.notify_all();
      cv.wait(lk, [&] {
        return r.state.load(std::memory_order_acquire) == 2 || shutting_down;
      });
    }
  }

  ChaosSchedule schedule;
  Rule rules[kMaxRules];
  std::atomic<std::size_t> rule_count{0};
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool shutting_down = false;

  std::atomic<std::uint64_t> attempts[kDcasShapeCount] = {};
  std::atomic<std::uint64_t> successes[kDcasShapeCount] = {};
  std::atomic<std::uint64_t> forced_failures{0};
  std::atomic<std::uint64_t> delays{0};

  ThreadState threads[util::ThreadRegistry::kMaxThreads];
};

ChaosController::ChaosController(const ChaosSchedule& schedule)
    : impl_(new Impl(schedule)), schedule_(schedule) {
  // DCD_HB(magazine.hook.install, role=release)
  reclaim::magazine_hook().store(&magazine_trampoline,
                                 std::memory_order_release);
  ChaosController* expected = nullptr;
  // DCD_SYNC(policy-internal)
  // DCD_HB(chaos.controller.install, role=release)
  const bool installed = active_.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel);
  DCD_ASSERT(installed && "only one ChaosController may be active");
  (void)installed;
}

ChaosController::~ChaosController() {
  // Uninstall first so no new call pins us, then wake every thread still
  // blocked at a sync point (the "killed" ones), then wait for all pinned
  // calls — including the just-woken ones — to drain before freeing Impl.
  active_.store(nullptr, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->shutting_down = true;
    for (std::size_t i = 0; i < kMaxRules; ++i) {
      impl_->rules[i].state.store(2, std::memory_order_release);
    }
  }
  impl_->cv.notify_all();
  // DCD_HB(chaos.pin.teardown, role=acquire)
  while (pins_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  delete impl_;
}

std::size_t ChaosController::arm_park(const char* point, std::uint64_t nth) {
  const std::size_t i =
      impl_->rule_count.load(std::memory_order_relaxed);
  DCD_ASSERT(i < kMaxRules);
  DCD_ASSERT(nth >= 1);
  impl_->rules[i].point = point;
  impl_->rules[i].nth = nth;
  // DCD_HB(chaos.rules.publish, role=release)
  impl_->rule_count.store(i + 1, std::memory_order_release);
  return i;
}

bool ChaosController::parked(std::size_t r) const {
  return impl_->rules[r].state.load(std::memory_order_acquire) == 1;
}

bool ChaosController::wait_parked(std::size_t r,
                                  std::uint64_t timeout_ms) const {
  std::unique_lock<std::mutex> lk(impl_->mu);
  return impl_->cv.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return impl_->rules[r].state.load(std::memory_order_acquire) == 1;
  });
}

void ChaosController::release(std::size_t r) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->rules[r].state.store(2, std::memory_order_release);
  }
  impl_->cv.notify_all();
}

void ChaosController::release_all() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (std::size_t i = 0; i < kMaxRules; ++i) {
      impl_->rules[i].state.store(2, std::memory_order_release);
    }
  }
  impl_->cv.notify_all();
}

std::uint64_t ChaosController::attempts(DcasShape s) const noexcept {
  // DCD_HB_EXEMPT(telemetry snapshot read after the workload quiesces; no edge claimed)
  return impl_->attempts[static_cast<std::size_t>(s)].load(
      std::memory_order_acquire);
}

std::uint64_t ChaosController::successes(DcasShape s) const noexcept {
  // DCD_HB_EXEMPT(telemetry snapshot read after the workload quiesces; no edge claimed)
  return impl_->successes[static_cast<std::size_t>(s)].load(
      std::memory_order_acquire);
}

std::uint64_t ChaosController::forced_failures() const noexcept {
  // DCD_HB_EXEMPT(telemetry snapshot read after the workload quiesces; no edge claimed)
  return impl_->forced_failures.load(std::memory_order_acquire);
}

std::uint64_t ChaosController::delays_injected() const noexcept {
  // DCD_HB_EXEMPT(telemetry snapshot read after the workload quiesces; no edge claimed)
  return impl_->delays.load(std::memory_order_acquire);
}

std::uint64_t ChaosController::fingerprint() const noexcept {
  std::uint64_t fp = 0;
  for (const Impl::ThreadState& t : impl_->threads) {
    if (t.initialised) fp ^= t.fingerprint;
  }
  return fp;
}

void ChaosController::on_load() noexcept {
  impl_->maybe_delay(impl_->self());
}

void ChaosController::before_dcas(DcasShape s) noexcept {
  Impl::ThreadState& t = impl_->self();
  t.fingerprint = fnv1a(t.fingerprint, static_cast<std::uint64_t>(s) | 0x10);
  impl_->attempts[static_cast<std::size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);
  impl_->maybe_delay(t);
  switch (s) {
    case DcasShape::kEmptyConfirm:
    case DcasShape::kSplice:
    case DcasShape::kTwoNullSplice:
      impl_->fire(shape_name(s));
      break;
    default:
      break;
  }
  impl_->fire(sync_point::kDcasAny);
}

bool ChaosController::maybe_force_fail(DcasShape s) noexcept {
  if (impl_->schedule.dcas_fail_per_mille == 0) return false;
  Impl::ThreadState& t = impl_->self();
  const bool fail = t.rng.chance(impl_->schedule.dcas_fail_per_mille, 1000);
  t.fingerprint = fnv1a(t.fingerprint,
                        (static_cast<std::uint64_t>(s) << 1) | (fail ? 1 : 0));
  if (fail) impl_->forced_failures.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

void ChaosController::after_dcas(DcasShape s, bool ok) noexcept {
  if (!ok) return;
  impl_->successes[static_cast<std::size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);
  switch (s) {
    case DcasShape::kPopCommit:
    case DcasShape::kLogicalDelete:
      impl_->fire(shape_name(s));
      break;
    default:
      break;
  }
}

void ChaosController::before_cas(DcasShape s) noexcept {
  Impl::ThreadState& t = impl_->self();
  t.fingerprint = fnv1a(t.fingerprint, static_cast<std::uint64_t>(s) | 0x20);
  impl_->attempts[static_cast<std::size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);
  impl_->maybe_delay(t);
  switch (s) {
    case DcasShape::kElimOffer:
    case DcasShape::kElimCancel:
    case DcasShape::kElimClear:
      impl_->fire(shape_name(s));
      break;
    default:
      break;
  }
}

void ChaosController::after_cas(DcasShape s, bool ok) noexcept {
  if (!ok) return;
  impl_->successes[static_cast<std::size_t>(s)].fetch_add(
      1, std::memory_order_relaxed);
  if (s == DcasShape::kElimTake) impl_->fire(shape_name(s));
}

void ChaosController::notify(const char* point) noexcept {
  impl_->fire(point);
}

}  // namespace dcd::dcas
