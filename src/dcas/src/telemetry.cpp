#include "dcd/dcas/telemetry.hpp"

#include "dcd/util/align.hpp"
#include "dcd/util/thread_registry.hpp"

namespace dcd::dcas {

namespace {
util::CacheAligned<Counters> g_slots[util::ThreadRegistry::kMaxThreads];
}  // namespace

Counters& Telemetry::tl() { return *g_slots[util::ThreadRegistry::self()]; }

Counters Telemetry::snapshot() {
  Counters sum;
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    sum += *g_slots[i];
  }
  return sum;
}

void Telemetry::reset() {
  const std::size_t n = util::ThreadRegistry::high_watermark();
  for (std::size_t i = 0; i < n; ++i) {
    *g_slots[i] = Counters{};
  }
}

}  // namespace dcd::dcas
