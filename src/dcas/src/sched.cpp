#include "dcd/dcas/sched.hpp"

#include "dcd/util/assert.hpp"

namespace dcd::dcas {

namespace {
// Acquire/release pair: a model thread that observes the client also
// observes the scheduler state the installer set up before installing.
std::atomic<SchedClient*> g_client{nullptr};
}  // namespace

const char* access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kLoad: return "load";
    case AccessKind::kCas: return "cas";
    case AccessKind::kDcas: return "dcas";
    case AccessKind::kDcasView: return "dcas_view";
  }
  return "?";
}

SchedClient* sched_client() noexcept {
  // DCD_HB(mc.client.install, role=acquire)
  return g_client.load(std::memory_order_acquire);
}

void install_sched_client(SchedClient* client) noexcept {
  DCD_ASSERT(client != nullptr);
  SchedClient* expected = nullptr;
  // DCD_SYNC(policy-internal)
  // DCD_HB(mc.client.install, role=release)
  const bool installed = g_client.compare_exchange_strong(
      expected, client, std::memory_order_acq_rel, std::memory_order_acquire);
  DCD_ASSERT(installed && "only one SchedClient may be installed");
  (void)installed;
}

void uninstall_sched_client(SchedClient* client) noexcept {
  SchedClient* expected = client;
  // DCD_SYNC(policy-internal)
  const bool removed = g_client.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel,
      std::memory_order_acquire);
  DCD_ASSERT(removed && "uninstall must match the installed SchedClient");
  (void)removed;
}

}  // namespace dcd::dcas
