// Per-end elimination arrays for the list deque (DESIGN.md §13).
//
// Under same-end contention, a failed push and a failed pop are trying to
// move a value *through* the sentinel word they are fighting over. The
// classic elimination observation (Hendler/Shavit-style) is that they can
// instead exchange the value directly: a push immediately followed by a
// pop at the same end is a no-op pair returning the pushed value in *any*
// deque state, so the pair can linearize back-to-back at a point of our
// choosing without consulting the rest of the structure.
//
// Slot protocol (every transition is a single-word CAS through the policy
// layer, so ChaosDcas/SchedDcas classify and schedule it — see
// classify_cas in dcd/dcas/chaos.hpp):
//
//            pusher CAS               popper CAS          pusher CAS
//   kNull ───"elim.offer"──▶ offer ───"elim.take"──▶ kElimTaken ──"elim.clear"──▶ kNull
//                              │
//                              └──pusher CAS "elim.cancel"──▶ kNull
//
//   * offer      = encode_elim_offer(value word): the encoded value tagged
//                  with kDeletedBit, disjoint from kNull/kElimTaken
//                  (special bit) and descriptors (descriptor bit).
//   * The popper's successful take CAS is the linearization point of BOTH
//     operations: the push linearizes immediately before the pop there.
//   * Exactly one of {cancel, take} succeeds on a given offer, so the
//     value is transferred exactly once; after a lost cancel the slot
//     holds kElimTaken, which only the offering pusher may clear — the
//     clear CAS therefore cannot fail.
//
// The array never touches the sentinel words and is scanned only from
// retry paths (after a failed DCAS), so the uncontended deque path
// executes zero additional policy calls.
#pragma once

#include <cstdint>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::deque {

// Hard cap on ListOptions::elim_slots (keeps the in-object array bounded).
inline constexpr std::uint32_t kMaxElimSlots = 8;

template <dcas::DcasPolicy Dcas>
class EliminationEnd {
 public:
  EliminationEnd() noexcept {
    for (auto& s : slots_) {
      Dcas::store_init(*s, dcas::kNull);
    }
  }

  EliminationEnd(const EliminationEnd&) = delete;
  EliminationEnd& operator=(const EliminationEnd&) = delete;

  // Pusher side: try to hand the encoded value word to a concurrent
  // same-end popper. True = a popper consumed it (the push is complete);
  // false = no exchange happened and the value word is still the caller's.
  bool offer(std::uint64_t value_word, std::uint32_t slots,
             std::uint32_t polls) noexcept {
    const std::uint64_t off = dcas::encode_elim_offer(value_word);
    const std::uint32_t n = slots < kMaxElimSlots ? slots : kMaxElimSlots;
    for (std::uint32_t i = 0; i < n; ++i) {
      dcas::Word& w = *slots_[i];
      if (Dcas::load(w) != dcas::kNull) continue;
      // DCD_SYNC(elim.offer)
      // DCD_LP(Elim:1, elim.offer, aux, inv=list.value_payload, "publishes the encoded value as a pending offer; no deque state changes")
      if (!Dcas::cas(w, dcas::kNull, off)) continue;  // elim.offer
      for (std::uint32_t p = 0; p < polls; ++p) {
        if (Dcas::load(w) == dcas::kElimTaken) break;
        util::cpu_relax();
      }
      // DCD_SYNC(elim.cancel)
      // DCD_LP(Elim:2, elim.cancel, aux, inv=list.value_payload, "withdraws the offer before any popper took it; value word returns to the caller")
      if (Dcas::cas(w, off, dcas::kNull)) return false;  // elim.cancel won
      // The cancel lost, so a popper's take committed: reclaim the slot.
      // DCD_SYNC(elim.clear)
      // DCD_LP(Elim:3, elim.clear, aux, inv=list.value_payload, "offerer reclaims the slot after a take committed; bookkeeping only")
      const bool cleared = Dcas::cas(w, dcas::kElimTaken, dcas::kNull);
      DCD_DEBUG_ASSERT(cleared && "only the offerer clears kElimTaken");
      (void)cleared;
      return true;
    }
    return false;
  }

  // Popper side: try to consume a pending same-end offer. On success the
  // taken value word is written to *value_word and true returned.
  bool take(std::uint32_t slots, std::uint64_t* value_word) noexcept {
    const std::uint32_t n = slots < kMaxElimSlots ? slots : kMaxElimSlots;
    for (std::uint32_t i = 0; i < n; ++i) {
      dcas::Word& w = *slots_[i];
      const std::uint64_t cur = Dcas::load(w);
      if (!dcas::is_elim_offer(cur)) continue;
      // DCD_SYNC(elim.take)
      // DCD_LP(Elim:4, elim.take, inv=list.value_payload, "pairs the push and pop: both operations linearize here, back to back, with the push first")
      if (Dcas::cas(w, cur, dcas::kElimTaken)) {  // elim.take — lin. point
        *value_word = dcas::elim_offer_value(cur);
        return true;
      }
    }
    return false;
  }

 private:
  // Each slot on its own line: two threads exchanging through slot 0 must
  // not invalidate a pair working slot 1.
  util::CacheAligned<dcas::Word> slots_[kMaxElimSlots];
};

// Storage-free stand-in when ListOptions::elimination is off, so the
// disabled configuration pays no footprint.
struct EliminationDisabled {};

}  // namespace dcd::deque
