// Result and option types shared by the deque implementations.
#pragma once

#include <concepts>
#include <optional>

namespace dcd::deque {

// §2.2: each push returns "okay" or "full"; each pop returns a value or
// "empty" (modelled as an empty optional).
enum class PushResult {
  kOkay,
  kFull,
};

// The two code fragments §3 explicitly calls optional ("we note that the
// algorithm would still be correct if line 7, and/or lines 17 and 18, were
// deleted ... Experimentation would be required"). Experiment E4 sweeps
// these.
struct ArrayOptions {
  // Line 7: re-read the index before attempting the boundary-confirming
  // DCAS, to skip a presumably-costly DCAS that would likely fail.
  bool recheck_index = true;
  // Lines 17–18: use the stronger DCAS form (atomic view on failure) to
  // detect "the deque was empty/full when my DCAS failed" without another
  // loop iteration. When false, only the weaker boolean DCAS is used —
  // exactly the trade-off the paper describes.
  bool failure_view = true;

  constexpr bool operator==(const ArrayOptions&) const = default;
};

template <typename D, typename T>
concept ConcurrentDeque = requires(D d, T v) {
  { d.push_right(v) } -> std::same_as<PushResult>;
  { d.push_left(v) } -> std::same_as<PushResult>;
  { d.pop_right() } -> std::same_as<std::optional<T>>;
  { d.pop_left() } -> std::same_as<std::optional<T>>;
};

}  // namespace dcd::deque
