// Result and option types shared by the deque implementations.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace dcd::deque {

// §2.2: each push returns "okay" or "full"; each pop returns a value or
// "empty" (modelled as an empty optional).
enum class PushResult {
  kOkay,
  kFull,
};

// The two code fragments §3 explicitly calls optional ("we note that the
// algorithm would still be correct if line 7, and/or lines 17 and 18, were
// deleted ... Experimentation would be required"). Experiment E4 sweeps
// these.
struct ArrayOptions {
  // Line 7: re-read the index before attempting the boundary-confirming
  // DCAS, to skip a presumably-costly DCAS that would likely fail.
  bool recheck_index = true;
  // Lines 17–18: use the stronger DCAS form (atomic view on failure) to
  // detect "the deque was empty/full when my DCAS failed" without another
  // loop iteration. When false, only the weaker boolean DCAS is used —
  // exactly the trade-off the paper describes.
  bool failure_view = true;

  constexpr bool operator==(const ArrayOptions&) const = default;
};

// Optional scalability layers for the list deque (NTTP, like ArrayOptions).
// Everything defaults off so `ListDeque<T>` stays byte-for-byte the paper's
// algorithm; the elimination layer is the documented extension of
// DESIGN.md §13.
struct ListOptions {
  // Per-end elimination arrays: a same-end push and pop that are both in
  // backoff exchange values directly, never touching the sentinel words.
  bool elimination = false;
  // Words per end scanned for an exchange partner (capped by the
  // implementation's kMaxElimSlots).
  std::uint32_t elim_slots = 4;
  // How many polls a pusher waits on an installed offer before cancelling.
  std::uint32_t elim_polls = 64;

  constexpr bool operator==(const ListOptions&) const = default;
};

// --- representation views (input to verify::RepAuditor) -------------------
//
// Structural snapshots of a deque's shared state, taken by the deques'
// rep_view_unsynchronized() accessors at a moment when no step is in
// flight (a quiescent deque, or a model-checker state where every model
// thread is parked *before* its next access). The §5 invariant clauses are
// judged over these views by dcd::verify::RepAuditor, which keeps the
// clause-by-clause logic testable against synthetic states.

struct ArrayRepView {
  std::size_t n = 0;  // capacity (length_S)
  std::size_t l = 0;  // decoded L index (may be out of range if corrupted)
  std::size_t r = 0;  // decoded R index
  std::vector<bool> cell_null;  // S[i] == null, i in [0, n)
  std::vector<std::uint64_t> cells;  // raw cell words (diagnostics /
                                     // state fingerprints)
};

struct ListRepView {
  bool sentinel_values_ok = false;  // SL/SR value words intact
  bool reachable = false;       // SL → SR right-walk closes within bound
  bool backlinks_ok = false;    // every left word points at the predecessor
  bool interior_deleted = false;  // a deleted bit inside the chain (illegal:
                                  // the bit lives only on sentinel inward
                                  // words)
  bool left_deleted = false;    // deleted bit on SL.R
  bool right_deleted = false;   // deleted bit on SR.L
  std::vector<std::uint64_t> values;  // chain value words, left → right
};

template <typename D, typename T>
concept ConcurrentDeque = requires(D d, T v) {
  { d.push_right(v) } -> std::same_as<PushResult>;
  { d.push_left(v) } -> std::same_as<PushResult>;
  { d.pop_right() } -> std::same_as<std::optional<T>>;
  { d.pop_left() } -> std::same_as<std::optional<T>>;
};

}  // namespace dcd::deque
