// The dummy-node variant of the linked-list deque (footnote 4, Figure 10).
//
// "One can altogether eliminate the need for a 'deleted' bit by introducing
//  a special dummy type 'delete-bit' node, distinguishable from regular
//  nodes, in place of the bit. ... pointing to a node indirectly via its
//  dummy node represents a bit value of true, and pointing directly
//  represents false."
//
// This implementation realises that footnote: a sentinel's inward pointer
// either references a list node directly (deleted = false) or references a
// dummy record whose `left` field holds the logically-deleted node
// (deleted = true). Dummies are distinguished by a kDummy value word.
//
// One deliberate deviation from the footnote: it suggests one static dummy
// per processor per side, but reusing a fixed dummy re-creates the ABA
// problem the bit encoding avoids (two deletions by the same thread produce
// *identical* sentinel words with different targets, so a stale
// confirm-DCAS could succeed against the wrong deletion). We instead
// allocate a fresh dummy per logical delete from the same pool as list
// nodes and retire it with EBR alongside them, which restores the exact
// one-to-one correspondence with the {pointer, bit} words of §4. The cost
// of the indirection — an extra node allocation per pop and an extra
// dereference on every inspection of a sentinel word — is measured in E9.
//
// The algorithmic skeleton (operation structure, DCAS placement,
// linearization points) is identical to ListDeque; only the deleted-bit
// representation differs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/reclaim/concepts.hpp"
#include "dcd/reclaim/node_pool.hpp"
#include "dcd/reclaim/policies.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::deque {

template <typename T, dcas::DcasPolicy Dcas = dcas::DefaultDcas,
          reclaim::ReclaimPolicy Reclaim = reclaim::EbrReclaim>
class ListDequeDummy {
  static_assert(dcas::DcasPolicy<Dcas>,
                "ListDequeDummy requires a policy providing both Figure 1 "
                "DCAS forms (see dcd/dcas/concepts.hpp)");
  static_assert(reclaim::ReclaimPolicy<Reclaim>,
                "ListDequeDummy requires a Guard/retire/collect reclamation "
                "policy (see dcd/reclaim/concepts.hpp)");
  static_assert(std::is_trivially_copyable_v<T>,
                "values are stored as raw 61-bit word payloads");

 public:
  using value_type = T;
  using Codec = ValueCodec<T>;

  explicit ListDequeDummy(std::size_t max_nodes = 1 << 16)
      : pool_(sizeof(Node), max_nodes) {
    Dcas::store_init(sl_.value, dcas::kSentL);
    Dcas::store_init(sr_.value, dcas::kSentR);
    Dcas::store_init(sl_.right, ptr(&sr_));
    Dcas::store_init(sr_.left, ptr(&sl_));
    Dcas::store_init(sl_.left, 0);
    Dcas::store_init(sr_.right, 0);
  }

  // DCD_GUARD_EXEMPT(single-threaded teardown; no concurrent frees exist)
  ~ListDequeDummy() {
    // Single-threaded teardown: free any sentinel-level dummies, then the
    // chain (the walk starts at the leftmost real node, which a left dummy
    // merely points at indirectly). The reclaimer's destructor then drains
    // limbo before the pool dies (member order).
    Node* n = resolve(sl_.right.raw.load(std::memory_order_acquire));  // before freeing the dummy —
    // deallocation overwrites its `left` word with a free-list link.
    if (Node* d = dummy_of(sr_.left.raw.load(std::memory_order_acquire))) pool_.deallocate(d);
    if (Node* d = dummy_of(sl_.right.raw.load(std::memory_order_acquire))) pool_.deallocate(d);
    while (n != &sr_) {
      Node* next = dcas::pointer_of<Node>(n->right.raw.load(std::memory_order_acquire));
      pool_.deallocate(n);
      n = next;
    }
  }

  ListDequeDummy(const ListDequeDummy&) = delete;
  ListDequeDummy& operator=(const ListDequeDummy&) = delete;

  PushResult push_right(T v) {
    typename Reclaim::Guard guard(reclaimer_);
    Node* node = allocate_node();
    if (node == nullptr) return PushResult::kFull;
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);
      Node* neighbor = dcas::pointer_of<Node>(old_l);
      if (is_dummy(neighbor)) {  // "bit set": physical delete first
        delete_right();
        continue;
      }
      Dcas::store_init(node->right, ptr(&sr_));
      Dcas::store_init(node->left, old_l);
      Dcas::store_init(node->value, Codec::encode(v));
      // DCD_SYNC(dcas.any)
      // DCD_LP(Fig13:16-17, dcas.any, inv=list.reachable+list.backlinks+list.value_payload, "SR->L and neighbor->R swing to the new node in one step, publishing it")
      // DCD_PUBLISHES(dcas.any, right+left+value)
      if (Dcas::dcas(sr_.left, neighbor->right, old_l, ptr(&sr_), ptr(node),
                     ptr(node))) {
        return PushResult::kOkay;
      }
      backoff.pause();
    }
  }

  PushResult push_left(T v) {
    typename Reclaim::Guard guard(reclaimer_);
    Node* node = allocate_node();
    if (node == nullptr) return PushResult::kFull;
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      Node* neighbor = dcas::pointer_of<Node>(old_r);
      if (is_dummy(neighbor)) {
        delete_left();
        continue;
      }
      Dcas::store_init(node->left, ptr(&sl_));
      Dcas::store_init(node->right, old_r);
      Dcas::store_init(node->value, Codec::encode(v));
      // DCD_SYNC(dcas.any)
      // DCD_LP(Fig33:16-17, dcas.any, inv=list.reachable+list.backlinks+list.value_payload, "SL->R and neighbor->L swing to the new node in one step, publishing it")
      // DCD_PUBLISHES(dcas.any, left+right+value)
      if (Dcas::dcas(sl_.right, neighbor->left, old_r, ptr(&sl_), ptr(node),
                     ptr(node))) {
        return PushResult::kOkay;
      }
      backoff.pause();
    }
  }

  std::optional<T> pop_right() {
    typename Reclaim::Guard guard(reclaimer_);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);
      Node* pointee = dcas::pointer_of<Node>(old_l);
      const std::uint64_t pv = Dcas::load(pointee->value);
      if (pv == dcas::kSentL) return std::nullopt;
      if (pv == dcas::kDummy) {  // deleted "bit" observed
        delete_right();
        backoff.pause();
        continue;
      }
      if (dcas::is_null(pv)) {
        // Logically deleted from the left; empty if the snapshot holds.
        // DCD_SYNC(empty.confirm)
        // DCD_LP(Fig11:9-11, empty.confirm, inv=list.sentinel_values+list.null_licensing, "identity DCAS confirms the snapshot {SR->L, null value} intact: deque observed empty")
        if (Dcas::dcas(sr_.left, pointee->value, old_l, pv, old_l, pv)) {
          return std::nullopt;
        }
      } else {
        // Logical delete: swing SR->L to a fresh dummy targeting pointee
        // while nulling the value — one DCAS, exactly as with the bit.
        Node* dummy = allocate_node();
        if (dummy == nullptr) {
          // Cannot represent the deleted state; treat like allocation
          // failure on push (footnote 3's spirit): report empty only if
          // provably empty, otherwise retry after a pause.
          backoff.pause();
          continue;
        }
        Dcas::store_init(dummy->value, dcas::kDummy);
        Dcas::store_init(dummy->left, ptr(pointee));
        Dcas::store_init(dummy->right, 0);
        // DCD_SYNC(pop.commit)
        // DCD_LP(Fig11:16-17, pop.commit, inv=list.interior_deleted+list.null_licensing+list.value_payload, "SR->L swings to the dummy (the deleted-bit stand-in) while the value is nulled, claiming it")
        // DCD_PUBLISHES(pop.commit, value+left+right)
        if (Dcas::dcas(sr_.left, pointee->value, old_l, pv, ptr(dummy),
                       dcas::kNull)) {
          return Codec::decode(pv);
        }
        // The dummy was never published, but a direct free-list push here
        // could still race a concurrent allocate() holding a stale next
        // pointer (pop-pop-push ABA), so it goes through EBR like any
        // retired node.
        reclaimer_.retire(dummy, pool_);
      }
      backoff.pause();
    }
  }

  std::optional<T> pop_left() {
    typename Reclaim::Guard guard(reclaimer_);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      Node* pointee = dcas::pointer_of<Node>(old_r);
      const std::uint64_t pv = Dcas::load(pointee->value);
      if (pv == dcas::kSentR) return std::nullopt;
      if (pv == dcas::kDummy) {
        delete_left();
        backoff.pause();
        continue;
      }
      if (dcas::is_null(pv)) {
        // DCD_SYNC(empty.confirm)
        // DCD_LP(Fig32:9-11, empty.confirm, inv=list.sentinel_values+list.null_licensing, "identity DCAS confirms the snapshot {SL->R, null value} intact: deque observed empty")
        if (Dcas::dcas(sl_.right, pointee->value, old_r, pv, old_r, pv)) {
          return std::nullopt;
        }
      } else {
        Node* dummy = allocate_node();
        if (dummy == nullptr) {
          backoff.pause();
          continue;
        }
        Dcas::store_init(dummy->value, dcas::kDummy);
        Dcas::store_init(dummy->left, ptr(pointee));
        Dcas::store_init(dummy->right, 0);
        // DCD_SYNC(pop.commit)
        // DCD_LP(Fig32:16-17, pop.commit, inv=list.interior_deleted+list.null_licensing+list.value_payload, "SL->R swings to the dummy (the deleted-bit stand-in) while the value is nulled, claiming it")
        // DCD_PUBLISHES(pop.commit, value+left+right)
        if (Dcas::dcas(sl_.right, pointee->value, old_r, pv, ptr(dummy),
                       dcas::kNull)) {
          return Codec::decode(pv);
        }
        reclaimer_.retire(dummy, pool_);  // see pop_right for why not direct
      }
      backoff.pause();
    }
  }

  // --- quiescent inspection (tests only) ----------------------------------
  //
  // Like ListDeque's: raw acquire loads are sound here because a quiescent
  // structure holds no in-flight descriptors, and acquire synchronises
  // with the releasing DCAS of whatever operation last touched each word.

  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  std::size_t size_unsynchronized() const {
    std::size_t count = 0;
    const Node* n = resolve(sl_.right.raw.load(std::memory_order_acquire));
    while (n != &sr_) {
      const std::uint64_t v = n->value.raw.load(std::memory_order_acquire);
      if (!dcas::is_null(v) && v != dcas::kDummy) ++count;
      n = dcas::pointer_of<const Node>(n->right.raw.load(std::memory_order_acquire));
    }
    return count;
  }

  // RepInv for the dummy representation: the chain (after resolving
  // sentinel-level dummies) is doubly linked and acyclic; dummies appear
  // only at sentinel level and target the adjacent chain end; null values
  // appear exactly where a dummy licenses them.
  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  bool check_rep_inv_unsynchronized() const {
    if (sl_.value.raw.load(std::memory_order_acquire) != dcas::kSentL) return false;
    if (sr_.value.raw.load(std::memory_order_acquire) != dcas::kSentR) return false;
    const Node* left_dummy = dummy_of(sl_.right.raw.load(std::memory_order_acquire));
    const Node* right_dummy = dummy_of(sr_.left.raw.load(std::memory_order_acquire));
    std::vector<const Node*> chain;
    const Node* n = resolve(sl_.right.raw.load(std::memory_order_acquire));
    const std::size_t bound = pool_.capacity() + 2;
    while (n != &sr_) {
      if (n == nullptr || n == &sl_ || chain.size() > bound) return false;
      if (is_dummy(n)) return false;  // dummies never sit in the chain
      chain.push_back(n);
      n = dcas::pointer_of<const Node>(n->right.raw.load(std::memory_order_acquire));
    }
    const Node* prev = &sl_;
    for (const Node* c : chain) {
      if (dcas::pointer_of<const Node>(c->left.raw.load(std::memory_order_acquire)) != prev) {
        return false;
      }
      prev = c;
    }
    if (resolve(sr_.left.raw.load(std::memory_order_acquire)) != (chain.empty() ? &sl_ : prev)) {
      return false;
    }
    // A dummy must target the adjacent chain end, which must be null.
    if (right_dummy != nullptr) {
      if (chain.empty() ||
          dcas::pointer_of<const Node>(right_dummy->left.raw.load(std::memory_order_acquire)) !=
              chain.back() ||
          !dcas::is_null(chain.back()->value.raw.load(std::memory_order_acquire))) {
        return false;
      }
    }
    if (left_dummy != nullptr) {
      if (chain.empty() ||
          dcas::pointer_of<const Node>(left_dummy->left.raw.load(std::memory_order_acquire)) !=
              chain.front() ||
          !dcas::is_null(chain.front()->value.raw.load(std::memory_order_acquire))) {
        return false;
      }
    }
    if (left_dummy != nullptr && right_dummy != nullptr && chain.size() < 2) {
      return false;
    }
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const bool licensed = (i == 0 && left_dummy != nullptr) ||
                            (i + 1 == chain.size() && right_dummy != nullptr);
      const std::uint64_t v = chain[i]->value.raw.load(std::memory_order_acquire);
      if (v == dcas::kDummy) return false;
      if (dcas::is_null(v) && !licensed) return false;
    }
    return true;
  }

  bool right_dummy_unsynchronized() const {
    return dummy_of(sr_.left.raw.load(std::memory_order_acquire)) != nullptr;
  }
  bool left_dummy_unsynchronized() const {
    return dummy_of(sl_.right.raw.load(std::memory_order_acquire)) != nullptr;
  }

  const reclaim::NodePool& pool() const noexcept { return pool_; }
  Reclaim& reclaimer() noexcept { return reclaimer_; }

 private:
  struct Node {
    dcas::Word left;   // dummies: the logically-deleted node
    dcas::Word right;
    dcas::Word value;  // dummies: kDummy
  };
  static_assert(std::is_trivially_destructible_v<Node>,
                "pool storage is released wholesale, never destroyed");

  static std::uint64_t ptr(const Node* n) noexcept {
    return dcas::encode_pointer(n, /*deleted=*/false);
  }

  // Footnote 3 contract (see ListDeque::allocate_node): a failed allocate
  // may only mean the free list is parked in EBR limbo; once pushes fail,
  // nothing retires, so no retire-triggered drain would ever run again.
  // Prompt a collect and retry once before reporting exhaustion. The pop
  // paths need this even more than the pushes — a pop that cannot allocate
  // its dummy spins, so a stuck limbo would livelock it outright.
  // DCD_REQUIRES_GUARD(pool allocate pops a shared free list; the op guard must pin the epoch)
  Node* allocate_node() {
    if (void* p = pool_.allocate()) return static_cast<Node*>(p);
    reclaimer_.collect();
    return static_cast<Node*>(pool_.allocate());
  }

  // DCD_REQUIRES_GUARD(reads a chain node's value word; live only under the caller's protection)
  static bool is_dummy(const Node* n) noexcept {
    return n->value.raw.load(std::memory_order_acquire) == dcas::kDummy;
  }

  // Quiescent helpers for teardown/introspection.
  // DCD_GUARD_EXEMPT(quiescent helper; callers are teardown or test-only walks)
  Node* dummy_of(std::uint64_t word) const {
    auto* n = dcas::pointer_of<Node>(word);
    return (n != nullptr && n != &sl_ && n != &sr_ && is_dummy(n)) ? n
                                                                   : nullptr;
  }
  // DCD_REQUIRES_GUARD(resolved pointer stays live only while the caller's scope pins it)
  const Node* resolve(std::uint64_t word) const {
    auto* n = dcas::pointer_of<const Node>(word);
    if (n != nullptr && n != &sl_ && n != &sr_ && is_dummy(n)) {
      return dcas::pointer_of<const Node>(n->left.raw.load(std::memory_order_acquire));
    }
    return n;
  }
  // DCD_REQUIRES_GUARD(resolved pointer stays live only while the caller's scope pins it)
  Node* resolve(std::uint64_t word) {
    return const_cast<Node*>(
        static_cast<const ListDequeDummy*>(this)->resolve(word));
  }
  static Node* target_of(const dcas::Word& w) {
    return dcas::pointer_of<Node>(w.raw.load(std::memory_order_acquire));
  }

  // Figure 17 with the dummy encoding: SR->L == D(dummy->X) plays the role
  // of {X, deleted=1}.
  // DCD_REQUIRES_GUARD(only called from push/pop paths that hold the operation guard)
  void delete_right() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);
      Node* dummy = dcas::pointer_of<Node>(old_l);
      if (!is_dummy(dummy)) return;  // "bit" already cleared
      Node* node = dcas::pointer_of<Node>(Dcas::load(dummy->left));
      Node* ll = dcas::pointer_of<Node>(Dcas::load(node->left));
      const std::uint64_t ll_value = Dcas::load(ll->value);
      if (!dcas::is_null(ll_value) && ll_value != dcas::kDummy) {
        const std::uint64_t old_llr = Dcas::load(ll->right);
        if (dcas::pointer_of<Node>(old_llr) == node) {
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig17:9-12, dcas.any, aux, inv=list.reachable+list.backlinks+list.deleted_target_null, "unlinks the null node and its dummy; helping step, no operation linearizes here")
          if (Dcas::dcas(sr_.left, ll->right, old_l, old_llr, ptr(ll),
                         ptr(&sr_))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(dummy, pool_);
            return;
          }
        }
      } else if (dcas::is_null(ll_value)) {  // two null items (Figure 16)
        const std::uint64_t old_r = Dcas::load(sl_.right);
        Node* left_dummy = dcas::pointer_of<Node>(old_r);
        if (is_dummy(left_dummy)) {
          Node* left_null =
              dcas::pointer_of<Node>(Dcas::load(left_dummy->left));
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig16:19-24, dcas.any, aux, inv=list.two_deleted_minimum+list.sentinel_values+list.deleted_target_null, "both sentinels swing to each other, removing the final null nodes and their dummies at once")
          if (Dcas::dcas(sr_.left, sl_.right, old_l, old_r, ptr(&sl_),
                         ptr(&sr_))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(dummy, pool_);
            reclaimer_.retire(left_null, pool_);
            reclaimer_.retire(left_dummy, pool_);
            return;
          }
        }
      }
      backoff.pause();
    }
  }

  // DCD_REQUIRES_GUARD(only called from push/pop paths that hold the operation guard)
  void delete_left() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      Node* dummy = dcas::pointer_of<Node>(old_r);
      if (!is_dummy(dummy)) return;
      Node* node = dcas::pointer_of<Node>(Dcas::load(dummy->left));
      Node* rr = dcas::pointer_of<Node>(Dcas::load(node->right));
      const std::uint64_t rr_value = Dcas::load(rr->value);
      if (!dcas::is_null(rr_value) && rr_value != dcas::kDummy) {
        const std::uint64_t old_rrl = Dcas::load(rr->left);
        if (dcas::pointer_of<Node>(old_rrl) == node) {
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig34:9-12, dcas.any, aux, inv=list.reachable+list.backlinks+list.deleted_target_null, "unlinks the null node and its dummy; helping step, no operation linearizes here")
          if (Dcas::dcas(sl_.right, rr->left, old_r, old_rrl, ptr(rr),
                         ptr(&sl_))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(dummy, pool_);
            return;
          }
        }
      } else if (dcas::is_null(rr_value)) {
        const std::uint64_t old_l = Dcas::load(sr_.left);
        Node* right_dummy = dcas::pointer_of<Node>(old_l);
        if (is_dummy(right_dummy)) {
          Node* right_null =
              dcas::pointer_of<Node>(Dcas::load(right_dummy->left));
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig34:19-24, dcas.any, aux, inv=list.two_deleted_minimum+list.sentinel_values+list.deleted_target_null, "both sentinels swing to each other, removing the final null nodes and their dummies at once")
          if (Dcas::dcas(sl_.right, sr_.left, old_r, old_l, ptr(&sr_),
                         ptr(&sl_))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(dummy, pool_);
            reclaimer_.retire(right_null, pool_);
            reclaimer_.retire(right_dummy, pool_);
            return;
          }
        }
      }
      backoff.pause();
    }
  }

  reclaim::NodePool pool_;
  Reclaim reclaimer_;
  alignas(util::kCacheLineSize) Node sl_;
  alignas(util::kCacheLineSize) Node sr_;
};

}  // namespace dcd::deque
