// The linked-list-based unbounded deque of §4
// (Figures 11, 13, 17 and their left-side mirrors 32, 33, 34).
//
// State: a doubly-linked list of nodes between two fixed sentinels SL and
// SR. A sentinel's inward pointer word carries a `deleted` bit in its low
// bits (single-word DCAS-able together with the pointer). Pops are split:
//
//   1. logical delete — one DCAS over {sentinel pointer word, node value}:
//      set the deleted bit and write null into the value;
//   2. physical delete — deleteRight/deleteLeft splice the null node out
//      and clear the bit. Any operation on that side that finds the bit set
//      performs the physical delete first, so a suspended popper never
//      blocks others (the paper's non-blocking argument, §5.2).
//
// The subtle case is an empty deque holding two logically-deleted nodes
// being physically deleted from both ends at once (Figure 16): both
// deletes' DCASes overlap on a sentinel word and exactly one wins.
//
// Substitutions vs the paper: GC is replaced by a pluggable reclamation
// policy (EBR by default — it also supplies the ABA-freedom on node
// addresses that GC gave for free), and New() by a fixed node pool whose
// exhaustion surfaces as push → "full" (footnote 3).
//
// Paper errata corrected here (see DESIGN.md §2): Figure 32 line 4 reads
// through oldL instead of oldR; Figure 33 line 10 points the new node's L
// at SR instead of SL.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/deque/elimination.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/reclaim/concepts.hpp"
#include "dcd/reclaim/magazine_pool.hpp"
#include "dcd/reclaim/node_pool.hpp"
#include "dcd/reclaim/policies.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::deque {

// Pool defaults to the per-thread magazine layer (DESIGN.md §13): the
// shared-free-list serialization the paper never had (it assumed GC) would
// otherwise dominate before the DCAS contention the paper reasons about.
// Opt (NTTP, like ArrayDeque's ArrayOptions) gates the elimination layer.
template <typename T, dcas::DcasPolicy Dcas = dcas::DefaultDcas,
          reclaim::ReclaimPolicy Reclaim = reclaim::EbrReclaim,
          reclaim::PoolPolicy Pool = reclaim::MagazinePool,
          ListOptions Opt = ListOptions{}>
class ListDeque {
  static_assert(dcas::DcasPolicy<Dcas>,
                "ListDeque requires a policy providing both Figure 1 DCAS "
                "forms (see dcd/dcas/concepts.hpp)");
  static_assert(reclaim::ReclaimPolicy<Reclaim>,
                "ListDeque requires a Guard/retire/collect reclamation "
                "policy (see dcd/reclaim/concepts.hpp)");
  static_assert(std::is_trivially_copyable_v<T>,
                "values are stored as raw 61-bit word payloads");
  static_assert(!Opt.elimination || Opt.elim_slots >= 1,
                "an enabled elimination layer needs at least one slot");

 public:
  using value_type = T;
  using Codec = ValueCodec<T>;
  static constexpr ListOptions kOptions = Opt;

  // `max_nodes` bounds live + not-yet-reclaimed nodes (the paper's deque is
  // unbounded given an unbounded allocator; a fixed pool makes allocation
  // failure — and thus the "full" return of footnote 3 — testable).
  explicit ListDeque(std::size_t max_nodes = 1 << 16)
      : pool_(sizeof(Node), max_nodes) {
    Dcas::store_init(sl_.value, dcas::kSentL);
    Dcas::store_init(sr_.value, dcas::kSentR);
    Dcas::store_init(sl_.right, ptr(&sr_, false));
    Dcas::store_init(sr_.left, ptr(&sl_, false));
    // The outward pointers are never used (§4); keep them null-ish.
    Dcas::store_init(sl_.left, 0);
    Dcas::store_init(sr_.right, 0);
  }

  // DCD_GUARD_EXEMPT(single-threaded teardown; no concurrent frees exist)
  ~ListDeque() {
    // Single-threaded teardown: return every non-sentinel node still in the
    // chain to the pool, then let the reclaimer's destructor force-drain
    // what is in limbo (member destruction order handles the rest).
    Node* n = dcas::pointer_of<Node>(sl_.right.raw.load(std::memory_order_acquire));
    while (n != &sr_) {
      Node* next = dcas::pointer_of<Node>(n->right.raw.load(std::memory_order_acquire));
      pool_.deallocate(n);
      n = next;
    }
  }

  ListDeque(const ListDeque&) = delete;
  ListDeque& operator=(const ListDeque&) = delete;

  // Figure 13.
  PushResult push_right(T v) {
    typename Reclaim::Guard guard(reclaimer_);
    Node* node = allocate_node();                       // line 2
    if (node == nullptr) return PushResult::kFull;      // line 3
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);  // line 6
      if (dcas::deleted_of(old_l)) {                     // line 7
        delete_right();                                  // line 8
        continue;
      }
      // Lines 10–13: initialise the private node. No other thread can see
      // it until the DCAS below publishes it (paper footnote 7).
      Dcas::store_init(node->right, ptr(&sr_, false));
      Dcas::store_init(node->left, old_l);
      Dcas::store_init(node->value, Codec::encode(v));
      Node* left_neighbor = dcas::pointer_of<Node>(old_l);
      const std::uint64_t old_lr = ptr(&sr_, false);     // lines 14-15
      // DCD_SYNC(dcas.any)
      // DCD_LP(Fig13:16-17, dcas.any, inv=list.reachable+list.backlinks+list.value_payload, "SR->L and neighbor->R swing to the new node in one step, publishing it")
      // DCD_PUBLISHES(dcas.any, right+left+value)
      if (Dcas::dcas(sr_.left, left_neighbor->right, old_l, old_lr,
                     ptr(node, false), ptr(node, false))) {  // lines 16-17
        return PushResult::kOkay;                        // line 18
      }
      if constexpr (Opt.elimination) {
        if (elim_r_.offer(Codec::encode(v), Opt.elim_slots, Opt.elim_polls)) {
          // A same-end popper consumed the value (lin. point: its take
          // CAS). The private node was never published; it still must go
          // through EBR, not straight back to the free list — the
          // pop-pop-push ABA note in list_deque_dummy.hpp applies as-is.
          reclaimer_.retire(node, pool_);
          return PushResult::kOkay;
        }
      }
      backoff.pause();
    }
  }

  // Figure 33 (mirror; erratum: the new node's L points at SL).
  PushResult push_left(T v) {
    typename Reclaim::Guard guard(reclaimer_);
    Node* node = allocate_node();
    if (node == nullptr) return PushResult::kFull;
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      if (dcas::deleted_of(old_r)) {
        delete_left();
        continue;
      }
      Dcas::store_init(node->left, ptr(&sl_, false));
      Dcas::store_init(node->right, old_r);
      Dcas::store_init(node->value, Codec::encode(v));
      Node* right_neighbor = dcas::pointer_of<Node>(old_r);
      const std::uint64_t old_rl = ptr(&sl_, false);
      // DCD_SYNC(dcas.any)
      // DCD_LP(Fig33:16-17, dcas.any, inv=list.reachable+list.backlinks+list.value_payload, "SL->R and neighbor->L swing to the new node in one step, publishing it")
      // DCD_PUBLISHES(dcas.any, left+right+value)
      if (Dcas::dcas(sl_.right, right_neighbor->left, old_r, old_rl,
                     ptr(node, false), ptr(node, false))) {
        return PushResult::kOkay;
      }
      if constexpr (Opt.elimination) {
        if (elim_l_.offer(Codec::encode(v), Opt.elim_slots, Opt.elim_polls)) {
          reclaimer_.retire(node, pool_);
          return PushResult::kOkay;
        }
      }
      backoff.pause();
    }
  }

  // Figure 11.
  std::optional<T> pop_right() {
    typename Reclaim::Guard guard(reclaimer_);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);   // line 3
      Node* node = dcas::pointer_of<Node>(old_l);
      const std::uint64_t v = Dcas::load(node->value);    // line 4
      if (v == dcas::kSentL) return std::nullopt;         // line 5
      if (dcas::deleted_of(old_l)) {                      // line 6
        delete_right();                                   // line 7
      } else if (dcas::is_null(v)) {                      // line 8
        // The node was logically deleted by a popLeft; if the snapshot
        // {pointer word, value} is still intact the deque is empty.
        // DCD_SYNC(empty.confirm)
        // DCD_LP(Fig11:9-11, empty.confirm, inv=list.sentinel_values+list.null_licensing, "identity DCAS confirms the snapshot {SR->L, null value} intact: deque observed empty")
        if (Dcas::dcas(sr_.left, node->value, old_l, v, old_l, v)) {
          return std::nullopt;                            // lines 9-11
        }
      } else {
        const std::uint64_t new_l = ptr(node, true);      // lines 14-15
        // DCD_SYNC(pop.logical_delete)
        // DCD_LP(Fig11:16-17, pop.logical_delete, inv=list.interior_deleted+list.null_licensing+list.value_payload, "sets SR->L's deleted bit and nulls the value, claiming it; splice is deferred to deleteRight")
        if (Dcas::dcas(sr_.left, node->value, old_l, v, new_l,
                       dcas::kNull)) {                    // lines 16-17
          return Codec::decode(v);                        // line 18
        }
      }
      if constexpr (Opt.elimination) {
        // Retry path only: exchange with a same-end pusher also in
        // backoff. Both ops linearize at this take CAS (DESIGN.md §13).
        std::uint64_t taken = 0;
        if (elim_r_.take(Opt.elim_slots, &taken)) {
          return Codec::decode(taken);
        }
      }
      backoff.pause();
    }
  }

  // Figure 32 (mirror; erratum: line 4 dereferences oldR).
  std::optional<T> pop_left() {
    typename Reclaim::Guard guard(reclaimer_);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      Node* node = dcas::pointer_of<Node>(old_r);
      const std::uint64_t v = Dcas::load(node->value);
      if (v == dcas::kSentR) return std::nullopt;
      if (dcas::deleted_of(old_r)) {
        delete_left();
      } else if (dcas::is_null(v)) {
        // DCD_SYNC(empty.confirm)
        // DCD_LP(Fig32:9-11, empty.confirm, inv=list.sentinel_values+list.null_licensing, "identity DCAS confirms the snapshot {SL->R, null value} intact: deque observed empty")
        if (Dcas::dcas(sl_.right, node->value, old_r, v, old_r, v)) {
          return std::nullopt;
        }
      } else {
        const std::uint64_t new_r = ptr(node, true);
        // DCD_SYNC(pop.logical_delete)
        // DCD_LP(Fig32:16-17, pop.logical_delete, inv=list.interior_deleted+list.null_licensing+list.value_payload, "sets SL->R's deleted bit and nulls the value, claiming it; splice is deferred to deleteLeft")
        if (Dcas::dcas(sl_.right, node->value, old_r, v, new_r,
                       dcas::kNull)) {
          return Codec::decode(v);
        }
      }
      if constexpr (Opt.elimination) {
        std::uint64_t taken = 0;
        if (elim_l_.take(Opt.elim_slots, &taken)) {
          return Codec::decode(taken);
        }
      }
      backoff.pause();
    }
  }

  // --- quiescent inspection (tests only; not linearizable) ----------------
  //
  // These walks (and the teardown walk above) bypass the policy layer on
  // purpose — a quiescent structure holds no in-flight descriptors to
  // strip. Acquire suffices: it synchronises with the releasing DCAS of
  // whatever operation last touched each word, and none of these paths
  // publish anything.

  // Values currently reachable left→right, skipping logically-deleted
  // nodes. Exact only while no operation is in flight.
  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  std::size_t size_unsynchronized() const {
    std::size_t count = 0;
    const Node* n = dcas::pointer_of<Node>(sl_.right.raw.load(std::memory_order_acquire));
    while (n != &sr_) {
      if (!dcas::is_null(n->value.raw.load(std::memory_order_acquire))) ++count;
      n = dcas::pointer_of<Node>(n->right.raw.load(std::memory_order_acquire));
    }
    return count;
  }

  // Figures 24/25's RepInv, evaluated on a quiescent deque: sentinel values
  // fixed, the chain doubly linked and acyclic, deleted bits only on the
  // sentinels' inward words, and null values exactly where a set bit
  // licenses them.
  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  bool check_rep_inv_unsynchronized() const {
    if (sl_.value.raw.load(std::memory_order_acquire) != dcas::kSentL) return false;
    if (sr_.value.raw.load(std::memory_order_acquire) != dcas::kSentR) return false;
    std::vector<const Node*> chain;
    const Node* n = dcas::pointer_of<const Node>(sl_.right.raw.load(std::memory_order_acquire));
    std::size_t bound = pool_.capacity() + 2;
    while (n != &sr_) {
      if (n == nullptr || n == &sl_ || chain.size() > bound) return false;
      chain.push_back(n);
      n = dcas::pointer_of<const Node>(n->right.raw.load(std::memory_order_acquire));
    }
    const Node* prev = &sl_;
    for (const Node* c : chain) {
      const std::uint64_t lw = c->left.raw.load(std::memory_order_acquire);
      if (dcas::pointer_of<const Node>(lw) != prev || dcas::deleted_of(lw)) {
        return false;
      }
      if (dcas::deleted_of(c->right.raw.load(std::memory_order_acquire))) return false;
      prev = c;
    }
    if (dcas::pointer_of<const Node>(sr_.left.raw.load(std::memory_order_acquire)) != prev) {
      return false;
    }
    const bool rdel = right_deleted_bit_unsynchronized();
    const bool ldel = left_deleted_bit_unsynchronized();
    if (rdel && (chain.empty() ||
                 !dcas::is_null(chain.back()->value.raw.load(std::memory_order_acquire)))) {
      return false;
    }
    if (ldel && (chain.empty() ||
                 !dcas::is_null(chain.front()->value.raw.load(std::memory_order_acquire)))) {
      return false;
    }
    if (rdel && ldel && chain.size() < 2) return false;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const bool licensed =
          (i == 0 && ldel) || (i + 1 == chain.size() && rdel);
      if (dcas::is_null(chain[i]->value.raw.load(std::memory_order_acquire)) && !licensed) {
        return false;
      }
    }
    return true;
  }

  bool right_deleted_bit_unsynchronized() const {
    return dcas::deleted_of(sr_.left.raw.load(std::memory_order_acquire));
  }
  bool left_deleted_bit_unsynchronized() const {
    return dcas::deleted_of(sl_.right.raw.load(std::memory_order_acquire));
  }
  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  std::size_t chain_length_unsynchronized() const {
    std::size_t count = 0;
    const Node* n = dcas::pointer_of<Node>(sl_.right.raw.load(std::memory_order_acquire));
    while (n != &sr_) {
      ++count;
      n = dcas::pointer_of<Node>(n->right.raw.load(std::memory_order_acquire));
    }
    return count;
  }

  // Structural snapshot for verify::RepAuditor. Same quiescence caveat as
  // the walks above; the model checker additionally calls this at explored
  // states, where it is exact because every model thread is parked *before*
  // its next access (no step is half-done).
  // DCD_GUARD_EXEMPT(quiescent test-only walk; no concurrent frees by contract)
  ListRepView rep_view_unsynchronized() const {
    ListRepView view;
    view.sentinel_values_ok =
        sl_.value.raw.load(std::memory_order_acquire) == dcas::kSentL &&
        sr_.value.raw.load(std::memory_order_acquire) == dcas::kSentR;
    view.left_deleted = left_deleted_bit_unsynchronized();
    view.right_deleted = right_deleted_bit_unsynchronized();
    std::vector<const Node*> chain;
    const Node* n = dcas::pointer_of<const Node>(
        sl_.right.raw.load(std::memory_order_acquire));
    const std::size_t bound = pool_.capacity() + 2;
    view.reachable = true;
    while (n != &sr_) {
      if (n == nullptr || n == &sl_ || chain.size() > bound) {
        view.reachable = false;
        break;
      }
      chain.push_back(n);
      n = dcas::pointer_of<const Node>(
          n->right.raw.load(std::memory_order_acquire));
    }
    view.backlinks_ok = view.reachable;
    const Node* prev = &sl_;
    for (const Node* c : chain) {
      const std::uint64_t lw = c->left.raw.load(std::memory_order_acquire);
      if (dcas::pointer_of<const Node>(lw) != prev) view.backlinks_ok = false;
      if (dcas::deleted_of(lw) ||
          dcas::deleted_of(c->right.raw.load(std::memory_order_acquire))) {
        view.interior_deleted = true;
      }
      prev = c;
    }
    if (view.reachable &&
        dcas::pointer_of<const Node>(
            sr_.left.raw.load(std::memory_order_acquire)) != prev) {
      view.backlinks_ok = false;
    }
    view.values.reserve(chain.size());
    for (const Node* c : chain) {
      view.values.push_back(c->value.raw.load(std::memory_order_acquire));
    }
    return view;
  }

  const Pool& pool() const noexcept { return pool_; }
  Reclaim& reclaimer() noexcept { return reclaimer_; }

 private:
  // typedef node { pointer *L; pointer *R; val value; } — §4. The pool
  // rounds allocations to a cache line, so node addresses have their low
  // bits free for the deleted bit / descriptor mark.
  struct Node {
    dcas::Word left;
    dcas::Word right;
    dcas::Word value;
  };
  static_assert(std::is_trivially_destructible_v<Node>,
                "pool storage is released wholesale, never destroyed");

  static std::uint64_t ptr(const Node* n, bool deleted) noexcept {
    return dcas::encode_pointer(n, deleted);
  }

  // Footnote 3: report "full" only when memory is truly exhausted. A failed
  // allocate often just means every free node is parked in EBR limbo
  // awaiting its grace period — and the moment pushes start failing, pops
  // stop retiring, so nothing else would ever trigger a drain again (the
  // deque ratchets into a permanent full-and-empty no-op state; E11 caught
  // this). Prompt a collect (epoch advance + own-slot drain) and retry
  // once; repeated failing pushes re-enter at fresh epochs, so the limbo
  // ages out across calls even though one collect advances at most once.
  // DCD_REQUIRES_GUARD(pool allocate pops a shared free list; the op guard must pin the epoch)
  Node* allocate_node() {
    if (void* p = pool_.allocate()) return static_cast<Node*>(p);
    reclaimer_.collect();
    return static_cast<Node*>(pool_.allocate());
  }

  // Figure 17.
  // DCD_REQUIRES_GUARD(only called from push/pop paths that hold the operation guard)
  void delete_right() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(sr_.left);    // line 3
      if (!dcas::deleted_of(old_l)) return;                // line 4
      Node* node = dcas::pointer_of<Node>(old_l);          // the null node
      // line 5: oldLL = oldL.ptr->L.ptr
      Node* ll = dcas::pointer_of<Node>(Dcas::load(node->left));
      const std::uint64_t ll_value = Dcas::load(ll->value);  // line 6
      if (!dcas::is_null(ll_value)) {
        const std::uint64_t old_llr = Dcas::load(ll->right);  // line 7
        if (dcas::pointer_of<Node>(old_llr) == node) {        // line 8
          // Lines 9-12: splice `node` out; SR->L := {ll, 0},
          // ll->R := {SR, 0}.
          // DCD_SYNC(delete.splice)
          // DCD_LP(Fig17:9-12, delete.splice, aux, inv=list.reachable+list.backlinks+list.deleted_target_null, "unlinks the single null node; helping step, no operation linearizes here")
          if (Dcas::dcas(sr_.left, ll->right, old_l, old_llr,
                         ptr(ll, false), ptr(&sr_, false))) {
            reclaimer_.retire(node, pool_);
            return;                                          // line 13
          }
        }
      } else {  // lines 16-26: two null items (Figure 16)
        const std::uint64_t old_r = Dcas::load(sl_.right);   // line 17
        if (dcas::deleted_of(old_r)) {                       // line 18
          Node* left_null = dcas::pointer_of<Node>(old_r);
          // Lines 19-24: point the sentinels at each other, removing both
          // null nodes at once.
          // DCD_SYNC(delete.two_null_splice)
          // DCD_LP(Fig16:19-24, delete.two_null_splice, aux, inv=list.two_deleted_minimum+list.sentinel_values+list.deleted_target_null, "both sentinels swing to each other, removing the final two null nodes at once")
          if (Dcas::dcas(sr_.left, sl_.right, old_l, old_r, ptr(&sl_, false),
                         ptr(&sr_, false))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(left_null, pool_);
            return;                                          // line 25
          }
        }
      }
      backoff.pause();
    }
  }

  // Figure 34 (mirror).
  // DCD_REQUIRES_GUARD(only called from push/pop paths that hold the operation guard)
  void delete_left() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(sl_.right);
      if (!dcas::deleted_of(old_r)) return;
      Node* node = dcas::pointer_of<Node>(old_r);
      Node* rr = dcas::pointer_of<Node>(Dcas::load(node->right));
      const std::uint64_t rr_value = Dcas::load(rr->value);
      if (!dcas::is_null(rr_value)) {
        const std::uint64_t old_rrl = Dcas::load(rr->left);
        if (dcas::pointer_of<Node>(old_rrl) == node) {
          // DCD_SYNC(delete.splice)
          // DCD_LP(Fig34:9-12, delete.splice, aux, inv=list.reachable+list.backlinks+list.deleted_target_null, "unlinks the single null node; helping step, no operation linearizes here")
          if (Dcas::dcas(sl_.right, rr->left, old_r, old_rrl,
                         ptr(rr, false), ptr(&sl_, false))) {
            reclaimer_.retire(node, pool_);
            return;
          }
        }
      } else {  // two null items
        const std::uint64_t old_l = Dcas::load(sr_.left);
        if (dcas::deleted_of(old_l)) {
          Node* right_null = dcas::pointer_of<Node>(old_l);
          // DCD_SYNC(delete.two_null_splice)
          // DCD_LP(Fig34:19-24, delete.two_null_splice, aux, inv=list.two_deleted_minimum+list.sentinel_values+list.deleted_target_null, "both sentinels swing to each other, removing the final two null nodes at once")
          if (Dcas::dcas(sl_.right, sr_.left, old_r, old_l, ptr(&sr_, false),
                         ptr(&sl_, false))) {
            reclaimer_.retire(node, pool_);
            reclaimer_.retire(right_null, pool_);
            return;
          }
        }
      }
      backoff.pause();
    }
  }

  // Declaration order matters: the reclaimer is destroyed before the pool,
  // force-draining limbo nodes back into the slab before it is released.
  Pool pool_;
  Reclaim reclaimer_;
  alignas(util::kCacheLineSize) Node sl_;
  alignas(util::kCacheLineSize) Node sr_;
  // Per-end elimination arrays; storage-free when the layer is off.
  using ElimEnd = std::conditional_t<Opt.elimination, EliminationEnd<Dcas>,
                                     EliminationDisabled>;
  [[no_unique_address]] ElimEnd elim_l_;
  [[no_unique_address]] ElimEnd elim_r_;
};

}  // namespace dcd::deque
