// The array-based bounded deque of §3 (Figures 2, 3, 30, 31).
//
// State: a circular array S[0..N-1] of value words and two index words L
// and R. L is the next slot a pushLeft would fill, R the next slot a
// pushRight would fill; initially L == 0, R == 1 (so (L+1) mod N == R).
// Empty and full states both satisfy (L+1) mod N == R — the paper's key
// observation is that they are distinguished *by cell contents*, confirmed
// atomically with a DCAS over {index word, cell}:
//
//   * popRight reads R then S[R-1]. A null cell suggests empty; the claim
//     is confirmed by DCAS'ing both words against the values read (writing
//     them back unchanged). A non-null cell is popped by DCAS'ing
//     {R := R-1, S[R-1] := null}.
//   * pushRight mirrors this with non-null ⇒ full and
//     {R := R+1, S[R] := v}.
//
// Capacity is exactly N; both ends operate concurrently without
// interference except when they compete for the last element / last free
// slot, in which case one side's DCAS fails (Figure 6).
//
// The two optional fragments (§3's line 7 and lines 17–18) are compile-time
// options; lines 17–18 require the stronger DCAS form (atomic view on
// failure), exactly as the paper notes.
//
// Linearizability and lock-freedom arguments are the paper's Theorem 3.1;
// this repo re-checks them with the linearizability checker (tests) and the
// exhaustive interleaving model in dcd::model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

#include "dcd/dcas/concepts.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"

namespace dcd::deque {

template <typename T, dcas::DcasPolicy Dcas = dcas::DefaultDcas,
          ArrayOptions Opt = ArrayOptions{}>
class ArrayDeque {
  static_assert(dcas::DcasPolicy<Dcas>,
                "ArrayDeque requires a policy providing both Figure 1 DCAS "
                "forms (see dcd/dcas/concepts.hpp)");
  static_assert(std::is_trivially_copyable_v<T>,
                "values are stored as raw 61-bit word payloads");

 public:
  using value_type = T;
  using Codec = ValueCodec<T>;
  static constexpr ArrayOptions kOptions = Opt;

  // make_deque(length_S): capacity() == length_S >= 1.
  explicit ArrayDeque(std::size_t capacity) : n_(capacity) {
    DCD_ASSERT(capacity >= 1);
    s_ = std::make_unique<dcas::Word[]>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      Dcas::store_init(s_[i], dcas::kNull);
    }
    Dcas::store_init(*l_, idx(0));
    Dcas::store_init(*r_, idx(1 % n_));
  }

  ArrayDeque(const ArrayDeque&) = delete;
  ArrayDeque& operator=(const ArrayDeque&) = delete;

  std::size_t capacity() const noexcept { return n_; }

  // Figure 3.
  PushResult push_right(T v) {
    const std::uint64_t vw = Codec::encode(v);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(*r_);             // line 3
      const std::size_t r = index_of(old_r);
      const std::uint64_t new_r = idx(mod_inc(r));             // line 4
      const std::uint64_t old_s = Dcas::load(s_[r]);           // line 5
      if (!dcas::is_null(old_s)) {                             // line 6
        if (!Opt.recheck_index || Dcas::load(*r_) == old_r) {  // line 7
          // DCD_SYNC(empty.confirm)
          // DCD_LP(Fig3:8-10, empty.confirm, inv=array.index_range+array.segment_full+array.ambiguous_boundary, "identity DCAS confirms s[R] non-null while R unchanged: deque observed full")
          if (Dcas::dcas(*r_, s_[r], old_r, old_s, old_r, old_s)) {
            return PushResult::kFull;                          // lines 8-10
          }
        }
      } else {
        if constexpr (Opt.failure_view) {
          std::uint64_t cur_r = old_r, cur_s = old_s;          // line 13
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig3:13-16, dcas.any, inv=array.view_malformed+array.index_range, "R advances and s[R] gains v in one step; failure view decides full vs retry")
          if (Dcas::dcas_view(*r_, s_[r], cur_r, cur_s, new_r, vw)) {
            return PushResult::kOkay;                          // lines 14-16
          }
          if (cur_r == old_r) {                                // lines 17-18
            return PushResult::kFull;
          }
        } else {
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig3:11-12, dcas.any, inv=array.index_range+array.segment_null, "R advances and the null cell s[R] gains v in one step")
          if (Dcas::dcas(*r_, s_[r], old_r, old_s, new_r, vw)) {
            return PushResult::kOkay;
          }
        }
      }
      backoff.pause();
    }
  }

  // Figure 31 (left-hand mirror of Figure 3).
  PushResult push_left(T v) {
    const std::uint64_t vw = Codec::encode(v);
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(*l_);
      const std::size_t l = index_of(old_l);
      const std::uint64_t new_l = idx(mod_dec(l));
      const std::uint64_t old_s = Dcas::load(s_[l]);
      if (!dcas::is_null(old_s)) {
        if (!Opt.recheck_index || Dcas::load(*l_) == old_l) {
          // DCD_SYNC(empty.confirm)
          // DCD_LP(Fig31:8-10, empty.confirm, inv=array.index_range+array.segment_full+array.ambiguous_boundary, "identity DCAS confirms s[L] non-null while L unchanged: deque observed full")
          if (Dcas::dcas(*l_, s_[l], old_l, old_s, old_l, old_s)) {
            return PushResult::kFull;
          }
        }
      } else {
        if constexpr (Opt.failure_view) {
          std::uint64_t cur_l = old_l, cur_s = old_s;
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig31:13-16, dcas.any, inv=array.view_malformed+array.index_range, "L retreats and s[L] gains v in one step; failure view decides full vs retry")
          if (Dcas::dcas_view(*l_, s_[l], cur_l, cur_s, new_l, vw)) {
            return PushResult::kOkay;
          }
          if (cur_l == old_l) {
            return PushResult::kFull;
          }
        } else {
          // DCD_SYNC(dcas.any)
          // DCD_LP(Fig31:11-12, dcas.any, inv=array.index_range+array.segment_null, "L retreats and the null cell s[L] gains v in one step")
          if (Dcas::dcas(*l_, s_[l], old_l, old_s, new_l, vw)) {
            return PushResult::kOkay;
          }
        }
      }
      backoff.pause();
    }
  }

  // Figure 2.
  std::optional<T> pop_right() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_r = Dcas::load(*r_);             // line 3
      const std::size_t new_r_i = mod_dec(index_of(old_r));    // line 4
      const std::uint64_t new_r = idx(new_r_i);
      const std::uint64_t old_s = Dcas::load(s_[new_r_i]);     // line 5
      if (dcas::is_null(old_s)) {                              // line 6
        if (!Opt.recheck_index || Dcas::load(*r_) == old_r) {  // line 7
          // DCD_SYNC(empty.confirm)
          // DCD_LP(Fig2:8-10, empty.confirm, inv=array.index_range+array.segment_null+array.ambiguous_boundary, "identity DCAS confirms s[R-1] null while R unchanged: deque observed empty")
          if (Dcas::dcas(*r_, s_[new_r_i], old_r, old_s, old_r, old_s)) {
            return std::nullopt;                               // lines 8-10
          }
        }
      } else {
        if constexpr (Opt.failure_view) {
          std::uint64_t cur_r = old_r, cur_s = old_s;          // line 13
          // DCD_SYNC(pop.commit)
          // DCD_LP(Fig2:13-16, pop.commit, inv=array.view_malformed+array.index_range+array.segment_null, "R retreats and s[R-1] is nulled in one step; failure view detects a stolen last item")
          if (Dcas::dcas_view(*r_, s_[new_r_i], cur_r, cur_s, new_r,
                              dcas::kNull)) {
            return Codec::decode(cur_s);                       // lines 14-16
          }
          if (cur_r == old_r && dcas::is_null(cur_s)) {        // lines 17-18
            return std::nullopt;  // a competing popLeft stole the last item
          }
        } else {
          // DCD_SYNC(pop.commit)
          // DCD_LP(Fig2:11-12, pop.commit, inv=array.index_range+array.segment_null, "R retreats and s[R-1] is nulled in one step, claiming the value")
          if (Dcas::dcas(*r_, s_[new_r_i], old_r, old_s, new_r,
                         dcas::kNull)) {
            return Codec::decode(old_s);
          }
        }
      }
      backoff.pause();
    }
  }

  // Figure 30 (left-hand mirror of Figure 2).
  std::optional<T> pop_left() {
    util::AdaptiveBackoff::Session backoff;
    for (;;) {
      const std::uint64_t old_l = Dcas::load(*l_);
      const std::size_t new_l_i = mod_inc(index_of(old_l));
      const std::uint64_t new_l = idx(new_l_i);
      const std::uint64_t old_s = Dcas::load(s_[new_l_i]);
      if (dcas::is_null(old_s)) {
        if (!Opt.recheck_index || Dcas::load(*l_) == old_l) {
          // DCD_SYNC(empty.confirm)
          // DCD_LP(Fig30:8-10, empty.confirm, inv=array.index_range+array.segment_null+array.ambiguous_boundary, "identity DCAS confirms s[L+1] null while L unchanged: deque observed empty")
          if (Dcas::dcas(*l_, s_[new_l_i], old_l, old_s, old_l, old_s)) {
            return std::nullopt;
          }
        }
      } else {
        if constexpr (Opt.failure_view) {
          std::uint64_t cur_l = old_l, cur_s = old_s;
          // DCD_SYNC(pop.commit)
          // DCD_LP(Fig30:13-16, pop.commit, inv=array.view_malformed+array.index_range+array.segment_null, "L advances and s[L+1] is nulled in one step; failure view detects a stolen last item")
          if (Dcas::dcas_view(*l_, s_[new_l_i], cur_l, cur_s, new_l,
                              dcas::kNull)) {
            return Codec::decode(cur_s);
          }
          if (cur_l == old_l && dcas::is_null(cur_s)) {
            return std::nullopt;
          }
        } else {
          // DCD_SYNC(pop.commit)
          // DCD_LP(Fig30:11-12, pop.commit, inv=array.index_range+array.segment_null, "L advances and s[L+1] is nulled in one step, claiming the value")
          if (Dcas::dcas(*l_, s_[new_l_i], old_l, old_s, new_l,
                         dcas::kNull)) {
            return Codec::decode(old_s);
          }
        }
      }
      backoff.pause();
    }
  }

  // --- quiescent inspection (tests / examples only; not linearizable) -----

  // Number of non-null cells; exact only while no operation is in flight.
  std::size_t size_unsynchronized() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (!dcas::is_null(Dcas::load(s_[i]))) ++count;
    }
    return count;
  }

  // Figure 18's RepInv, evaluated on a quiescent deque: either r == l+1
  // (mod n) with the array all-null (empty) or all-non-null (full), or the
  // non-null cells form exactly the cyclic segment (l, r) exclusive.
  bool check_rep_inv_unsynchronized() const {
    const std::size_t l = left_index_unsynchronized();
    const std::size_t r = right_index_unsynchronized();
    if (l >= n_ || r >= n_) return false;
    if (r == (l + 1) % n_) {
      const std::size_t nn = n_ - size_unsynchronized();
      return nn == 0 || nn == n_;
    }
    for (std::size_t i = (l + 1) % n_; i != r; i = (i + 1) % n_) {
      if (cell_null_unsynchronized(i)) return false;
    }
    for (std::size_t i = r;; i = (i + 1) % n_) {
      if (!cell_null_unsynchronized(i)) return false;
      if (i == l) break;
    }
    return true;
  }

  std::size_t left_index_unsynchronized() const {
    return index_of(Dcas::load(*l_));
  }
  std::size_t right_index_unsynchronized() const {
    return index_of(Dcas::load(*r_));
  }
  bool cell_null_unsynchronized(std::size_t i) const {
    return dcas::is_null(Dcas::load(s_[i]));
  }

  // Structural snapshot for verify::RepAuditor. Same quiescence caveat as
  // the checks above; the model checker additionally calls this at explored
  // states, where it is exact because every model thread is parked *before*
  // its next access (no step is half-done).
  ArrayRepView rep_view_unsynchronized() const {
    ArrayRepView view;
    view.n = n_;
    view.l = left_index_unsynchronized();
    view.r = right_index_unsynchronized();
    view.cell_null.resize(n_);
    view.cells.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      view.cells[i] = Dcas::load(s_[i]);
      view.cell_null[i] = dcas::is_null(view.cells[i]);
    }
    return view;
  }

 private:
  static std::uint64_t idx(std::size_t i) noexcept {
    return dcas::encode_payload(static_cast<std::uint64_t>(i));
  }
  static std::size_t index_of(std::uint64_t word) noexcept {
    return static_cast<std::size_t>(dcas::decode_payload(word));
  }
  std::size_t mod_inc(std::size_t i) const noexcept {
    return (i + 1) % n_;
  }
  std::size_t mod_dec(std::size_t i) const noexcept {
    return (i + n_ - 1) % n_;
  }

  std::size_t n_;
  // L and R are hot independent words; keep them on separate lines so the
  // paper's "non-interfering ends" property survives the memory system.
  util::CacheAligned<dcas::Word> l_;
  util::CacheAligned<dcas::Word> r_;
  std::unique_ptr<dcas::Word[]> s_;
};

}  // namespace dcd::deque
