// Mapping between user value types and the 61-bit word payloads the
// algorithms store.
//
// The paper's `val` set excludes the distinguished null/sentL/sentR values;
// the codec enforces the equivalent restriction mechanically: encoded
// payloads live in the word's payload bits, which can never collide with
// the specials (those have the special flag set) or with descriptor marks.
#pragma once

#include <cstdint>
#include <type_traits>

#include "dcd/dcas/word.hpp"
#include "dcd/util/assert.hpp"

namespace dcd::deque {

// Tag-bit headroom the codecs below assume (the full word-layout audit
// lives in dcd/dcas/concepts.hpp): three reserved low bits, so the pointer
// codec can fold an 8-aligned pointer's zero bits into the payload shift,
// and the zig-zag codec has kMaxPayload == 2^61 - 1 of signed headroom.
static_assert(dcas::kPayloadShift == 3,
              "pointer codec folds 8-alignment into the payload shift");
static_assert(dcas::kMaxPayload == (1ull << 61) - 1,
              "codecs size their range checks to 61 payload bits");

template <typename T>
struct ValueCodec;  // specialise for storable types

// Unsigned integers up to 61 bits.
template <typename T>
  requires(std::is_unsigned_v<T> && sizeof(T) <= 8)
struct ValueCodec<T> {
  static std::uint64_t encode(T v) {
    const auto payload = static_cast<std::uint64_t>(v);
    DCD_ASSERT(payload <= dcas::kMaxPayload);
    return dcas::encode_payload(payload);
  }
  static T decode(std::uint64_t word) {
    return static_cast<T>(dcas::decode_payload(word));
  }
};

// Signed integers: zig-zag through the unsigned payload so negatives are
// storable; magnitude limited to 60 bits.
template <typename T>
  requires(std::is_signed_v<T> && std::is_integral_v<T> && sizeof(T) <= 8)
struct ValueCodec<T> {
  static std::uint64_t encode(T v) {
    const auto s = static_cast<std::int64_t>(v);
    const auto zz =
        (static_cast<std::uint64_t>(s) << 1) ^ static_cast<std::uint64_t>(s >> 63);
    DCD_ASSERT(zz <= dcas::kMaxPayload);
    return dcas::encode_payload(zz);
  }
  static T decode(std::uint64_t word) {
    const std::uint64_t zz = dcas::decode_payload(word);
    return static_cast<T>(static_cast<std::int64_t>(zz >> 1) ^
                          -static_cast<std::int64_t>(zz & 1));
  }
};

// Pointers to 8-aligned objects (the usual way to store arbitrary payloads:
// the deque holds pointers, the caller owns the pointees).
template <typename U>
struct ValueCodec<U*> {
  static std::uint64_t encode(U* p) {
    const auto bits = reinterpret_cast<std::uint64_t>(p);
    DCD_ASSERT((bits & 0x7) == 0 && "stored pointers must be 8-aligned");
    return dcas::encode_payload(bits >> 3);
  }
  static U* decode(std::uint64_t word) {
    return reinterpret_cast<U*>(dcas::decode_payload(word) << 3);
  }
};

}  // namespace dcd::deque
