#include "dcd/verify/linearizability.hpp"

#include <algorithm>
#include <unordered_set>

#include "dcd/util/assert.hpp"

namespace dcd::verify {

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kPushRight: return "pushRight";
    case OpType::kPushLeft: return "pushLeft";
    case OpType::kPopRight: return "popRight";
    case OpType::kPopLeft: return "popLeft";
  }
  return "?";
}

std::string Operation::describe() const {
  std::string s = op_name(type);
  if (type == OpType::kPushRight || type == OpType::kPushLeft) {
    s += "(" + std::to_string(arg) + ") -> ";
    s += push_ok ? "okay" : "full";
  } else {
    s += "() -> ";
    s += pop_has_value ? std::to_string(pop_value) : "empty";
  }
  s += " [" + std::to_string(invoke_seq) + "," +
       std::to_string(response_seq) + "]";
  return s;
}

std::string History::describe() const {
  std::string s;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    s += "  #" + std::to_string(i) + " " + ops[i].describe() + "\n";
  }
  return s;
}

bool apply_if_consistent(SpecDeque& spec, const Operation& op) {
  switch (op.type) {
    case OpType::kPushRight:
    case OpType::kPushLeft: {
      const bool would_be_full = spec.full();
      if (op.push_ok == would_be_full) return false;
      if (op.push_ok) {
        (op.type == OpType::kPushRight) ? spec.push_right(op.arg)
                                        : spec.push_left(op.arg);
      }
      return true;
    }
    case OpType::kPopRight:
    case OpType::kPopLeft: {
      if (!op.pop_has_value) {
        return spec.empty();  // "empty" only legal on an empty deque
      }
      if (spec.empty()) return false;
      const std::uint64_t expect = (op.type == OpType::kPopRight)
                                       ? spec.items().back()
                                       : spec.items().front();
      if (expect != op.pop_value) return false;
      (op.type == OpType::kPopRight) ? spec.pop_right() : spec.pop_left();
      return true;
    }
  }
  return false;
}

namespace {

// DFS state key: linearized-op bitmask bytes + spec fingerprint. Exact
// (full key stored), so memo hits can never mask a real counterexample.
std::string make_key(const std::vector<std::uint64_t>& mask,
                     const SpecDeque& spec) {
  std::string key;
  key.reserve(mask.size() * 8 + 16);
  for (const std::uint64_t w : mask) {
    for (int b = 0; b < 8; ++b) {
      key.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
    }
  }
  key.push_back('|');
  key += spec.fingerprint();
  return key;
}

class Checker {
 public:
  Checker(const History& h, std::size_t capacity, std::uint64_t limit)
      : h_(h), limit_(limit), spec_(capacity) {
    mask_.resize((h.ops.size() + 63) / 64, 0);
  }

  CheckResult run() {
    CheckResult result;
    if (!dfs()) {
      result.verdict = hit_limit_ ? Verdict::kLimitExceeded
                                  : Verdict::kNotLinearizable;
      if (result.verdict == Verdict::kNotLinearizable) {
        result.message = "no legal linearization exists; history:\n" +
                         h_.describe();
      } else {
        // path_ holds the prefix under extension when the budget ran out.
        // Surface it as the clearly-partial field and leave `witness`
        // empty, so no caller mistakes an abandoned prefix for a witness.
        result.partial_witness = path_;
        result.message =
            "state limit exceeded (partial linearization prefix of " +
            std::to_string(path_.size()) + "/" +
            std::to_string(h_.ops.size()) + " ops in partial_witness)";
      }
    } else {
      result.verdict = Verdict::kLinearizable;
      result.witness = path_;
    }
    result.states_explored = states_;
    return result;
  }

 private:
  bool linearized(std::size_t i) const {
    return (mask_[i / 64] >> (i % 64)) & 1;
  }
  void set_linearized(std::size_t i, bool on) {
    if (on) {
      mask_[i / 64] |= (1ull << (i % 64));
    } else {
      mask_[i / 64] &= ~(1ull << (i % 64));
    }
  }

  bool dfs() {
    if (path_.size() == h_.ops.size()) return true;
    if (++states_ > limit_) {
      hit_limit_ = true;
      return false;
    }
    {
      const std::string key = make_key(mask_, spec_);
      if (!memo_.insert(key).second) return false;
    }

    // Find the two smallest response tickets among unlinearized ops so the
    // eligibility test ("no unlinearized op precedes me") is O(1) per op.
    const std::uint64_t kInf = ~std::uint64_t{0};
    std::uint64_t min1 = kInf, min2 = kInf;
    std::size_t min1_idx = h_.ops.size();
    for (std::size_t i = 0; i < h_.ops.size(); ++i) {
      if (linearized(i)) continue;
      const std::uint64_t r = h_.ops[i].response_seq;
      if (r < min1) {
        min2 = min1;
        min1 = r;
        min1_idx = i;
      } else if (r < min2) {
        min2 = r;
      }
    }

    for (std::size_t i = 0; i < h_.ops.size(); ++i) {
      if (linearized(i)) continue;
      const std::uint64_t min_other = (i == min1_idx) ? min2 : min1;
      if (h_.ops[i].invoke_seq > min_other) continue;  // predecessor pending
      SpecDeque saved = spec_;
      if (!apply_if_consistent(spec_, h_.ops[i])) {
        spec_ = std::move(saved);
        continue;
      }
      set_linearized(i, true);
      path_.push_back(i);
      if (dfs()) return true;
      if (hit_limit_) return false;
      path_.pop_back();
      set_linearized(i, false);
      spec_ = std::move(saved);
    }
    return false;
  }

  const History& h_;
  const std::uint64_t limit_;
  SpecDeque spec_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::size_t> path_;
  std::unordered_set<std::string> memo_;
  std::uint64_t states_ = 0;
  bool hit_limit_ = false;
};

}  // namespace

CheckResult check_linearizable(const History& history, std::size_t capacity,
                               std::uint64_t state_limit) {
  Checker checker(history, capacity, state_limit);
  return checker.run();
}

}  // namespace dcd::verify
