#include "dcd/verify/spec_deque.hpp"

namespace dcd::verify {

deque::PushResult SpecDeque::push_right(std::uint64_t v) {
  if (full()) return deque::PushResult::kFull;
  items_.push_back(v);
  return deque::PushResult::kOkay;
}

deque::PushResult SpecDeque::push_left(std::uint64_t v) {
  if (full()) return deque::PushResult::kFull;
  items_.push_front(v);
  return deque::PushResult::kOkay;
}

std::optional<std::uint64_t> SpecDeque::pop_right() {
  if (items_.empty()) return std::nullopt;
  const std::uint64_t v = items_.back();
  items_.pop_back();
  return v;
}

std::optional<std::uint64_t> SpecDeque::pop_left() {
  if (items_.empty()) return std::nullopt;
  const std::uint64_t v = items_.front();
  items_.pop_front();
  return v;
}

std::string SpecDeque::fingerprint() const {
  std::string s;
  s.reserve(items_.size() * 8);
  for (const std::uint64_t v : items_) {
    for (int b = 0; b < 8; ++b) {
      s.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  }
  return s;
}

}  // namespace dcd::verify
