#include "dcd/verify/rep_auditor.hpp"

#include <cstddef>
#include <string>

#include "dcd/dcas/word.hpp"

namespace dcd::verify {

namespace {

// Accumulates failed clause names; the audit runs every clause rather than
// stopping at the first failure so a counterexample names the full damage.
struct Clauses {
  AuditResult result;

  void fail(const std::string& clause) {
    result.ok = false;
    if (!result.detail.empty()) result.detail += ' ';
    result.detail += clause;
  }
};

}  // namespace

AuditResult RepAuditor::audit_array(const deque::ArrayRepView& view) {
  Clauses c;
  if (view.n == 0 || view.cell_null.size() != view.n) {
    c.fail("array.view_malformed");
    return c.result;
  }
  if (view.l >= view.n || view.r >= view.n) {
    c.fail("array.index_range[l=" + std::to_string(view.l) +
           ",r=" + std::to_string(view.r) + "]");
    return c.result;  // the segment clauses are meaningless off-range
  }
  std::size_t nulls = 0;
  for (std::size_t i = 0; i < view.n; ++i) {
    if (view.cell_null[i]) ++nulls;
  }
  if (view.r == (view.l + 1) % view.n) {
    // Figure 18's ambiguous boundary: empty and full share the index
    // relation and are told apart purely by cell contents.
    if (nulls != 0 && nulls != view.n) {
      c.fail("array.ambiguous_boundary[nulls=" + std::to_string(nulls) +
             "/" + std::to_string(view.n) + "]");
    }
    return c.result;
  }
  // Occupied segment: cyclically (l, r) exclusive must be non-null ...
  for (std::size_t i = (view.l + 1) % view.n; i != view.r;
       i = (i + 1) % view.n) {
    if (view.cell_null[i]) c.fail("array.segment_full[" + std::to_string(i) + "]");
  }
  // ... and the complement [r, l] inclusive must be null.
  for (std::size_t i = view.r;; i = (i + 1) % view.n) {
    if (!view.cell_null[i]) c.fail("array.segment_null[" + std::to_string(i) + "]");
    if (i == view.l) break;
  }
  return c.result;
}

AuditResult RepAuditor::audit_list(const deque::ListRepView& view) {
  Clauses c;
  if (!view.sentinel_values_ok) c.fail("list.sentinel_values");
  if (!view.reachable) {
    c.fail("list.reachable");
    return c.result;  // values/backlinks were cut short; nothing else is sound
  }
  if (!view.backlinks_ok) c.fail("list.backlinks");
  if (view.interior_deleted) c.fail("list.interior_deleted");
  const std::size_t len = view.values.size();
  // A set bit must point at an existing boundary node whose value it
  // nulled (the logical-delete DCAS writes both words together).
  if (view.left_deleted &&
      (len == 0 || !dcas::is_null(view.values.front()))) {
    c.fail("list.deleted_target_null[left]");
  }
  if (view.right_deleted &&
      (len == 0 || !dcas::is_null(view.values.back()))) {
    c.fail("list.deleted_target_null[right]");
  }
  // Both bits set is the Figure 16 state: two distinct logically-deleted
  // boundary nodes. One node cannot be deleted from both sides.
  if (view.left_deleted && view.right_deleted && len < 2) {
    c.fail("list.two_deleted_minimum");
  }
  for (std::size_t i = 0; i < len; ++i) {
    // Null values appear only where a bit licenses them; anything else is
    // a lost element. Sentinel markers inside the chain mean a splice
    // published a sentinel word as a value.
    const bool licensed = (i == 0 && view.left_deleted) ||
                          (i + 1 == len && view.right_deleted);
    if (dcas::is_null(view.values[i]) && !licensed) {
      c.fail("list.null_licensing[" + std::to_string(i) + "]");
    }
    if (view.values[i] == dcas::kSentL || view.values[i] == dcas::kSentR) {
      c.fail("list.value_payload[" + std::to_string(i) + "]");
    }
  }
  return c.result;
}

}  // namespace dcd::verify
