// §5 representation-invariant auditor.
//
// The paper proves Theorems 3.1/4.1 by maintaining a representation
// invariant (Figure 18 for the array deque, Figures 24/25 for the list
// deque) across every atomic step. The deques already evaluate those
// invariants on themselves (check_rep_inv_unsynchronized); this auditor
// re-states them clause by clause over the structural snapshots in
// deque/types.hpp, for two consumers the in-header checks cannot serve:
//
//   * dcd::mc::Explorer audits every explored state and needs a *named*
//     clause in a counterexample ("list.null_licensing failed at step 7"
//     beats "rep inv false");
//   * the auditor's own tests, which feed it synthetic corrupted views —
//     states a correct deque can never be steered into.
#pragma once

#include <string>

#include "dcd/deque/types.hpp"

namespace dcd::verify {

struct AuditResult {
  bool ok = true;
  // Space-separated failed clause names plus a short diagnostic, e.g.
  // "array.segment_null[3]". Empty when ok.
  std::string detail;
};

class RepAuditor {
 public:
  // Figure 18: indices in range; (l+1) mod n == r is the ambiguous
  // boundary (all-null = empty, all-non-null = full); otherwise the
  // non-null cells are exactly the cyclic segment (l, r) exclusive.
  static AuditResult audit_array(const deque::ArrayRepView& view);

  // Figures 24/25: sentinel value words intact; the chain closes and is
  // doubly linked; deleted bits only on the sentinels' inward words; a
  // null value exactly where a set bit licenses it (boundary node of the
  // deleted side); both bits set needs >= 2 nodes — the Figure 16 state is
  // the maximal legal one: exactly two logically-deleted boundary nodes.
  static AuditResult audit_list(const deque::ListRepView& view);
};

}  // namespace dcd::verify
