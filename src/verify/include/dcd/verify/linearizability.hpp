// Wing–Gong / WGL linearizability checker with state memoisation.
//
// The repo's substitute for the paper's Simplify proofs of Theorems 3.1 and
// 4.1: instead of proving every interleaving correct, recorded concurrent
// histories are checked for the existence of a legal linearization — a
// total order extending the real-time order under which the sequential
// SpecDeque produces exactly the observed return values.
//
// Search: depth-first over "next operation to linearize" choices. An
// operation is eligible when every operation that precedes it in real time
// has already been linearized. Visited (linearized-set, spec-state) pairs
// are memoised exactly (no hashing-only shortcuts, so a "no" answer is a
// real counterexample, not a collision artefact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcd/verify/history.hpp"
#include "dcd/verify/spec_deque.hpp"

namespace dcd::verify {

enum class Verdict {
  kLinearizable,
  kNotLinearizable,
  kLimitExceeded,  // search budget exhausted before an answer
};

struct CheckResult {
  Verdict verdict = Verdict::kLimitExceeded;
  // On kLinearizable (only): indices into history.ops in linearization
  // order. Empty on every other verdict — in particular a kLimitExceeded
  // result never leaks the DFS's abandoned prefix here, so callers may
  // treat a non-empty witness as a complete, replayable linearization.
  std::vector<std::size_t> witness;
  // On kLimitExceeded: the linearization prefix the DFS was extending when
  // the budget ran out. Diagnostic only — it shows *where* the search got
  // stuck, but is neither complete nor known to extend to a witness.
  std::vector<std::size_t> partial_witness;
  std::uint64_t states_explored = 0;
  std::string message;

  bool ok() const { return verdict == Verdict::kLinearizable; }
};

// `capacity` is the deque bound the history was produced against
// (SpecDeque::kUnbounded for the list deque). `state_limit` bounds the
// number of DFS states explored.
CheckResult check_linearizable(const History& history, std::size_t capacity,
                               std::uint64_t state_limit = 50'000'000);

// Applies `op` to `spec` if the recorded outcome is consistent with the
// spec's current state; returns false (spec untouched) otherwise. Exposed
// for the model checker, which replays interleavings through the same
// oracle.
bool apply_if_consistent(SpecDeque& spec, const Operation& op);

}  // namespace dcd::verify
