// Workload driver: runs randomized concurrent op mixes against any deque
// implementation, optionally recording a History for the linearizability
// checker.
//
// Values pushed are globally unique ((thread id << 40) | sequence), which
// both catches lost/duplicated elements outright and keeps the checker's
// search tractable.
#pragma once

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "dcd/deque/types.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/verify/history.hpp"

namespace dcd::verify {

struct WorkloadConfig {
  std::size_t threads = 2;
  std::size_t ops_per_thread = 8;
  std::uint64_t seed = 1;
  // Relative weights of the four op types.
  unsigned push_right = 1;
  unsigned push_left = 1;
  unsigned pop_right = 1;
  unsigned pop_left = 1;
};

// Runs the workload; returns the merged history (ops in per-thread order;
// the checker only cares about tickets).
template <typename D>
History run_recorded(D& deque, const WorkloadConfig& cfg) {
  std::vector<std::vector<Operation>> per_thread(cfg.threads);
  util::SpinBarrier barrier(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (std::size_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(cfg.seed * 0x9e3779b9ull + t + 1);
      auto& log = per_thread[t];
      log.reserve(cfg.ops_per_thread);
      const unsigned total_weight =
          cfg.push_right + cfg.push_left + cfg.pop_right + cfg.pop_left;
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        Operation op;
        unsigned pick = static_cast<unsigned>(rng.below(total_weight));
        if (pick < cfg.push_right) {
          op.type = OpType::kPushRight;
        } else if ((pick -= cfg.push_right) < cfg.push_left) {
          op.type = OpType::kPushLeft;
        } else if ((pick -= cfg.push_left) < cfg.pop_right) {
          op.type = OpType::kPopRight;
        } else {
          op.type = OpType::kPopLeft;
        }
        op.arg = (static_cast<std::uint64_t>(t) << 40) | i;
        op.invoke_seq = HistoryClock::tick();
        switch (op.type) {
          case OpType::kPushRight:
            op.push_ok =
                deque.push_right(op.arg) == deque::PushResult::kOkay;
            break;
          case OpType::kPushLeft:
            op.push_ok = deque.push_left(op.arg) == deque::PushResult::kOkay;
            break;
          case OpType::kPopRight: {
            const std::optional<std::uint64_t> v = deque.pop_right();
            op.pop_has_value = v.has_value();
            op.pop_value = v.value_or(0);
            break;
          }
          case OpType::kPopLeft: {
            const std::optional<std::uint64_t> v = deque.pop_left();
            op.pop_has_value = v.has_value();
            op.pop_value = v.value_or(0);
            break;
          }
        }
        op.response_seq = HistoryClock::tick();
        log.push_back(op);
      }
    });
  }
  for (auto& w : workers) w.join();

  History history;
  for (auto& log : per_thread) {
    history.ops.insert(history.ops.end(), log.begin(), log.end());
  }
  return history;
}

// Same workload without recording (stress / leak tests). Returns the net
// number of successful pushes minus successful pops (the expected residual
// population).
template <typename D>
std::int64_t run_unrecorded(D& deque, const WorkloadConfig& cfg) {
  std::vector<std::int64_t> net(cfg.threads, 0);
  util::SpinBarrier barrier(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (std::size_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(cfg.seed * 0x9e3779b9ull + t + 1);
      const unsigned total_weight =
          cfg.push_right + cfg.push_left + cfg.pop_right + cfg.pop_left;
      std::int64_t delta = 0;
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(t) << 40) | i;
        unsigned pick = static_cast<unsigned>(rng.below(total_weight));
        if (pick < cfg.push_right) {
          if (deque.push_right(value) == deque::PushResult::kOkay) ++delta;
        } else if ((pick -= cfg.push_right) < cfg.push_left) {
          if (deque.push_left(value) == deque::PushResult::kOkay) ++delta;
        } else if ((pick -= cfg.push_left) < cfg.pop_right) {
          if (deque.pop_right().has_value()) --delta;
        } else {
          if (deque.pop_left().has_value()) --delta;
        }
      }
      net[t] = delta;
    });
  }
  for (auto& w : workers) w.join();

  std::int64_t total = 0;
  for (const std::int64_t d : net) total += d;
  return total;
}

}  // namespace dcd::verify
