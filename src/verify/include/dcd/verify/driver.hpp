// Workload driver: runs randomized concurrent op mixes against any deque
// implementation, optionally recording a History for the linearizability
// checker.
//
// Values pushed are globally unique ((thread id << 40) | sequence), which
// both catches lost/duplicated elements outright and keeps the checker's
// search tractable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dcd/dcas/chaos.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/verify/history.hpp"
#include "dcd/verify/linearizability.hpp"

namespace dcd::verify {

struct WorkloadConfig {
  std::size_t threads = 2;
  std::size_t ops_per_thread = 8;
  std::uint64_t seed = 1;
  // Relative weights of the four op types.
  unsigned push_right = 1;
  unsigned push_left = 1;
  unsigned pop_right = 1;
  unsigned pop_left = 1;
};

// Runs the workload; returns the merged history (ops in per-thread order;
// the checker only cares about tickets).
template <typename D>
History run_recorded(D& deque, const WorkloadConfig& cfg) {
  std::vector<std::vector<Operation>> per_thread(cfg.threads);
  util::SpinBarrier barrier(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (std::size_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(cfg.seed * 0x9e3779b9ull + t + 1);
      auto& log = per_thread[t];
      log.reserve(cfg.ops_per_thread);
      const unsigned total_weight =
          cfg.push_right + cfg.push_left + cfg.pop_right + cfg.pop_left;
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        Operation op;
        unsigned pick = static_cast<unsigned>(rng.below(total_weight));
        if (pick < cfg.push_right) {
          op.type = OpType::kPushRight;
        } else if ((pick -= cfg.push_right) < cfg.push_left) {
          op.type = OpType::kPushLeft;
        } else if ((pick -= cfg.push_left) < cfg.pop_right) {
          op.type = OpType::kPopRight;
        } else {
          op.type = OpType::kPopLeft;
        }
        op.arg = (static_cast<std::uint64_t>(t) << 40) | i;
        op.invoke_seq = HistoryClock::tick();
        switch (op.type) {
          case OpType::kPushRight:
            op.push_ok =
                deque.push_right(op.arg) == deque::PushResult::kOkay;
            break;
          case OpType::kPushLeft:
            op.push_ok = deque.push_left(op.arg) == deque::PushResult::kOkay;
            break;
          case OpType::kPopRight: {
            const std::optional<std::uint64_t> v = deque.pop_right();
            op.pop_has_value = v.has_value();
            op.pop_value = v.value_or(0);
            break;
          }
          case OpType::kPopLeft: {
            const std::optional<std::uint64_t> v = deque.pop_left();
            op.pop_has_value = v.has_value();
            op.pop_value = v.value_or(0);
            break;
          }
        }
        op.response_seq = HistoryClock::tick();
        log.push_back(op);
      }
    });
  }
  for (auto& w : workers) w.join();

  History history;
  for (auto& log : per_thread) {
    history.ops.insert(history.ops.end(), log.begin(), log.end());
  }
  return history;
}

// Runs a single operation against the deque, recording tickets. Used by the
// chaos smoke for its deterministic frame ops (seed pushes, drains).
template <typename D>
Operation recorded_op(D& deque, OpType type, std::uint64_t arg = 0) {
  Operation op;
  op.type = type;
  op.arg = arg;
  op.invoke_seq = HistoryClock::tick();
  switch (type) {
    case OpType::kPushRight:
      op.push_ok = deque.push_right(arg) == deque::PushResult::kOkay;
      break;
    case OpType::kPushLeft:
      op.push_ok = deque.push_left(arg) == deque::PushResult::kOkay;
      break;
    case OpType::kPopRight: {
      const std::optional<std::uint64_t> v = deque.pop_right();
      op.pop_has_value = v.has_value();
      op.pop_value = v.value_or(0);
      break;
    }
    case OpType::kPopLeft: {
      const std::optional<std::uint64_t> v = deque.pop_left();
      op.pop_has_value = v.has_value();
      op.pop_value = v.value_or(0);
      break;
    }
  }
  op.response_seq = HistoryClock::tick();
  return op;
}

// --- Suspended-popper robustness smoke (§5.2's adversarial schedule) -------
//
// One worker is parked by the chaos layer *inside* a pop — for the list
// deque between its logical and physical delete, which is exactly the
// suspended popper the paper's physical-delete protocol must tolerate. With
// the popper parked the smoke asserts the remaining workers complete a
// bounded op count (the lock-freedom claim made observable), that every
// window of recorded concurrent history linearizes, and that after release
// the popper's pop returns the value it claimed and the surrounding frame
// history linearizes too.
struct ChaosSmokeConfig {
  // Sync point the popper must park at ("pop.logical_delete" for the list
  // deque, "pop.commit" for the array deque).
  const char* park_point = dcas::sync_point::kLogicalDelete;
  // The popper's operation; it must claim `expected_popper_value`.
  OpType popper_op = OpType::kPopRight;
  std::size_t worker_threads = 3;
  std::size_t window_ops_per_thread = 16;
  // The smoke keeps running worker windows until at least this many worker
  // ops completed while the popper stayed parked.
  std::size_t min_total_ops = 10'000;
  std::uint64_t seed = 1;
  // Deque bound for the checker (SpecDeque::kUnbounded for the list deque).
  std::size_t capacity = SpecDeque::kUnbounded;
  std::uint64_t park_timeout_ms = 10'000;
  // How many windows get the full linearizability check. Checking is
  // superlinear in history length, so the smoke verifies small recorded
  // windows rather than one huge history; past this count windows still run
  // (for the op-count bound) but unchecked.
  std::size_t max_checked_windows = 8;
};

struct ChaosSmokeReport {
  bool ok = false;
  std::string message;  // first failure, empty when ok
  std::size_t windows = 0;
  std::size_t checked_windows = 0;
  std::size_t worker_ops = 0;
  bool popper_parked_throughout = false;
  bool popper_resumed = false;
  std::optional<std::uint64_t> popper_value;
  // The frame history (seed pushes, pre-drain, popper op) and its verdict.
  History frame_history;
  Verdict frame_verdict = Verdict::kLimitExceeded;
};

// Requirements: `chaos` is the installed controller, armed with no rules
// yet; the deque is empty. The two seed values live in a high thread-id
// namespace so they cannot collide with worker values ((t << 40) | i).
template <typename D>
ChaosSmokeReport run_parked_popper_smoke(D& deque,
                                         dcas::ChaosController& chaos,
                                         const ChaosSmokeConfig& cfg) {
  ChaosSmokeReport rep;
  auto fail = [&rep](std::string msg) -> ChaosSmokeReport& {
    rep.ok = false;
    if (rep.message.empty()) rep.message = std::move(msg);
    return rep;
  };

  constexpr std::uint64_t kSeedBase = 0xAAull << 40;
  const std::uint64_t v_keep = kSeedBase | 1;   // survives until pre-drain
  const std::uint64_t v_claim = kSeedBase | 2;  // the popper's value

  // Frame: push the two seed values; v_claim sits at the right end.
  rep.frame_history.append(recorded_op(deque, OpType::kPushLeft, v_keep));
  rep.frame_history.append(recorded_op(deque, OpType::kPushRight, v_claim));

  // Arm before the popper starts: its first hit of the park point (its own
  // pop) is hit #1 because no other traffic is running yet.
  const std::size_t rule = chaos.arm_park(cfg.park_point, 1);

  Operation popper_op;
  std::thread popper([&] {
    popper_op = recorded_op(deque, cfg.popper_op, 0);
  });

  if (!chaos.wait_parked(rule, cfg.park_timeout_ms)) {
    chaos.release(rule);
    popper.join();
    return fail("popper never parked at sync point (timeout)");
  }

  // Pre-drain: with the popper suspended mid-pop the deque must still serve
  // the other end; v_keep comes out on the left.
  rep.frame_history.append(recorded_op(deque, OpType::kPopLeft, 0));

  // Windows of concurrent worker traffic while the popper stays parked.
  // Every window starts and ends with the deque (logically) empty, so each
  // window's history is self-contained and cheap to check.
  rep.popper_parked_throughout = true;
  WorkloadConfig wl;
  wl.threads = cfg.worker_threads;
  wl.ops_per_thread = cfg.window_ops_per_thread;
  while (rep.worker_ops < cfg.min_total_ops) {
    wl.seed = cfg.seed + 0x9e3779b9ull * (rep.windows + 1);
    History window = run_recorded(deque, wl);
    rep.worker_ops += window.ops.size();
    ++rep.windows;
    // Drain single-threaded so the next window starts empty; drained pops
    // belong to this window's history.
    for (;;) {
      Operation drain = recorded_op(deque, OpType::kPopLeft, 0);
      window.append(drain);
      if (!drain.pop_has_value) break;
    }
    if (!chaos.parked(rule)) {
      rep.popper_parked_throughout = false;
      fail("popper left its park point without release");
      break;
    }
    if (rep.checked_windows < cfg.max_checked_windows) {
      const CheckResult res = check_linearizable(window, cfg.capacity);
      ++rep.checked_windows;
      if (!res.ok()) {
        fail("window " + std::to_string(rep.windows) +
             " not linearizable: " + res.message);
        break;
      }
    }
  }

  // Resume the popper; it must complete its pop with the claimed value.
  chaos.release(rule);
  popper.join();
  rep.popper_resumed = true;
  if (popper_op.pop_has_value) rep.popper_value = popper_op.pop_value;
  rep.frame_history.append(popper_op);

  if (!rep.message.empty()) return rep;
  if (!popper_op.pop_has_value || popper_op.pop_value != v_claim) {
    return fail("popper returned " +
                (popper_op.pop_has_value
                     ? std::to_string(popper_op.pop_value)
                     : std::string("empty")) +
                ", expected " + std::to_string(v_claim));
  }

  const CheckResult frame = check_linearizable(rep.frame_history,
                                               cfg.capacity);
  rep.frame_verdict = frame.verdict;
  if (!frame.ok()) {
    return fail("frame history not linearizable: " + frame.message);
  }

  rep.ok = true;
  return rep;
}

// Same workload without recording (stress / leak tests). Returns the net
// number of successful pushes minus successful pops (the expected residual
// population).
template <typename D>
std::int64_t run_unrecorded(D& deque, const WorkloadConfig& cfg) {
  std::vector<std::int64_t> net(cfg.threads, 0);
  util::SpinBarrier barrier(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (std::size_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(cfg.seed * 0x9e3779b9ull + t + 1);
      const unsigned total_weight =
          cfg.push_right + cfg.push_left + cfg.pop_right + cfg.pop_left;
      std::int64_t delta = 0;
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < cfg.ops_per_thread; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(t) << 40) | i;
        unsigned pick = static_cast<unsigned>(rng.below(total_weight));
        if (pick < cfg.push_right) {
          if (deque.push_right(value) == deque::PushResult::kOkay) ++delta;
        } else if ((pick -= cfg.push_right) < cfg.push_left) {
          if (deque.push_left(value) == deque::PushResult::kOkay) ++delta;
        } else if ((pick -= cfg.push_left) < cfg.pop_right) {
          if (deque.pop_right().has_value()) --delta;
        } else {
          if (deque.pop_left().has_value()) --delta;
        }
      }
      net[t] = delta;
    });
  }
  for (auto& w : workers) w.join();

  std::int64_t total = 0;
  for (const std::int64_t d : net) total += d;
  return total;
}

}  // namespace dcd::verify
