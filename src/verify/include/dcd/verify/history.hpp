// Concurrent-history representation (§2's computation model).
//
// Operations carry invocation/response tickets drawn from one global
// atomic counter, which realises the paper's "real-time order": operation A
// precedes B iff A's response ticket is smaller than B's invocation ticket.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dcd::verify {

enum class OpType : std::uint8_t {
  kPushRight,
  kPushLeft,
  kPopRight,
  kPopLeft,
};

const char* op_name(OpType t);

struct Operation {
  OpType type{};
  std::uint64_t arg = 0;      // pushes: the value pushed
  bool push_ok = false;       // pushes: okay (true) / full (false)
  bool pop_has_value = false; // pops: value (true) / empty (false)
  std::uint64_t pop_value = 0;
  std::uint64_t invoke_seq = 0;
  std::uint64_t response_seq = 0;

  std::string describe() const;
};

struct History {
  std::vector<Operation> ops;

  std::string describe() const;

  void append(const Operation& op) { ops.push_back(op); }

  // Splices another history's operations onto this one. Tickets come from
  // the shared HistoryClock, so the merged history's real-time order is
  // still meaningful.
  void append(const History& other) {
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
  }
};

// Global real-time ticket source shared by all recorded deques.
class HistoryClock {
 public:
  static std::uint64_t tick() {
    return counter_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  static inline std::atomic<std::uint64_t> counter_{0};
};

}  // namespace dcd::verify
