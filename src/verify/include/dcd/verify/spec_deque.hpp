// Executable sequential specification of the deque (§2.2).
//
// The state machine over sequences S = <v0 ... vk>: pushes append at either
// end ("full" when |S| = length_S), pops remove from either end ("empty"
// when |S| = 0). This is the oracle against which every implementation is
// checked — directly for sequential conformance, and through the
// linearizability checker for concurrent histories (the role the Simplify
// axioms of Figure 35 play in the paper's proofs).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "dcd/deque/types.hpp"

namespace dcd::verify {

class SpecDeque {
 public:
  // capacity == kUnbounded models the unbounded (linked-list) deque, whose
  // pushes never return "full" (§2.2).
  static constexpr std::size_t kUnbounded = ~std::size_t{0};

  explicit SpecDeque(std::size_t capacity) : capacity_(capacity) {}

  deque::PushResult push_right(std::uint64_t v);
  deque::PushResult push_left(std::uint64_t v);
  std::optional<std::uint64_t> pop_right();
  std::optional<std::uint64_t> pop_left();

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  bool full() const noexcept { return items_.size() >= capacity_; }
  std::size_t capacity() const noexcept { return capacity_; }

  const std::deque<std::uint64_t>& items() const noexcept { return items_; }

  // Canonical serialisation of the state (exact memoisation key for the
  // linearizability checker).
  std::string fingerprint() const;

  bool operator==(const SpecDeque& other) const {
    return items_ == other.items_ && capacity_ == other.capacity_;
  }

 private:
  std::size_t capacity_;
  std::deque<std::uint64_t> items_;
};

}  // namespace dcd::verify
