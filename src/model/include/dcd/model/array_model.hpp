// Exhaustive interleaving model of the array-based deque (§3).
//
// The paper proves Theorem 3.1 by (a) a representation invariant RepInv
// (Figure 18) preserved by every transition, and (b) an abstraction
// function whose value changes exactly at linearization points, matching a
// legal spec transition with the operation's return value. This module
// discharges the same obligations by exhaustive checking on bounded
// instances: the four operations are re-expressed as explicit step machines
// whose atomic actions are exactly the algorithm's shared-memory reads and
// DCASes, and a memoised DFS explores *every* interleaving of a chosen op
// multiset from a chosen start state, asserting after every step:
//
//   1. RepInv holds (the non-null cells form the paper's contiguous
//      wrapped/non-wrapped segment, or the array is full with
//      r == l+1 mod n);
//   2. only linearization-point steps change the abstraction function's
//      value, and each such step performs the linearized operation's legal
//      spec transition with the value the operation will return.
//
// Each machine also asserts it linearizes exactly once before completing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcd/deque/types.hpp"

namespace dcd::model {

// Shared state: values are plain integers with 0 = null (model-level
// encoding; the step machines are a specification-level re-expression of
// Figures 2/3/30/31, not the production template).
struct ArrayState {
  std::size_t n = 0;
  std::size_t l = 0;
  std::size_t r = 0;
  std::vector<std::uint64_t> s;

  static ArrayState empty(std::size_t n);
  // Builds a state holding `items` (left to right), left end at slot
  // `l_pos` (so tests can exercise wrapped configurations).
  static ArrayState with_items(std::size_t n,
                               const std::vector<std::uint64_t>& items,
                               std::size_t l_pos = 0);

  std::string key() const;
};

// Figure 18's RepInv, phrased operationally.
bool rep_inv(const ArrayState& st);

// Abstraction function: the deque's abstract value, left to right.
std::vector<std::uint64_t> abstraction(const ArrayState& st);

enum class OpKind : std::uint8_t {
  kPushRight,
  kPushLeft,
  kPopRight,
  kPopLeft,
};

struct OpSpec {
  OpKind kind;
  std::uint64_t arg = 0;  // pushes only; must be non-zero
};

// Injectable bug for explorer-sensitivity tests.
enum class ArrayMutation : std::uint8_t {
  kNone,
  // The pop DCAS moves the index but forgets to null the popped cell —
  // the cell is then a non-null value inside the supposedly-null region,
  // violating Figure 18's RepInv (and double-popping the value later).
  kPopForgetsNull,
};

struct ExploreResult {
  bool ok = false;
  std::uint64_t states = 0;       // distinct configurations visited
  std::uint64_t transitions = 0;  // steps executed
  std::uint64_t completions = 0;  // configurations with all ops finished
  std::string error;              // first violation, if any
};

// Explores every interleaving of `ops` from `initial` under the given
// options. Returns ok == false with a diagnostic on the first violated
// obligation.
ExploreResult explore_array(const ArrayState& initial,
                            const std::vector<OpSpec>& ops,
                            deque::ArrayOptions options = {},
                            ArrayMutation mutation = ArrayMutation::kNone);

}  // namespace dcd::model
