// Exhaustive interleaving model of the linked-list deque (§4 / §5.2).
//
// The paper's list proof discharges three obligations: the representation
// invariant of Figures 24/25 holds after every transition; the abstraction
// function changes only at linearization points, each matching a legal spec
// transition with the operation's return value; and the delete DCASes
// (Figure 17/34) preserve the abstract value. This module re-expresses the
// four operations — including the inlined deleteRight/deleteLeft physical
// deletion loops — as step machines whose atomic actions are exactly the
// algorithm's shared reads and DCASes, and explores every interleaving from
// a chosen start state (notably the four empty configurations of Figure 9,
// whose two-deleted-nodes instance is the Figure 16 race).
//
// Reclamation is modelled as EBR with an infinite grace period: physically
// deleted nodes are marked retired and never reused, their fields remaining
// readable — exactly the guarantees GC (or EBR within a pinned operation)
// provides. A machine dereferencing a retired node is therefore legal; a
// *reachable* retired node is an invariant violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcd::model {

// Value-word constants (model-level encoding).
inline constexpr std::uint64_t kVNull = 0;
inline constexpr std::uint64_t kVSentL = ~0ull;
inline constexpr std::uint64_t kVSentR = ~0ull - 1;

// Pointer word: node id + deleted bit.
struct PtrWord {
  std::uint32_t id = 0;
  bool deleted = false;

  bool operator==(const PtrWord&) const = default;
};

struct ListState {
  struct MNode {
    PtrWord left;
    PtrWord right;
    std::uint64_t value = kVNull;
    bool allocated = false;
    bool retired = false;
  };

  static constexpr std::uint32_t kSL = 0;
  static constexpr std::uint32_t kSR = 1;

  std::vector<MNode> nodes;

  // Builders for the Figure 9 configurations (and general populations).
  static ListState empty(std::size_t arena);
  static ListState with_items(std::size_t arena,
                              const std::vector<std::uint64_t>& items);
  // `right_deleted` / `left_deleted`: append/prepend a logically deleted
  // (null-valued) node with the corresponding sentinel bit set.
  static ListState with_deleted(std::size_t arena,
                                const std::vector<std::uint64_t>& items,
                                bool left_deleted, bool right_deleted);

  std::uint32_t alloc_node();  // fresh, never-reused id

  std::string key() const;
};

// Figures 24/25, phrased operationally (see .cpp for the conjunct list).
bool list_rep_inv(const ListState& st);

// Abstract deque value: non-null interior values, left to right.
std::vector<std::uint64_t> list_abstraction(const ListState& st);

enum class ListOpKind : std::uint8_t {
  kPushRight,
  kPushLeft,
  kPopRight,
  kPopLeft,
};

struct ListOpSpec {
  ListOpKind kind;
  std::uint64_t arg = 0;  // pushes only; a nonzero user value
};

// Injectable bugs, used to validate that the explorer actually detects
// violations (a verifier that can only say "yes" proves nothing).
enum class ListMutation : std::uint8_t {
  kNone,
  // deleteRight/deleteLeft skip the paper's line-18 check that the *other*
  // sentinel's deleted bit is set before the pair-DCAS. Under GC-style
  // no-reuse semantics this turns out to be safety-benign (the pair-DCAS's
  // own validation subsumes it); the paper uses the check in its
  // lock-freedom argument. The model test documents this analysis.
  kPairDeleteSkipsBitCheck,
  // pushRight/pushLeft skip the line-7 deleted-bit test and splice a new
  // node after a logically-deleted neighbour, clobbering the pending
  // physical deletion. A genuine safety bug: the representation invariant
  // (null node no longer licensed by a sentinel bit) breaks immediately.
  kPushSkipsDeletedCheck,
};

struct ListExploreResult {
  bool ok = false;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t completions = 0;
  std::string error;
};

ListExploreResult explore_list(const ListState& initial,
                               const std::vector<ListOpSpec>& ops,
                               ListMutation mutation = ListMutation::kNone);

}  // namespace dcd::model
