#include "dcd/model/list_model.hpp"

#include <unordered_set>

#include "dcd/util/assert.hpp"

namespace dcd::model {

// --- state builders ---------------------------------------------------------

ListState ListState::empty(std::size_t arena) {
  ListState st;
  st.nodes.resize(2 + arena);
  st.nodes[kSL].allocated = true;
  st.nodes[kSL].value = kVSentL;
  st.nodes[kSL].right = {kSR, false};
  st.nodes[kSR].allocated = true;
  st.nodes[kSR].value = kVSentR;
  st.nodes[kSR].left = {kSL, false};
  return st;
}

ListState ListState::with_items(std::size_t arena,
                                const std::vector<std::uint64_t>& items) {
  return with_deleted(arena, items, false, false);
}

ListState ListState::with_deleted(std::size_t arena,
                                  const std::vector<std::uint64_t>& items,
                                  bool left_deleted, bool right_deleted) {
  // Chain layout (left to right): SL, [left null node], items..., [right
  // null node], SR — the Figure 9 family.
  ListState st = empty(arena + items.size() + 2);
  std::vector<std::uint32_t> chain;
  chain.push_back(kSL);
  if (left_deleted) {
    const std::uint32_t id = st.alloc_node();
    st.nodes[id].value = kVNull;
    chain.push_back(id);
  }
  for (const std::uint64_t v : items) {
    DCD_ASSERT(v != kVNull && v != kVSentL && v != kVSentR);
    const std::uint32_t id = st.alloc_node();
    st.nodes[id].value = v;
    chain.push_back(id);
  }
  if (right_deleted) {
    const std::uint32_t id = st.alloc_node();
    st.nodes[id].value = kVNull;
    chain.push_back(id);
  }
  chain.push_back(kSR);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const std::uint32_t a = chain[i], b = chain[i + 1];
    if (a == kSL) {
      st.nodes[kSL].right = {b, left_deleted && b != kSR};
    } else {
      st.nodes[a].right = {b, false};
    }
    if (b == kSR) {
      st.nodes[kSR].left = {a, right_deleted && a != kSL};
    } else {
      st.nodes[b].left = {a, false};
    }
  }
  return st;
}

std::uint32_t ListState::alloc_node() {
  for (std::uint32_t i = 2; i < nodes.size(); ++i) {
    if (!nodes[i].allocated) {
      nodes[i].allocated = true;
      return i;
    }
  }
  DCD_ASSERT(false && "model arena exhausted");
  return 0;
}

std::string ListState::key() const {
  std::string k;
  k.reserve(nodes.size() * 12);
  for (const MNode& n : nodes) {
    k.push_back(static_cast<char>(n.left.id));
    k.push_back(n.left.deleted ? 'd' : '.');
    k.push_back(static_cast<char>(n.right.id));
    k.push_back(n.right.deleted ? 'd' : '.');
    for (int b = 0; b < 8; ++b) {
      k.push_back(static_cast<char>((n.value >> (8 * b)) & 0xff));
    }
    k.push_back(static_cast<char>(n.allocated | (n.retired << 1)));
  }
  return k;
}

// --- RepInv and abstraction --------------------------------------------------

namespace {

// Walks SL -> SR via right pointers; returns false on malformed chains.
bool chain_of(const ListState& st, std::vector<std::uint32_t>& interior) {
  interior.clear();
  std::uint32_t cur = ListState::kSL;
  for (std::size_t steps = 0; steps <= st.nodes.size(); ++steps) {
    const PtrWord r = st.nodes[cur].right;
    if (r.id >= st.nodes.size()) return false;
    if (r.id == ListState::kSR) return true;
    if (r.id == ListState::kSL) return false;
    interior.push_back(r.id);
    cur = r.id;
  }
  return false;  // cycle
}

}  // namespace

bool list_rep_inv(const ListState& st) {
  const auto& sl = st.nodes[ListState::kSL];
  const auto& sr = st.nodes[ListState::kSR];
  // Fixed sentinel values (used by the line-5 empty test's justification).
  if (sl.value != kVSentL || sr.value != kVSentR) return false;

  std::vector<std::uint32_t> interior;
  if (!chain_of(st, interior)) return false;

  // Distinctness.
  for (std::size_t i = 0; i < interior.size(); ++i) {
    for (std::size_t j = i + 1; j < interior.size(); ++j) {
      if (interior[i] == interior[j]) return false;
    }
  }

  // Left pointers mirror the chain; interior pointer words carry no
  // deleted bits (only the sentinels' inward words may).
  std::uint32_t prev = ListState::kSL;
  for (const std::uint32_t id : interior) {
    const auto& n = st.nodes[id];
    if (n.left.id != prev || n.left.deleted) return false;
    if (n.right.deleted) return false;
    if (!n.allocated || n.retired) return false;
    if (n.value == kVSentL || n.value == kVSentR) return false;
    prev = id;
  }
  if (sr.left.id != prev) return false;

  const bool rdel = sr.left.deleted;
  const bool ldel = sl.right.deleted;
  // A set bit implies the adjacent node exists and is null; pointing at
  // the opposite sentinel with the bit set is never legal.
  if (rdel && (interior.empty() || st.nodes[interior.back()].value != kVNull)) {
    return false;
  }
  if (ldel && (interior.empty() || st.nodes[interior.front()].value != kVNull)) {
    return false;
  }
  if (rdel && ldel && interior.size() < 2) return false;

  // Null values appear only where a sentinel bit licenses them (the last
  // four conjuncts of Figure 25).
  for (std::size_t i = 0; i < interior.size(); ++i) {
    const bool licensed = (i == 0 && ldel) ||
                          (i + 1 == interior.size() && rdel);
    if (st.nodes[interior[i]].value == kVNull && !licensed) return false;
  }
  return true;
}

std::vector<std::uint64_t> list_abstraction(const ListState& st) {
  std::vector<std::uint64_t> out;
  std::vector<std::uint32_t> interior;
  if (!chain_of(st, interior)) return out;
  for (const std::uint32_t id : interior) {
    if (st.nodes[id].value != kVNull) out.push_back(st.nodes[id].value);
  }
  return out;
}

// --- step machines -----------------------------------------------------------

namespace {

enum class Pc : std::uint8_t {
  // pop
  kReadSent,
  kReadValue,
  kConfirmEmptyDcas,
  kPopDcas,
  // push
  kPushReadSent,
  kPushDcas,
  // physical-delete sub-machine (Figure 17 / 34)
  kDelReadSent,
  kDelReadNeighborPtr,
  kDelReadNeighborVal,
  kDelReadNeighborInward,
  kDelSpliceDcas,
  kDelReadOtherSent,
  kDelPairDcas,
  kDone,
};

struct Linearization {
  enum class Kind : std::uint8_t {
    kNone,
    kPushed,
    kPopped,
    kObservedEmpty,        // at this step (confirm DCAS success)
    kObservedEmptyAtRead,  // linearized at the earlier sentinel read
  } kind = Kind::kNone;
  std::uint64_t value = 0;
};

class ListOpMachine {
 public:
  ListOpMachine(ListOpSpec spec, std::uint32_t push_node,
                ListMutation mutation)
      : spec_(spec), push_node_(push_node), mutation_(mutation) {
    const bool is_pop = spec.kind == ListOpKind::kPopRight ||
                        spec.kind == ListOpKind::kPopLeft;
    pc_ = is_pop ? Pc::kReadSent : Pc::kPushReadSent;
  }

  bool done() const { return pc_ == Pc::kDone; }
  const ListOpSpec& spec() const { return spec_; }
  int linearizations() const { return linearizations_; }
  bool empty_at_sent_read() const { return empty_at_sent_read_; }

  bool push_ok = false;
  bool pop_has_value = false;
  std::uint64_t pop_value = 0;

  std::string key() const {
    std::string k;
    k.push_back(static_cast<char>(pc_));
    auto put_ptr = [&k](PtrWord w) {
      k.push_back(static_cast<char>(w.id));
      k.push_back(w.deleted ? 'd' : '.');
    };
    put_ptr(sent_);
    put_ptr(dl_);
    put_ptr(llr_);
    put_ptr(other_);
    k.push_back(static_cast<char>(ll_));
    for (int b = 0; b < 8; ++b) {
      k.push_back(static_cast<char>((v_ >> (8 * b)) & 0xff));
    }
    for (int b = 0; b < 8; ++b) {
      k.push_back(static_cast<char>((llv_ >> (8 * b)) & 0xff));
    }
    k.push_back(static_cast<char>(linearizations_));
    k.push_back(empty_at_sent_read_ ? 'e' : '.');
    return k;
  }

  // One atomic action. `abs_empty_now` is the abstraction's emptiness at
  // this step (needed to *record* the line-3/5 linearization flag).
  Linearization step(ListState& st, bool abs_empty_now) {
    switch (pc_) {
      // ---- pop --------------------------------------------------------
      case Pc::kReadSent:
        sent_ = inward(st);
        empty_at_sent_read_ = abs_empty_now;
        pc_ = Pc::kReadValue;
        return {};

      case Pc::kReadValue: {
        v_ = st.nodes[sent_.id].value;
        if (v_ == opp_sent_value()) {
          // Line 5: return "empty", linearized at the kReadSent read.
          pc_ = Pc::kDone;
          ++linearizations_;
          pop_has_value = false;
          return {Linearization::Kind::kObservedEmptyAtRead, 0};
        }
        if (sent_.deleted) {
          resume_ = Pc::kReadSent;
          pc_ = Pc::kDelReadSent;
        } else if (v_ == kVNull) {
          pc_ = Pc::kConfirmEmptyDcas;
        } else {
          pc_ = Pc::kPopDcas;
        }
        return {};
      }

      case Pc::kConfirmEmptyDcas: {
        // Lines 9-11: identity DCAS over {sentinel word, value}.
        if (inward(st) == sent_ && st.nodes[sent_.id].value == v_) {
          pc_ = Pc::kDone;
          ++linearizations_;
          pop_has_value = false;
          return {Linearization::Kind::kObservedEmpty, 0};
        }
        pc_ = Pc::kReadSent;
        return {};
      }

      case Pc::kPopDcas: {
        // Lines 14-18: logical delete.
        if (inward(st) == sent_ && st.nodes[sent_.id].value == v_) {
          inward(st) = PtrWord{sent_.id, true};
          st.nodes[sent_.id].value = kVNull;
          pc_ = Pc::kDone;
          ++linearizations_;
          pop_has_value = true;
          pop_value = v_;
          return {Linearization::Kind::kPopped, v_};
        }
        pc_ = Pc::kReadSent;
        return {};
      }

      // ---- push -------------------------------------------------------
      case Pc::kPushReadSent:
        sent_ = inward(st);
        if (mutation_ == ListMutation::kPushSkipsDeletedCheck) {
          pc_ = Pc::kPushDcas;  // injected bug: line 7 deleted
        } else {
          pc_ = sent_.deleted ? Pc::kDelReadSent : Pc::kPushDcas;
        }
        resume_ = Pc::kPushReadSent;
        return {};

      case Pc::kPushDcas: {
        // Lines 10-17: private init + splice. The private stores are not
        // shared-memory steps; they fold into this DCAS's atomic action.
        auto& mine = st.nodes[push_node_];
        toward_other(mine) = sent_;
        toward_sent(mine) = PtrWord{my_sent_id(), false};
        mine.value = spec_.arg;
        auto& neighbor = st.nodes[sent_.id];
        const PtrWord expect_neighbor{my_sent_id(), false};
        if (inward(st) == sent_ && toward_sent(neighbor) == expect_neighbor) {
          inward(st) = PtrWord{push_node_, false};
          toward_sent(neighbor) = PtrWord{push_node_, false};
          pc_ = Pc::kDone;
          ++linearizations_;
          push_ok = true;
          return {Linearization::Kind::kPushed, spec_.arg};
        }
        pc_ = Pc::kPushReadSent;
        return {};
      }

      // ---- deleteRight / deleteLeft ------------------------------------
      case Pc::kDelReadSent:
        dl_ = inward(st);
        pc_ = dl_.deleted ? Pc::kDelReadNeighborPtr : resume_;
        return {};

      case Pc::kDelReadNeighborPtr:  // line 5: oldLL = oldL.ptr->L.ptr
        ll_ = toward_other(st.nodes[dl_.id]).id;
        pc_ = Pc::kDelReadNeighborVal;
        return {};

      case Pc::kDelReadNeighborVal:  // line 6
        llv_ = st.nodes[ll_].value;
        pc_ = (llv_ != kVNull) ? Pc::kDelReadNeighborInward
                               : Pc::kDelReadOtherSent;
        return {};

      case Pc::kDelReadNeighborInward: {  // lines 7-8
        llr_ = toward_sent(st.nodes[ll_]);
        pc_ = (llr_.id == dl_.id) ? Pc::kDelSpliceDcas : Pc::kDelReadSent;
        return {};
      }

      case Pc::kDelSpliceDcas: {  // lines 9-13
        if (inward(st) == dl_ && toward_sent(st.nodes[ll_]) == llr_) {
          inward(st) = PtrWord{ll_, false};
          toward_sent(st.nodes[ll_]) = PtrWord{my_sent_id(), false};
          st.nodes[dl_.id].retired = true;
          pc_ = resume_;  // deleteRight returns on success (line 13)
        } else {
          pc_ = Pc::kDelReadSent;
        }
        return {};
      }

      case Pc::kDelReadOtherSent:  // lines 17-18
        other_ = other_inward(st);
        if (mutation_ == ListMutation::kPairDeleteSkipsBitCheck) {
          pc_ = Pc::kDelPairDcas;  // injected bug: line 18 deleted
        } else {
          pc_ = other_.deleted ? Pc::kDelPairDcas : Pc::kDelReadSent;
        }
        return {};

      case Pc::kDelPairDcas: {  // lines 19-25 (the Figure 16 DCAS)
        if (inward(st) == dl_ && other_inward(st) == other_) {
          inward(st) = PtrWord{opp_sent_id(), false};
          other_inward(st) = PtrWord{my_sent_id(), false};
          st.nodes[dl_.id].retired = true;
          st.nodes[other_.id].retired = true;
          pc_ = resume_;  // success returns to the caller (line 25)
        } else {
          pc_ = Pc::kDelReadSent;
        }
        return {};
      }

      case Pc::kDone:
        DCD_ASSERT(false && "stepping a finished operation");
    }
    return {};
  }

  bool is_right() const {
    return spec_.kind == ListOpKind::kPushRight ||
           spec_.kind == ListOpKind::kPopRight;
  }

 private:
  std::uint32_t my_sent_id() const {
    return is_right() ? ListState::kSR : ListState::kSL;
  }
  std::uint32_t opp_sent_id() const {
    return is_right() ? ListState::kSL : ListState::kSR;
  }
  std::uint64_t opp_sent_value() const {
    return is_right() ? kVSentL : kVSentR;
  }
  PtrWord& inward(ListState& st) const {
    return is_right() ? st.nodes[ListState::kSR].left
                      : st.nodes[ListState::kSL].right;
  }
  PtrWord& other_inward(ListState& st) const {
    return is_right() ? st.nodes[ListState::kSL].right
                      : st.nodes[ListState::kSR].left;
  }
  // Pointer from `n` toward the far end (L for right-side ops).
  PtrWord& toward_other(ListState::MNode& n) const {
    return is_right() ? n.left : n.right;
  }
  // Pointer from `n` back toward this op's sentinel.
  PtrWord& toward_sent(ListState::MNode& n) const {
    return is_right() ? n.right : n.left;
  }

  ListOpSpec spec_;
  std::uint32_t push_node_;  // pre-allocated for pushes; unused for pops
  ListMutation mutation_;
  Pc pc_;
  Pc resume_ = Pc::kReadSent;
  PtrWord sent_{};
  PtrWord dl_{};
  PtrWord llr_{};
  PtrWord other_{};
  std::uint32_t ll_ = 0;
  std::uint64_t v_ = 0;
  std::uint64_t llv_ = 0;
  int linearizations_ = 0;
  bool empty_at_sent_read_ = false;
};

struct ListConfig {
  ListState shared;
  std::vector<ListOpMachine> machines;

  std::string key() const {
    std::string k = shared.key();
    for (const auto& m : machines) {
      k.push_back('|');
      k += m.key();
    }
    return k;
  }
};

class ListExplorer {
 public:
  ListExplorer(const ListState& initial, const std::vector<ListOpSpec>& ops,
               ListMutation mutation) {
    root_.shared = initial;
    for (const ListOpSpec& s : ops) {
      std::uint32_t node = 0;
      if (s.kind == ListOpKind::kPushRight ||
          s.kind == ListOpKind::kPushLeft) {
        node = root_.shared.alloc_node();
      }
      root_.machines.emplace_back(s, node, mutation);
    }
  }

  ListExploreResult run() {
    if (!list_rep_inv(root_.shared)) {
      result_.error = "initial state violates RepInv";
      return result_;
    }
    dfs(root_);
    result_.ok = result_.error.empty();
    return result_;
  }

 private:
  bool check_transition(const std::vector<std::uint64_t>& before,
                        const std::vector<std::uint64_t>& after,
                        const ListOpMachine& m, const Linearization& lin) {
    using K = Linearization::Kind;
    switch (lin.kind) {
      case K::kNone:
        return before == after;
      case K::kObservedEmpty:
        return before.empty() && before == after;
      case K::kObservedEmptyAtRead:
        // Linearized at the earlier sentinel read; the machine recorded
        // the abstract emptiness there. This read step changes nothing.
        return m.empty_at_sent_read() && before == after;
      case K::kPushed: {
        std::vector<std::uint64_t> expect = before;
        if (m.is_right()) {
          expect.push_back(lin.value);
        } else {
          expect.insert(expect.begin(), lin.value);
        }
        return after == expect;
      }
      case K::kPopped: {
        if (before.empty()) return false;
        std::vector<std::uint64_t> expect = before;
        if (m.is_right()) {
          if (expect.back() != lin.value) return false;
          expect.pop_back();
        } else {
          if (expect.front() != lin.value) return false;
          expect.erase(expect.begin());
        }
        return after == expect;
      }
    }
    return false;
  }

  void dfs(const ListConfig& c) {
    if (!result_.error.empty()) return;
    if (!visited_.insert(c.key()).second) return;
    ++result_.states;

    bool all_done = true;
    for (std::size_t i = 0; i < c.machines.size(); ++i) {
      if (c.machines[i].done()) continue;
      all_done = false;

      ListConfig next = c;
      const auto before = list_abstraction(next.shared);
      const Linearization lin =
          next.machines[i].step(next.shared, before.empty());
      ++result_.transitions;

      if (!list_rep_inv(next.shared)) {
        result_.error =
            "RepInv violated after step of op #" + std::to_string(i);
        return;
      }
      const auto after = list_abstraction(next.shared);
      if (!check_transition(before, after, next.machines[i], lin)) {
        result_.error = "abstract transition violated at step of op #" +
                        std::to_string(i);
        return;
      }
      if (next.machines[i].done() &&
          next.machines[i].linearizations() != 1) {
        result_.error = "op #" + std::to_string(i) +
                        " finished with linearization count " +
                        std::to_string(next.machines[i].linearizations());
        return;
      }
      dfs(next);
      if (!result_.error.empty()) return;
    }
    if (all_done) ++result_.completions;
  }

  ListConfig root_;
  ListExploreResult result_;
  std::unordered_set<std::string> visited_;
};

}  // namespace

ListExploreResult explore_list(const ListState& initial,
                               const std::vector<ListOpSpec>& ops,
                               ListMutation mutation) {
  ListExplorer explorer(initial, ops, mutation);
  return explorer.run();
}

}  // namespace dcd::model
