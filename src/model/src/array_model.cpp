#include "dcd/model/array_model.hpp"

#include <unordered_set>

#include "dcd/util/assert.hpp"

namespace dcd::model {

namespace {
constexpr std::uint64_t kNull = 0;
}

ArrayState ArrayState::empty(std::size_t n) {
  ArrayState st;
  st.n = n;
  st.l = 0;
  st.r = 1 % n;
  st.s.assign(n, kNull);
  return st;
}

ArrayState ArrayState::with_items(std::size_t n,
                                  const std::vector<std::uint64_t>& items,
                                  std::size_t l_pos) {
  DCD_ASSERT(items.size() <= n);
  ArrayState st;
  st.n = n;
  st.l = l_pos % n;
  st.r = (l_pos + items.size() + 1) % n;
  st.s.assign(n, kNull);
  for (std::size_t i = 0; i < items.size(); ++i) {
    DCD_ASSERT(items[i] != kNull);
    st.s[(l_pos + 1 + i) % n] = items[i];
  }
  return st;
}

std::string ArrayState::key() const {
  std::string k;
  k.reserve(s.size() * 8 + 16);
  auto put = [&k](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) k.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  };
  put(l);
  put(r);
  for (const std::uint64_t v : s) put(v);
  return k;
}

bool rep_inv(const ArrayState& st) {
  if (st.n == 0 || st.l >= st.n || st.r >= st.n || st.s.size() != st.n) {
    return false;
  }
  if (st.r == (st.l + 1) % st.n) {
    // Both the empty and the full deque satisfy r == l+1 mod n (the paper's
    // central ambiguity); anything in between violates the invariant.
    std::size_t non_null = 0;
    for (const std::uint64_t v : st.s) non_null += (v != kNull);
    return non_null == 0 || non_null == st.n;
  }
  // Non-wrapped or wrapped segment: cells strictly between L and R (going
  // rightwards from L+1) hold values; cells from R around to L are null.
  for (std::size_t i = (st.l + 1) % st.n; i != st.r; i = (i + 1) % st.n) {
    if (st.s[i] == kNull) return false;
  }
  for (std::size_t i = st.r;; i = (i + 1) % st.n) {
    if (st.s[i] != kNull) return false;
    if (i == st.l) break;
  }
  return true;
}

std::vector<std::uint64_t> abstraction(const ArrayState& st) {
  std::vector<std::uint64_t> out;
  if (st.r == (st.l + 1) % st.n) {
    if (st.s[st.l] == kNull) return out;  // empty
    out.reserve(st.n);                    // full: n items starting at r
    for (std::size_t k = 0, i = st.r; k < st.n; ++k, i = (i + 1) % st.n) {
      out.push_back(st.s[i]);
    }
    return out;
  }
  for (std::size_t i = (st.l + 1) % st.n; i != st.r; i = (i + 1) % st.n) {
    out.push_back(st.s[i]);
  }
  return out;
}

namespace {

enum class Pc : std::uint8_t {
  kReadIndex,     // line 3: read R (or L)
  kReadCell,      // line 5: read the cell the index implies
  kRecheck,       // line 7: optional re-read of the index
  kBoundaryDcas,  // lines 8-10: identity DCAS confirming empty/full
  kMainDcas,      // lines 14-18: the mutating DCAS (with optional view)
  kDone,
};

// What a step did, for the abstraction-function obligation.
struct Linearization {
  enum class Kind : std::uint8_t {
    kNone,
    kPushed,         // value appended at this op's end
    kPopped,         // value removed from this op's end
    kObservedEmpty,  // abstract value must be empty, unchanged
    kObservedFull,   // abstract value must be full, unchanged
  } kind = Kind::kNone;
  std::uint64_t value = 0;
};

class OpMachine {
 public:
  OpMachine(OpSpec spec, deque::ArrayOptions opt, ArrayMutation mutation)
      : spec_(spec), opt_(opt), mutation_(mutation) {}

  bool done() const { return pc_ == Pc::kDone; }
  const OpSpec& spec() const { return spec_; }
  int linearizations() const { return linearizations_; }

  // Result (valid once done).
  bool push_ok = false;
  bool pop_has_value = false;
  std::uint64_t pop_value = 0;

  std::string key() const {
    std::string k;
    k.push_back(static_cast<char>(pc_));
    k.push_back(static_cast<char>(idx_ & 0xff));
    for (int b = 0; b < 8; ++b) {
      k.push_back(static_cast<char>((cell_val_ >> (8 * b)) & 0xff));
    }
    k.push_back(static_cast<char>(linearizations_));
    return k;
  }

  // Executes exactly one atomic action of Figures 2/3/30/31.
  Linearization step(ArrayState& st) {
    const bool is_push =
        spec_.kind == OpKind::kPushRight || spec_.kind == OpKind::kPushLeft;
    const bool is_right =
        spec_.kind == OpKind::kPushRight || spec_.kind == OpKind::kPopRight;
    std::size_t& index_word = is_right ? st.r : st.l;

    switch (pc_) {
      case Pc::kReadIndex:
        idx_ = index_word;
        pc_ = Pc::kReadCell;
        return {};

      case Pc::kReadCell: {
        cell_ = cell_of(st.n);
        cell_val_ = st.s[cell_];
        const bool boundary = is_push ? (cell_val_ != kNull)
                                      : (cell_val_ == kNull);
        if (boundary) {
          pc_ = opt_.recheck_index ? Pc::kRecheck : Pc::kBoundaryDcas;
        } else {
          pc_ = Pc::kMainDcas;
        }
        return {};
      }

      case Pc::kRecheck:
        pc_ = (index_word == idx_) ? Pc::kBoundaryDcas : Pc::kReadIndex;
        return {};

      case Pc::kBoundaryDcas: {
        if (index_word == idx_ && st.s[cell_] == cell_val_) {
          // Identity DCAS succeeds: the boundary case is confirmed; this is
          // the operation's linearization point.
          pc_ = Pc::kDone;
          ++linearizations_;
          if (is_push) {
            push_ok = false;
            return {Linearization::Kind::kObservedFull, 0};
          }
          pop_has_value = false;
          return {Linearization::Kind::kObservedEmpty, 0};
        }
        pc_ = Pc::kReadIndex;
        return {};
      }

      case Pc::kMainDcas: {
        if (index_word == idx_ && st.s[cell_] == cell_val_) {
          // DCAS succeeds: perform both writes atomically.
          index_word = new_index(st.n);
          if (is_push) {
            st.s[cell_] = spec_.arg;
          } else if (mutation_ != ArrayMutation::kPopForgetsNull) {
            st.s[cell_] = kNull;
          }
          pc_ = Pc::kDone;
          ++linearizations_;
          if (is_push) {
            push_ok = true;
            return {Linearization::Kind::kPushed, spec_.arg};
          }
          pop_has_value = true;
          pop_value = cell_val_;
          return {Linearization::Kind::kPopped, cell_val_};
        }
        // DCAS fails. With the strong form we atomically observe the
        // current pair (lines 17-18).
        if (opt_.failure_view) {
          const std::size_t vr = index_word;
          const std::uint64_t vs = st.s[cell_];
          if (is_push) {
            if (vr == idx_) {  // index unchanged => the cell went non-null
              pc_ = Pc::kDone;
              ++linearizations_;
              push_ok = false;
              return {Linearization::Kind::kObservedFull, 0};
            }
          } else {
            if (vr == idx_ && vs == kNull) {  // popLeft stole the last item
              pc_ = Pc::kDone;
              ++linearizations_;
              pop_has_value = false;
              return {Linearization::Kind::kObservedEmpty, 0};
            }
          }
        }
        pc_ = Pc::kReadIndex;
        return {};
      }

      case Pc::kDone:
        DCD_ASSERT(false && "stepping a finished operation");
    }
    return {};
  }

 private:
  std::size_t cell_of(std::size_t n) const {
    switch (spec_.kind) {
      case OpKind::kPushRight: return idx_;                  // S[oldR]
      case OpKind::kPushLeft: return idx_;                   // S[oldL]
      case OpKind::kPopRight: return (idx_ + n - 1) % n;     // S[oldR-1]
      case OpKind::kPopLeft: return (idx_ + 1) % n;          // S[oldL+1]
    }
    return 0;
  }

  std::size_t new_index(std::size_t n) const {
    switch (spec_.kind) {
      case OpKind::kPushRight: return (idx_ + 1) % n;
      case OpKind::kPushLeft: return (idx_ + n - 1) % n;
      case OpKind::kPopRight: return (idx_ + n - 1) % n;
      case OpKind::kPopLeft: return (idx_ + 1) % n;
    }
    return 0;
  }

  OpSpec spec_;
  deque::ArrayOptions opt_;
  ArrayMutation mutation_;
  Pc pc_ = Pc::kReadIndex;
  std::size_t idx_ = 0;        // saved index word value (line 3)
  std::size_t cell_ = 0;       // the cell the DCAS targets
  std::uint64_t cell_val_ = 0; // saved cell value (line 5)
  int linearizations_ = 0;
};

struct Config {
  ArrayState shared;
  std::vector<OpMachine> machines;

  std::string key() const {
    std::string k = shared.key();
    for (const auto& m : machines) {
      k.push_back('|');
      k += m.key();
    }
    return k;
  }
};

class Explorer {
 public:
  Explorer(const ArrayState& initial, const std::vector<OpSpec>& ops,
           deque::ArrayOptions opt, ArrayMutation mutation) {
    root_.shared = initial;
    for (const OpSpec& s : ops) root_.machines.emplace_back(s, opt, mutation);
  }

  ExploreResult run() {
    if (!rep_inv(root_.shared)) {
      result_.error = "initial state violates RepInv";
      return result_;
    }
    dfs(root_);
    result_.ok = result_.error.empty();
    return result_;
  }

 private:
  // Checks the abstraction-function obligation for one executed step.
  bool check_transition(const std::vector<std::uint64_t>& before,
                        const std::vector<std::uint64_t>& after,
                        const OpMachine& m, const Linearization& lin,
                        std::size_t n) {
    using K = Linearization::Kind;
    const bool is_right = m.spec().kind == OpKind::kPushRight ||
                          m.spec().kind == OpKind::kPopRight;
    switch (lin.kind) {
      case K::kNone:
        return before == after;
      case K::kObservedEmpty:
        return before.empty() && before == after;
      case K::kObservedFull:
        return before.size() == n && before == after;
      case K::kPushed: {
        std::vector<std::uint64_t> expect = before;
        if (is_right) {
          expect.push_back(lin.value);
        } else {
          expect.insert(expect.begin(), lin.value);
        }
        return after == expect;
      }
      case K::kPopped: {
        if (before.empty()) return false;
        std::vector<std::uint64_t> expect = before;
        if (is_right) {
          if (expect.back() != lin.value) return false;
          expect.pop_back();
        } else {
          if (expect.front() != lin.value) return false;
          expect.erase(expect.begin());
        }
        return after == expect;
      }
    }
    return false;
  }

  void dfs(const Config& c) {
    if (!result_.error.empty()) return;
    if (!visited_.insert(c.key()).second) return;
    ++result_.states;

    bool all_done = true;
    for (std::size_t i = 0; i < c.machines.size(); ++i) {
      if (c.machines[i].done()) continue;
      all_done = false;

      Config next = c;
      const auto before = abstraction(next.shared);
      const Linearization lin = next.machines[i].step(next.shared);
      ++result_.transitions;

      if (!rep_inv(next.shared)) {
        result_.error = "RepInv violated after step of op #" +
                        std::to_string(i);
        return;
      }
      const auto after = abstraction(next.shared);
      if (!check_transition(before, after, next.machines[i], lin,
                            next.shared.n)) {
        result_.error =
            "abstract transition violated at step of op #" +
            std::to_string(i);
        return;
      }
      if (next.machines[i].done() && next.machines[i].linearizations() != 1) {
        result_.error = "op #" + std::to_string(i) +
                        " finished with linearization count " +
                        std::to_string(next.machines[i].linearizations());
        return;
      }
      dfs(next);
      if (!result_.error.empty()) return;
    }
    if (all_done) ++result_.completions;
  }

  Config root_;
  ExploreResult result_;
  std::unordered_set<std::string> visited_;
};

}  // namespace

ExploreResult explore_array(const ArrayState& initial,
                            const std::vector<OpSpec>& ops,
                            deque::ArrayOptions options,
                            ArrayMutation mutation) {
  Explorer explorer(initial, ops, options, mutation);
  return explorer.run();
}

}  // namespace dcd::model
