// Uniform work-stealing face over the repo's deques.
//
// The executor's protocol is end-asymmetric: the owner pushes and pops its
// *right* end (LIFO — hot child tasks stay cache-warm), thieves pop the
// *left* end (FIFO — they take the oldest, largest-grained task, the
// classic work-first argument). The general DCAS deques support one more
// verb the ABP restricted deque cannot: `inject`, a lock-free push at the
// thief end used for external (non-worker) submissions. ABP's restriction
// — exactly one thread may ever touch the bottom end, and the top end is
// pop-only — is what lets it avoid DCAS, and it is also why kRemoteInject
// is false there: the executor routes external submissions for ABP through
// a mutex-protected inbox instead. DESIGN.md §14 spells out the
// comparison; bench_e12 measures it.
#pragma once

#include <optional>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/types.hpp"

namespace dcd::exec {

// Primary mapping: any general deque exposing push/pop at both ends
// (ListDeque, ArrayDeque, ListDequeDummy — anything satisfying the
// paper's §2.2 interface).
template <typename D>
struct DequeTraits {
  static constexpr bool kRemoteInject = true;

  static deque::PushResult push_own(D& d, typename D::value_type v) {
    return d.push_right(v);
  }
  static std::optional<typename D::value_type> pop_own(D& d) {
    return d.pop_right();
  }
  static std::optional<typename D::value_type> steal(D& d) {
    return d.pop_left();
  }
  static deque::PushResult inject(D& d, typename D::value_type v) {
    return d.push_left(v);
  }
};

// ABP restricted deque: owner verbs map to the bottom end, steal to the
// top. There is no lock-free remote push — see the header comment.
template <typename T>
struct DequeTraits<baseline::AroraDeque<T>> {
  static constexpr bool kRemoteInject = false;

  static deque::PushResult push_own(baseline::AroraDeque<T>& d, T v) {
    return d.push_bottom(v);
  }
  static std::optional<T> pop_own(baseline::AroraDeque<T>& d) {
    return d.pop_bottom();
  }
  static std::optional<T> steal(baseline::AroraDeque<T>& d) {
    return d.steal();
  }
  static deque::PushResult inject(baseline::AroraDeque<T>&, T) {
    return deque::PushResult::kFull;  // unreachable; inbox path is used
  }
};

}  // namespace dcd::exec
