// Fork/join work-stealing executor over the DCAS deques (§1's motivating
// application, ROADMAP item 1).
//
// Topology: one deque per worker thread. The owner pushes and pops tasks
// at its own end (LIFO depth-first — the hot child stays cache-warm);
// idle workers sweep the other workers' deques in randomized order and
// steal from the opposite end (FIFO — the oldest task is the coarsest
// unit of work). DequeTraits maps those verbs onto the general DCAS
// deques (ListDeque/ArrayDeque: right = owner, left = thief) and onto the
// ABP restricted deque (bottom = owner, top = thief).
//
// External submission is where the general deques earn their keep: a
// non-worker thread injects a task *lock-free* with a left push onto a
// round-robin-chosen worker's deque. The ABP deque structurally cannot
// accept a remote push (only the owner may touch the bottom end), so for
// it — and as an overflow path for bounded general deques — submissions
// fall back to a mutex-protected inbox that idle workers drain. That
// asymmetry is the re-injection argument of DESIGN.md §14.
//
// Task handoff synchronization rides entirely on edges that already carry
// proofs in this repo:
//   * deque transfer   — the push's publishing DCAS / release store is the
//     linearization point (PROOF_MAP rows for the deques); a task's plain
//     fn/args writes precede the push and are collected by the pop.
//   * join             — Task::pending acq_rel decrements; the child that
//     hits zero acquires every sibling's effects before scheduling the
//     continuation (task.hpp).
//   * idle parking     — a Dekker handshake: the parking worker advertises
//     itself (parked_), seq_cst-fences, then re-sweeps; the producer
//     pushes, seq_cst-fences, then checks parked_. One side must see the
//     other, so a task pushed concurrently with a park is never lost. The
//     actual blocking is a mutex/condvar eventcount (wake_epoch_).
//
// Sync points (chaos.hpp roster): "exec.steal" fires at the top of every
// victim sweep, "exec.park" immediately before the eventcount wait,
// "exec.inject" on the external-submission path. They are notify-form
// points (like magazine.refill/flush) — no DCAS shape to classify — fired
// straight into ChaosController; parking a thread at any of them must
// leave the remaining workers draining the task graph (exec chaos tests).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "dcd/dcas/chaos.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/exec/deque_traits.hpp"
#include "dcd/exec/task.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/assert.hpp"
#include "dcd/util/backoff.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stats.hpp"
#include "dcd/util/thread_registry.hpp"

namespace dcd::exec {

struct ExecConfig {
  // 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  // Per-worker deque capacity (ListDeque max_nodes / ArrayDeque capacity /
  // AroraDeque capacity). On owner-push overflow the task runs inline.
  std::size_t deque_capacity = 1 << 16;
  // Consecutive dry sweeps before a worker parks on the eventcount.
  std::uint32_t park_after = 16;
  // Sample every Nth successful task acquisition into the per-worker
  // latency histogram (0 disables sampling).
  std::uint32_t latency_stride = 0;
  // Seed for the per-worker victim-order RNGs (worker id is mixed in).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  // Max recycled Task objects cached per worker.
  std::size_t freelist_cap = 256;
};

// Aggregated telemetry (per-worker single-writer relaxed counters, summed;
// exact when the executor is quiescent, like dcas::Telemetry).
struct ExecStats {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t parks = 0;
  std::uint64_t dry_sweeps = 0;
  std::uint64_t scan_pauses = 0;  // AdaptiveBackoff pauses() mirror
  std::uint64_t scan_yields = 0;  // AdaptiveBackoff yields() mirror
  std::uint64_t injected = 0;     // external submissions
};

namespace detail {
// Which worker (and executor) the current thread is, if any. Keyed by
// raw pointers so the executor type stays a template parameter.
inline thread_local void* tl_worker = nullptr;
inline thread_local const void* tl_executor = nullptr;
}  // namespace detail

template <typename Deque>
class Executor {
 public:
  using Traits = DequeTraits<Deque>;
  static_assert(std::is_same_v<typename Deque::value_type, Task*>,
                "Executor requires a deque of Task* "
                "(deque::ValueCodec<Task*> encodes the 8-aligned pointer)");

  Executor() : Executor(ExecConfig{}) {}

  explicit Executor(const ExecConfig& cfg) : cfg_(cfg) {
    std::size_t n = cfg_.workers;
    if (n == 0) {
      n = std::thread::hardware_concurrency();
      if (n == 0) n = 2;
    }
    DCD_ASSERT(n >= 1 && n <= util::ThreadRegistry::kMaxThreads);
    workers_ = std::vector<Worker>(n);
    for (std::size_t i = 0; i < n; ++i) {
      Worker& w = workers_[i];
      w.owner = this;
      w.id = i;
      w.deque = std::make_unique<Deque>(cfg_.deque_capacity);
      w.rng = util::Xoshiro256(cfg_.seed + 0x632be59bd9b4e019ull * (i + 1));
    }
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { worker_main(workers_[i]); });
    }
  }

  ~Executor() {
    wait_all();
    {
      std::lock_guard<std::mutex> lock(mu_);
      // DCD_HB(exec.stop.latch, role=release)
      stop_.store(true, std::memory_order_release);
      wake_epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
    for (Worker& w : workers_) drain_freelist(w);
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t workers() const noexcept { return workers_.size(); }

  // Allocate a task. On a worker thread of this executor the worker's
  // freelist serves the allocation; external threads heap-allocate.
  Task* create(TaskFn fn, Task* continuation = nullptr,
               std::uint32_t pending = 0, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0, std::uint64_t a2 = 0) {
    if (Worker* w = self()) return w->create(fn, continuation, pending,
                                             a0, a1, a2);
    Task* t = new Task;
    init_task(*t, fn, continuation, pending, a0, a1, a2);
    return t;
  }

  // Make `t` runnable. Worker threads push their own deque (owner end);
  // external threads inject lock-free at a round-robin victim's thief end
  // when the deque supports it, else through the mutex inbox.
  void submit(Task* t) {
    DCD_ASSERT(t != nullptr && t->fn != nullptr);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    if (Worker* w = self()) {
      push_own(*w, t);
    } else {
      inject(t);
    }
    wake_one();
  }

  // Block until `latch` reaches zero. Worker threads *help*: they keep
  // executing/stealing tasks while they wait (never parking — the latch
  // may complete on another worker with every deque empty). External
  // threads block on the completion condvar; every latch that hits zero
  // notifies it.
  void join(Latch& latch) {
    if (Worker* w = self()) {
      while (!latch.done()) {
        if (Task* t = try_acquire(*w)) {
          run(*w, t);
        } else {
          record_dry_sweep(*w);
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return latch.done(); });
  }

  // Block until every submitted task has completed. On a worker thread
  // (inside a task body) the caller's own task is counted in outstanding_,
  // so blocking on zero would wait on itself; help instead — execute and
  // steal until this task is the only one left in flight. (Cyclic waits —
  // two tasks each wait_all()ing on the other — are unresolvable misuse
  // and spin here rather than deadlock silently on the condvar.)
  void wait_all() {
    if (Worker* w = self()) {
      while (outstanding_.load(std::memory_order_acquire) > 1) {
        if (Task* t = try_acquire(*w)) {
          run(*w, t);
        } else {
          record_dry_sweep(*w);
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
      // DCD_HB(exec.drain.outstanding, role=acquire)
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }

  ExecStats stats() const {
    ExecStats s;
    for (const Worker& w : workers_) {
      s.executed += w.executed.load(std::memory_order_relaxed);
      s.steals += w.steals.load(std::memory_order_relaxed);
      s.failed_steals += w.failed_steals.load(std::memory_order_relaxed);
      s.parks += w.parks.load(std::memory_order_relaxed);
      s.dry_sweeps += w.dry_sweeps.load(std::memory_order_relaxed);
      s.scan_pauses += w.scan_pauses.load(std::memory_order_relaxed);
      s.scan_yields += w.scan_yields.load(std::memory_order_relaxed);
    }
    s.injected = injected_.load(std::memory_order_relaxed);
    return s;
  }

  // Merged per-worker task-acquisition latency (only meaningful when
  // cfg.latency_stride > 0 and the executor is quiescent).
  util::LatencyHistogram latency() const {
    util::LatencyHistogram h;
    for (const Worker& w : workers_) h.merge(w.lat);
    return h;
  }

 private:
  // Per-worker state. Plain members are single-threaded (owner worker
  // only) or quiescent-read (stats/latency after wait_all); the
  // cross-thread surface is the deque, the atomic counters, and the
  // executor-level eventcount. Licensed in contracts.toml
  // [[shared.struct]].
  struct alignas(util::kCacheLineSize) Worker final : public TaskContext {
    Executor* owner = nullptr;
    std::size_t id = 0;
    std::unique_ptr<Deque> deque;
    util::Xoshiro256 rng{0};
    util::AdaptiveBackoff scan_backoff;
    util::LatencyHistogram lat;
    std::uint64_t lat_tick = 0;
    Task* free_head = nullptr;
    std::size_t free_count = 0;
    // Telemetry: single-writer (the owner worker), relaxed; aggregated by
    // Executor::stats(). scan_pauses/scan_yields mirror the
    // AdaptiveBackoff exact counts after every dry sweep so readers never
    // touch the plain backoff state.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> dry_sweeps{0};
    std::atomic<std::uint64_t> scan_pauses{0};
    std::atomic<std::uint64_t> scan_yields{0};

    Task* create(TaskFn fn, Task* continuation, std::uint32_t pending,
                 std::uint64_t a0, std::uint64_t a1,
                 std::uint64_t a2) override {
      Task* t;
      if (free_head != nullptr) {
        t = free_head;
        free_head = t->continuation;
        --free_count;
      } else {
        t = new Task;
      }
      init_task(*t, fn, continuation, pending, a0, a1, a2);
      return t;
    }

    void fork(Task* t) override {
      DCD_ASSERT(t != nullptr && t->fn != nullptr);
      owner->outstanding_.fetch_add(1, std::memory_order_relaxed);
      owner->push_own(*this, t);
      owner->wake_one();
    }

    std::size_t worker_id() const noexcept override { return id; }
    std::size_t workers() const noexcept override {
      return owner->workers_.size();
    }
  };

  static void init_task(Task& t, TaskFn fn, Task* continuation,
                        std::uint32_t pending, std::uint64_t a0,
                        std::uint64_t a1, std::uint64_t a2) {
    t.fn = fn;
    t.continuation = continuation;
    t.pending.store(pending, std::memory_order_relaxed);
    t.args[0] = a0;
    t.args[1] = a1;
    t.args[2] = a2;
    t.args[3] = 0;
  }

  Worker* self() const noexcept {
    return detail::tl_executor == this
               ? static_cast<Worker*>(detail::tl_worker)
               : nullptr;
  }

  // Forward a named window to the installed chaos controller, if any
  // (dcd_exec links dcd_dcas, so no hook indirection is needed — compare
  // reclaim::magazine_hook()).
  static void fire(const char* point) noexcept {
    if (dcas::ChaosController* c = dcas::ChaosController::acquire()) {
      c->notify(point);
      dcas::ChaosController::unpin();
    }
  }

  void worker_main(Worker& w) {
    detail::tl_worker = &w;
    detail::tl_executor = this;
    // Claim the process-wide dense id up front: the deque's reclamation
    // (EBR pins, MCAS descriptor pools) keys on it, and claiming it here
    // keeps slot churn out of the steady state.
    (void)util::ThreadRegistry::self();
    std::uint32_t dry = 0;
    for (;;) {
      // DCD_HB(exec.stop.latch, role=acquire)
      if (stop_.load(std::memory_order_acquire)) break;
      if (Task* t = try_acquire(w)) {
        dry = 0;
        run(w, t);
        continue;
      }
      record_dry_sweep(w);
      if (++dry >= cfg_.park_after) {
        park(w);
        dry = 0;
      }
    }
    detail::tl_worker = nullptr;
    detail::tl_executor = nullptr;
  }

  // One full acquisition attempt: own deque, then every other worker's
  // deque once in randomized order, then the inbox. Returns nullptr on a
  // dry sweep.
  Task* try_acquire(Worker& w) {
    const bool sample =
        cfg_.latency_stride != 0 && ++w.lat_tick % cfg_.latency_stride == 0;
    const auto t0 = sample ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    Task* got = nullptr;
    if (std::optional<Task*> t = Traits::pop_own(*w.deque)) {
      got = *t;
    } else {
      const std::size_t n = workers_.size();
      fire(dcas::sync_point::kExecSteal);
      const std::size_t start = w.rng.below(n);
      for (std::size_t i = 0; i < n && got == nullptr; ++i) {
        const std::size_t v = (start + i) % n;
        if (v == w.id) continue;
        if (std::optional<Task*> t = Traits::steal(*workers_[v].deque)) {
          got = *t;
          w.steals.fetch_add(1, std::memory_order_relaxed);
        } else {
          w.failed_steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (got == nullptr) got = pop_inbox();
    }
    if (got != nullptr) {
      w.scan_backoff.on_success();
      if (sample) {
        const auto dt = std::chrono::steady_clock::now() - t0;
        w.lat.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
      }
    }
    return got;
  }

  // Exactly one AdaptiveBackoff failure per dry sweep — the invariant the
  // idle-path accounting test pins: scan_pauses == dry_sweeps always, and
  // scan_yields is the backoff's exact escalation count.
  void record_dry_sweep(Worker& w) {
    w.dry_sweeps.fetch_add(1, std::memory_order_relaxed);
    w.scan_backoff.on_failure();
    w.scan_pauses.store(w.scan_backoff.pauses(), std::memory_order_relaxed);
    w.scan_yields.store(w.scan_backoff.yields(), std::memory_order_relaxed);
  }

  void run(Worker& w, Task* t) {
    t->fn(w, *t);
    w.executed.fetch_add(1, std::memory_order_relaxed);
    complete(w, t);
  }

  // Retire a finished task: recycle it, resolve its continuation, then
  // settle the global outstanding count (in that order — a scheduled
  // continuation is counted before this task's own decrement, so
  // outstanding_ can only hit zero when the graph is truly drained).
  void complete(Worker& w, Task* t) {
    Task* c = t->continuation;
    recycle(w, t);
    if (c != nullptr) {
      // Read fn (immutable after init) BEFORE the releasing decrement: for
      // a Latch the decrement to zero hands ownership to the joiner, who
      // may observe done(), return, and destroy the caller-owned Latch —
      // so no field of *c may be touched once the fetch_sub is published.
      const TaskFn cfn = c->fn;
      // DCD_HB(exec.join.pending, role=release)
      // DCD_HB(exec.join.pending, role=acquire)
      if (c->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (cfn != nullptr) {
          outstanding_.fetch_add(1, std::memory_order_relaxed);
          push_own(w, c);
          wake_one();
        } else {
          // Latch: wake external joiners (done_mu_/done_cv_ are executor
          // members — still no touch of the possibly-freed Latch).
          std::lock_guard<std::mutex> lock(done_mu_);
          done_cv_.notify_all();
        }
      }
    }
    // DCD_HB(exec.drain.outstanding, role=release)
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }

  void recycle(Worker& w, Task* t) {
    if (w.free_count >= cfg_.freelist_cap) {
      delete t;
      return;
    }
    t->continuation = w.free_head;
    w.free_head = t;
    ++w.free_count;
  }

  void drain_freelist(Worker& w) {
    while (w.free_head != nullptr) {
      Task* t = w.free_head;
      w.free_head = t->continuation;
      delete t;
    }
    w.free_count = 0;
  }

  // Owner-end push; a full deque runs the task inline (depth-first), which
  // is the standard bounded fallback — the task is runnable by definition.
  void push_own(Worker& w, Task* t) {
    if (Traits::push_own(*w.deque, t) != deque::PushResult::kOkay) {
      run(w, t);
    }
  }

  // External submission. Lock-free left push onto a rotating victim when
  // the deque supports remote injection; the ABP deque (and the overflow
  // path) goes through the inbox.
  void inject(Task* t) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    fire(dcas::sync_point::kExecInject);
    if constexpr (Traits::kRemoteInject) {
      const std::size_t v =
          inject_cursor_.fetch_add(1, std::memory_order_relaxed) %
          workers_.size();
      if (Traits::inject(*workers_[v].deque, t) == deque::PushResult::kOkay) {
        return;
      }
    }
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(t);
  }

  Task* pop_inbox() {
    // try_lock: a contended inbox just means another worker is draining
    // it; this sweep stays dry and retries after backoff. FIFO, so
    // injected requests keep their arrival order.
    std::unique_lock<std::mutex> lock(inbox_mu_, std::try_to_lock);
    if (!lock.owns_lock() || inbox_.empty()) return nullptr;
    Task* t = inbox_.front();
    inbox_.pop_front();
    return t;
  }

  // Producer half of the Dekker handshake: publish the push (the fence
  // orders it before the parked_ read), then wake one sleeper if any
  // worker advertised itself.
  void wake_one() {
    // DCD_HB(exec.park.dekker, role=fence-acquire)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) != 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        wake_epoch_.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.notify_one();
    }
  }

  // Consumer half: sample the epoch, advertise, fence, and re-sweep. Any
  // task pushed before the producer's fence is visible to the re-sweep;
  // any task pushed after it sees parked_ != 0 and bumps the epoch —
  // which the wait predicate compares against the pre-advertise sample,
  // so the wakeup cannot be missed.
  void park(Worker& w) {
    const std::uint64_t epoch = wake_epoch_.load(std::memory_order_relaxed);
    parked_.fetch_add(1, std::memory_order_relaxed);
    // DCD_HB(exec.park.dekker, role=fence-release)
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (Task* t = try_acquire(w)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      run(w, t);
      return;
    }
    if (stop_.load(std::memory_order_acquire)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    w.parks.fetch_add(1, std::memory_order_relaxed);
    fire(dcas::sync_point::kExecPark);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return wake_epoch_.load(std::memory_order_relaxed) != epoch ||
               stop_.load(std::memory_order_relaxed);
      });
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  ExecConfig cfg_;
  std::vector<Worker> workers_;
  std::vector<std::thread> threads_;

  // Task-graph drain count: +1 per submitted/forked/scheduled task, -1 on
  // completion; the acq_rel decrement to zero publishes the whole graph's
  // effects to wait_all()'s acquire load.
  std::atomic<std::uint64_t> outstanding_{0};
  // Eventcount (see wake_one/park).
  std::atomic<std::uint64_t> parked_{0};
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<bool> stop_{false};
  // External-submission telemetry + round-robin injection cursor.
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> inject_cursor_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::mutex inbox_mu_;
  std::deque<Task*> inbox_;
};

}  // namespace dcd::exec
