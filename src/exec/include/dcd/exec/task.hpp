// Task handles for the fork/join work-stealing executor.
//
// The paper's §1 motivating application is exactly this subsystem: one
// general deque per worker, the owner operating LIFO at its right end and
// thieves taking the oldest task from the left. A task here is a plain
// function pointer plus a small argument block — cheap enough that the
// executor can push millions of them per second through the deques — and
// join is expressed with *continuation counting*: a task may name a
// continuation task with a positive `pending` count, and the completion of
// each child decrements that count; the child that brings it to zero
// schedules the continuation (or, for a Latch, signals the joiner).
//
// Tasks are 8-aligned (statically asserted) so `Task*` round-trips through
// deque::ValueCodec<Task*> — the deques store encoded task pointers, no
// extra indirection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "dcd/util/align.hpp"

namespace dcd::exec {

struct Task;

// Per-worker view handed to every task body: fork children onto the
// calling worker's own deque, allocate tasks from its freelist, and ask
// who/where you are. Implemented by Executor's Worker; tasks never see the
// executor type, so workloads are written once and run against any deque.
class TaskContext {
 public:
  // Allocate a task (worker-local freelist when possible). `pending` > 0
  // makes it a join target: it runs (or completes, for fn == nullptr)
  // only after `pending` children finish.
  virtual Task* create(void (*fn)(TaskContext&, Task&),
                       Task* continuation = nullptr,
                       std::uint32_t pending = 0, std::uint64_t a0 = 0,
                       std::uint64_t a1 = 0, std::uint64_t a2 = 0) = 0;

  // Make `t` runnable: push onto the calling worker's deque (owner end).
  virtual void fork(Task* t) = 0;

  virtual std::size_t worker_id() const noexcept = 0;
  virtual std::size_t workers() const noexcept = 0;

 protected:
  ~TaskContext() = default;
};

using TaskFn = void (*)(TaskContext&, Task&);

// One schedulable unit. `pending` is the only cross-thread field: children
// completing on other workers decrement it (acq_rel), and the decrement
// that observes 1 owns the task — that release/acquire edge is what makes
// the args written by children visible to the continuation body.
struct alignas(util::kCacheLineSize) Task {
  TaskFn fn = nullptr;        // nullptr => Latch node (never executed)
  Task* continuation = nullptr;
  std::atomic<std::uint32_t> pending{0};
  std::uint64_t args[4] = {0, 0, 0, 0};
};

static_assert(alignof(Task) >= 8,
              "Task* must round-trip through ValueCodec<Task*>");

// Caller-owned join handle: a Task with no body. Children created with
// `latch.task()` as their continuation decrement it on completion; done()
// acquiring zero means every child's effects are visible to the joiner.
class Latch {
 public:
  explicit Latch(std::uint32_t count) {
    task_.pending.store(count, std::memory_order_relaxed);
  }

  Task* task() noexcept { return &task_; }
  bool done() const noexcept {
    // DCD_HB(exec.join.pending, role=acquire)
    return task_.pending.load(std::memory_order_acquire) == 0;
  }

 private:
  Task task_;
};

}  // namespace dcd::exec
