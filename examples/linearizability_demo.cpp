// Linearizability in action: record a concurrent history against the
// array deque, check it, and print a witness linearization — a miniature,
// executable rendition of the paper's §5 correctness argument.
//
//   $ ./linearizability_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "dcd/deque/array_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

int main(int argc, char** argv) {
  using namespace dcd::verify;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  constexpr std::size_t kCapacity = 2;  // tiny: boundary races guaranteed
  dcd::deque::ArrayDeque<std::uint64_t> deque(kCapacity);

  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 6;
  cfg.seed = seed;

  const History history = run_recorded(deque, cfg);
  std::printf("recorded %zu operations from %zu threads on a capacity-%zu "
              "deque:\n%s",
              history.ops.size(), cfg.threads, kCapacity,
              history.describe().c_str());

  const CheckResult result = check_linearizable(history, kCapacity);
  switch (result.verdict) {
    case Verdict::kLinearizable: {
      std::printf("\nlinearizable (%llu states explored); witness order:\n",
                  (unsigned long long)result.states_explored);
      SpecDeque spec(kCapacity);
      for (const std::size_t idx : result.witness) {
        apply_if_consistent(spec, history.ops[idx]);
        std::printf("  #%zu %s  | deque now holds %zu item(s)\n", idx,
                    history.ops[idx].describe().c_str(), spec.size());
      }
      return 0;
    }
    case Verdict::kNotLinearizable:
      std::printf("\nNOT linearizable — %s\n", result.message.c_str());
      return 1;
    case Verdict::kLimitExceeded:
      std::printf("\nsearch limit exceeded\n");
      return 2;
  }
  return 0;
}
