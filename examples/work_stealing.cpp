// Work-stealing scheduler — the paper's §1 motivating application.
//
// Each worker owns a deque of tasks: it pushes and pops work at the right
// end (LIFO, cache-friendly), and idle workers steal from victims' left
// ends (FIFO, takes the oldest/biggest task first). The paper cites Arora,
// Blumofe & Plaxton's restricted CAS-only deque for exactly this pattern;
// the DCAS deques support it with a *general* deque — both ends, push and
// pop — so the same structure also serves schedulers that need to re-inject
// work at either end.
//
// Workload: synthetic fork-join tree (each task forks `kFanout` children
// until depth 0, then "executes" by accumulating its weight). The final sum
// is schedule-independent, so it doubles as a correctness check.
//
//   $ ./work_stealing [workers] [seed_tasks] [depth]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stopwatch.hpp"

namespace {

constexpr int kFanout = 2;

struct Stats {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
};

// Task encoding: (depth << 32) | weight.
std::uint64_t make_task(std::uint64_t depth, std::uint64_t weight) {
  return (depth << 32) | weight;
}

// Generic scheduler over any owner-push/pop + steal interface.
template <typename PopOwn, typename PushOwn, typename Steal>
void worker_loop(int id, std::atomic<std::int64_t>& outstanding,
                 std::atomic<std::uint64_t>& sum, Stats& stats, int workers,
                 PopOwn pop_own, PushOwn push_own, Steal steal) {
  dcd::util::Xoshiro256 rng(id + 1);
  while (outstanding.load(std::memory_order_acquire) > 0) {
    std::optional<std::uint64_t> task = pop_own();
    if (!task) {
      const int victim = static_cast<int>(rng.below(workers));
      task = steal(victim);
      if (task) {
        ++stats.steals;
      } else {
        ++stats.failed_steals;
        std::this_thread::yield();
        continue;
      }
    }
    const std::uint64_t depth = *task >> 32;
    const std::uint64_t weight = *task & 0xffffffffull;
    if (depth == 0) {
      sum.fetch_add(weight, std::memory_order_relaxed);
      ++stats.executed;
      outstanding.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      outstanding.fetch_add(kFanout - 1, std::memory_order_acq_rel);
      for (int c = 0; c < kFanout; ++c) {
        push_own(make_task(depth - 1, weight));
      }
    }
  }
}

std::uint64_t expected_sum(std::uint64_t seeds, std::uint64_t depth) {
  std::uint64_t leaves = 1;
  for (std::uint64_t d = 0; d < depth; ++d) leaves *= kFanout;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < seeds; ++i) sum += leaves * (i + 1);
  return sum;
}

void run_on_dcas_deques(int workers, std::uint64_t seeds,
                        std::uint64_t depth) {
  using Deque = dcd::deque::ListDeque<std::uint64_t>;
  std::vector<std::unique_ptr<Deque>> deques;
  for (int w = 0; w < workers; ++w) {
    deques.push_back(std::make_unique<Deque>(1 << 16));
  }
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::int64_t> outstanding{0};
  for (std::uint64_t i = 0; i < seeds; ++i) {
    outstanding.fetch_add(1);
    deques[i % workers]->push_right(make_task(depth, i + 1));
  }
  std::vector<Stats> stats(workers);
  dcd::util::SpinBarrier barrier(workers);
  dcd::util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      barrier.arrive_and_wait();
      worker_loop(
          w, outstanding, sum, stats[w], workers,
          [&] { return deques[w]->pop_right(); },
          [&](std::uint64_t t) {
            while (deques[w]->push_right(t) !=
                   dcd::deque::PushResult::kOkay) {
              std::this_thread::yield();
            }
          },
          [&](int victim) { return deques[victim]->pop_left(); });
    });
  }
  for (auto& t : threads) t.join();
  const double secs = timer.elapsed_s();

  Stats total;
  for (const auto& s : stats) {
    total.executed += s.executed;
    total.steals += s.steals;
    total.failed_steals += s.failed_steals;
  }
  const std::uint64_t expect = expected_sum(seeds, depth);
  std::printf(
      "ListDeque<DCAS>: sum=%llu (%s), tasks=%llu, steals=%llu, "
      "failed_steals=%llu, %.3fs\n",
      (unsigned long long)sum.load(),
      sum.load() == expect ? "correct" : "WRONG",
      (unsigned long long)total.executed, (unsigned long long)total.steals,
      (unsigned long long)total.failed_steals, secs);
}

void run_on_abp_deques(int workers, std::uint64_t seeds,
                       std::uint64_t depth) {
  using Deque = dcd::baseline::AroraDeque<std::uint64_t>;
  std::vector<std::unique_ptr<Deque>> deques;
  for (int w = 0; w < workers; ++w) {
    deques.push_back(std::make_unique<Deque>(1 << 16));
  }
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::int64_t> outstanding{0};
  for (std::uint64_t i = 0; i < seeds; ++i) {
    outstanding.fetch_add(1);
    deques[i % workers]->push_bottom(make_task(depth, i + 1));
  }
  std::vector<Stats> stats(workers);
  dcd::util::SpinBarrier barrier(workers);
  dcd::util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      barrier.arrive_and_wait();
      worker_loop(
          w, outstanding, sum, stats[w], workers,
          [&] { return deques[w]->pop_bottom(); },
          [&](std::uint64_t t) {
            while (deques[w]->push_bottom(t) !=
                   dcd::deque::PushResult::kOkay) {
              std::this_thread::yield();
            }
          },
          [&](int victim) { return deques[victim]->steal(); });
    });
  }
  for (auto& t : threads) t.join();
  const double secs = timer.elapsed_s();

  Stats total;
  for (const auto& s : stats) {
    total.executed += s.executed;
    total.steals += s.steals;
    total.failed_steals += s.failed_steals;
  }
  const std::uint64_t expect = expected_sum(seeds, depth);
  std::printf(
      "AroraDeque<CAS>: sum=%llu (%s), tasks=%llu, steals=%llu, "
      "failed_steals=%llu, %.3fs\n",
      (unsigned long long)sum.load(),
      sum.load() == expect ? "correct" : "WRONG",
      (unsigned long long)total.executed, (unsigned long long)total.steals,
      (unsigned long long)total.failed_steals, secs);
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t seeds = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 64;
  const std::uint64_t depth = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                       : 8;
  std::printf("work stealing: %d workers, %llu seed tasks, depth %llu\n",
              workers, (unsigned long long)seeds, (unsigned long long)depth);
  run_on_dcas_deques(workers, seeds, depth);
  run_on_abp_deques(workers, seeds, depth);
  return 0;
}
