// Work-stealing load generator — the paper's §1 motivating application,
// driven through the src/exec fork/join executor (DESIGN.md §14).
//
// Each executor worker owns a general DCAS deque: it pushes and pops work
// at the right end (LIFO, cache-friendly) and idle workers steal from
// victims' left ends (FIFO, oldest task first). The same workloads also
// run against the Arora–Blumofe–Plaxton CAS-only baseline deque, whose
// restricted interface forces external submissions through a mutex inbox
// instead of the general deques' lock-free left-end injection.
//
// Three workloads, each with a schedule-independent check:
//   fib        — continuation-counting fork/join; result must equal the
//                closed-form Fibonacci number.
//   quicksort  — fork/join three-way quicksort of a shuffled array; the
//                array must come back sorted with its element sum intact.
//   replay     — external submitter threads inject a seeded stream of
//                "request" task trees while the workers churn; the folded
//                checksum must match a serial replay of the same stream.
//
// Any mismatch exits nonzero, so the ctest `examples` smoke label doubles
// as an end-to-end executor correctness gate.
//
//   $ ./work_stealing [workers] [fib_n] [sort_n] [requests]
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/exec/executor.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stopwatch.hpp"

namespace {

using dcd::exec::ExecConfig;
using dcd::exec::Executor;
using dcd::exec::Latch;
using dcd::exec::Task;
using dcd::exec::TaskContext;

bool g_all_ok = true;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("  FAILED: %s\n", what);
    g_all_ok = false;
  }
}

// --- workload 1: fib via continuation counting -----------------------------

void fib_sum(TaskContext&, Task& t) {
  auto* out = reinterpret_cast<std::uint64_t*>(t.args[0]);
  *out = t.args[1] + t.args[2];
}

void fib_task(TaskContext& ctx, Task& t) {
  const std::uint64_t n = t.args[0];
  auto* out = reinterpret_cast<std::uint64_t*>(t.args[1]);
  if (n < 2) {
    *out = n;
    return;
  }
  Task* sum = ctx.create(&fib_sum, t.continuation, 2, t.args[1]);
  t.continuation = nullptr;  // the subtree's completion now rides on `sum`
  ctx.fork(ctx.create(&fib_task, sum, 0, n - 1,
                      reinterpret_cast<std::uint64_t>(&sum->args[1])));
  ctx.fork(ctx.create(&fib_task, sum, 0, n - 2,
                      reinterpret_cast<std::uint64_t>(&sum->args[2])));
}

std::uint64_t fib_expected(std::uint64_t n) {
  std::uint64_t a = 0, b = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

// --- workload 2: fork/join quicksort ---------------------------------------

constexpr std::uint64_t kSortLeaf = 512;

void nop_join(TaskContext&, Task&) {}

void sort_task(TaskContext& ctx, Task& t) {
  auto* a = reinterpret_cast<std::uint64_t*>(t.args[0]);
  const std::uint64_t lo = t.args[1];
  const std::uint64_t hi = t.args[2];
  if (hi - lo <= kSortLeaf) {
    std::sort(a + lo, a + hi);
    return;
  }
  // Three-way partition (robust to duplicate keys): [lo,m1) < pivot,
  // [m1,m2) == pivot, [m2,hi) > pivot; only the strict sides recurse.
  const std::uint64_t pivot = a[lo + (hi - lo) / 2];
  std::uint64_t* m1 =
      std::partition(a + lo, a + hi,
                     [pivot](std::uint64_t x) { return x < pivot; });
  std::uint64_t* m2 = std::partition(
      m1, a + hi, [pivot](std::uint64_t x) { return x == pivot; });
  Task* join = ctx.create(&nop_join, t.continuation, 2);
  t.continuation = nullptr;
  ctx.fork(ctx.create(&sort_task, join, 0, t.args[0], lo,
                      static_cast<std::uint64_t>(m1 - a)));
  ctx.fork(ctx.create(&sort_task, join, 0, t.args[0],
                      static_cast<std::uint64_t>(m2 - a), hi));
}

// --- workload 3: request-replay mix ----------------------------------------
//
// A "request" is a small fork/join task tree whose every node folds its
// (depth, weight) into a commutative global sum — so the total is
// independent of which worker ran what in which order, and a serial replay
// of the same seeded stream yields the exact expected value.

std::atomic<std::uint64_t> g_replay_sum{0};

void request_task(TaskContext& ctx, Task& t) {
  const std::uint64_t depth = t.args[0];
  const std::uint64_t weight = t.args[1];
  g_replay_sum.fetch_add(depth * 0x9e3779b97f4a7c15ull + weight,
                         std::memory_order_relaxed);
  if (depth == 0) return;
  for (std::uint64_t k = 0; k < 2; ++k) {
    ctx.fork(
        ctx.create(&request_task, nullptr, 0, depth - 1, weight * 2 + k));
  }
}

std::uint64_t request_expected(std::uint64_t depth, std::uint64_t weight) {
  std::uint64_t sum = depth * 0x9e3779b97f4a7c15ull + weight;
  if (depth == 0) return sum;
  for (std::uint64_t k = 0; k < 2; ++k) {
    sum += request_expected(depth - 1, weight * 2 + k);
  }
  return sum;
}

// --- driver ----------------------------------------------------------------

struct Params {
  std::size_t workers = 4;
  std::uint64_t fib_n = 24;
  std::uint64_t sort_n = 200000;
  std::uint64_t requests = 256;
};

template <typename Deque>
void run_suite(const char* label, const Params& p) {
  ExecConfig cfg;
  cfg.workers = p.workers;
  Executor<Deque> ex(cfg);
  dcd::util::Stopwatch timer;

  // fib
  std::uint64_t fib_result = 0;
  Latch fib_latch(1);
  ex.submit(ex.create(&fib_task, fib_latch.task(), 0, p.fib_n,
                      reinterpret_cast<std::uint64_t>(&fib_result)));
  ex.join(fib_latch);
  check(fib_result == fib_expected(p.fib_n), "fib result");

  // quicksort
  std::vector<std::uint64_t> data(p.sort_n);
  dcd::util::Xoshiro256 rng(42);
  for (auto& v : data) v = rng.next() & 0xffffull;  // duplicates on purpose
  const std::uint64_t sum_before =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  Latch sort_latch(1);
  ex.submit(ex.create(&sort_task, sort_latch.task(), 0,
                      reinterpret_cast<std::uint64_t>(data.data()), 0,
                      p.sort_n));
  ex.join(sort_latch);
  check(std::is_sorted(data.begin(), data.end()), "quicksort order");
  check(std::accumulate(data.begin(), data.end(), std::uint64_t{0}) ==
            sum_before,
        "quicksort element sum");

  // request replay: two external submitters inject concurrently.
  g_replay_sum.store(0, std::memory_order_relaxed);
  std::uint64_t expected = 0;
  {
    dcd::util::Xoshiro256 stream(7);
    for (std::uint64_t i = 0; i < p.requests; ++i) {
      expected += request_expected(stream.below(7), i);
    }
  }
  auto submitter = [&ex, &p](std::uint64_t lo, std::uint64_t hi) {
    // Each submitter replays its slice of the same seeded stream.
    dcd::util::Xoshiro256 stream(7);
    for (std::uint64_t i = 0; i < p.requests; ++i) {
      const std::uint64_t depth = stream.below(7);
      if (i >= lo && i < hi) {
        ex.submit(ex.create(&request_task, nullptr, 0, depth, i));
      }
    }
  };
  std::thread s1(submitter, 0, p.requests / 2);
  std::thread s2(submitter, p.requests / 2, p.requests);
  s1.join();
  s2.join();
  ex.wait_all();
  check(g_replay_sum.load(std::memory_order_relaxed) == expected,
        "replay checksum");

  const double secs = timer.elapsed_s();
  const dcd::exec::ExecStats st = ex.stats();
  std::printf(
      "%-18s executed=%llu steals=%llu failed_steals=%llu parks=%llu "
      "injected=%llu  %.3fs\n",
      label, (unsigned long long)st.executed, (unsigned long long)st.steals,
      (unsigned long long)st.failed_steals, (unsigned long long)st.parks,
      (unsigned long long)st.injected, secs);
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  if (argc > 1) p.workers = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) p.fib_n = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) p.sort_n = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) p.requests = std::strtoull(argv[4], nullptr, 10);
  if (p.workers == 0 || p.sort_n == 0) {
    std::fprintf(stderr, "usage: %s [workers] [fib_n] [sort_n] [requests]\n",
                 argv[0]);
    return 2;
  }
  std::printf(
      "work stealing executor: %zu workers, fib(%llu), sort %llu, "
      "%llu requests\n",
      p.workers, (unsigned long long)p.fib_n, (unsigned long long)p.sort_n,
      (unsigned long long)p.requests);
  run_suite<dcd::deque::ListDeque<Task*>>("ListDeque<DCAS>:", p);
  run_suite<dcd::baseline::AroraDeque<Task*>>("AroraDeque<CAS>:", p);
  if (!g_all_ok) {
    std::printf("work_stealing: CHECKS FAILED\n");
    return 1;
  }
  std::printf("work_stealing: all checks passed\n");
  return 0;
}
