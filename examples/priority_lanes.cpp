// Priority lanes: a deque as a two-class work queue.
//
// Normal requests enter at the right; urgent requests enter at the *left*,
// where the single consumer pops — so urgent work overtakes the backlog
// without a separate queue or a priority heap, and without locks. This is
// the kind of client that needs a real deque (both ends, both operations):
// a FIFO queue cannot express the overtake, and a work-stealing deque
// (ABP) does not allow pushes at the steal end.
//
//   $ ./priority_lanes [requests] [urgent_percent]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dcd/deque/list_deque.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dcd::deque;
  const std::uint64_t kRequests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const std::uint64_t kUrgentPct =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  // Encoding: bit 0 of the payload marks urgent (payload = id<<1 | urgent).
  ListDeque<std::uint64_t> queue(1 << 16);
  std::atomic<std::uint64_t> urgent_wait_sum{0};   // queue positions skipped
  std::atomic<std::uint64_t> urgent_seen{0};
  std::atomic<std::uint64_t> normal_seen{0};
  std::atomic<bool> done_producing{false};

  dcd::util::Stopwatch timer;

  std::thread producer([&] {
    dcd::util::Xoshiro256 rng(1);
    for (std::uint64_t id = 1; id <= kRequests; ++id) {
      const bool urgent = rng.chance(kUrgentPct, 100);
      const std::uint64_t item = (id << 1) | (urgent ? 1 : 0);
      for (;;) {
        const PushResult r =
            urgent ? queue.push_left(item) : queue.push_right(item);
        if (r == PushResult::kOkay) break;
        std::this_thread::yield();  // pool backpressure
      }
    }
    done_producing.store(true, std::memory_order_release);
  });

  std::thread consumer([&] {
    std::uint64_t processed = 0;
    std::uint64_t last_normal_id = 0;
    while (processed < kRequests) {
      auto item = queue.pop_left();
      if (!item) {
        if (done_producing.load(std::memory_order_acquire) &&
            processed == kRequests) {
          break;
        }
        std::this_thread::yield();
        continue;
      }
      ++processed;
      const bool urgent = (*item & 1) != 0;
      const std::uint64_t id = *item >> 1;
      if (urgent) {
        urgent_seen.fetch_add(1, std::memory_order_relaxed);
        // How far ahead of the normal lane did this request jump?
        if (id > last_normal_id) {
          urgent_wait_sum.fetch_add(id - last_normal_id,
                                    std::memory_order_relaxed);
        }
      } else {
        normal_seen.fetch_add(1, std::memory_order_relaxed);
        last_normal_id = id;
      }
    }
  });

  producer.join();
  consumer.join();

  const double secs = timer.elapsed_s();
  const std::uint64_t u = urgent_seen.load();
  const std::uint64_t n = normal_seen.load();
  std::printf("priority lanes: %llu requests (%llu urgent, %llu normal) in "
              "%.3fs\n",
              (unsigned long long)(u + n), (unsigned long long)u,
              (unsigned long long)n, secs);
  if (u > 0) {
    std::printf("urgent requests overtook on average %.1f queued items\n",
                static_cast<double>(urgent_wait_sum.load()) /
                    static_cast<double>(u));
  }
  return (u + n) == kRequests ? 0 : 1;
}
