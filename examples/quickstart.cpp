// Quickstart: the two deques of the paper, in a dozen lines each.
//
//   $ ./quickstart
//
// ArrayDeque  — §3's bounded circular-array deque.
// ListDeque   — §4's unbounded linked-list deque (pool-backed, EBR-reclaimed).
// Both run here over the lock-free MCAS-based DCAS (the default policy);
// swap dcd::dcas::GlobalLockDcas or StripedLockDcas in to compare.
#include <cstdio>

#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"

int main() {
  using namespace dcd::deque;

  // --- bounded array deque -------------------------------------------------
  ArrayDeque<std::uint64_t> bounded(/*capacity=*/4);
  std::printf("ArrayDeque capacity: %zu\n", bounded.capacity());

  // The §2.2 example trace: S = <>, then pushes/pops from both ends.
  bounded.push_right(1);  // S = <1>
  bounded.push_left(2);   // S = <2 1>
  bounded.push_right(3);  // S = <2 1 3>
  std::printf("popLeft  -> %llu (expect 2)\n",
              (unsigned long long)*bounded.pop_left());
  std::printf("popLeft  -> %llu (expect 1)\n",
              (unsigned long long)*bounded.pop_left());
  std::printf("popRight -> %llu (expect 3)\n",
              (unsigned long long)*bounded.pop_right());
  if (!bounded.pop_right().has_value()) {
    std::printf("popRight -> empty (deque drained)\n");
  }

  // Boundary cases return values instead of blocking or UB:
  for (std::uint64_t i = 0; i < 4; ++i) bounded.push_right(i);
  if (bounded.push_left(99) == PushResult::kFull) {
    std::printf("pushLeft -> full at capacity %zu\n", bounded.capacity());
  }

  // --- unbounded list deque ------------------------------------------------
  ListDeque<std::uint64_t> unbounded(/*max_nodes=*/1 << 16);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    unbounded.push_left(i);        // allocate
    (void)unbounded.pop_right();   // retire -> EBR -> pool
  }
  std::printf("ListDeque cycled 100k nodes through a %zu-node pool\n",
              unbounded.pool().capacity());

  // Pointers work too (the deque stores the pointer; you own the pointee).
  ListDeque<const char*> names;
  alignas(8) static const char kHello[] = "hello";  // stored pointers must
  alignas(8) static const char kWorld[] = "world";  // be 8-aligned
  names.push_right(kHello);
  names.push_right(kWorld);
  std::printf("%s %s\n", *names.pop_left(), *names.pop_left());
  return 0;
}
