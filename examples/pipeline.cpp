// Bounded pipeline with deque stages.
//
// A classic producer/transformer/consumer pipeline where each stage hands
// items to the next through a deque: normal traffic flows FIFO (push right,
// pop left), but a stage can also *re-inject* an item at the front of its
// input (push left) — e.g. to retry a failed item with priority — which a
// plain FIFO queue cannot express. This is the kind of client the paper's
// general deque serves and a work-stealing-only deque (ABP) cannot.
//
//   $ ./pipeline [items]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dcd/deque/array_deque.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dcd::deque;
  const std::uint64_t kItems =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  // Bounded stages provide backpressure: a full push means "slow down".
  ArrayDeque<std::uint64_t> stage_a(512);
  ArrayDeque<std::uint64_t> stage_b(512);

  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> checksum{0};
  dcd::util::Stopwatch timer;

  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      while (stage_a.push_right(i) != PushResult::kOkay) {
        std::this_thread::yield();  // backpressure
      }
    }
  });

  std::thread transformer([&] {
    dcd::util::Xoshiro256 rng(7);
    std::uint64_t processed = 0;
    while (processed < kItems) {
      auto v = stage_a.pop_left();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      // Simulate a transient failure 1% of the time: the item goes back to
      // the *front* of our input so it is retried before new traffic.
      if (rng.chance(1, 100)) {
        retried.fetch_add(1, std::memory_order_relaxed);
        while (stage_a.push_left(*v) != PushResult::kOkay) {
          std::this_thread::yield();
        }
        continue;
      }
      ++processed;
      while (stage_b.push_right(*v * 3) != PushResult::kOkay) {
        std::this_thread::yield();
      }
    }
  });

  std::thread consumer([&] {
    std::uint64_t seen = 0;
    std::uint64_t local = 0;
    while (seen < kItems) {
      auto v = stage_b.pop_left();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      local += *v;
      ++seen;
    }
    checksum.store(local);
  });

  producer.join();
  transformer.join();
  consumer.join();

  const std::uint64_t expect = 3 * (kItems * (kItems + 1) / 2);
  std::printf("pipeline: %llu items in %.3fs, %llu retries, checksum %s\n",
              (unsigned long long)kItems, timer.elapsed_s(),
              (unsigned long long)retried.load(),
              checksum.load() == expect ? "correct" : "WRONG");
  return checksum.load() == expect ? 0 : 1;
}
