// The empty-deque configurations of Figure 9 and the physical-delete
// transitions of Figures 15/16, driven deterministically through the public
// API plus quiescent introspection.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ListStatesTest : public ::testing::Test {
 protected:
  using Deque = ListDeque<std::uint64_t, P>;
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ListStatesTest, Policies);

TYPED_TEST(ListStatesTest, EmptyDequePlain) {
  // Figure 9, top: SR->L == SL, SL->R == SR, no deleted bits.
  typename TestFixture::Deque d;
  EXPECT_FALSE(d.left_deleted_bit_unsynchronized());
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 0u);
}

TYPED_TEST(ListStatesTest, EmptyWithRightDeletedCell) {
  // Figure 9, second diagram: popRight leaves a logically-deleted node
  // pending physical deletion; the deque is abstractly empty.
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 7u);
  EXPECT_TRUE(d.right_deleted_bit_unsynchronized());
  EXPECT_FALSE(d.left_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 1u);  // the null node
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  // pops report empty; the popLeft sees the null node via the value word.
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ListStatesTest, EmptyWithLeftDeletedCell) {
  // Figure 9, third diagram (mirror).
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_left(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 7u);
  EXPECT_TRUE(d.left_deleted_bit_unsynchronized());
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ListStatesTest, EmptyWithTwoDeletedCells) {
  // Figure 9, bottom: two nodes, one deleted from each side.
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 1u);
  ASSERT_EQ(d.pop_right(), 2u);
  EXPECT_TRUE(d.left_deleted_bit_unsynchronized());
  EXPECT_TRUE(d.right_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 2u);
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

TYPED_TEST(ListStatesTest, PushClearsPendingRightDeletion) {
  // Figure 15: the next right-side operation performs the physical delete.
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 7u);
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());
  ASSERT_EQ(d.push_right(8), PushResult::kOkay);
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 1u);  // just the new node
  EXPECT_EQ(d.pop_right(), 8u);
}

TYPED_TEST(ListStatesTest, PopTriggersPhysicalDeleteOnitsSide) {
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 2u);
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());
  // The next popRight deletes the null node, then pops 1.
  ASSERT_EQ(d.pop_right(), 1u);
  EXPECT_TRUE(d.right_deleted_bit_unsynchronized());  // 1's node now pending
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ListStatesTest, TwoDeletedCellsResolveFromRight) {
  // Figure 16, "right wins" outcome, forced deterministically: with both
  // nodes logically deleted, a right-side operation removes both at once.
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 1u);
  ASSERT_EQ(d.pop_right(), 2u);
  ASSERT_TRUE(d.left_deleted_bit_unsynchronized());
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());
  ASSERT_EQ(d.push_right(3), PushResult::kOkay);  // triggers deleteRight
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  // The pair-DCAS removed both null nodes (sentinels pointed at each other
  // before the push spliced the new node in).
  EXPECT_FALSE(d.left_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
}

TYPED_TEST(ListStatesTest, TwoDeletedCellsResolveFromLeft) {
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 1u);
  ASSERT_EQ(d.pop_right(), 2u);
  ASSERT_EQ(d.push_left(3), PushResult::kOkay);  // triggers deleteLeft
  EXPECT_FALSE(d.left_deleted_bit_unsynchronized());
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  EXPECT_EQ(d.chain_length_unsynchronized(), 1u);
  EXPECT_EQ(d.pop_right(), 3u);
}

TYPED_TEST(ListStatesTest, NodesAreReclaimedAndReused) {
  // A bounded pool sustains unbounded traffic once EBR recycles nodes.
  // (The pool must absorb EBR's reclamation lag — retired nodes wait two
  // epoch advances — hence 1024 slots for a working set of 1.)
  typename TestFixture::Deque d(1024);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay) << "leak at " << i;
    ASSERT_EQ(d.pop_left(), i);
    if (i % 128 == 0) d.reclaimer().collect();
  }
}

TYPED_TEST(ListStatesTest, ConcurrentContendingDeletes) {
  // Figure 16 under real concurrency: repeatedly reach the two-deleted
  // state, then let two threads race the physical deletes via pops.
  typename TestFixture::Deque d(1 << 12);
  for (int round = 0; round < 500; ++round) {
    ASSERT_EQ(d.push_right(1), PushResult::kOkay);
    ASSERT_EQ(d.push_right(2), PushResult::kOkay);
    ASSERT_EQ(d.pop_left(), 1u);
    ASSERT_EQ(d.pop_right(), 2u);
    dcd::util::SpinBarrier barrier(2);
    std::thread left([&] {
      barrier.arrive_and_wait();
      EXPECT_FALSE(d.pop_left().has_value());
    });
    std::thread right([&] {
      barrier.arrive_and_wait();
      EXPECT_FALSE(d.pop_right().has_value());
    });
    left.join();
    right.join();
    ASSERT_EQ(d.size_unsynchronized(), 0u);
  }
}

}  // namespace
