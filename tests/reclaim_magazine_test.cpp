// MagazinePool: per-thread magazines over the shared NodePool free list.
//
// Covers the DESIGN.md §13 contracts: exhaustion is reported only after
// the shared list AND every magazine are empty (the paper's footnote 3 —
// push says "full" only when the allocator truly is), cross-thread
// free/alloc traffic through EBR loses no nodes, a dead thread's cached
// inventory stays reachable (lazy flush via the sweep), and the refill
// chain-detach survives concurrent hammering — the test CI runs under
// ASan and TSan (suite name matches the sanitizer subsets' "Pool" regex).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/magazine_pool.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using dcd::reclaim::EbrDomain;
using dcd::reclaim::MagazinePool;
using dcd::reclaim::magazine_hook;
using dcd::reclaim::MagazineStats;

TEST(MagazinePool, AllocationsAreDistinctOwnedAndCounted) {
  MagazinePool pool(24, 16, /*batch=*/4);
  std::set<void*> seen;
  for (int i = 0; i < 16; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(pool.owns(p));
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(pool.live(), 16u);
  const MagazineStats s = pool.stats();
  // First allocation of each batch misses and refills; the chain's
  // remainder serves the following allocations as hits.
  EXPECT_GT(s.refills, 0u);
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.hits + s.misses, 16u);
}

TEST(MagazinePool, BatchClampsToAtLeastTwo) {
  MagazinePool pool(8, 4, /*batch=*/0);
  EXPECT_EQ(pool.batch(), 2u);
  MagazinePool pool2(8, 4, /*batch=*/7);
  EXPECT_EQ(pool2.batch(), 7u);
}

TEST(MagazinePool, ExhaustionReturnsNullOnlyWhenEverythingIsEmpty) {
  constexpr std::size_t kCap = 8;
  MagazinePool pool(8, kCap, /*batch=*/4);
  void* ps[kCap];
  for (auto& p : ps) {
    p = pool.allocate();
    ASSERT_NE(p, nullptr);
  }
  // Shared list and this thread's magazine are both drained.
  EXPECT_EQ(pool.allocate(), nullptr);
  EXPECT_GE(pool.allocation_failures(), 1u);
  // One node back (exclusive owner — safe outside EBR) makes the pool
  // allocatable again, straight from the magazine's free chain.
  pool.deallocate(ps[0]);
  EXPECT_NE(pool.allocate(), nullptr);
}

TEST(MagazinePool, FreeChainFlushesToSharedListAtBatch) {
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kBatch = 4;
  MagazinePool pool(8, kCap, kBatch);
  void* ps[kCap];
  for (auto& p : ps) {
    p = pool.allocate();
    ASSERT_NE(p, nullptr);
  }
  // Returning batch-1 nodes leaves them cached in this magazine...
  for (std::size_t i = 0; i + 1 < kBatch; ++i) pool.deallocate(ps[i]);
  EXPECT_EQ(pool.cached_unsynchronized(), kBatch - 1);
  EXPECT_EQ(pool.stats().flushes, 0u);
  // ...and the batch-th triggers the one-CAS chain flush.
  pool.deallocate(ps[kBatch - 1]);
  EXPECT_EQ(pool.cached_unsynchronized(), 0u);
  EXPECT_EQ(pool.stats().flushes, 1u);
  EXPECT_EQ(pool.live(), kCap - kBatch);
}

TEST(MagazinePool, HookFiresOnRefillAndFlushWindows) {
  static std::atomic<int> refills{0};
  static std::atomic<int> flushes{0};
  refills = 0;
  flushes = 0;
  magazine_hook().store(
      +[](const char* point) {
        if (point == std::string_view(dcd::reclaim::magazine_sync::kRefill)) {
          refills.fetch_add(1);
        }
        if (point == std::string_view(dcd::reclaim::magazine_sync::kFlush)) {
          flushes.fetch_add(1);
        }
      },
      std::memory_order_release);
  {
    MagazinePool pool(8, 8, /*batch=*/4);
    void* ps[4];
    for (auto& p : ps) p = pool.allocate();
    for (auto& p : ps) pool.deallocate(p);
  }
  magazine_hook().store(nullptr, std::memory_order_release);
  EXPECT_GE(refills.load(), 1);
  EXPECT_GE(flushes.load(), 1);
}

TEST(MagazinePool, DeadThreadInventoryStaysReachableViaSweep) {
  // "Flush on thread exit" is lazy: a worker strands nodes on its
  // magazine's chains and exits; the sweep makes them allocatable from
  // the main thread, so the full capacity is still reachable.
  constexpr std::size_t kCap = 8;
  MagazinePool pool(8, kCap, /*batch=*/4);
  std::thread worker([&] {
    void* a = pool.allocate();  // refill detaches 4: 3 stay cached
    ASSERT_NE(a, nullptr);
    pool.deallocate(a);  // free chain of 1 — below batch, not flushed
  });
  worker.join();
  EXPECT_GT(pool.cached_unsynchronized(), 0u);
  std::set<void*> seen;
  for (std::size_t i = 0; i < kCap; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr) << "node stranded in a dead thread's magazine";
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(pool.allocate(), nullptr);
}

TEST(MagazinePool, CrossThreadFreeAllocThroughEbrIsLossless) {
  // Producer threads allocate and retire; the EBR callbacks run on
  // whichever thread collects, landing nodes in *that* thread's magazine
  // — the classic cross-thread alloc/free imbalance the flush + sweep
  // must absorb without losing a node.
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  constexpr std::size_t kCap = 64;
  MagazinePool pool(32, kCap, /*batch=*/8);  // outlives the domain
  {
    EbrDomain domain;
    dcd::util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        barrier.arrive_and_wait();
        for (int i = 0; i < kIters; ++i) {
          EbrDomain::Guard guard(domain);
          void* p = pool.allocate();
          if (p != nullptr) {
            domain.retire(p, MagazinePool::deallocate_cb, &pool);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
    // Worker limbo lists drain on domain destruction (a dead worker's slot
    // is only reliably reaped there — see EbrDomain's destructor contract).
  }
  EXPECT_EQ(pool.live(), 0u);
  // No node was lost: the sweep recovers every magazine's inventory.
  std::size_t count = 0;
  while (pool.allocate() != nullptr) ++count;
  EXPECT_EQ(count, kCap);
}

TEST(MagazinePool, ConcurrentRefillChainDetachStress) {
  // Many threads hammering refills against a small shared list: the
  // allocate_chain detach validates every link under the EBR-guard ABA
  // argument in node_pool.hpp. ASan/TSan runs of this test are the
  // sanitizer coverage for that walk.
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr std::size_t kCap = 48;
  MagazinePool pool(16, kCap, /*batch=*/4);
  std::atomic<std::uint64_t> served{0};
  {
    EbrDomain domain;
    dcd::util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        barrier.arrive_and_wait();
        for (int i = 0; i < kIters; ++i) {
          EbrDomain::Guard guard(domain);
          void* p = pool.allocate();
          if (p != nullptr) {
            served.fetch_add(1, std::memory_order_relaxed);
            domain.retire(p, MagazinePool::deallocate_cb, &pool);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(pool.live(), 0u);
  std::size_t count = 0;
  while (pool.allocate() != nullptr) ++count;
  EXPECT_EQ(count, kCap);
}

}  // namespace
