// Telemetry exactness (single-threaded, so counts are deterministic) —
// E3's "extra DCAS per pop" claim depends on these counters being right.
#include <gtest/gtest.h>

#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/telemetry.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"

namespace {

using namespace dcd::dcas;
using dcd::deque::ArrayDeque;
using dcd::deque::ListDeque;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

TEST(Telemetry, LoadsAreCounted) {
  Word w(val(1));
  Telemetry::reset();
  for (int i = 0; i < 10; ++i) (void)GlobalLockDcas::load(w);
  EXPECT_EQ(Telemetry::snapshot().loads, 10u);
}

TEST(Telemetry, ResetZeroesEverything) {
  Word a(val(1)), b(val(2));
  (void)GlobalLockDcas::dcas(a, b, val(1), val(2), val(1), val(2));
  Telemetry::reset();
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 0u);
  EXPECT_EQ(c.loads, 0u);
  EXPECT_EQ(c.cas_ops, 0u);
}

TEST(Telemetry, ArrayDequeUsesOneDcasPerUncontendedOp) {
  // The paper's baseline cost: one DCAS per successful push or pop.
  ArrayDeque<std::uint64_t, GlobalLockDcas> d(64);
  for (int i = 0; i < 8; ++i) (void)d.push_right(i + 1);
  Telemetry::reset();
  for (int i = 0; i < 100; ++i) {
    (void)d.push_right(5);
    (void)d.pop_right();
  }
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 200u);
  EXPECT_EQ(c.dcas_failures, 0u);
}

TEST(Telemetry, ListDequePopCostsAnExtraDcas) {
  // §1.2: "The cost of this splitting technique is an extra DCAS per pop."
  // Steady-state LIFO traffic: push = 1 DCAS, pop = 1 (logical delete)
  // + 1 more in the next same-side op (physical delete) => 3 per pair.
  ListDeque<std::uint64_t, GlobalLockDcas> d(1 << 10);
  for (int i = 0; i < 8; ++i) (void)d.push_right(i + 1);
  (void)d.push_right(9);
  (void)d.pop_right();  // prime: leave a pending deletion
  Telemetry::reset();
  for (int i = 0; i < 100; ++i) {
    (void)d.push_right(5);  // deletes the pending null node (+1), pushes (+1)
    (void)d.pop_right();    // logical delete (+1)
  }
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 300u);
  EXPECT_EQ(c.dcas_failures, 0u);
}

TEST(Telemetry, EmptyPopOnListIsDcasFree) {
  // Contrast with the array deque: a clean-empty list pop returns after
  // two loads (sentinel pointer + sentL value) — no DCAS at all.
  ListDeque<std::uint64_t, GlobalLockDcas> d(64);
  Telemetry::reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(d.pop_right().has_value());
    EXPECT_FALSE(d.pop_left().has_value());
  }
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 0u);
}

TEST(Telemetry, EmptyPopOnArrayCostsAConfirmingDcas) {
  ArrayDeque<std::uint64_t, GlobalLockDcas> d(64);
  Telemetry::reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(d.pop_right().has_value());
  }
  EXPECT_EQ(Telemetry::snapshot().dcas_calls, 50u);
}

TEST(Telemetry, McasCountsDescriptorsAndInternalCas) {
  Word a(val(1)), b(val(2));
  Telemetry::reset();
  ASSERT_TRUE(McasDcas::dcas(a, b, val(1), val(2), val(3), val(4)));
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 1u);
  // 1 MCAS descriptor + 2 RDCSS descriptors.
  EXPECT_EQ(c.descriptors, 3u);
  // Phase 1: 2 RDCSS installs + 2 completes; decision CAS; phase 2: 2.
  EXPECT_GE(c.cas_ops, 7u);
}

}  // namespace
