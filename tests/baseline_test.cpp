// Baseline deques: sequential semantics + concurrent conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/baseline/spin_deque.hpp"
#include "dcd/baseline/two_lock_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/verify/driver.hpp"

namespace {

using namespace dcd::baseline;
using dcd::deque::PushResult;

template <typename D>
class FullApiBaselineTest : public ::testing::Test {
 protected:
  using Deque = D;
};

using FullApiDeques =
    ::testing::Types<MutexDeque<std::uint64_t>, SpinDeque<std::uint64_t>,
                     TwoLockDeque<std::uint64_t>>;
TYPED_TEST_SUITE(FullApiBaselineTest, FullApiDeques);

TYPED_TEST(FullApiBaselineTest, PaperExampleTrace) {
  typename TestFixture::Deque d(8);
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(FullApiBaselineTest, Boundaries) {
  typename TestFixture::Deque d(2);
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kFull);
  EXPECT_EQ(d.pop_right(), 1u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(FullApiBaselineTest, ConcurrentConservation) {
  typename TestFixture::Deque d(1 << 12);
  dcd::verify::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 4000;
  cfg.seed = 7;
  const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
  ASSERT_GE(net, 0);
  std::int64_t drained = 0;
  while (d.pop_left().has_value()) ++drained;
  EXPECT_EQ(drained, net);
}

TYPED_TEST(FullApiBaselineTest, NoLossUnderProducersConsumers) {
  typename TestFixture::Deque d(1 << 12);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 2000;
  std::atomic<std::uint64_t> pops{0};
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPer; ++i) {
        if (t % 2 == 0) {
          while (d.push_right(i) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        } else {
          if ((t % 4 == 1 ? d.pop_left() : d.pop_right()).has_value()) {
            pops.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::uint64_t residue = 0;
  while (d.pop_left().has_value()) ++residue;
  EXPECT_EQ(pops.load() + residue, (kThreads / 2) * kPer);
}

// --- AroraDeque (restricted API) ------------------------------------------

TEST(AroraDeque, OwnerLifoOrder) {
  AroraDeque<std::uint64_t> d(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.push_bottom(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 10; i-- > 0;) {
    ASSERT_EQ(d.pop_bottom(), i);
  }
  EXPECT_FALSE(d.pop_bottom().has_value());
}

TEST(AroraDeque, StealTakesOldest) {
  AroraDeque<std::uint64_t> d(64);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(d.push_bottom(i), PushResult::kOkay);
  }
  EXPECT_EQ(d.steal(), 0u);
  EXPECT_EQ(d.steal(), 1u);
  EXPECT_EQ(d.pop_bottom(), 3u);
  EXPECT_EQ(d.pop_bottom(), 2u);
  EXPECT_FALSE(d.pop_bottom().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(AroraDeque, FullWhenCapacityReached) {
  AroraDeque<std::uint64_t> d(2);
  EXPECT_EQ(d.push_bottom(1), PushResult::kOkay);
  EXPECT_EQ(d.push_bottom(2), PushResult::kOkay);
  EXPECT_EQ(d.push_bottom(3), PushResult::kFull);
  EXPECT_EQ(d.steal(), 1u);
  EXPECT_EQ(d.push_bottom(3), PushResult::kOkay);
}

TEST(AroraDeque, OwnerVsThievesExactlyOnce) {
  constexpr std::uint64_t kItems = 20000;
  constexpr int kThieves = 3;
  AroraDeque<std::uint64_t> d(1 << 12);
  std::vector<std::vector<std::uint64_t>> stolen(kThieves);
  std::vector<std::uint64_t> kept;
  std::atomic<bool> done{false};
  dcd::util::SpinBarrier barrier(kThieves + 1);

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      barrier.arrive_and_wait();
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = d.steal()) stolen[t].push_back(*v);
      }
      while (auto v = d.steal()) stolen[t].push_back(*v);
    });
  }
  std::thread owner([&] {
    barrier.arrive_and_wait();
    dcd::util::Xoshiro256 rng(3);
    std::uint64_t next = 0;
    while (next < kItems) {
      if (rng.chance(2, 3)) {
        if (d.push_bottom(next) == PushResult::kOkay) ++next;
      } else if (auto v = d.pop_bottom()) {
        kept.push_back(*v);
      }
    }
    done.store(true, std::memory_order_release);
  });
  owner.join();
  for (auto& t : thieves) t.join();

  std::map<std::uint64_t, int> counts;
  // Thieves stop on a failed CAS, which can be spurious; drain the residue
  // from the (now quiesced) owner end.
  while (auto v = d.pop_bottom()) ++counts[*v];
  for (const std::uint64_t v : kept) ++counts[v];
  for (auto& vec : stolen) {
    for (const std::uint64_t v : vec) ++counts[v];
  }
  EXPECT_EQ(counts.size(), kItems);
  for (const auto& [v, n] : counts) {
    ASSERT_EQ(n, 1) << "item " << v << " seen " << n << " times";
  }
}

}  // namespace
