// The workload driver itself: recorded histories must be well-formed
// before we trust what the checker says about them.
#include <gtest/gtest.h>

#include <set>

#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::verify;

TEST(Driver, ProducesExactlyTheRequestedOps) {
  dcd::baseline::MutexDeque<std::uint64_t> d(64);
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 20;
  cfg.seed = 5;
  const History h = run_recorded(d, cfg);
  EXPECT_EQ(h.ops.size(), cfg.threads * cfg.ops_per_thread);
}

TEST(Driver, TicketsAreUniqueAndOrdered) {
  dcd::baseline::MutexDeque<std::uint64_t> d(64);
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 25;
  cfg.seed = 6;
  const History h = run_recorded(d, cfg);
  std::set<std::uint64_t> tickets;
  for (const Operation& op : h.ops) {
    EXPECT_LT(op.invoke_seq, op.response_seq);
    EXPECT_TRUE(tickets.insert(op.invoke_seq).second);
    EXPECT_TRUE(tickets.insert(op.response_seq).second);
  }
}

TEST(Driver, PushedValuesAreGloballyUnique) {
  dcd::baseline::MutexDeque<std::uint64_t> d(1 << 10);
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 50;
  cfg.seed = 7;
  cfg.pop_right = 0;  // pushes only
  cfg.pop_left = 0;
  const History h = run_recorded(d, cfg);
  std::set<std::uint64_t> values;
  for (const Operation& op : h.ops) {
    ASSERT_TRUE(op.type == OpType::kPushRight ||
                op.type == OpType::kPushLeft);
    EXPECT_TRUE(values.insert(op.arg).second) << "duplicate value";
  }
}

TEST(Driver, WeightsSteerTheMix) {
  dcd::baseline::MutexDeque<std::uint64_t> d(1 << 10);
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 200;
  cfg.seed = 8;
  cfg.push_right = 1;
  cfg.push_left = 0;
  cfg.pop_right = 0;
  cfg.pop_left = 1;
  const History h = run_recorded(d, cfg);
  for (const Operation& op : h.ops) {
    EXPECT_TRUE(op.type == OpType::kPushRight || op.type == OpType::kPopLeft)
        << op.describe();
  }
}

TEST(Driver, UnrecordedNetMatchesResidue) {
  dcd::baseline::MutexDeque<std::uint64_t> d(1 << 10);
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 500;
  cfg.seed = 9;
  const std::int64_t net = run_unrecorded(d, cfg);
  std::int64_t residue = 0;
  while (d.pop_left()) ++residue;
  EXPECT_EQ(residue, net);
}

TEST(Driver, DescribeIsHumanReadable) {
  Operation op;
  op.type = OpType::kPushRight;
  op.arg = 42;
  op.push_ok = true;
  op.invoke_seq = 1;
  op.response_seq = 2;
  EXPECT_EQ(op.describe(), "pushRight(42) -> okay [1,2]");
  op.type = OpType::kPopLeft;
  op.pop_has_value = false;
  EXPECT_EQ(op.describe(), "popLeft() -> empty [1,2]");
}

}  // namespace
