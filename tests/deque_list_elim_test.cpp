// Elimination layer (DESIGN.md §13): protocol unit tests on the slot
// state machine, the zero-cost-when-uncontended guarantee, and recorded
// linearizability of the list deque with same-end elimination enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "dcd/dcas/telemetry.hpp"
#include "dcd/deque/elimination.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd;
using dcas::GlobalLockDcas;
using dcas::StripedLockDcas;
using deque::EliminationEnd;
using deque::ListDeque;
using deque::ListOptions;
using deque::PushResult;
using reclaim::EbrReclaim;
using reclaim::MagazinePool;

constexpr ListOptions kElim{.elimination = true,
                            .elim_slots = 2,
                            .elim_polls = 64};

template <dcas::DcasPolicy P>
using ElimDeque = ListDeque<std::uint64_t, P, EbrReclaim, MagazinePool, kElim>;

std::uint64_t word_of(std::uint64_t v) { return v << dcas::kPayloadShift; }

// --- slot protocol ----------------------------------------------------------

TEST(ListElimProtocol, UnclaimedOfferCancelsAndLeavesSlotEmpty) {
  EliminationEnd<GlobalLockDcas> end;
  // No popper: the offer must time out, cancel, and report failure...
  EXPECT_FALSE(end.offer(word_of(42), /*slots=*/2, /*polls=*/4));
  // ...leaving every slot back at kNull — nothing for a later take.
  std::uint64_t taken = 0;
  EXPECT_FALSE(end.take(/*slots=*/2, &taken));
}

TEST(ListElimProtocol, TakeOnEmptySlotsFails) {
  EliminationEnd<GlobalLockDcas> end;
  std::uint64_t taken = 0;
  EXPECT_FALSE(end.take(/*slots=*/1, &taken));
}

TEST(ListElimProtocol, HandshakeTransfersValueExactlyOnce) {
  // A pusher spinning offers against a popper spinning takes: the value
  // must transfer exactly once, with both sides reporting success.
  EliminationEnd<GlobalLockDcas> end;
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    while (!end.offer(word_of(7), /*slots=*/1, /*polls=*/128)) {
    }
    pushed.store(true, std::memory_order_release);
  });
  std::uint64_t taken = 0;
  while (!end.take(/*slots=*/1, &taken)) {
  }
  pusher.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(taken, word_of(7));
  // The pusher's clear completed: the slot is reusable.
  std::uint64_t again = 0;
  EXPECT_FALSE(end.take(/*slots=*/1, &again));
}

// --- uncontended cost -------------------------------------------------------

TEST(ListElimDeque, SingleThreadedPathIssuesNoEliminationCas) {
  // Acceptance gate: enabling the layer adds zero primitive operations
  // when DCASes don't fail. Single-threaded, every DCAS succeeds first
  // try, so the elimination branches are never reached — the single-word
  // CAS counter must not move at all, and the DCAS count must match the
  // elimination-free instantiation op for op.
  using Plain = ListDeque<std::uint64_t, GlobalLockDcas, EbrReclaim,
                          MagazinePool, ListOptions{}>;
  const auto workload = [](auto& d) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      ASSERT_EQ(d.push_right(i), PushResult::kOkay);
      ASSERT_EQ(d.push_left(i), PushResult::kOkay);
    }
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(d.pop_left().has_value());
      ASSERT_TRUE(d.pop_right().has_value());
    }
  };

  const dcas::Counters before_plain = dcas::Telemetry::snapshot();
  {
    Plain d(256);
    workload(d);
  }
  const dcas::Counters mid = dcas::Telemetry::snapshot();
  {
    ElimDeque<GlobalLockDcas> d(256);
    workload(d);
  }
  const dcas::Counters after = dcas::Telemetry::snapshot();

  EXPECT_EQ(after.cas_ops - mid.cas_ops, 0u)
      << "uncontended elimination must not issue single-word CASes";
  EXPECT_EQ(after.dcas_calls - mid.dcas_calls,
            mid.dcas_calls - before_plain.dcas_calls)
      << "enabling elimination changed the uncontended DCAS count";
}

// --- recorded linearizability under same-end contention ---------------------

template <typename P>
class ListElimLinTest : public ::testing::Test {
 protected:
  void check_rounds(const verify::WorkloadConfig& base, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      ElimDeque<P> d(1 << 12);
      verify::WorkloadConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(r) * 7919;
      const verify::History h = verify::run_recorded(d, cfg);
      const verify::CheckResult res =
          verify::check_linearizable(h, verify::SpecDeque::kUnbounded);
      ASSERT_EQ(res.verdict, verify::Verdict::kLinearizable)
          << "round " << r << " (seed " << cfg.seed << "): " << res.message;
    }
  }
};

using ElimPolicies = ::testing::Types<GlobalLockDcas, StripedLockDcas>;
TYPED_TEST_SUITE(ListElimLinTest, ElimPolicies);

TYPED_TEST(ListElimLinTest, RightEndOnlyMaximisesElimination) {
  // All traffic on one end: every failed DCAS has a same-end partner in
  // backoff, so eliminated pairs are as frequent as the workload allows.
  verify::WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 10;
  cfg.seed = 44;
  cfg.push_right = 4;
  cfg.pop_right = 4;
  cfg.push_left = 0;
  cfg.pop_left = 0;
  this->check_rounds(cfg, 40);
}

TYPED_TEST(ListElimLinTest, MixedEndsStayLinearizable) {
  verify::WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 9;
  cfg.seed = 55;
  this->check_rounds(cfg, 30);
}

}  // namespace
