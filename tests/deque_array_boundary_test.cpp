// ArrayDeque boundary behaviour: the empty/full cases of Figures 4, 6, 8.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/array_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ArrayBoundaryTest : public ::testing::Test {
 protected:
  using Deque = ArrayDeque<std::uint64_t, P>;
  // Variant without the optional fragments: only the weak DCAS form.
  using WeakDeque =
      ArrayDeque<std::uint64_t, P, ArrayOptions{false, false}>;
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ArrayBoundaryTest, Policies);

TYPED_TEST(ArrayBoundaryTest, FullFromBothEnds) {
  typename TestFixture::Deque d(6);
  // Figure 8: fill from both sides until L and R cross.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(d.push_right(100 + i), PushResult::kOkay);
    ASSERT_EQ(d.push_left(200 + i), PushResult::kOkay);
  }
  EXPECT_EQ(d.size_unsynchronized(), 6u);
  EXPECT_EQ(d.push_right(999), PushResult::kFull);
  EXPECT_EQ(d.push_left(999), PushResult::kFull);
  // Deque is <202 201 200 100 101 102>.
  EXPECT_EQ(d.pop_left(), 202u);
  EXPECT_EQ(d.pop_right(), 102u);
  // After popping, pushes succeed again.
  EXPECT_EQ(d.push_right(300), PushResult::kOkay);
  EXPECT_EQ(d.push_left(301), PushResult::kOkay);
  EXPECT_EQ(d.push_right(999), PushResult::kFull);
}

TYPED_TEST(ArrayBoundaryTest, FillUntilCrossAndDrain) {
  // Figure 8's wrapped-full state: L ends up "to the right" of R until the
  // deque fills, then they cross again. We verify via index accessors.
  typename TestFixture::Deque d(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
  }
  // Full: R == L+1 (mod n) and every cell non-null.
  const std::size_t l = d.left_index_unsynchronized();
  const std::size_t r = d.right_index_unsynchronized();
  EXPECT_EQ(r, (l + 1) % d.capacity());
  EXPECT_EQ(d.size_unsynchronized(), 8u);
  // Drain from the right: values come out 0,1,...  (they were pushed left).
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(d.pop_right(), i);
  }
  // Empty: R == L+1 (mod n) again — contents disambiguate (Figure 4).
  const std::size_t l2 = d.left_index_unsynchronized();
  const std::size_t r2 = d.right_index_unsynchronized();
  EXPECT_EQ(r2, (l2 + 1) % d.capacity());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

TYPED_TEST(ArrayBoundaryTest, EmptyAfterDrainFromEitherEnd) {
  typename TestFixture::Deque d(4);
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 1u);
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
  ASSERT_EQ(d.push_left(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 2u);
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ArrayBoundaryTest, FullReturnLeavesStateIntact) {
  typename TestFixture::Deque d(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(d.push_right(99), PushResult::kFull);
    EXPECT_EQ(d.push_left(99), PushResult::kFull);
  }
  EXPECT_EQ(d.pop_left(), 0u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 2u);
}

TYPED_TEST(ArrayBoundaryTest, EmptyReturnLeavesStateIntact) {
  typename TestFixture::Deque d(3);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_FALSE(d.pop_left().has_value());
    EXPECT_FALSE(d.pop_right().has_value());
  }
  ASSERT_EQ(d.push_right(5), PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), 5u);
}

TYPED_TEST(ArrayBoundaryTest, CapacityOneFullEmptyTransitions) {
  // The degenerate deque: one live cell, so every successful push makes it
  // full and every successful pop makes it empty — the empty and full
  // boundary DCASes (lines 8-10 of Figures 2/3) fire on every operation.
  typename TestFixture::Deque d(1);
  ASSERT_TRUE(d.check_rep_inv_unsynchronized());
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
  ASSERT_TRUE(d.check_rep_inv_unsynchronized());
  // Push/pop through full/empty from all four end combinations.
  struct Step {
    bool push_right_end;
    bool pop_right_end;
  };
  const Step steps[] = {{true, true}, {true, false},
                        {false, true}, {false, false}};
  std::uint64_t v = 100;
  for (const Step s : steps) {
    ASSERT_EQ(s.push_right_end ? d.push_right(v) : d.push_left(v),
              PushResult::kOkay);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(d.size_unsynchronized(), 1u);
    // Full from both ends.
    EXPECT_EQ(d.push_right(999), PushResult::kFull);
    EXPECT_EQ(d.push_left(999), PushResult::kFull);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(s.pop_right_end ? d.pop_right() : d.pop_left(), v);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(d.size_unsynchronized(), 0u);
    // Empty from both ends.
    EXPECT_FALSE(d.pop_right().has_value());
    EXPECT_FALSE(d.pop_left().has_value());
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    ++v;
  }
}

TYPED_TEST(ArrayBoundaryTest, CapacityTwoFullEmptyTransitions) {
  // Capacity 2: the smallest deque where both elements coexist, so FIFO
  // vs LIFO end behaviour is observable while L and R wrap on every
  // other operation.
  typename TestFixture::Deque d(2);
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(d.push_right(1), PushResult::kOkay);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    ASSERT_EQ(d.push_left(2), PushResult::kOkay);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(d.size_unsynchronized(), 2u);
    EXPECT_EQ(d.push_right(999), PushResult::kFull);
    EXPECT_EQ(d.push_left(999), PushResult::kFull);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    // Deque is <2 1>: drain alternating ends across rounds.
    if (round % 2 == 0) {
      EXPECT_EQ(d.pop_left(), 2u);
      ASSERT_TRUE(d.check_rep_inv_unsynchronized());
      EXPECT_EQ(d.pop_left(), 1u);
    } else {
      EXPECT_EQ(d.pop_right(), 1u);
      ASSERT_TRUE(d.check_rep_inv_unsynchronized());
      EXPECT_EQ(d.pop_right(), 2u);
    }
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(d.size_unsynchronized(), 0u);
    EXPECT_FALSE(d.pop_right().has_value());
    EXPECT_FALSE(d.pop_left().has_value());
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
  }
}

TYPED_TEST(ArrayBoundaryTest, CapacityOneWeakFormTransitions) {
  // Same degenerate bound without the optional fragments: empty/full must
  // still be detected through the boolean DCAS alone.
  typename TestFixture::WeakDeque d(1);
  for (int round = 0; round < 4; ++round) {
    EXPECT_FALSE(d.pop_right().has_value());
    ASSERT_EQ(d.push_left(7), PushResult::kOkay);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
    EXPECT_EQ(d.push_right(8), PushResult::kFull);
    EXPECT_EQ(d.pop_right(), 7u);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
  }
}

TYPED_TEST(ArrayBoundaryTest, WeakFormHandlesBoundariesToo) {
  // Without lines 17-18 (and line 7) the algorithm must still detect
  // empty/full — just with extra loop iterations (§3).
  typename TestFixture::WeakDeque d(3);
  EXPECT_FALSE(d.pop_right().has_value());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
  }
  EXPECT_EQ(d.push_left(9), PushResult::kFull);
  EXPECT_EQ(d.push_right(9), PushResult::kFull);
  EXPECT_EQ(d.pop_right(), 0u);
  EXPECT_EQ(d.pop_right(), 1u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ArrayBoundaryTest, AlternatingFullEmptyCycles) {
  typename TestFixture::Deque d(2);
  for (int round = 0; round < 50; ++round) {
    ASSERT_EQ(d.push_right(1), PushResult::kOkay);
    ASSERT_EQ(d.push_left(2), PushResult::kOkay);
    ASSERT_EQ(d.push_right(3), PushResult::kFull);
    ASSERT_EQ(d.pop_right(), 1u);
    ASSERT_EQ(d.pop_right(), 2u);
    ASSERT_FALSE(d.pop_right().has_value());
  }
}

}  // namespace
