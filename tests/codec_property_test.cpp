// Property-style round-trips over the word codec, ValueCodec, and the
// tagged-pool version arithmetic — the encodings pass 8 of the static
// analyzer assumes (see the [[codec.helper]] rows in
// tools/analyze/contracts.toml, whose tested_by keys point here).
//
// "Property-style" without a fuzzing dependency: a fixed splitmix64
// stream gives a deterministic sample of the payload space on top of the
// closed-form extremes (0, 1, kMaxPayload, sign boundaries, tag
// wraparound at UINT64_MAX).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dcd/dcas/cmpxchg16b.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/reclaim/tagged_pool.hpp"

namespace {

namespace dw = dcd::dcas;
using dcd::deque::ValueCodec;

// Deterministic 64-bit stream (Steele et al., "Fast splittable
// pseudorandom number generators") — no global RNG state, identical on
// every run and platform.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr int kSamples = 4096;

TEST(CodecProperty, PayloadRoundTripExtremesAndSamples) {
  std::vector<std::uint64_t> payloads = {0, 1, 2, dw::kMaxPayload - 1,
                                         dw::kMaxPayload};
  std::uint64_t s = 1;
  for (int i = 0; i < kSamples; ++i) {
    payloads.push_back(splitmix64(s) & dw::kMaxPayload);
  }
  for (std::uint64_t p : payloads) {
    const std::uint64_t w = dw::encode_payload(p);
    EXPECT_EQ(dw::decode_payload(w), p);
    // Payload words keep the reserved low bits clear: they can never be
    // mistaken for a descriptor, a deleted pointer, or a special.
    EXPECT_EQ(w & (dw::kDescriptorBit | dw::kDeletedBit | dw::kSpecialBit),
              0u);
    EXPECT_FALSE(dw::is_descriptor(w));
    EXPECT_FALSE(dw::is_special(w));
    EXPECT_FALSE(dw::deleted_of(w));
  }
}

TEST(CodecProperty, PointerWordRoundTrip) {
  alignas(64) static std::uint64_t slab[kSamples];
  for (int i = 0; i < kSamples; ++i) {
    auto* p = &slab[i];
    for (bool deleted : {false, true}) {
      const std::uint64_t w = dw::encode_pointer(p, deleted);
      EXPECT_EQ(dw::pointer_of<std::uint64_t>(w), p);
      EXPECT_EQ(dw::deleted_of(w), deleted);
      EXPECT_EQ(dw::pointer_of<std::uint64_t>(dw::clear_deleted(w)), p);
      EXPECT_FALSE(dw::deleted_of(dw::clear_deleted(w)));
    }
  }
}

TEST(CodecProperty, SentinelAndSpecialDisjointness) {
  const std::uint64_t specials[] = {dw::kNull, dw::kSentL, dw::kSentR,
                                    dw::kDummy, dw::kElimTaken};
  for (std::size_t i = 0; i < std::size(specials); ++i) {
    EXPECT_TRUE(dw::is_special(specials[i]));
    EXPECT_FALSE(dw::is_descriptor(specials[i]));
    EXPECT_FALSE(dw::deleted_of(specials[i]));
    for (std::size_t j = i + 1; j < std::size(specials); ++j) {
      EXPECT_NE(specials[i], specials[j]);
    }
  }
  EXPECT_TRUE(dw::is_null(dw::kNull));
  EXPECT_FALSE(dw::is_null(dw::kSentL));
}

TEST(CodecProperty, ElimOfferRoundTrip) {
  std::uint64_t s = 2;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t value = dw::encode_payload(splitmix64(s) &
                                                   dw::kMaxPayload);
    const std::uint64_t offer = dw::encode_elim_offer(value);
    EXPECT_TRUE(dw::is_elim_offer(offer));
    EXPECT_EQ(dw::elim_offer_value(offer), value);
    // An offer is never confusable with the slot's other states.
    EXPECT_FALSE(dw::is_special(offer));
    EXPECT_FALSE(dw::is_descriptor(offer));
    EXPECT_FALSE(dw::is_elim_offer(dw::kNull));
    EXPECT_FALSE(dw::is_elim_offer(dw::kElimTaken));
    EXPECT_FALSE(dw::is_elim_offer(value));
  }
}

TEST(CodecProperty, ValueCodecUnsignedExtremes) {
  using C = ValueCodec<std::uint64_t>;
  std::vector<std::uint64_t> vals = {0, 1, dw::kMaxPayload - 1,
                                     dw::kMaxPayload};
  std::uint64_t s = 3;
  for (int i = 0; i < kSamples; ++i) {
    vals.push_back(splitmix64(s) & dw::kMaxPayload);
  }
  for (std::uint64_t v : vals) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    EXPECT_FALSE(dw::is_special(w));
  }
}

TEST(CodecProperty, ValueCodecSignedZigZagExtremes) {
  using C = ValueCodec<std::int64_t>;
  // Zig-zag headroom: |v| <= 2^60 fits the 61-bit payload.
  const std::int64_t lo = -(1ll << 60);
  const std::int64_t hi = (1ll << 60) - 1;
  std::vector<std::int64_t> vals = {0, 1, -1, 2, -2, hi, hi - 1, lo, lo + 1};
  std::uint64_t s = 4;
  for (int i = 0; i < kSamples; ++i) {
    // Sample the full legal range by zig-zag-decoding a payload sample.
    const std::uint64_t zz = splitmix64(s) & dw::kMaxPayload;
    vals.push_back(static_cast<std::int64_t>(zz >> 1) ^
                   -static_cast<std::int64_t>(zz & 1));
  }
  for (std::int64_t v : vals) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    // Negative values map to odd payloads, positives to even: the order
    // embedding is injective either way, so distinct values cannot alias.
    EXPECT_EQ(w & (dw::kDescriptorBit | dw::kDeletedBit | dw::kSpecialBit),
              0u);
  }
}

TEST(CodecProperty, ValueCodecPointerRoundTrip) {
  alignas(64) static int slab[kSamples * 2];
  using C = ValueCodec<int*>;
  for (int i = 0; i < kSamples; ++i) {
    int* p = &slab[i * 2];  // 8-aligned: two ints per slot
    EXPECT_EQ(C::decode(C::encode(p)), p);
  }
  EXPECT_EQ(C::decode(C::encode(static_cast<int*>(nullptr))), nullptr);
}

#if defined(__x86_64__)
// The tagged pool's ABA defense is `tag + 1` on every head swing, with
// the tag stored as the `hi` half of a cmpxchg16b pair. Unsigned
// wraparound at UINT64_MAX is part of the contract: after the wrap the
// tag is 0 again, and a reader holding the pre-wrap tag must fail its
// DCAS exactly as for any other stale tag.
TEST(CodecProperty, TaggedPairVersionWraparound) {
  if (!dw::Cmpxchg16bDcas::available()) GTEST_SKIP();
  dw::AdjacentPair pair;
  pair.lo.store(0x1000, std::memory_order_relaxed);
  pair.hi.store(~0ull, std::memory_order_relaxed);  // tag at UINT64_MAX

  std::uint64_t head = 0, tag = 0;
  dw::Cmpxchg16bDcas::read(pair, head, tag);
  EXPECT_EQ(head, 0x1000u);
  EXPECT_EQ(tag, ~0ull);

  // The swing the pool's allocate() performs: {head, tag} -> {next, tag+1}.
  EXPECT_TRUE(dw::Cmpxchg16bDcas::dcas(pair, head, tag, 0x2000, tag + 1));
  dw::Cmpxchg16bDcas::read(pair, head, tag);
  EXPECT_EQ(head, 0x2000u);
  EXPECT_EQ(tag, 0u);  // wrapped, not saturated

  // A stale reader still holding the pre-wrap tag loses.
  EXPECT_FALSE(dw::Cmpxchg16bDcas::dcas(pair, 0x2000, ~0ull, 0x3000, 0));
  // The post-wrap tag sequence continues normally.
  EXPECT_TRUE(dw::Cmpxchg16bDcas::dcas(pair, 0x2000, 0, 0x3000, 1));
}
#endif  // defined(__x86_64__)

// Recycling through the real pool: every allocate/deallocate advances the
// version, and recycled storage is handed back usable regardless of how
// often a slot has cycled.
TEST(CodecProperty, TaggedNodePoolRecycleSweep) {
  constexpr std::size_t kCap = 8;
  dcd::reclaim::TaggedNodePool pool(sizeof(std::uint64_t), kCap);
  for (int round = 0; round < 1000; ++round) {
    std::vector<void*> held;
    for (std::size_t i = 0; i < kCap; ++i) {
      void* p = pool.allocate();
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(pool.owns(p));
      *static_cast<std::uint64_t*>(p) = round;  // storage must be writable
      held.push_back(p);
    }
    EXPECT_EQ(pool.allocate(), nullptr);  // exhausted exactly at capacity
    for (void* p : held) pool.deallocate(p);
  }
}

}  // namespace
