// Differential testing: long random sequential op sequences applied in
// lock-step to an implementation and to SpecDeque (§2.2) must agree on
// every result, and the implementation's representation invariant must
// hold after every operation. Parameterised over seeds (property-style
// sweep) and implementations.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/baseline/packed_ends_deque.hpp"
#include "dcd/baseline/spin_deque.hpp"
#include "dcd/baseline/two_lock_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/deque/list_deque_dummy.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/verify/spec_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::verify::SpecDeque;

// Drives `impl` and the spec together. `check_inv` validates the
// implementation's RepInv after each op (empty hook where unavailable).
template <typename D, typename CheckInv>
void run_differential(D& impl, SpecDeque& spec, std::uint64_t seed,
                      std::size_t ops, CheckInv check_inv) {
  dcd::util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t v = 1 + rng.below(1u << 20);
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(impl.push_right(v), spec.push_right(v)) << "op " << i;
        break;
      case 1:
        ASSERT_EQ(impl.push_left(v), spec.push_left(v)) << "op " << i;
        break;
      case 2:
        ASSERT_EQ(impl.pop_right(), spec.pop_right()) << "op " << i;
        break;
      default:
        ASSERT_EQ(impl.pop_left(), spec.pop_left()) << "op " << i;
        break;
    }
    if (i % 7 == 0) {
      ASSERT_TRUE(check_inv()) << "RepInv broken after op " << i;
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST_P(DifferentialTest, ArrayDequeAllPolicies) {
  for (const std::size_t cap : {1u, 2u, 5u, 32u}) {
    {
      ArrayDeque<std::uint64_t, GlobalLockDcas> d(cap);
      SpecDeque spec(cap);
      run_differential(d, spec, GetParam() * 31 + cap, 3000, [&] {
        return d.check_rep_inv_unsynchronized();
      });
    }
    {
      ArrayDeque<std::uint64_t, StripedLockDcas> d(cap);
      SpecDeque spec(cap);
      run_differential(d, spec, GetParam() * 37 + cap, 2000, [&] {
        return d.check_rep_inv_unsynchronized();
      });
    }
    {
      ArrayDeque<std::uint64_t, McasDcas> d(cap);
      SpecDeque spec(cap);
      run_differential(d, spec, GetParam() * 41 + cap, 1000, [&] {
        return d.check_rep_inv_unsynchronized();
      });
    }
  }
}

TEST_P(DifferentialTest, ArrayDequeOptionMatrix) {
  constexpr ArrayOptions kNeither{false, false};
  constexpr ArrayOptions kRecheckOnly{true, false};
  constexpr ArrayOptions kViewOnly{false, true};
  {
    ArrayDeque<std::uint64_t, GlobalLockDcas, kNeither> d(4);
    SpecDeque spec(4);
    run_differential(d, spec, GetParam() * 43, 2500, [&] {
      return d.check_rep_inv_unsynchronized();
    });
  }
  {
    ArrayDeque<std::uint64_t, GlobalLockDcas, kRecheckOnly> d(4);
    SpecDeque spec(4);
    run_differential(d, spec, GetParam() * 47, 2500, [&] {
      return d.check_rep_inv_unsynchronized();
    });
  }
  {
    ArrayDeque<std::uint64_t, McasDcas, kViewOnly> d(4);
    SpecDeque spec(4);
    run_differential(d, spec, GetParam() * 53, 1000, [&] {
      return d.check_rep_inv_unsynchronized();
    });
  }
}

TEST_P(DifferentialTest, ListDequeUnbounded) {
  {
    ListDeque<std::uint64_t, GlobalLockDcas> d(1 << 14);
    SpecDeque spec(SpecDeque::kUnbounded);
    run_differential(d, spec, GetParam() * 59, 3000, [&] {
      return d.check_rep_inv_unsynchronized();
    });
  }
  {
    ListDeque<std::uint64_t, McasDcas> d(1 << 14);
    SpecDeque spec(SpecDeque::kUnbounded);
    run_differential(d, spec, GetParam() * 61, 1500, [&] {
      return d.check_rep_inv_unsynchronized();
    });
  }
}

TEST_P(DifferentialTest, ListDequeDummyVariant) {
  ListDequeDummy<std::uint64_t, GlobalLockDcas> d(1 << 14);
  SpecDeque spec(SpecDeque::kUnbounded);
  run_differential(d, spec, GetParam() * 67, 3000,
                   [&] { return d.check_rep_inv_unsynchronized(); });
}

TEST_P(DifferentialTest, PackedEndsDeque) {
  dcd::baseline::PackedEndsDeque<std::uint64_t, GlobalLockDcas> d(5);
  SpecDeque spec(5);
  run_differential(d, spec, GetParam() * 71, 3000, [&] { return true; });
}

TEST_P(DifferentialTest, Baselines) {
  {
    dcd::baseline::MutexDeque<std::uint64_t> d(6);
    SpecDeque spec(6);
    run_differential(d, spec, GetParam() * 73, 3000, [&] { return true; });
  }
  {
    dcd::baseline::SpinDeque<std::uint64_t> d(6);
    SpecDeque spec(6);
    run_differential(d, spec, GetParam() * 79, 3000, [&] { return true; });
  }
  {
    dcd::baseline::TwoLockDeque<std::uint64_t> d(6);
    SpecDeque spec(6);
    run_differential(d, spec, GetParam() * 83, 3000, [&] { return true; });
  }
}

}  // namespace
