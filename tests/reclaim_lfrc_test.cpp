// LFRC (the authors' [12] methodology): count discipline, the DCAS-based
// load race closure, and the demonstration stack's conservation + absence
// of leaks, across DCAS policies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "dcd/reclaim/lfrc.hpp"
#include "dcd/reclaim/tagged_pool.hpp"
#include "dcd/util/sanitizer.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::reclaim;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

std::atomic<std::int64_t> g_live{0};

template <typename P>
struct Obj {
  dcd::dcas::Word rc;
  dcd::dcas::Word child;  // optional outgoing LFRC slot
  std::uint64_t tag;

  explicit Obj(std::uint64_t t) : tag(t) {
    Lfrc<Obj, P>::init_count(this);
    P::store_init(child, 0);
    g_live.fetch_add(1);
  }
  ~Obj() { g_live.fetch_sub(1); }
  // Heap-backed dispose: fine for the sequential tests, which never race a
  // load against a free (the concurrency test below uses pooled storage,
  // per LFRC's type-stability requirement).
  void lfrc_dispose() {
    Obj* c = Lfrc<Obj, P>::decode(P::load(child));
    P::store_init(child, 0);
    delete this;
    Lfrc<Obj, P>::destroy(c);
  }
};

// Pool-backed object for tests that race loads against frees.
template <typename P>
struct PoolObj {
  dcd::dcas::Word rc;
  std::uint64_t tag;

  static dcd::reclaim::TaggedNodePool& pool() {
    static dcd::reclaim::TaggedNodePool p(sizeof(PoolObj), 1 << 12);
    return p;
  }
  static PoolObj* make(std::uint64_t t) {
    void* raw = pool().allocate();
    if (raw == nullptr) return nullptr;
    // Storage reuse without construction (stale readers may probe rc; all
    // re-init of probed words is atomic).
    auto* o = static_cast<PoolObj*>(raw);
    o->tag = t;
    Lfrc<PoolObj, P>::init_count(o);
    g_live.fetch_add(1);
    return o;
  }
  void lfrc_dispose() {
    g_live.fetch_sub(1);
    tag = 0;
    pool().deallocate(this);
  }
};

template <typename P>
class LfrcTest : public ::testing::Test {
 protected:
  using O = Obj<P>;
  using R = Lfrc<O, P>;

  void SetUp() override { g_live.store(0); }
  void TearDown() override { EXPECT_EQ(g_live.load(), 0) << "leak"; }
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(LfrcTest, Policies);

TYPED_TEST(LfrcTest, CreateDestroy) {
  using R = typename TestFixture::R;
  auto* o = new typename TestFixture::O(1);
  EXPECT_EQ(R::count(o), 1);
  R::destroy(o);
}

TYPED_TEST(LfrcTest, CopyBumpsAndDestroyDrops) {
  using R = typename TestFixture::R;
  auto* o = new typename TestFixture::O(1);
  auto* c = R::copy(o);
  EXPECT_EQ(c, o);
  EXPECT_EQ(R::count(o), 2);
  R::destroy(c);
  EXPECT_EQ(R::count(o), 1);
  R::destroy(o);
}

TYPED_TEST(LfrcTest, LoadFromSlotAcquiresUnit) {
  using R = typename TestFixture::R;
  dcd::dcas::Word slot;
  TypeParam::store_init(slot, 0);
  EXPECT_EQ(R::load(slot), nullptr);

  auto* o = new typename TestFixture::O(7);
  ASSERT_TRUE(R::cas(slot, nullptr, o));  // slot takes its own unit
  EXPECT_EQ(R::count(o), 2);
  auto* l = R::load(slot);
  EXPECT_EQ(l, o);
  EXPECT_EQ(R::count(o), 3);
  R::destroy(l);
  // Clear the slot (drops its unit), then our creation unit.
  ASSERT_TRUE(R::cas(slot, o, nullptr));
  EXPECT_EQ(R::count(o), 1);
  R::destroy(o);
}

TYPED_TEST(LfrcTest, CasFailureRollsBack) {
  using R = typename TestFixture::R;
  auto* a = new typename TestFixture::O(1);
  auto* b = new typename TestFixture::O(2);
  dcd::dcas::Word slot;
  TypeParam::store_init(slot, 0);
  ASSERT_TRUE(R::cas(slot, nullptr, a));
  EXPECT_FALSE(R::cas(slot, b, a));  // expected mismatch
  EXPECT_EQ(R::count(a), 2);
  EXPECT_EQ(R::count(b), 1);
  ASSERT_TRUE(R::cas(slot, a, nullptr));
  R::destroy(a);
  R::destroy(b);
}

TYPED_TEST(LfrcTest, ReleaseCascadesThroughChildren) {
  using R = typename TestFixture::R;
  auto* parent = new typename TestFixture::O(1);
  auto* child = new typename TestFixture::O(2);
  R::store_private(parent->child, child);  // transfers our unit on child
  EXPECT_EQ(R::count(child), 1);
  R::destroy(parent);  // must free both
  EXPECT_EQ(g_live.load(), 0);
}

TYPED_TEST(LfrcTest, ConcurrentLoadersNeverSeeFreedObjects) {
  // Writers continually replace the slot's object; readers LFRC-load and
  // validate a canary. Counts keep every observed object alive; storage is
  // pool-backed (type-stable), as LFRC requires.
  using O = PoolObj<TypeParam>;
  using R = Lfrc<O, TypeParam>;
  dcd::dcas::Word slot;
  TypeParam::store_init(slot, 0);
  {
    auto* first = O::make(0xfeedface);
    ASSERT_TRUE(R::cas(slot, nullptr, first));
    R::destroy(first);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        O* o = R::load(slot);
        if (o != nullptr) {
          if (o->tag != 0xfeedface) bad.fetch_add(1);
          R::destroy(o);
        }
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    auto* fresh = O::make(0xfeedface);
    ASSERT_NE(fresh, nullptr);
    // Swap whatever is there for fresh.
    for (;;) {
      O* cur = R::load(slot);
      const bool ok = R::cas(slot, cur, fresh);
      R::destroy(cur);
      if (ok) break;
    }
    R::destroy(fresh);
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0u);
  // Tear down the slot's final object.
  O* last = R::load(slot);
  ASSERT_TRUE(R::cas(slot, last, nullptr));
  R::destroy(last);
}

// --- the demonstration stack -------------------------------------------------

template <typename P>
class LfrcStackTest : public ::testing::Test {};
TYPED_TEST_SUITE(LfrcStackTest, Policies);

TYPED_TEST(LfrcStackTest, SequentialLifo) {
  LfrcStack<std::uint64_t, TypeParam> s;
  EXPECT_TRUE(s.empty());
  for (std::uint64_t i = 0; i < 100; ++i) s.push(i);
  std::uint64_t v;
  for (std::uint64_t i = 100; i-- > 0;) {
    ASSERT_TRUE(s.pop(&v));
    ASSERT_EQ(v, i);
  }
  EXPECT_FALSE(s.pop(&v));
  EXPECT_TRUE(s.empty());
}

TYPED_TEST(LfrcStackTest, DestructorDrainsWithoutLeaks) {
  g_live.store(0);  // Obj counter unused here; rely on heap sanity
  {
    LfrcStack<std::uint64_t, TypeParam> s;
    for (std::uint64_t i = 0; i < 5000; ++i) s.push(i);
  }
  SUCCEED();
}

TYPED_TEST(LfrcStackTest, ConcurrentConservation) {
  LfrcStack<std::uint64_t, TypeParam> s;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 4000;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      dcd::util::Xoshiro256 rng(t + 1);
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPer; ++i) {
        if (rng.chance(1, 2)) {
          s.push((static_cast<std::uint64_t>(t) << 32) | i);
        } else {
          std::uint64_t v;
          if (s.pop(&v)) popped[t].push_back(v);
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  std::map<std::uint64_t, int> counts;
  for (auto& vec : popped) {
    for (const std::uint64_t v : vec) ++counts[v];
  }
  std::uint64_t v;
  while (s.pop(&v)) ++counts[v];
  for (const auto& [val, n] : counts) {
    ASSERT_EQ(n, 1) << "value " << val << " duplicated";
  }
}

}  // namespace
