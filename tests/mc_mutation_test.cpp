// Sensitivity tests: a verifier that has never failed is untrustworthy.
//
// Each seeded mutation (mc/mutation.hpp) plants a §5 bug; the explorer
// must (a) catch it, (b) emit a minimized counterexample whose scheduled
// replay reproduces the identical verdict, and (c) the same file must
// reproduce *some* violation on real threads under ChaosDcas — the
// one-command-repro acceptance criterion.
#include <gtest/gtest.h>

#include <string>

#include "dcd/mc/explorer.hpp"
#include "dcd/mc/mutation.hpp"
#include "dcd/mc/replay.hpp"
#include "dcd/mc/scenario.hpp"

namespace {

using namespace dcd;

mc::Scenario mutated(const std::string& name, mc::Mutation m) {
  mc::Scenario sc;
  EXPECT_TRUE(mc::find_builtin(name, sc)) << name;
  sc.mutation = m;
  return sc;
}

void expect_caught_and_replayable(const mc::Scenario& sc) {
  const mc::ExploreResult res = mc::explore(sc);
  ASSERT_FALSE(res.ok) << "mutation survived exploration: " << res.message;
  ASSERT_NE(res.violation.kind, mc::ViolationKind::kNone);
  ASSERT_FALSE(res.violation.schedule.empty());
  ASSERT_FALSE(res.violation.minimized_schedule.empty());
  EXPECT_LE(res.violation.minimized_schedule.size(),
            res.violation.schedule.size());

  // The counterexample must survive a serialize → parse round trip and
  // reproduce the identical verdict through the scheduled runtime.
  const mc::ReplayFile file = mc::make_counterexample(sc, res.violation);
  const std::string text = mc::serialize_replay(file);
  mc::ReplayFile parsed;
  std::string error;
  ASSERT_TRUE(mc::parse_replay(text, parsed, error)) << error;
  EXPECT_EQ(parsed.scenario.mutation, sc.mutation);
  EXPECT_EQ(parsed.schedule, file.schedule);

  const mc::ReplayOutcome scheduled = mc::run_replay(parsed);
  EXPECT_TRUE(scheduled.ok) << scheduled.message;
  EXPECT_EQ(scheduled.kind, res.violation.kind);

  // ChaosDcas reproduction on real preemptive threads. The verdict kind
  // may differ (chaos audits only the final state), but the bug must
  // still surface as a violation.
  const mc::ReplayOutcome chaos = mc::run_replay_chaos(parsed);
  EXPECT_TRUE(chaos.ok) << chaos.message;
  EXPECT_NE(chaos.kind, mc::ViolationKind::kNone);
}

TEST(McMutation, DropDeletedBitCaughtOnList) {
  // The logical-delete DCAS "forgets" the deleted bit: the popped node is
  // left as a live node holding an unlicensed null. RepAuditor flags the
  // very state the mutated DCAS creates.
  expect_caught_and_replayable(
      mutated("list-fig16-double-splice", mc::Mutation::kDropDeletedBit));
}

TEST(McMutation, DropDeletedBitCaughtOnMixedListProgram) {
  expect_caught_and_replayable(
      mutated("list-mixed", mc::Mutation::kDropDeletedBit));
}

TEST(McMutation, PopKeepsValueCaughtOnArray) {
  // The pop-commit DCAS moves the index but keeps the cell value — a
  // Figure 18 violation (non-null in the supposedly-null segment) that
  // later manifests as a double pop.
  expect_caught_and_replayable(
      mutated("array-n2-mixed", mc::Mutation::kPopKeepsValue));
}

TEST(McMutation, UnmutatedScenariosStayClean) {
  // Control: the same scenarios with mutation none are clean, so the
  // catches above are attributable to the planted bugs alone.
  mc::Scenario sc;
  ASSERT_TRUE(mc::find_builtin("list-fig16-double-splice", sc));
  EXPECT_TRUE(mc::explore(sc).ok);
  ASSERT_TRUE(mc::find_builtin("array-n2-mixed", sc));
  EXPECT_TRUE(mc::explore(sc).ok);
}

TEST(McMutation, NamesRoundTrip) {
  for (const mc::Mutation m :
       {mc::Mutation::kNone, mc::Mutation::kDropDeletedBit,
        mc::Mutation::kPopKeepsValue}) {
    mc::Mutation back{};
    ASSERT_TRUE(mc::mutation_from_name(mc::mutation_name(m), back));
    EXPECT_EQ(back, m);
  }
  mc::Mutation out{};
  EXPECT_FALSE(mc::mutation_from_name("no-such-mutation", out));
}

}  // namespace
