// Exhaustive interleaving checks for the array algorithm — the executable
// counterpart of §5.1's Simplify proof (RepInv + abstraction function).
#include <gtest/gtest.h>

#include "dcd/model/array_model.hpp"

namespace {

using namespace dcd::model;
using dcd::deque::ArrayOptions;

constexpr ArrayOptions kBoth{true, true};
constexpr ArrayOptions kNeither{false, false};
constexpr ArrayOptions kRecheckOnly{true, false};
constexpr ArrayOptions kViewOnly{false, true};

// --- RepInv / abstraction unit checks --------------------------------------

TEST(ArrayModel, RepInvHoldsForCanonicalStates) {
  EXPECT_TRUE(rep_inv(ArrayState::empty(1)));
  EXPECT_TRUE(rep_inv(ArrayState::empty(6)));
  EXPECT_TRUE(rep_inv(ArrayState::with_items(6, {1, 2, 3})));
  EXPECT_TRUE(rep_inv(ArrayState::with_items(6, {1, 2, 3, 4, 5, 6})));
  // Wrapped: left index near the end of the array.
  EXPECT_TRUE(rep_inv(ArrayState::with_items(6, {1, 2, 3}, 4)));
}

TEST(ArrayModel, RepInvRejectsCorruptStates) {
  ArrayState st = ArrayState::with_items(6, {1, 2, 3});
  st.s[st.l] = 9;  // value in the null region
  EXPECT_FALSE(rep_inv(st));

  ArrayState hole = ArrayState::with_items(6, {1, 2, 3});
  hole.s[(hole.l + 2) % 6] = 0;  // hole inside the segment
  EXPECT_FALSE(rep_inv(hole));

  ArrayState partial = ArrayState::empty(6);
  partial.s[3] = 5;  // r == l+1 but neither empty nor full
  EXPECT_FALSE(rep_inv(partial));
}

TEST(ArrayModel, AbstractionReadsSegmentLeftToRight) {
  const auto st = ArrayState::with_items(6, {7, 8, 9}, 4);  // wrapped
  EXPECT_EQ(abstraction(st), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_TRUE(abstraction(ArrayState::empty(4)).empty());
  const auto full = ArrayState::with_items(3, {1, 2, 3}, 1);
  EXPECT_EQ(abstraction(full), (std::vector<std::uint64_t>{1, 2, 3}));
}

// --- exhaustive interleavings ----------------------------------------------

class ArrayModelExplore : public ::testing::TestWithParam<ArrayOptions> {};

INSTANTIATE_TEST_SUITE_P(Options, ArrayModelExplore,
                         ::testing::Values(kBoth, kNeither, kRecheckOnly,
                                           kViewOnly),
                         [](const auto& info) {
                           std::string n;
                           n += info.param.recheck_index ? "recheck" : "x";
                           n += "_";
                           n += info.param.failure_view ? "view" : "x";
                           return n;
                         });

TEST_P(ArrayModelExplore, TwoPopsRaceForLastItem) {
  // Figure 6: popRight contending with popLeft for a single element.
  const auto r = explore_array(ArrayState::with_items(4, {7}),
                               {{OpKind::kPopRight}, {OpKind::kPopLeft}},
                               GetParam());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.completions, 0u);
}

TEST_P(ArrayModelExplore, TwoPushesRaceForLastSlot) {
  const auto r = explore_array(
      ArrayState::with_items(3, {1, 2}),
      {{OpKind::kPushRight, 8}, {OpKind::kPushLeft, 9}}, GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, PushPopOnEmpty) {
  const auto r = explore_array(ArrayState::empty(3),
                               {{OpKind::kPushRight, 5}, {OpKind::kPopRight}},
                               GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, OppositeEndsOnLongDeque) {
  // The paper's headline claim: ends operate independently mid-deque.
  const auto r = explore_array(
      ArrayState::with_items(5, {1, 2, 3}),
      {{OpKind::kPushRight, 8}, {OpKind::kPopLeft}}, GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, SameEndPushersCollide) {
  const auto r = explore_array(
      ArrayState::with_items(5, {1}),
      {{OpKind::kPushRight, 8}, {OpKind::kPushRight, 9}}, GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, SameEndPoppersCollide) {
  const auto r = explore_array(ArrayState::with_items(5, {1, 2}),
                               {{OpKind::kPopLeft}, {OpKind::kPopLeft}},
                               GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, ThreeOpsOnTinyDeque) {
  const auto r = explore_array(
      ArrayState::with_items(2, {3}),
      {{OpKind::kPopRight}, {OpKind::kPopLeft}, {OpKind::kPushLeft, 9}},
      GetParam());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.states, 100u);  // sanity: the explorer actually explored
}

TEST_P(ArrayModelExplore, ThreeOpsAroundFull) {
  const auto r = explore_array(
      ArrayState::with_items(3, {1, 2}),
      {{OpKind::kPushRight, 7}, {OpKind::kPushLeft, 8}, {OpKind::kPopRight}},
      GetParam());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(ArrayModelExplore, WrappedStartStates) {
  for (std::size_t l_pos = 0; l_pos < 4; ++l_pos) {
    const auto r = explore_array(
        ArrayState::with_items(4, {5, 6}, l_pos),
        {{OpKind::kPopRight}, {OpKind::kPushLeft, 9}}, GetParam());
    ASSERT_TRUE(r.ok) << "l_pos=" << l_pos << ": " << r.error;
  }
}

TEST_P(ArrayModelExplore, CapacityOneAllPairs) {
  const std::vector<std::vector<OpSpec>> pairs = {
      {{OpKind::kPushRight, 5}, {OpKind::kPopLeft}},
      {{OpKind::kPushLeft, 5}, {OpKind::kPopRight}},
      {{OpKind::kPushRight, 5}, {OpKind::kPushLeft, 6}},
      {{OpKind::kPopRight}, {OpKind::kPopLeft}},
  };
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto on_empty =
        explore_array(ArrayState::empty(1), pairs[i], GetParam());
    ASSERT_TRUE(on_empty.ok) << "pair " << i << ": " << on_empty.error;
    const auto on_full =
        explore_array(ArrayState::with_items(1, {3}), pairs[i], GetParam());
    ASSERT_TRUE(on_full.ok) << "pair " << i << ": " << on_full.error;
  }
}

TEST(ArrayModelExplore2, DetectsInjectedPopBug) {
  // Sensitivity: a pop that forgets to null its cell leaves a value in the
  // null region — the explorer must flag it even in a single-op run.
  const auto r = explore_array(ArrayState::with_items(4, {7}),
                               {{OpKind::kPopRight}}, ArrayOptions{},
                               ArrayMutation::kPopForgetsNull);
  EXPECT_FALSE(r.ok) << "explorer failed to detect the injected bug";
}

TEST(ArrayModelExplore2, PopMutationHarmlessOnEmptyDeque) {
  // Control: a pop that only ever observes empty never executes the
  // mutated write, so the run passes — detection above is attributable to
  // the missing null store.
  const auto r = explore_array(ArrayState::empty(4), {{OpKind::kPopRight}},
                               ArrayOptions{},
                               ArrayMutation::kPopForgetsNull);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ArrayModelExplore2, RejectsCorruptInitialState) {
  ArrayState bad = ArrayState::empty(3);
  bad.s[1] = 7;  // violates RepInv (r == l+1 but partially filled)
  const auto r = explore_array(bad, {{OpKind::kPopRight}});
  EXPECT_FALSE(r.ok);
}

}  // namespace
