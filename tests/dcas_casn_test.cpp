// General N-word CAS (the MCAS engine's full generality; DCAS == casn(2)).
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "dcd/dcas/mcas.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::dcas;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

TEST(Casn, WidthOneBehavesLikeCas) {
  Word a(val(1));
  Word* addrs[] = {&a};
  std::uint64_t olds[] = {val(1)};
  std::uint64_t news[] = {val(2)};
  EXPECT_TRUE(McasDcas::casn(addrs, olds, news, 1));
  EXPECT_EQ(McasDcas::load(a), val(2));
  EXPECT_FALSE(McasDcas::casn(addrs, olds, news, 1));  // stale expected
}

TEST(Casn, WidthThreeAllOrNothing) {
  Word a(val(1)), b(val(2)), c(val(3));
  Word* addrs[] = {&a, &b, &c};
  {
    std::uint64_t olds[] = {val(1), val(2), val(3)};
    std::uint64_t news[] = {val(4), val(5), val(6)};
    EXPECT_TRUE(McasDcas::casn(addrs, olds, news, 3));
  }
  EXPECT_EQ(McasDcas::load(a), val(4));
  EXPECT_EQ(McasDcas::load(b), val(5));
  EXPECT_EQ(McasDcas::load(c), val(6));
  {
    // Last word mismatches: nothing may change.
    std::uint64_t olds[] = {val(4), val(5), val(9)};
    std::uint64_t news[] = {val(7), val(7), val(7)};
    EXPECT_FALSE(McasDcas::casn(addrs, olds, news, 3));
  }
  EXPECT_EQ(McasDcas::load(a), val(4));
  EXPECT_EQ(McasDcas::load(b), val(5));
  EXPECT_EQ(McasDcas::load(c), val(6));
}

TEST(Casn, WidthFourUnsortedAddressesAccepted) {
  Word a(val(1)), b(val(2)), c(val(3)), d(val(4));
  Word* addrs[] = {&d, &b, &a, &c};  // arbitrary order
  std::uint64_t olds[] = {val(4), val(2), val(1), val(3)};
  std::uint64_t news[] = {val(40), val(20), val(10), val(30)};
  EXPECT_TRUE(McasDcas::casn(addrs, olds, news, 4));
  EXPECT_EQ(McasDcas::load(a), val(10));
  EXPECT_EQ(McasDcas::load(b), val(20));
  EXPECT_EQ(McasDcas::load(c), val(30));
  EXPECT_EQ(McasDcas::load(d), val(40));
}

TEST(Casn, ConcurrentTripletIncrementsConserve) {
  // Three words kept equal by 3-word increments; any torn update would
  // break the equality invariant or lose counts.
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  Word w0(val(0)), w1(val(0)), w2(val(0));
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      barrier.arrive_and_wait();
      Word* addrs[] = {&w0, &w1, &w2};
      for (int i = 0; i < kIters; ++i) {
        for (;;) {
          const std::uint64_t v = McasDcas::load(w0);
          const std::uint64_t x = decode_payload(v);
          std::uint64_t olds[] = {v, v, v};
          std::uint64_t news[] = {val(x + 1), val(x + 1), val(x + 1)};
          if (McasDcas::casn(addrs, olds, news, 3)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(McasDcas::load(w0), val(kThreads * kIters));
  EXPECT_EQ(McasDcas::load(w1), val(kThreads * kIters));
  EXPECT_EQ(McasDcas::load(w2), val(kThreads * kIters));
}

TEST(Casn, OverlappingWidthsSerialise) {
  // casn(3) over {a,b,c} racing dcas over {b,c}: the shared words
  // serialise them; totals must be exact.
  constexpr int kIters = 1500;
  Word a(val(0)), b(val(0)), c(val(0));
  dcd::util::SpinBarrier barrier(2);
  std::thread wide([&] {
    barrier.arrive_and_wait();
    Word* addrs[] = {&a, &b, &c};
    for (int i = 0; i < kIters; ++i) {
      for (;;) {
        const std::uint64_t va = McasDcas::load(a);
        const std::uint64_t vb = McasDcas::load(b);
        const std::uint64_t vc = McasDcas::load(c);
        std::uint64_t olds[] = {va, vb, vc};
        std::uint64_t news[] = {val(decode_payload(va) + 1),
                                val(decode_payload(vb) + 1),
                                val(decode_payload(vc) + 1)};
        if (McasDcas::casn(addrs, olds, news, 3)) break;
      }
    }
  });
  std::thread narrow([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kIters; ++i) {
      for (;;) {
        const std::uint64_t vb = McasDcas::load(b);
        const std::uint64_t vc = McasDcas::load(c);
        if (McasDcas::dcas(b, c, vb, vc, val(decode_payload(vb) + 1),
                           val(decode_payload(vc) + 1))) {
          break;
        }
      }
    }
  });
  wide.join();
  narrow.join();
  EXPECT_EQ(decode_payload(McasDcas::load(a)), (std::uint64_t)kIters);
  EXPECT_EQ(decode_payload(McasDcas::load(b)), (std::uint64_t)(2 * kIters));
  EXPECT_EQ(decode_payload(McasDcas::load(c)), (std::uint64_t)(2 * kIters));
}

}  // namespace
