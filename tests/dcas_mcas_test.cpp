// McasDcas-specific behaviour: descriptor stripping, helping, snapshots,
// and lock-freedom under a stalled writer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dcd/dcas/mcas.hpp"
#include "dcd/dcas/telemetry.hpp"
#include "dcd/reclaim/ebr.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::dcas;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

TEST(Mcas, LoadNeverReturnsMarkedWord) {
  Word a(val(1)), b(val(2));
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    std::uint64_t x = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t va = McasDcas::load(a);
      const std::uint64_t vb = McasDcas::load(b);
      (void)McasDcas::dcas(a, b, va, vb, val(x), val(x + 1));
      ++x;
    }
  });
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = McasDcas::load(a);
    ASSERT_EQ(v & kDescriptorBit, 0u) << "descriptor leaked to a reader";
  }
  stop.store(true);
  churn.join();
}

TEST(Mcas, SnapshotIsAtomicPair) {
  // Writers keep a == b at all times (paired increments); a snapshot must
  // therefore never observe a != b.
  Word a(val(0)), b(val(0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t va = McasDcas::load(a);
        (void)McasDcas::dcas(a, b, va, va, val(decode_payload(va) + 1),
                             val(decode_payload(va) + 1));
      }
    });
  }
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t va = 0, vb = 0;
    McasDcas::snapshot(a, b, va, vb);
    ASSERT_EQ(va, vb) << "snapshot observed a torn pair";
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(Mcas, HelpersCompleteAStalledOperation) {
  // We cannot literally freeze a thread mid-DCAS from outside, but we can
  // verify the observable consequence of helping: under heavy contention
  // with more threads than cores, every operation still completes and the
  // help counter advances.
  Telemetry::reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  Word a(val(0)), b(val(0));
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        for (;;) {
          const std::uint64_t va = McasDcas::load(a);
          const std::uint64_t vb = McasDcas::load(b);
          if (McasDcas::dcas(a, b, va, vb, val(decode_payload(va) + 1),
                             val(decode_payload(vb) + 1))) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(McasDcas::load(a), val(kThreads * kIters));
  EXPECT_EQ(McasDcas::load(b), val(kThreads * kIters));
}

TEST(Mcas, DescriptorsAreReclaimed) {
  // Exited threads from other tests may have stranded retired descriptors
  // in their (now unowned) slots, so measure this thread's *delta*: our
  // own retires must drain once we quiesce and collect.
  auto& domain = dcd::reclaim::global_ebr_domain();
  domain.collect();
  const std::uint64_t base = domain.pending_count();
  Word a(val(0)), b(val(0));
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t va = McasDcas::load(a);
    const std::uint64_t vb = McasDcas::load(b);
    ASSERT_TRUE(McasDcas::dcas(a, b, va, vb, val(i + 1), val(i + 1)));
  }
  domain.collect();
  domain.collect();
  domain.collect();
  const std::uint64_t now = domain.pending_count();
  // Allow a small tail for the last drain batch.
  EXPECT_LT(now, base + 512) << "own descriptors not reclaimed";
}

TEST(Mcas, ManyWordsManyThreadsNoLostUpdates) {
  constexpr int kWords = 8;
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  Word words[kWords];
  for (auto& w : words) McasDcas::store_init(w, val(0));
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      dcd::util::Xoshiro256 rng(t + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        const std::size_t x = rng.below(kWords);
        std::size_t y = rng.below(kWords);
        if (y == x) y = (y + 1) % kWords;
        Word& first = words[std::min(x, y)];
        Word& second = words[std::max(x, y)];
        for (;;) {
          const std::uint64_t v1 = McasDcas::load(first);
          const std::uint64_t v2 = McasDcas::load(second);
          if (McasDcas::dcas(first, second, v1, v2,
                             val(decode_payload(v1) + 1),
                             val(decode_payload(v2) + 1))) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::uint64_t total = 0;
  for (auto& w : words) total += decode_payload(McasDcas::load(w));
  EXPECT_EQ(total, static_cast<std::uint64_t>(2 * kThreads * kIters));
}

TEST(Mcas, ViewFormRetriesTransientFailures) {
  Word a(val(1)), b(val(2));
  std::uint64_t oa = val(1), ob = val(2);
  EXPECT_TRUE(McasDcas::dcas_view(a, b, oa, ob, val(3), val(4)));
  oa = val(1);
  ob = val(2);
  EXPECT_FALSE(McasDcas::dcas_view(a, b, oa, ob, val(9), val(9)));
  EXPECT_EQ(oa, val(3));
  EXPECT_EQ(ob, val(4));
}

}  // namespace
