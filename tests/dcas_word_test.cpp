// Unit tests for the shared-word tag encoding.
#include <gtest/gtest.h>

#include "dcd/dcas/word.hpp"

namespace {

using namespace dcd::dcas;

TEST(WordEncoding, SpecialsAreDistinctAndFlagged) {
  EXPECT_NE(kNull, kSentL);
  EXPECT_NE(kNull, kSentR);
  EXPECT_NE(kSentL, kSentR);
  EXPECT_TRUE(is_special(kNull));
  EXPECT_TRUE(is_special(kSentL));
  EXPECT_TRUE(is_special(kSentR));
  EXPECT_TRUE(is_null(kNull));
  EXPECT_FALSE(is_null(kSentL));
}

TEST(WordEncoding, SpecialsAreNotDescriptors) {
  EXPECT_FALSE(is_descriptor(kNull));
  EXPECT_FALSE(is_descriptor(kSentL));
  EXPECT_FALSE(is_descriptor(kSentR));
}

TEST(WordEncoding, PayloadRoundTrip) {
  for (std::uint64_t p :
       std::initializer_list<std::uint64_t>{0, 1, 12345, kMaxPayload}) {
    const std::uint64_t w = encode_payload(p);
    EXPECT_EQ(decode_payload(w), p);
    EXPECT_FALSE(is_descriptor(w));
    EXPECT_FALSE(w & kDeletedBit);
  }
}

TEST(WordEncoding, PayloadNeverCollidesWithSpecials) {
  for (std::uint64_t p = 0; p < 64; ++p) {
    const std::uint64_t w = encode_payload(p);
    EXPECT_NE(w, kNull);
    EXPECT_NE(w, kSentL);
    EXPECT_NE(w, kSentR);
  }
}

TEST(WordEncoding, PointerRoundTripWithDeletedBit) {
  alignas(64) int obj = 0;
  const std::uint64_t plain = encode_pointer(&obj, false);
  const std::uint64_t marked = encode_pointer(&obj, true);
  EXPECT_EQ(pointer_of<int>(plain), &obj);
  EXPECT_EQ(pointer_of<int>(marked), &obj);
  EXPECT_FALSE(deleted_of(plain));
  EXPECT_TRUE(deleted_of(marked));
  EXPECT_FALSE(is_descriptor(plain));
  EXPECT_FALSE(is_descriptor(marked));
}

TEST(WordEncoding, NullPointerEncodes) {
  const std::uint64_t w = encode_pointer<int>(nullptr, false);
  EXPECT_EQ(pointer_of<int>(w), nullptr);
}

TEST(WordEncoding, ElimOfferRoundTripsAndIsUnambiguous) {
  // An elimination offer is a payload word with only the deleted bit set:
  // distinguishable from descriptors (bit 0), specials (bit 2), and plain
  // payloads (no tag bits) by the low tag bits alone.
  const std::uint64_t v = encode_payload(12345);
  const std::uint64_t offer = encode_elim_offer(v);
  EXPECT_TRUE(is_elim_offer(offer));
  EXPECT_EQ(elim_offer_value(offer), v);
  EXPECT_FALSE(is_descriptor(offer));
  EXPECT_FALSE(is_special(offer));
  // Non-offers must not be mistaken for offers.
  EXPECT_FALSE(is_elim_offer(v));
  EXPECT_FALSE(is_elim_offer(kNull));
  EXPECT_FALSE(is_elim_offer(kElimTaken));
  EXPECT_FALSE(is_elim_offer(offer | kDescriptorBit));
}

TEST(WordEncoding, ElimTakenIsASpecialDistinctFromTheOthers) {
  EXPECT_TRUE(is_special(kElimTaken));
  EXPECT_FALSE(is_descriptor(kElimTaken));
  for (const std::uint64_t s : {kNull, kSentL, kSentR, kDummy}) {
    EXPECT_NE(kElimTaken, s);
  }
}

TEST(WordEncoding, WordValueInitialisesToZero) {
  Word w{};  // value-init zeroes; default-init is deliberately a no-op
  EXPECT_EQ(w.raw.load(), 0u);
  Word w2(kSentL);
  EXPECT_EQ(w2.raw.load(), kSentL);
}

}  // namespace
