// Unit tests for the util substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dcd/util/align.hpp"
#include "dcd/util/backoff.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/util/stats.hpp"
#include "dcd/util/stopwatch.hpp"
#include "dcd/util/thread_registry.hpp"
#include "dcd/util/topology.hpp"

namespace {

using namespace dcd::util;

TEST(Align, CacheAlignedIsPaddedAndAligned) {
  CacheAligned<int> a(7);
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(sizeof(a), kCacheLineSize);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a) % kCacheLineSize, 0u);
}

TEST(Align, ArrayElementsOnDistinctLines) {
  CacheAligned<char> arr[4];
  for (int i = 1; i < 4; ++i) {
    const auto d = reinterpret_cast<std::uintptr_t>(&arr[i]) -
                   reinterpret_cast<std::uintptr_t>(&arr[i - 1]);
    EXPECT_EQ(d, kCacheLineSize);
  }
}

TEST(Backoff, PauseProgressesWithoutHanging) {
  Backoff b(16);
  for (int i = 0; i < 100; ++i) b.pause();  // must escalate to yield, not spin
  b.reset();
  b.pause();
  SUCCEED();
}

TEST(Backoff, PausesCountsExactlyAcrossRegimes) {
  // pauses() must be the exact pause() call count even after the spin
  // budget stops doubling (the yield regime) — the old log2-of-budget
  // derivation froze there and under-reported retry pressure.
  Backoff b(16);
  EXPECT_EQ(b.pauses(), 0u);
  // Budgets 1,2,4,8,16 are <= limit; the 6th call enters yield regime.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    b.pause();
    EXPECT_EQ(b.pauses(), i);
  }
  EXPECT_GT(b.spin_budget(), 16u);  // escalated past the limit
  for (std::uint64_t i = 6; i <= 50; ++i) {
    b.pause();  // yield regime: count must keep advancing
    EXPECT_EQ(b.pauses(), i);
  }
}

TEST(Backoff, ResetZeroesCountAndBudget) {
  Backoff b(4);
  for (int i = 0; i < 10; ++i) b.pause();
  b.reset();
  EXPECT_EQ(b.pauses(), 0u);
  EXPECT_EQ(b.yields(), 0u);
  EXPECT_EQ(b.spin_budget(), 1u);
  b.pause();
  EXPECT_EQ(b.pauses(), 1u);
}

TEST(Backoff, YieldsCountsEscalationsExactly) {
  // The escalation metric must be an actual event count, not something
  // derived from the spin budget: the budget stops doubling once it passes
  // the limit, so a budget-derived "pressure" silently caps right where
  // the yield regime — the regime worth measuring — begins.
  Backoff b(16);
  // Budgets 1,2,4,8,16 are spin-regime pauses; none of them yields.
  for (int i = 0; i < 5; ++i) b.pause();
  EXPECT_EQ(b.pauses(), 5u);
  EXPECT_EQ(b.yields(), 0u);
  const std::uint32_t saturated = b.spin_budget();
  EXPECT_GT(saturated, 16u);
  // Every further pause is a yield, and the count keeps advancing even
  // though the budget is frozen.
  for (std::uint64_t i = 1; i <= 40; ++i) {
    b.pause();
    EXPECT_EQ(b.yields(), i);
    EXPECT_EQ(b.spin_budget(), saturated);
  }
  EXPECT_EQ(b.pauses(), 45u);
  b.reset();
  EXPECT_EQ(b.yields(), 0u);
}

TEST(Backoff, BudgetDoublingSaturatesInsteadOfWrapping) {
  // With spin_limit >= 2^31 the old `current_ *= 2` wrapped uint32 to 0,
  // turning every later pause() into a zero-spin busy loop. next_budget is
  // pure so the boundary is testable without spinning 2^31 times.
  constexpr std::uint32_t kMax = ~std::uint32_t{0};
  static_assert(Backoff::next_budget(1) == 2);
  static_assert(Backoff::next_budget(1u << 30) == 1u << 31);
  static_assert(Backoff::next_budget(1u << 31) == kMax);   // would wrap to 0
  static_assert(Backoff::next_budget(kMax) == kMax);       // stays saturated
  static_assert(Backoff::next_budget(kMax / 2) == kMax - 1);
  EXPECT_EQ(Backoff::next_budget((1u << 31) + 5), kMax);
}

TEST(AdaptiveBackoff, BudgetGrowsOnFailureAndDecaysOnSuccess) {
  AdaptiveBackoff b;
  b.reset();
  EXPECT_EQ(b.spin_budget(), 1u);
  for (int i = 0; i < 4; ++i) b.on_failure();  // 1 -> 2 -> 4 -> 8 -> 16
  EXPECT_EQ(b.spin_budget(), 16u);
  EXPECT_EQ(b.pauses(), 4u);
  b.on_success();
  EXPECT_EQ(b.spin_budget(), 8u);
  // Decay floors at 1, never 0 (a zero budget would make the next
  // failure's spin a no-op and defeat the adaptation).
  for (int i = 0; i < 10; ++i) b.on_success();
  EXPECT_EQ(b.spin_budget(), 1u);
}

TEST(AdaptiveBackoff, YieldRegimeClampsBeforeDecaying) {
  AdaptiveBackoff b;
  b.reset();
  // Drive far past the spin limit into the yield regime...
  for (int i = 0; i < 40; ++i) b.on_failure();
  EXPECT_GT(b.spin_budget(), AdaptiveBackoff::kDefaultSpinLimit);
  // ...one success must clamp back under the limit before halving, so the
  // next contended phase spins instead of yielding forever.
  b.on_success();
  EXPECT_LE(b.spin_budget(), AdaptiveBackoff::kDefaultSpinLimit / 2);
}

TEST(AdaptiveBackoff, YieldsCountOnlyEscalatedFailures) {
  AdaptiveBackoff b;
  b.reset();
  // Ride the budget up to the yield regime: 1,2,...,1024 are spin-regime
  // failures (11 of them), the 12th onwards escalates.
  int spins = 0;
  while (b.spin_budget() <= AdaptiveBackoff::kDefaultSpinLimit) {
    b.on_failure();
    ++spins;
  }
  EXPECT_EQ(b.yields(), 0u);
  b.on_failure();
  b.on_failure();
  EXPECT_EQ(b.yields(), 2u);
  EXPECT_EQ(b.pauses(), static_cast<std::uint64_t>(spins) + 2u);
  // Success decays back under the limit; the escalation history survives
  // as a counter (it is telemetry, not state).
  b.on_success();
  b.on_failure();
  EXPECT_EQ(b.yields(), 2u);
  b.reset();
  EXPECT_EQ(b.yields(), 0u);
}

TEST(AdaptiveBackoff, SessionsShareTheThreadsPersistentState) {
  // The point of the refactor: unlike a fresh `Backoff` local per call,
  // contention observed by one operation primes the next operation's
  // budget on the same thread.
  AdaptiveBackoff::tl().reset();
  {
    AdaptiveBackoff::Session s;
    s.pause();
    s.pause();
    s.pause();
  }  // dtor = one success decay: 8 -> 4
  EXPECT_EQ(AdaptiveBackoff::tl().spin_budget(), 4u);
  EXPECT_EQ(AdaptiveBackoff::tl().pauses(), 3u);
  {
    AdaptiveBackoff::Session s;  // new op, same thread: budget carried over
    s.pause();                   // spins 4, grows to 8
  }
  EXPECT_EQ(AdaptiveBackoff::tl().spin_budget(), 4u);  // 8 decayed by dtor
  EXPECT_EQ(AdaptiveBackoff::tl().pauses(), 4u);
  AdaptiveBackoff::tl().reset();
}

TEST(AdaptiveBackoff, ThreadsHaveIndependentState) {
  AdaptiveBackoff::tl().reset();
  {
    AdaptiveBackoff::Session s;
    for (int i = 0; i < 8; ++i) s.pause();
  }
  std::uint64_t other_pauses = ~0ull;
  std::thread t([&] { other_pauses = AdaptiveBackoff::tl().pauses(); });
  t.join();
  EXPECT_EQ(other_pauses, 0u);
  EXPECT_EQ(AdaptiveBackoff::tl().pauses(), 8u);
  AdaptiveBackoff::tl().reset();
}

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDistinctSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.chance(10, 10));
    EXPECT_FALSE(rng.chance(0, 10));
  }
}

TEST(Barrier, ReleasesAllParties) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> in_round{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        in_round.fetch_add(1);
        barrier.arrive_and_wait();
        // All kThreads must have arrived before anyone proceeds.
        if (in_round.load() < kThreads * (r + 1)) failed.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(Stats, SummaryMatchesHandComputation) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, SummaryMergeEqualsCombinedStream) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeIntoEmpty) {
  Summary a, b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Stats, HistogramBucketsAndQuantiles) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1000);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket(9), 1u);  // 1000 in [512, 1024)
  EXPECT_GE(h.quantile(1.0), 1000u);
  EXPECT_LE(h.quantile(0.2), 1u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Stats, HistogramMerge) {
  Log2Histogram a, b;
  a.add(5);
  b.add(500);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::bucket_representative(
                  LatencyHistogram::bucket_index(v)),
              v);
  }
}

TEST(LatencyHistogram, RepresentativeWithinSixPercentOfSample) {
  // The sub-bucketed mapping bounds quantisation error to one sub-bucket
  // width (1/16 of the octave base), so representatives track samples to
  // ~6% — tight enough that a 25% p99-inflation gate cannot be tripped or
  // masked by bucketing alone.
  for (std::uint64_t v : {17ull, 100ull, 999ull, 1500ull, 123456ull,
                          987654321ull, (1ull << 40) + 12345ull,
                          (1ull << 62) + (1ull << 55)}) {
    const int idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    const std::uint64_t rep = LatencyHistogram::bucket_representative(idx);
    const double err =
        std::abs(static_cast<double>(rep) - static_cast<double>(v)) /
        static_cast<double>(v);
    EXPECT_LT(err, 1.0 / LatencyHistogram::kSub) << "v=" << v;
  }
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 5000; ++v) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(LatencyHistogram, PercentilesOfKnownDistribution) {
  // 1000 samples: 990 at ~100ns, 9 at ~1000ns, 1 at ~100000ns. p50 must
  // sit in the 100ns bucket, p99 at 100ns (rank 990 is still a 100),
  // p99.9 in the 1000ns bucket, p100 in the 100000ns bucket.
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.record(100);
  for (int i = 0; i < 9; ++i) h.record(1000);
  h.record(100000);
  EXPECT_EQ(h.total(), 1000u);
  const auto near = [](std::uint64_t got, std::uint64_t want) {
    const double err = std::abs(static_cast<double>(got) -
                                static_cast<double>(want)) /
                       static_cast<double>(want);
    return err < 1.0 / LatencyHistogram::kSub;
  };
  EXPECT_TRUE(near(h.percentile(0.50), 100)) << h.percentile(0.50);
  EXPECT_TRUE(near(h.percentile(0.99), 100)) << h.percentile(0.99);
  EXPECT_TRUE(near(h.percentile(0.999), 1000)) << h.percentile(0.999);
  EXPECT_TRUE(near(h.percentile(1.0), 100000)) << h.percentile(1.0);
  EXPECT_EQ(LatencyHistogram().percentile(0.5), 0u);  // empty -> 0
}

TEST(LatencyHistogram, MergeEqualsCombinedStreamAndResetClears) {
  LatencyHistogram a, b, all;
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(100000);
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.percentile(q), all.percentile(q)) << q;
  }
  a.reset();
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.percentile(0.99), 0u);
}

TEST(Topology, PinCurrentThreadIsBestEffort) {
  // On Linux the mechanism must be compiled in and pinning to slot 0 (any
  // host has a CPU 0) must succeed; elsewhere it reports unsupported
  // rather than failing the build. Slots wrap modulo hardware_threads, so
  // an out-of-range slot is also a valid request.
  const std::string mech = affinity_mechanism();
  EXPECT_FALSE(mech.empty());
#if defined(__linux__) && defined(_GNU_SOURCE)
  EXPECT_EQ(mech, "pthread_setaffinity_np");
  std::thread t([] {
    EXPECT_TRUE(pin_current_thread(0));
    EXPECT_TRUE(pin_current_thread(probe_topology().hardware_threads + 3));
  });
  t.join();
#else
  EXPECT_EQ(mech, "unsupported");
  EXPECT_FALSE(pin_current_thread(0));
#endif
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.elapsed_ns(), 1'000'000u);
  sw.reset();
  EXPECT_LT(sw.elapsed_s(), 1.0);
}

TEST(ThreadRegistry, StableIdWithinThread) {
  const std::size_t a = ThreadRegistry::self();
  const std::size_t b = ThreadRegistry::self();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, ThreadRegistry::kMaxThreads);
  EXPECT_TRUE(ThreadRegistry::slot_live(a));
}

TEST(ThreadRegistry, DistinctIdsForConcurrentThreads) {
  constexpr int kThreads = 8;
  std::vector<std::size_t> ids(kThreads);
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      ids[t] = ThreadRegistry::self();
      barrier.arrive_and_wait();  // hold the slot until everyone has one
    });
  }
  for (auto& t : ts) t.join();
  std::set<std::size_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, SlotsRecycleAfterThreadExit) {
  std::size_t first = 0;
  std::thread([&] { first = ThreadRegistry::self(); }).join();
  // The exited thread's slot must be claimable again.
  std::size_t again = 0;
  std::thread([&] { again = ThreadRegistry::self(); }).join();
  EXPECT_EQ(first, again);
}

TEST(Topology, ProbeIsSane) {
  const Topology t = probe_topology();
  EXPECT_GE(t.hardware_threads, 1u);
  EXPECT_FALSE(t.describe().empty());
}

}  // namespace
