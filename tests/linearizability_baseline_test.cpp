// The baselines must be linearizable too (they anchor E5's comparison, and
// they double as a sanity check that the checker accepts ordinary correct
// implementations beyond the DCAS deques).
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/baseline/mutex_deque.hpp"
#include "dcd/baseline/spin_deque.hpp"
#include "dcd/baseline/two_lock_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::baseline;
using namespace dcd::verify;

template <typename D>
class BaselineLinTest : public ::testing::Test {
 protected:
  void check_rounds(std::size_t capacity, const WorkloadConfig& base,
                    int rounds) {
    for (int r = 0; r < rounds; ++r) {
      D d(capacity);
      WorkloadConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(r) * 104729;
      const History h = run_recorded(d, cfg);
      const CheckResult res = check_linearizable(h, capacity);
      ASSERT_EQ(res.verdict, Verdict::kLinearizable)
          << "round " << r << " (seed " << cfg.seed << "): " << res.message;
    }
  }
};

using Deques =
    ::testing::Types<MutexDeque<std::uint64_t>, SpinDeque<std::uint64_t>,
                     TwoLockDeque<std::uint64_t>>;
TYPED_TEST_SUITE(BaselineLinTest, Deques);

TYPED_TEST(BaselineLinTest, TinyCapacity) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 8;
  cfg.seed = 5;
  this->check_rounds(2, cfg, 25);
}

TYPED_TEST(BaselineLinTest, MidCapacityMixed) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 7;
  cfg.seed = 55;
  this->check_rounds(16, cfg, 20);
}

TYPED_TEST(BaselineLinTest, TwoLockBoundaryCrossings) {
  // Extra rounds around the both-locks threshold for TwoLockDeque (and
  // harmless for the others): capacity near the threshold keeps every op
  // crossing between single- and double-lock modes.
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 10;
  cfg.seed = 555;
  cfg.push_right = 2;
  cfg.push_left = 2;
  cfg.pop_right = 2;
  cfg.pop_left = 2;
  this->check_rounds(5, cfg, 25);
}

}  // namespace
