// SpecDeque: the §2.2 state machine, verbatim.
#include <gtest/gtest.h>

#include "dcd/verify/spec_deque.hpp"

namespace {

using dcd::deque::PushResult;
using dcd::verify::SpecDeque;

TEST(SpecDeque, PaperExampleTrace) {
  SpecDeque s(8);
  EXPECT_EQ(s.push_right(1), PushResult::kOkay);  // <1>
  EXPECT_EQ(s.push_left(2), PushResult::kOkay);   // <2 1>
  EXPECT_EQ(s.push_right(3), PushResult::kOkay);  // <2 1 3>
  EXPECT_EQ(s.pop_left(), 2u);                    // <1 3>
  EXPECT_EQ(s.pop_left(), 1u);                    // <3>
  EXPECT_EQ(s.pop_left(), 3u);
  EXPECT_FALSE(s.pop_left().has_value());
}

TEST(SpecDeque, FullSemantics) {
  SpecDeque s(2);
  EXPECT_EQ(s.push_right(1), PushResult::kOkay);
  EXPECT_EQ(s.push_left(2), PushResult::kOkay);
  EXPECT_TRUE(s.full());
  EXPECT_EQ(s.push_right(3), PushResult::kFull);
  EXPECT_EQ(s.push_left(3), PushResult::kFull);
  EXPECT_EQ(s.size(), 2u);  // unchanged by failed pushes
  EXPECT_EQ(s.pop_right(), 1u);
  EXPECT_EQ(s.pop_right(), 2u);
  EXPECT_TRUE(s.empty());
}

TEST(SpecDeque, UnboundedNeverFull) {
  SpecDeque s(SpecDeque::kUnbounded);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(s.push_right(i), PushResult::kOkay);
  }
  EXPECT_FALSE(s.full());
}

TEST(SpecDeque, PopEmptyLeavesStateUnchanged) {
  SpecDeque s(4);
  EXPECT_FALSE(s.pop_right().has_value());
  EXPECT_FALSE(s.pop_left().has_value());
  EXPECT_TRUE(s.empty());
  s.push_right(5);
  EXPECT_EQ(s.pop_left(), 5u);
}

TEST(SpecDeque, FingerprintDistinguishesStatesAndOrder) {
  SpecDeque a(8), b(8);
  a.push_right(1);
  a.push_right(2);
  b.push_right(2);
  b.push_right(1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  SpecDeque c(8);
  c.push_left(2);
  c.push_left(1);  // <1 2> == a
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
}

TEST(SpecDeque, EqualityComparesContents) {
  SpecDeque a(8), b(8);
  EXPECT_TRUE(a == b);
  a.push_right(1);
  EXPECT_FALSE(a == b);
  b.push_left(1);
  EXPECT_TRUE(a == b);
}

}  // namespace
