// Multi-phase fuzzing with seed replay.
//
// Each scenario alternates sequential prefixes (checked exactly against
// SpecDeque) with concurrent bursts (checked for conservation + RepInv +
// linearizability of the recorded window). Any failure message carries the
// scenario seed, so a red run is replayable with
//   --gtest_filter='Fuzz*' plus the seed printed in the assertion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/mc/replay.hpp"
#include "dcd/util/rng.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::deque;
using namespace dcd::verify;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;

// Applies a random sequential burst to both impl and spec; returns false on
// divergence.
template <typename D>
bool sequential_phase(D& impl, SpecDeque& spec, dcd::util::Xoshiro256& rng,
                      std::size_t ops, std::string& why) {
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t v = 1 + rng.below(1u << 16);
    switch (rng.below(4)) {
      case 0:
        if (impl.push_right(v) != spec.push_right(v)) {
          why = "push_right divergence";
          return false;
        }
        break;
      case 1:
        if (impl.push_left(v) != spec.push_left(v)) {
          why = "push_left divergence";
          return false;
        }
        break;
      case 2:
        if (impl.pop_right() != spec.pop_right()) {
          why = "pop_right divergence";
          return false;
        }
        break;
      default:
        if (impl.pop_left() != spec.pop_left()) {
          why = "pop_left divergence";
          return false;
        }
        break;
    }
  }
  return true;
}

class FuzzReplayTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzReplayTest,
                         ::testing::Values(0xa11ce, 0xb0b, 0xcafe, 0xd00d,
                                           0xe66, 0xf00d, 17, 4242));

TEST_P(FuzzReplayTest, ArrayDequePhases) {
  const std::uint64_t seed = GetParam();
  dcd::util::Xoshiro256 rng(seed);
  for (int scenario = 0; scenario < 4; ++scenario) {
    const std::size_t cap = 1 + rng.below(6);
    ArrayDeque<std::uint64_t, GlobalLockDcas> d(cap);
    SpecDeque spec(cap);
    std::string why;

    for (int phase = 0; phase < 3; ++phase) {
      // Sequential prefix: exact spec agreement.
      ASSERT_TRUE(sequential_phase(d, spec, rng, 200, why))
          << why << " (seed " << seed << ", scenario " << scenario << ")";
      ASSERT_TRUE(d.check_rep_inv_unsynchronized()) << "seed " << seed;

      // Drain to empty (still in lock-step with the spec) — the recorded
      // window below is checked against an initially-empty SpecDeque.
      while (auto v = d.pop_left()) {
        ASSERT_EQ(v, spec.pop_left()) << "seed " << seed;
      }
      ASSERT_TRUE(spec.empty()) << "seed " << seed;

      // Concurrent burst: recorded + checked.
      WorkloadConfig cfg;
      cfg.threads = 3;
      cfg.ops_per_thread = 8;
      cfg.seed = rng.next();
      const History h = run_recorded(d, cfg);
      const CheckResult res = check_linearizable(h, cap);
      ASSERT_EQ(res.verdict, Verdict::kLinearizable)
          << "seed " << seed << ": " << res.message;
      ASSERT_TRUE(d.check_rep_inv_unsynchronized()) << "seed " << seed;

      // Resync for the next phase: drain the burst's residue (validated by
      // the checker already) so the spec restart matches.
      std::size_t drained = 0;
      while (d.pop_left()) ++drained;
      ASSERT_LE(drained, cap) << "seed " << seed;
      spec = SpecDeque(cap);
    }
  }
}

TEST_P(FuzzReplayTest, ListDequePhases) {
  const std::uint64_t seed = GetParam() ^ 0x5eed;
  dcd::util::Xoshiro256 rng(seed);
  for (int scenario = 0; scenario < 3; ++scenario) {
    ListDeque<std::uint64_t, GlobalLockDcas> d(1 << 12);
    SpecDeque spec(SpecDeque::kUnbounded);
    std::string why;

    for (int phase = 0; phase < 3; ++phase) {
      ASSERT_TRUE(sequential_phase(d, spec, rng, 200, why))
          << why << " (seed " << seed << ")";
      ASSERT_TRUE(d.check_rep_inv_unsynchronized()) << "seed " << seed;
      while (auto v = d.pop_left()) {
        ASSERT_EQ(v, spec.pop_left()) << "seed " << seed;
      }
      ASSERT_TRUE(spec.empty()) << "seed " << seed;

      WorkloadConfig cfg;
      cfg.threads = 3;
      cfg.ops_per_thread = 8;
      cfg.seed = rng.next();
      cfg.pop_right = 2;
      cfg.pop_left = 2;
      const History h = run_recorded(d, cfg);
      const CheckResult res = check_linearizable(h, SpecDeque::kUnbounded);
      ASSERT_EQ(res.verdict, Verdict::kLinearizable)
          << "seed " << seed << ": " << res.message;
      ASSERT_TRUE(d.check_rep_inv_unsynchronized()) << "seed " << seed;

      while (d.pop_left()) {
      }
      spec = SpecDeque(SpecDeque::kUnbounded);
    }
  }
}

TEST_P(FuzzReplayTest, McasArrayShortPhases) {
  const std::uint64_t seed = GetParam() ^ 0x3ca5;
  dcd::util::Xoshiro256 rng(seed);
  ArrayDeque<std::uint64_t, McasDcas> d(3);
  SpecDeque spec(3);
  std::string why;
  for (int phase = 0; phase < 3; ++phase) {
    ASSERT_TRUE(sequential_phase(d, spec, rng, 120, why))
        << why << " (seed " << seed << ")";
    while (auto v = d.pop_left()) {
      ASSERT_EQ(v, spec.pop_left()) << "seed " << seed;
    }
    ASSERT_TRUE(spec.empty()) << "seed " << seed;
    WorkloadConfig cfg;
    cfg.threads = 2;
    cfg.ops_per_thread = 10;
    cfg.seed = rng.next();
    const History h = run_recorded(d, cfg);
    const CheckResult res = check_linearizable(h, 3);
    ASSERT_EQ(res.verdict, Verdict::kLinearizable)
        << "seed " << seed << ": " << res.message;
    while (d.pop_left()) {
    }
    spec = SpecDeque(3);
  }
}

// --- known-nasty schedule corpus (tests/replays/*.repro) --------------------
//
// Curated replay files for the schedules the §5 proofs reason about — the
// suspended popper, the Figure 16 double splice, the array L/R boundary
// race — plus the explorer's mutation counterexamples. Each file carries
// its own expectations (`expect:`, `expect-shape:`, ...); this suite runs
// every file through both executors, so the corpus can't rot silently.

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DCD_REPLAY_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReplayCorpus, HasTheKnownNastySchedules) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_GE(files.size(), 5u) << "corpus went missing";
  const auto has = [&](const char* stem) {
    for (const std::string& f : files) {
      if (f.find(stem) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("suspended-popper"));
  EXPECT_TRUE(has("fig16-double-splice"));
  EXPECT_TRUE(has("array-boundary-race"));
  EXPECT_TRUE(has("mutation-drop-deleted-bit"));
  EXPECT_TRUE(has("mutation-pop-keeps-value"));
}

TEST(ReplayCorpus, EveryFileParsesAndRoundTrips) {
  for (const std::string& path : corpus_files()) {
    dcd::mc::ReplayFile file;
    std::string error;
    ASSERT_TRUE(dcd::mc::load_replay_file(path, file, error))
        << path << ": " << error;
    dcd::mc::ReplayFile again;
    ASSERT_TRUE(
        dcd::mc::parse_replay(dcd::mc::serialize_replay(file), again, error))
        << path << ": " << error;
    EXPECT_EQ(again.schedule, file.schedule) << path;
    EXPECT_EQ(again.scenario.threads.size(), file.scenario.threads.size())
        << path;
  }
}

TEST(ReplayCorpus, ScheduledReplayMeetsExpectations) {
  for (const std::string& path : corpus_files()) {
    dcd::mc::ReplayFile file;
    std::string error;
    ASSERT_TRUE(dcd::mc::load_replay_file(path, file, error)) << error;
    const dcd::mc::ReplayOutcome out = dcd::mc::run_replay(file);
    EXPECT_TRUE(out.ok) << path << ": " << out.message;
  }
}

TEST(ReplayCorpus, ChaosReplayMeetsExpectations) {
  for (const std::string& path : corpus_files()) {
    dcd::mc::ReplayFile file;
    std::string error;
    ASSERT_TRUE(dcd::mc::load_replay_file(path, file, error)) << error;
    const dcd::mc::ReplayOutcome out = dcd::mc::run_replay_chaos(file);
    EXPECT_TRUE(out.ok) << path << ": " << out.message;
  }
}

}  // namespace
