// ArrayDeque concurrent stress: conservation + no duplication/invention,
// across policies, sizes and thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "dcd/deque/array_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/verify/driver.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ArrayStressTest : public ::testing::Test {
 protected:
  using Deque = ArrayDeque<std::uint64_t, P>;
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ArrayStressTest, Policies);

// Every pushed value must be popped exactly once (push until full is not
// reached; pops collect into per-thread sets; multiset equality at the end).
TYPED_TEST(ArrayStressTest, NoLossNoDuplication) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 4000;
  typename TestFixture::Deque d(1 << 14);  // big enough to never fill

  std::vector<std::vector<std::uint64_t>> popped(kConsumers);
  std::atomic<int> producers_left{kProducers};
  dcd::util::SpinBarrier barrier(kProducers + kConsumers);
  std::vector<std::thread> ts;

  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        if (p % 2 == 0) {
          ASSERT_EQ(d.push_right(v), PushResult::kOkay);
        } else {
          ASSERT_EQ(d.push_left(v), PushResult::kOkay);
        }
      }
      producers_left.fetch_sub(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&, c] {
      barrier.arrive_and_wait();
      for (;;) {
        auto v = (c % 2 == 0) ? d.pop_left() : d.pop_right();
        if (v.has_value()) {
          popped[c].push_back(*v);
        } else if (producers_left.load() == 0) {
          // One more sweep: producers are done, deque may still be empty
          // transiently from this end only.
          auto v2 = (c % 2 == 0) ? d.pop_right() : d.pop_left();
          if (v2.has_value()) {
            popped[c].push_back(*v2);
          } else {
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  std::map<std::uint64_t, int> counts;
  for (auto& vec : popped) {
    for (const std::uint64_t v : vec) ++counts[v];
  }
  // Drain the residue single-threadedly.
  while (auto v = d.pop_left()) ++counts[*v];

  EXPECT_EQ(counts.size(), kProducers * kPerProducer);
  for (const auto& [v, n] : counts) {
    ASSERT_EQ(n, 1) << "value " << v << " popped " << n << " times";
  }
}

// Random mixed workload on a small deque: the residual population must
// equal successful pushes minus successful pops.
TYPED_TEST(ArrayStressTest, ConservationOnSmallDeque) {
  for (const std::size_t cap : {1u, 2u, 3u, 8u}) {
    typename TestFixture::Deque d(cap);
    dcd::verify::WorkloadConfig cfg;
    cfg.threads = 4;
    cfg.ops_per_thread = 3000;
    cfg.seed = 42 + cap;
    const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
    ASSERT_GE(net, 0);
    ASSERT_LE(net, static_cast<std::int64_t>(cap));
    EXPECT_EQ(d.size_unsynchronized(), static_cast<std::size_t>(net))
        << "capacity " << cap;
  }
}

// Opposite-end hammering on a 2-element deque maximises the Figure 6 race
// (popRight contending with popLeft for the last item).
TYPED_TEST(ArrayStressTest, LastItemRace) {
  typename TestFixture::Deque d(2);
  constexpr int kRounds = 4000;
  std::atomic<std::uint64_t> popped_count{0};
  dcd::util::SpinBarrier barrier(3);

  std::thread feeder([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kRounds; ++i) {
      while (d.push_right(i + 1) != PushResult::kOkay) {
        std::this_thread::yield();
      }
    }
  });
  auto popper = [&](bool right) {
    barrier.arrive_and_wait();
    std::uint64_t got = 0;
    while (got * 2 < kRounds || popped_count.load() < kRounds) {
      auto v = right ? d.pop_right() : d.pop_left();
      if (v.has_value()) {
        ++got;
        if (popped_count.fetch_add(1) + 1 >= kRounds) break;
      }
      if (popped_count.load() >= kRounds) break;
    }
  };
  std::thread right_popper(popper, true);
  std::thread left_popper(popper, false);
  feeder.join();
  right_popper.join();
  left_popper.join();
  // All pushed items were eventually popped (none lost to the race).
  std::size_t residue = 0;
  while (d.pop_left()) ++residue;
  EXPECT_EQ(popped_count.load() + residue, static_cast<std::uint64_t>(kRounds));
}

}  // namespace
