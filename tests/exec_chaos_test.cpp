// Executor under ChaosDcas: park rules at the new exec sync points must
// leave the remaining workers draining the task graph (the §5.2
// adversarial-schedule discipline, applied to the idle path), and the
// fork/join result must be schedule-independent across DCAS policies
// under injected delays and forced failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/exec/executor.hpp"

namespace {

using namespace dcd;
using dcas::ChaosController;
using dcas::ChaosDcas;
using dcas::ChaosSchedule;
using exec::ExecConfig;
using exec::Executor;
using exec::Latch;
using exec::Task;
using exec::TaskContext;

ChaosSchedule quiet_schedule(std::uint64_t seed = 1) {
  ChaosSchedule s;
  s.seed = seed;
  return s;  // all fault probabilities zero: park rules only
}

// Schedule-independent checksum: every spawned node folds its (depth,
// weight) into a commutative sum, so ANY execution order must produce the
// same value (examples/work_stealing.cpp uses the same construction).
std::atomic<std::uint64_t> g_sum{0};

void tree_task(TaskContext& ctx, Task& t) {
  const std::uint64_t depth = t.args[0];
  const std::uint64_t weight = t.args[1];
  g_sum.fetch_add(depth * 0x9e3779b97f4a7c15ull + weight,
                  std::memory_order_relaxed);
  if (depth == 0) return;
  for (std::uint64_t k = 0; k < 2; ++k) {
    ctx.fork(ctx.create(&tree_task, nullptr, 0, depth - 1, weight * 2 + k));
  }
}

std::uint64_t tree_expected(std::uint64_t depth, std::uint64_t weight) {
  std::uint64_t sum = depth * 0x9e3779b97f4a7c15ull + weight;
  if (depth == 0) return sum;
  for (std::uint64_t k = 0; k < 2; ++k) {
    sum += tree_expected(depth - 1, weight * 2 + k);
  }
  return sum;
}

void run_tree(auto& ex, std::uint64_t depth) {
  g_sum.store(0, std::memory_order_relaxed);
  ex.submit(ex.create(&tree_task, nullptr, 0, depth, 1));
  ex.wait_all();
}

// A worker killed at the top of its victim sweep (exec.steal) models a
// thief dying mid-scan: the other workers must drain the tree without it.
TEST(ExecChaosPark, ThiefParkedAtSweepDoesNotBlockProgress) {
  ChaosController chaos(quiet_schedule(dcas::chaos_seed_from_env(2026)));
  const std::size_t rule = chaos.arm_park(dcas::sync_point::kExecSteal, 1);

  ExecConfig cfg;
  cfg.workers = 3;
  Executor<deque::ListDeque<Task*>> ex(cfg);
  ASSERT_TRUE(chaos.wait_parked(rule, 10000));

  run_tree(ex, 8);
  EXPECT_EQ(g_sum.load(std::memory_order_relaxed), tree_expected(8, 1));
  EXPECT_TRUE(chaos.parked(rule));  // it really stayed out of the party
  chaos.release_all();
}

// A worker parked on the eventcount threshold (exec.park) is the normal
// idle state; chaos pinning it there while traffic flows proves a sleeper
// is never required for progress.
TEST(ExecChaosPark, SleeperParkedAtEventcountDoesNotBlockProgress) {
  ChaosController chaos(quiet_schedule(dcas::chaos_seed_from_env(2026)));
  const std::size_t rule = chaos.arm_park(dcas::sync_point::kExecPark, 1);

  ExecConfig cfg;
  cfg.workers = 3;
  cfg.park_after = 4;
  Executor<deque::ListDeque<Task*>> ex(cfg);
  ASSERT_TRUE(chaos.wait_parked(rule, 10000));

  run_tree(ex, 8);
  EXPECT_EQ(g_sum.load(std::memory_order_relaxed), tree_expected(8, 1));
  chaos.release_all();
}

// An external submitter parked mid-injection (exec.inject fires before the
// task is pushed) must not wedge anyone else: the workers stay responsive
// to other submitters, and the parked submission lands after release.
TEST(ExecChaosPark, SubmitterParkedMidInjectDoesNotBlockWorkers) {
  ChaosController chaos(quiet_schedule(dcas::chaos_seed_from_env(2026)));
  const std::size_t rule = chaos.arm_park(dcas::sync_point::kExecInject, 1);

  ExecConfig cfg;
  cfg.workers = 2;
  Executor<deque::ListDeque<Task*>> ex(cfg);
  g_sum.store(0, std::memory_order_relaxed);

  std::thread victim([&ex] {
    ex.submit(ex.create(&tree_task, nullptr, 0, 3, 1));  // parks in here
  });
  ASSERT_TRUE(chaos.wait_parked(rule, 10000));

  // The second submitter's inject (hit #2, rule is nth=1) sails through.
  std::atomic<bool> second_done{false};
  std::thread other([&ex, &second_done] {
    ex.submit(ex.create(&tree_task, nullptr, 0, 3, 100));
    second_done.store(true, std::memory_order_release);
  });
  other.join();
  EXPECT_TRUE(second_done.load(std::memory_order_acquire));

  chaos.release(rule);
  victim.join();
  ex.wait_all();
  EXPECT_EQ(g_sum.load(std::memory_order_relaxed),
            tree_expected(3, 1) + tree_expected(3, 100));
}

// --- determinism across DCAS policies under chaos seeds -------------------
//
// Acceptance criterion: the fork-join result is validated deterministic
// across >= 3 DCAS policies with injected delays and spurious DCAS
// failures. The checksum is schedule-independent by construction, so any
// divergence means a task was lost, duplicated, or torn by the
// deque/executor handoff under that policy.
template <typename P>
class ExecChaosPolicyTest : public ::testing::Test {
 protected:
  using Deque = deque::ListDeque<Task*, ChaosDcas<P>>;
};

using Inners = ::testing::Types<dcas::GlobalLockDcas, dcas::StripedLockDcas,
                                dcas::McasDcas>;
TYPED_TEST_SUITE(ExecChaosPolicyTest, Inners);

TYPED_TEST(ExecChaosPolicyTest, ForkJoinChecksumDeterministicUnderFaults) {
  ChaosSchedule s =
      ChaosSchedule::from_seed(dcas::chaos_seed_from_env(2026));
  // Make the windows real: delays on ~1/8 of calls, forced failure on
  // ~1/16 of boolean DCASes.
  s.delay_per_mille = 125;
  s.max_delay_spins = 64;
  s.dcas_fail_per_mille = 60;
  ChaosController chaos(s);
  SCOPED_TRACE(chaos.schedule().describe());

  ExecConfig cfg;
  cfg.workers = 4;
  cfg.park_after = 4;
  Executor<typename TestFixture::Deque> ex(cfg);
  for (int round = 0; round < 3; ++round) {
    run_tree(ex, 9);
    EXPECT_EQ(g_sum.load(std::memory_order_relaxed), tree_expected(9, 1))
        << "policy diverged on round " << round;
  }
  const exec::ExecStats st = ex.stats();
  EXPECT_EQ(st.executed, 3u * ((1u << 10) - 1));
}

}  // namespace
