// ListDequeDummy — the footnote-4 variant — must behave exactly like the
// bit-encoded ListDeque: same sequential semantics, same Figure 9/16 state
// structure (with dummies standing in for set bits), and linearizable
// histories.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/list_deque_dummy.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ListDummyTest : public ::testing::Test {
 protected:
  using Deque = ListDequeDummy<std::uint64_t, P>;
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ListDummyTest, Policies);

TYPED_TEST(ListDummyTest, PaperExampleTrace) {
  typename TestFixture::Deque d;
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ListDummyTest, LifoAndFifo) {
  typename TestFixture::Deque d;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 20; i-- > 0;) {
    ASSERT_EQ(d.pop_right(), i);
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.pop_left(), i);
  }
}

TYPED_TEST(ListDummyTest, DummyStandsInForRightDeletedBit) {
  // Figure 10: "Empty Deque with one deleted cell marked by a right dummy
  // node".
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 7u);
  EXPECT_TRUE(d.right_dummy_unsynchronized());
  EXPECT_FALSE(d.left_dummy_unsynchronized());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ListDummyTest, DummyStandsInForLeftDeletedBit) {
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_left(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 7u);
  EXPECT_TRUE(d.left_dummy_unsynchronized());
  EXPECT_FALSE(d.right_dummy_unsynchronized());
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ListDummyTest, TwoDummiesResolveFromEitherSide) {
  for (const bool from_right : {true, false}) {
    typename TestFixture::Deque d;
    ASSERT_EQ(d.push_right(1), PushResult::kOkay);
    ASSERT_EQ(d.push_right(2), PushResult::kOkay);
    ASSERT_EQ(d.pop_left(), 1u);
    ASSERT_EQ(d.pop_right(), 2u);
    ASSERT_TRUE(d.left_dummy_unsynchronized());
    ASSERT_TRUE(d.right_dummy_unsynchronized());
    // The push on a side with a pending dummy performs the physical
    // delete; the Figure 16 pair-DCAS clears *both* sides at once.
    if (from_right) {
      ASSERT_EQ(d.push_right(3), PushResult::kOkay);
    } else {
      ASSERT_EQ(d.push_left(3), PushResult::kOkay);
    }
    EXPECT_FALSE(d.left_dummy_unsynchronized());
    EXPECT_FALSE(d.right_dummy_unsynchronized());
    // A subsequent pop drains the element (and plants its own dummy).
    EXPECT_EQ(from_right ? d.pop_left() : d.pop_right(), 3u);
    EXPECT_EQ(d.size_unsynchronized(), 0u);
  }
}

TYPED_TEST(ListDummyTest, PushClearsPendingDummy) {
  typename TestFixture::Deque d;
  ASSERT_EQ(d.push_right(7), PushResult::kOkay);
  ASSERT_EQ(d.pop_right(), 7u);
  ASSERT_TRUE(d.right_dummy_unsynchronized());
  ASSERT_EQ(d.push_right(8), PushResult::kOkay);
  EXPECT_FALSE(d.right_dummy_unsynchronized());
  EXPECT_EQ(d.pop_right(), 8u);
}

TYPED_TEST(ListDummyTest, NodesAndDummiesRecycle) {
  // Each push+pop cycle consumes a node and a dummy; both must return to
  // the pool for a bounded pool to sustain this.
  typename TestFixture::Deque d(2048);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay) << "leak at " << i;
    ASSERT_EQ(d.pop_left(), i);
    if (i % 128 == 0) d.reclaimer().collect();
  }
}

TYPED_TEST(ListDummyTest, ConservationUnderConcurrency) {
  typename TestFixture::Deque d(1 << 15);
  dcd::verify::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 3000;
  cfg.seed = 77;
  const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
  ASSERT_GE(net, 0);
  EXPECT_EQ(d.size_unsynchronized(), static_cast<std::size_t>(net));
}

TYPED_TEST(ListDummyTest, LinearizableHistories) {
  for (int round = 0; round < 25; ++round) {
    typename TestFixture::Deque d(1 << 12);
    dcd::verify::WorkloadConfig cfg;
    cfg.threads = 3;
    cfg.ops_per_thread = 9;
    cfg.seed = 500 + round * 7919;
    cfg.pop_right = 3;
    cfg.pop_left = 3;
    const auto h = dcd::verify::run_recorded(d, cfg);
    const auto res = dcd::verify::check_linearizable(
        h, dcd::verify::SpecDeque::kUnbounded);
    ASSERT_EQ(res.verdict, dcd::verify::Verdict::kLinearizable)
        << "round " << round << ": " << res.message;
  }
}

}  // namespace
