// EBR domain semantics: deferral, grace periods, guards, reentrancy.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "dcd/reclaim/ebr.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using dcd::reclaim::EbrDomain;

struct Tracked {
  static std::atomic<int> live;
  Tracked() { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(Ebr, RetireDefersUntilCollect) {
  EbrDomain domain;
  auto* p = new Tracked;
  EXPECT_EQ(Tracked::live.load(), 1);
  domain.retire_delete(p);
  EXPECT_EQ(domain.retired_count(), 1u);
  // With no pinned threads, a few collect()s advance the epoch enough to
  // free the object.
  for (int i = 0; i < 4; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.freed_count(), 1u);
}

TEST(Ebr, GuardBlocksReclamation) {
  EbrDomain domain;
  auto* p = new Tracked;
  {
    EbrDomain::Guard guard(domain);
    domain.retire_delete(p);
    for (int i = 0; i < 8; ++i) domain.collect();
    // Our own pin holds the epoch: the object must still be alive.
    EXPECT_EQ(Tracked::live.load(), 1);
  }
  for (int i = 0; i < 4; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, RemoteGuardBlocksReclamation) {
  EbrDomain domain;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EbrDomain::Guard guard(domain);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  auto* p = new Tracked;
  domain.retire_delete(p);
  for (int i = 0; i < 8; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), 1) << "freed under a remote pin";

  release.store(true);
  reader.join();
  for (int i = 0; i < 4; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, GuardsAreReentrant) {
  EbrDomain domain;
  EbrDomain::Guard outer(domain);
  {
    EbrDomain::Guard inner(domain);
    EbrDomain::Guard deeper(domain);
  }
  // Still pinned: retire from another thread cannot free yet.
  auto* p = new Tracked;
  domain.retire_delete(p);
  for (int i = 0; i < 8; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), 1);
}

TEST(Ebr, NestedGuardExitOrderingHoldsPin) {
  // Scope-exit ordering: exiting an inner guard must decrement the
  // nesting count, not unpin the slot — the thread stays pinned until
  // the outermost guard exits. This is the property the analyzer's
  // guard pass assumes when it treats an enclosing scope as covering
  // every deref (and nested Guard) inside it.
  const int base = Tracked::live.load();
  EbrDomain domain;
  auto* p = new Tracked;
  {
    EbrDomain::Guard outer(domain);
    {
      EbrDomain::Guard inner(domain);
      domain.retire_delete(p);
    }
    // `inner` has exited; `outer` must still hold the pin.
    for (int i = 0; i < 8; ++i) domain.collect();
    EXPECT_EQ(Tracked::live.load(), base + 1)
        << "inner guard exit unpinned the slot under a live outer guard";
  }
  for (int i = 0; i < 4; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), base);
}

TEST(Ebr, DeepReentrancyUnwindsToQuiescent) {
  // A deep stack of same-domain guards (well past any drain threshold)
  // pins exactly once and unpins exactly once, at full unwind.
  const int base = Tracked::live.load();
  EbrDomain domain;
  auto* p = new Tracked;
  std::function<void(int)> nest = [&](int depth) {
    EbrDomain::Guard guard(domain);
    if (depth > 0) {
      nest(depth - 1);
      return;
    }
    domain.retire_delete(p);
    for (int i = 0; i < 8; ++i) domain.collect();
    EXPECT_EQ(Tracked::live.load(), base + 1);
  };
  nest(32);
  // All 33 guards unwound: the slot is quiescent again.
  for (int i = 0; i < 4; ++i) domain.collect();
  EXPECT_EQ(Tracked::live.load(), base);
}

TEST(Ebr, CrossDomainNestedGuardsExitIndependently) {
  // The MCAS engine pins its own domain inside deque operations that
  // already hold a guard on another domain; each domain's pin must
  // track its own guard scope only.
  const int base = Tracked::live.load();
  EbrDomain outer_dom;
  EbrDomain inner_dom;
  auto* po = new Tracked;
  auto* pi = new Tracked;
  {
    EbrDomain::Guard outer(outer_dom);
    {
      EbrDomain::Guard inner(inner_dom);
      outer_dom.retire_delete(po);
      inner_dom.retire_delete(pi);
      for (int i = 0; i < 8; ++i) {
        outer_dom.collect();
        inner_dom.collect();
      }
      EXPECT_EQ(Tracked::live.load(), base + 2);
    }
    // inner_dom is quiescent, outer_dom still pinned: exactly the
    // inner domain's object may free.
    for (int i = 0; i < 8; ++i) {
      outer_dom.collect();
      inner_dom.collect();
    }
    EXPECT_EQ(Tracked::live.load(), base + 1)
        << "outer domain freed under its own live guard";
  }
  for (int i = 0; i < 4; ++i) outer_dom.collect();
  EXPECT_EQ(Tracked::live.load(), base);
}

TEST(Ebr, DestructorFreesEverything) {
  {
    EbrDomain domain;
    for (int i = 0; i < 100; ++i) domain.retire_delete(new Tracked);
    EXPECT_GT(Tracked::live.load(), 0);
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, EpochAdvancesUnderConcurrentGuards) {
  const int base_live = Tracked::live.load();
  std::uint64_t freed_mid = 0, retired_mid = 0;
  {
    EbrDomain domain;
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    dcd::util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        barrier.arrive_and_wait();
        for (int i = 0; i < kIters; ++i) {
          EbrDomain::Guard guard(domain);
          domain.retire_delete(new Tracked);
        }
      });
    }
    for (auto& t : ts) t.join();
    for (int i = 0; i < 6; ++i) domain.collect();
    // Epochs must have advanced under churn: the bulk of the retired
    // objects is already freed. (Exited workers strand their final limbo
    // batches until domain destruction — collect() only drains the
    // calling thread's slot — so exact equality is not guaranteed here.)
    freed_mid = domain.freed_count();
    retired_mid = domain.retired_count();
    EXPECT_EQ(retired_mid, static_cast<std::uint64_t>(kThreads * kIters));
    EXPECT_GT(freed_mid, 0u) << "epochs never advanced";
  }
  // Destruction force-drains every slot: nothing may survive.
  EXPECT_EQ(Tracked::live.load(), base_live);
}

TEST(Ebr, StressNoUseAfterFree) {
  // Readers chase a shared pointer under guards while a writer swaps and
  // retires it; Tracked's canary value detects touching freed memory.
  struct Node {
    std::uint64_t canary = 0xfeedfacecafebeefull;
  };
  EbrDomain domain;
  std::atomic<Node*> shared{new Node};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EbrDomain::Guard guard(domain);
        Node* n = shared.load(std::memory_order_acquire);
        if (n->canary != 0xfeedfacecafebeefull) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    EbrDomain::Guard guard(domain);
    Node* fresh = new Node;
    Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
    domain.retire(
        old,
        [](void* p, void*) {
          static_cast<Node*>(p)->canary = 0;  // poison before free
          delete static_cast<Node*>(p);
        },
        nullptr);
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0u);
  delete shared.load();
}

}  // namespace
