// ChaosDcas fault-injection layer: shape classification, schedule
// determinism / replay, forced-failure semantics, park/release/kill.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/global_lock.hpp"
#include "dcd/dcas/mcas.hpp"
#include "dcd/dcas/word.hpp"
#include "dcd/reclaim/magazine_pool.hpp"

namespace {

using namespace dcd::dcas;

constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

// A schedule with every probabilistic fault off — park rules only.
ChaosSchedule quiet_schedule(std::uint64_t seed = 1) {
  ChaosSchedule s;
  s.seed = seed;
  s.delay_per_mille = 0;
  s.max_delay_spins = 0;
  s.dcas_fail_per_mille = 0;
  return s;
}

// --- shape classification --------------------------------------------------

TEST(ClassifyDcas, IdentityIsEmptyConfirm) {
  // Lines 17-18 / line 5-style boundary confirmation: old == new.
  EXPECT_EQ(classify_dcas(val(1), kNull, val(1), kNull),
            DcasShape::kEmptyConfirm);
}

TEST(ClassifyDcas, PopCommitNullsTheCell) {
  // Array pop: index moves, popped cell becomes null.
  EXPECT_EQ(classify_dcas(val(1), val(2), val(3), kNull),
            DcasShape::kPopCommit);
}

TEST(ClassifyDcas, LogicalDeleteSetsDeletedBitAndNullsValue) {
  // List pop: sentinel pointer word gains the deleted bit, value nulled.
  const std::uint64_t ptr_plain = 0x1000;
  const std::uint64_t ptr_deleted = 0x1000 | kDeletedBit;
  EXPECT_EQ(classify_dcas(ptr_plain, val(7), ptr_deleted, kNull),
            DcasShape::kLogicalDelete);
}

TEST(ClassifyDcas, SpliceHasOneDeletedOperand) {
  const std::uint64_t del = 0x1000 | kDeletedBit;
  EXPECT_EQ(classify_dcas(del, 0x2000, 0x3000, 0x3000 | 1),
            DcasShape::kSplice);
  EXPECT_EQ(classify_dcas(0x2000, del, 0x3000, 0x3000 | 1),
            DcasShape::kSplice);
}

TEST(ClassifyDcas, TwoNullSpliceHasBothDeleted) {
  // Figure 16: both sentinel words point at logically deleted nodes.
  const std::uint64_t del_a = 0x1000 | kDeletedBit;
  const std::uint64_t del_b = 0x2000 | kDeletedBit;
  EXPECT_EQ(classify_dcas(del_a, del_b, 0x3000, 0x4000),
            DcasShape::kTwoNullSplice);
}

TEST(ClassifyDcas, PushesAreGeneric) {
  EXPECT_EQ(classify_dcas(val(1), kNull, val(1), val(9)),
            DcasShape::kGeneric);
}

// --- single-word CAS classification (elimination slots) ---------------------

TEST(ClassifyCas, OfferTakeCancelClearRoundTheProtocol) {
  const std::uint64_t offer = encode_elim_offer(val(9));
  EXPECT_EQ(classify_cas(kNull, offer), DcasShape::kElimOffer);
  EXPECT_EQ(classify_cas(offer, kElimTaken), DcasShape::kElimTake);
  EXPECT_EQ(classify_cas(offer, kNull), DcasShape::kElimCancel);
  EXPECT_EQ(classify_cas(kElimTaken, kNull), DcasShape::kElimClear);
}

TEST(ClassifyCas, NonProtocolTransitionsAreGeneric) {
  EXPECT_EQ(classify_cas(val(1), val(2)), DcasShape::kGeneric);
  EXPECT_EQ(classify_cas(kNull, val(2)), DcasShape::kGeneric);
  EXPECT_EQ(classify_cas(encode_elim_offer(val(1)), val(2)),
            DcasShape::kGeneric);
  EXPECT_EQ(classify_cas(kNull, kNull), DcasShape::kGeneric);
}

// --- schedule determinism --------------------------------------------------

TEST(ChaosSchedule, FromSeedIsPure) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, ~0ull}) {
    const ChaosSchedule a = ChaosSchedule::from_seed(seed);
    const ChaosSchedule b = ChaosSchedule::from_seed(seed);
    EXPECT_EQ(a.delay_per_mille, b.delay_per_mille);
    EXPECT_EQ(a.max_delay_spins, b.max_delay_spins);
    EXPECT_EQ(a.dcas_fail_per_mille, b.dcas_fail_per_mille);
    EXPECT_EQ(a.describe(), b.describe());
  }
}

TEST(ChaosSchedule, NearbySeedsDecorrelate) {
  const ChaosSchedule a = ChaosSchedule::from_seed(1);
  const ChaosSchedule b = ChaosSchedule::from_seed(2);
  EXPECT_NE(a.describe(), b.describe());
}

TEST(ChaosSchedule, SeedFromEnvParsesAndFallsBack) {
  ASSERT_EQ(unsetenv("DCD_CHAOS_SEED"), 0);
  EXPECT_EQ(chaos_seed_from_env(7), 7u);
  ASSERT_EQ(setenv("DCD_CHAOS_SEED", "123", 1), 0);
  EXPECT_EQ(chaos_seed_from_env(7), 123u);
  ASSERT_EQ(setenv("DCD_CHAOS_SEED", "0x10", 1), 0);
  EXPECT_EQ(chaos_seed_from_env(7), 16u);
  ASSERT_EQ(setenv("DCD_CHAOS_SEED", "bogus", 1), 0);
  EXPECT_EQ(chaos_seed_from_env(7), 7u);
  ASSERT_EQ(unsetenv("DCD_CHAOS_SEED"), 0);
}

// --- delegation ------------------------------------------------------------

TEST(ChaosDcasWrapper, DelegatesWithNoControllerInstalled) {
  using P = ChaosDcas<GlobalLockDcas>;
  ASSERT_EQ(ChaosController::active(), nullptr);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  EXPECT_EQ(P::load(a), val(1));
  EXPECT_TRUE(P::cas(a, val(1), val(3)));
  EXPECT_TRUE(P::dcas(a, b, val(3), val(2), val(4), val(5)));
  EXPECT_FALSE(P::dcas(a, b, val(3), val(2), val(9), val(9)));
  std::uint64_t oa = 0, ob = 0;
  EXPECT_FALSE(P::dcas_view(a, b, oa, ob, val(6), val(7)));
  EXPECT_EQ(oa, val(4));
  EXPECT_EQ(ob, val(5));
}

// --- forced failures -------------------------------------------------------

TEST(ChaosDcasWrapper, ForcedFailureLeavesMemoryUntouched) {
  using P = ChaosDcas<McasDcas>;
  ChaosSchedule s = quiet_schedule(9);
  s.dcas_fail_per_mille = 1000;  // every boolean DCAS spuriously fails
  ChaosController chaos(s);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(P::dcas(a, b, val(1), val(2), val(3), val(4)));
  }
  EXPECT_EQ(P::load(a), val(1));
  EXPECT_EQ(P::load(b), val(2));
  EXPECT_EQ(chaos.forced_failures(), 10u);
  EXPECT_EQ(chaos.attempts(DcasShape::kGeneric), 10u);
  EXPECT_EQ(chaos.successes(DcasShape::kGeneric), 0u);
}

TEST(ChaosDcasWrapper, ViewFormIsNeverForceFailed) {
  // dcas_view's failure contract hands back an atomic snapshot the caller
  // acts on (the lines-17/18 paths); a fake failure cannot produce one, so
  // the wrapper must not inject there even at p = 1.
  using P = ChaosDcas<McasDcas>;
  ChaosSchedule s = quiet_schedule(9);
  s.dcas_fail_per_mille = 1000;
  ChaosController chaos(s);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  std::uint64_t oa = val(1), ob = val(2);
  EXPECT_TRUE(P::dcas_view(a, b, oa, ob, val(3), val(4)));
  EXPECT_EQ(P::load(a), val(3));
  EXPECT_EQ(chaos.forced_failures(), 0u);
}

// --- replay determinism ----------------------------------------------------

// A fixed single-threaded op sequence; the injected-decision fingerprint
// must be a pure function of the schedule seed.
std::uint64_t fingerprint_of_run(std::uint64_t seed) {
  using P = ChaosDcas<GlobalLockDcas>;
  const ChaosSchedule s = ChaosSchedule::from_seed(seed);
  ChaosController chaos(s);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  std::uint64_t x = 1, y = 2;
  for (int i = 0; i < 200; ++i) {
    (void)P::load(a);
    if (P::dcas(a, b, val(x), val(y), val(x + 1), val(y + 1))) {
      ++x;
      ++y;
    }
    std::uint64_t oa = val(x), ob = val(y);
    (void)P::dcas_view(a, b, oa, ob, val(x), val(y));
  }
  return chaos.fingerprint();
}

TEST(ChaosReplay, SameSeedSameFingerprint) {
  EXPECT_EQ(fingerprint_of_run(42), fingerprint_of_run(42));
  EXPECT_EQ(fingerprint_of_run(7), fingerprint_of_run(7));
}

TEST(ChaosReplay, DifferentSeedDifferentFingerprint) {
  EXPECT_NE(fingerprint_of_run(42), fingerprint_of_run(43));
}

// --- park / release / kill -------------------------------------------------

TEST(ChaosPark, ParkAtNthHitThenRelease) {
  using P = ChaosDcas<GlobalLockDcas>;
  ChaosController chaos(quiet_schedule());
  const std::size_t rule = chaos.arm_park(sync_point::kDcasAny, 1);

  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  std::thread worker([&] {
    EXPECT_TRUE(P::dcas(a, b, val(1), val(2), val(3), val(4)));
  });
  ASSERT_TRUE(chaos.wait_parked(rule, 5000));
  EXPECT_TRUE(chaos.parked(rule));
  // The DCAS has not executed yet — the park is *before* the attempt.
  EXPECT_EQ(GlobalLockDcas::load(a), val(1));
  chaos.release(rule);
  worker.join();
  EXPECT_EQ(GlobalLockDcas::load(a), val(3));
  EXPECT_FALSE(chaos.parked(rule));
  EXPECT_EQ(chaos.successes(DcasShape::kGeneric), 1u);
}

TEST(ChaosPark, ElimOfferParksBeforeTheAttempt) {
  using P = ChaosDcas<GlobalLockDcas>;
  ChaosController chaos(quiet_schedule());
  const std::size_t rule = chaos.arm_park(sync_point::kElimOffer, 1);
  Word slot;
  P::store_init(slot, kNull);
  const std::uint64_t offer = encode_elim_offer(val(6));
  std::thread pusher([&] { EXPECT_TRUE(P::cas(slot, kNull, offer)); });
  ASSERT_TRUE(chaos.wait_parked(rule, 5000));
  // Parked *before* the CAS: the slot is still empty — the window where a
  // popper's scan must simply see kNull and move on.
  EXPECT_EQ(GlobalLockDcas::load(slot), kNull);
  chaos.release(rule);
  pusher.join();
  EXPECT_EQ(GlobalLockDcas::load(slot), offer);
  EXPECT_EQ(chaos.successes(DcasShape::kElimOffer), 1u);
}

TEST(ChaosPark, ElimTakeParksAfterSuccessAtTheLinearizationPoint) {
  using P = ChaosDcas<GlobalLockDcas>;
  ChaosController chaos(quiet_schedule());
  const std::size_t rule = chaos.arm_park(sync_point::kElimTake, 1);
  Word slot;
  const std::uint64_t offer = encode_elim_offer(val(6));
  P::store_init(slot, offer);
  std::thread popper([&] { EXPECT_TRUE(P::cas(slot, offer, kElimTaken)); });
  ASSERT_TRUE(chaos.wait_parked(rule, 5000));
  // The take parks *after* its write: the transfer has already linearized
  // (a suspended popper here models the paper's parked-thread concern —
  // the pusher can still observe kElimTaken and clear).
  EXPECT_EQ(GlobalLockDcas::load(slot), kElimTaken);
  chaos.release(rule);
  popper.join();
  EXPECT_EQ(chaos.successes(DcasShape::kElimTake), 1u);
}

TEST(ChaosPark, MagazineRefillParksThroughTheInstalledHook) {
  // The reclaim layer cannot call the chaos registry directly (layering:
  // dcd_dcas links dcd_reclaim); the controller installs a trampoline into
  // reclaim::magazine_hook(). A park armed on magazine.refill must
  // therefore trap a thread inside MagazinePool::allocate's refill window
  // — while it holds its own magazine's try-lock, which other threads
  // bypass by falling through to the shared pool.
  ChaosController chaos(quiet_schedule());
  const std::size_t rule = chaos.arm_park(sync_point::kMagazineRefill, 1);
  dcd::reclaim::MagazinePool pool(16, 8, /*batch=*/4);
  void* got = nullptr;
  std::thread worker([&] { got = pool.allocate(); });
  ASSERT_TRUE(chaos.wait_parked(rule, 5000));
  // The parked thread blocks its own magazine only; the shared list still
  // serves this thread directly.
  void* p = pool.allocate();
  EXPECT_NE(p, nullptr);
  chaos.release(rule);
  worker.join();
  EXPECT_NE(got, nullptr);
  EXPECT_NE(got, p);
  EXPECT_GE(pool.stats().refills, 1u);
}

TEST(ChaosPark, SpentRuleDoesNotTrapLaterHits) {
  using P = ChaosDcas<GlobalLockDcas>;
  ChaosController chaos(quiet_schedule());
  const std::size_t rule = chaos.arm_park(sync_point::kDcasAny, 1);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  std::thread worker([&] { P::dcas(a, b, val(1), val(2), val(3), val(4)); });
  ASSERT_TRUE(chaos.wait_parked(rule, 5000));
  chaos.release(rule);
  worker.join();
  // Subsequent hits of the same point run straight through.
  EXPECT_TRUE(P::dcas(a, b, val(3), val(4), val(5), val(6)));
  EXPECT_EQ(P::load(a), val(5));
}

TEST(ChaosPark, KilledThreadIsDrainedByTeardown) {
  // A park the test never releases models a thread dying at the sync
  // point; controller teardown must wake it and wait for it to finish the
  // call it was parked inside before freeing state.
  using P = ChaosDcas<GlobalLockDcas>;
  auto* chaos = new ChaosController(quiet_schedule());
  const std::size_t rule = chaos->arm_park(sync_point::kDcasAny, 1);
  Word a, b;
  P::store_init(a, val(1));
  P::store_init(b, val(2));
  std::thread victim([&] {
    EXPECT_TRUE(P::dcas(a, b, val(1), val(2), val(3), val(4)));
  });
  ASSERT_TRUE(chaos->wait_parked(rule, 5000));
  delete chaos;  // never released: teardown wakes and drains the victim
  victim.join();
  EXPECT_EQ(GlobalLockDcas::load(a), val(3));
  EXPECT_EQ(ChaosController::active(), nullptr);
}

TEST(ChaosPark, SecondControllerInstallsAfterFirstDies) {
  { ChaosController first(quiet_schedule(1)); }
  ChaosController second(quiet_schedule(2));
  EXPECT_EQ(ChaosController::active(), &second);
}

}  // namespace
