// Fork/join work-stealing executor (exec/executor.hpp): correctness of
// the task API over every deque family, the external submission paths
// (lock-free injection vs the ABP inbox), and the idle-path accounting —
// the dry-sweep/park cycle must leave the AdaptiveBackoff exact counters
// consistent (the PR 6 yields() contract, extended to the scan loop).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/exec/executor.hpp"
#include "dcd/util/backoff.hpp"

namespace {

using namespace dcd;
using exec::ExecConfig;
using exec::Executor;
using exec::Latch;
using exec::Task;
using exec::TaskContext;

// --- fib via continuation counting ----------------------------------------
//
// Each node either resolves directly (n < 2) or hands its own continuation
// to a freshly created sum node and forks two children that write into the
// sum node's args. The second child's pending-decrement (acq_rel) is what
// publishes both partial results to the sum body.

void fib_sum(TaskContext&, Task& t) {
  auto* out = reinterpret_cast<std::uint64_t*>(t.args[0]);
  *out = t.args[1] + t.args[2];
}

void fib_task(TaskContext& ctx, Task& t) {
  const std::uint64_t n = t.args[0];
  auto* out = reinterpret_cast<std::uint64_t*>(t.args[1]);
  if (n < 2) {
    *out = n;
    return;
  }
  Task* sum = ctx.create(&fib_sum, t.continuation, 2, t.args[1]);
  t.continuation = nullptr;  // the subtree's completion now rides on `sum`
  ctx.fork(ctx.create(&fib_task, sum, 0, n - 1,
                      reinterpret_cast<std::uint64_t>(&sum->args[1])));
  ctx.fork(ctx.create(&fib_task, sum, 0, n - 2,
                      reinterpret_cast<std::uint64_t>(&sum->args[2])));
}

constexpr std::uint64_t fib_expected(std::uint64_t n) {
  std::uint64_t a = 0, b = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

// --- schedule-independent checksum tree (examples/work_stealing.cpp) ------

std::atomic<std::uint64_t> g_checksum{0};

void tree_task(TaskContext& ctx, Task& t) {
  const std::uint64_t depth = t.args[0];
  const std::uint64_t weight = t.args[1];
  g_checksum.fetch_add(depth * 0x9e3779b97f4a7c15ull + weight,
                       std::memory_order_relaxed);
  if (depth == 0) return;
  for (std::uint64_t k = 0; k < 2; ++k) {
    ctx.fork(ctx.create(&tree_task, nullptr, 0, depth - 1, weight * 2 + k));
  }
}

std::uint64_t tree_expected(std::uint64_t depth, std::uint64_t weight) {
  std::uint64_t sum = depth * 0x9e3779b97f4a7c15ull + weight;
  if (depth == 0) return sum;
  for (std::uint64_t k = 0; k < 2; ++k) {
    sum += tree_expected(depth - 1, weight * 2 + k);
  }
  return sum;
}

template <typename D>
class ExecutorDequeTest : public ::testing::Test {};

using Deques = ::testing::Types<deque::ListDeque<Task*>,
                                deque::ArrayDeque<Task*>,
                                baseline::AroraDeque<Task*>>;
TYPED_TEST_SUITE(ExecutorDequeTest, Deques);

TYPED_TEST(ExecutorDequeTest, FibForkJoinExternalSubmit) {
  ExecConfig cfg;
  cfg.workers = 4;
  Executor<TypeParam> ex(cfg);
  std::uint64_t result = 0;
  Latch latch(1);
  Task* root = ex.create(&fib_task, latch.task(), 0, 16,
                         reinterpret_cast<std::uint64_t>(&result));
  ex.submit(root);
  ex.join(latch);
  EXPECT_EQ(result, fib_expected(16));
  ex.wait_all();
  const exec::ExecStats s = ex.stats();
  EXPECT_GE(s.executed, 2u);  // the tree really ran through the deques
  EXPECT_EQ(s.injected, 1u);  // one external submission (the root)
}

TYPED_TEST(ExecutorDequeTest, WaitAllDrainsFireAndForgetTree) {
  g_checksum.store(0, std::memory_order_relaxed);
  ExecConfig cfg;
  cfg.workers = 3;
  {
    Executor<TypeParam> ex(cfg);
    ex.submit(ex.create(&tree_task, nullptr, 0, 6, 1));
    ex.wait_all();
  }
  EXPECT_EQ(g_checksum.load(std::memory_order_relaxed), tree_expected(6, 1));
}

TYPED_TEST(ExecutorDequeTest, ManyExternalSubmitters) {
  g_checksum.store(0, std::memory_order_relaxed);
  ExecConfig cfg;
  cfg.workers = 2;
  Executor<TypeParam> ex(cfg);
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> producers;
  for (int p = 0; p < kSubmitters; ++p) {
    producers.emplace_back([&ex, p] {
      for (int i = 0; i < kPerThread; ++i) {
        ex.submit(ex.create(&tree_task, nullptr, 0, 3,
                            static_cast<std::uint64_t>(p * kPerThread + i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  ex.wait_all();
  std::uint64_t want = 0;
  for (int i = 0; i < kSubmitters * kPerThread; ++i) {
    want += tree_expected(3, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(g_checksum.load(std::memory_order_relaxed), want);
  EXPECT_EQ(ex.stats().injected,
            static_cast<std::uint64_t>(kSubmitters * kPerThread));
}

TEST(ExecutorBasics, SingleWorkerRunsEverythingInOrderOfDependence) {
  Executor<deque::ListDeque<Task*>> ex(ExecConfig{.workers = 1});
  std::uint64_t result = 0;
  Latch latch(1);
  ex.submit(ex.create(&fib_task, latch.task(), 0, 12,
                      reinterpret_cast<std::uint64_t>(&result)));
  ex.join(latch);  // external join: blocks on the completion condvar
  EXPECT_EQ(result, fib_expected(12));
}

TEST(ExecutorBasics, LatchCountsMultipleRoots) {
  Executor<deque::ArrayDeque<Task*>> ex(ExecConfig{.workers = 2});
  std::uint64_t r1 = 0, r2 = 0, r3 = 0;
  Latch latch(3);
  ex.submit(ex.create(&fib_task, latch.task(), 0, 10,
                      reinterpret_cast<std::uint64_t>(&r1)));
  ex.submit(ex.create(&fib_task, latch.task(), 0, 11,
                      reinterpret_cast<std::uint64_t>(&r2)));
  ex.submit(ex.create(&fib_task, latch.task(), 0, 12,
                      reinterpret_cast<std::uint64_t>(&r3)));
  ex.join(latch);
  EXPECT_EQ(r1, fib_expected(10));
  EXPECT_EQ(r2, fib_expected(11));
  EXPECT_EQ(r3, fib_expected(12));
}

TEST(ExecutorBasics, StatsCountStealsOnMultiWorkerTree) {
  g_checksum.store(0, std::memory_order_relaxed);
  ExecConfig cfg;
  cfg.workers = 4;
  Executor<deque::ListDeque<Task*>> ex(cfg);
  ex.submit(ex.create(&tree_task, nullptr, 0, 10, 1));
  ex.wait_all();
  EXPECT_EQ(g_checksum.load(std::memory_order_relaxed),
            tree_expected(10, 1));
  const exec::ExecStats s = ex.stats();
  // 2^11 - 1 nodes, all executed exactly once.
  EXPECT_EQ(s.executed, (1u << 11) - 1);
  // All work entered through one worker; with three more sweeping, at
  // least one task must have crossed deques (not guaranteed per-steal
  // counts, but zero would mean the sweep never worked at all).
  EXPECT_GE(s.steals + s.failed_steals, 1u);
}

TEST(ExecutorBasics, LatencySamplingRecordsWhenEnabled) {
  ExecConfig cfg;
  cfg.workers = 2;
  cfg.latency_stride = 1;  // sample every acquisition
  Executor<deque::ListDeque<Task*>> ex(cfg);
  ex.submit(ex.create(&tree_task, nullptr, 0, 8, 1));
  ex.wait_all();
  // Quiescent now (wait_all returned, workers only sweep dry).
  EXPECT_GE(ex.latency().total(), ex.stats().executed / 2);
}

// --- on-worker wait_all() and Latch lifetime --------------------------------

using ListExec = Executor<deque::ListDeque<Task*>>;

void forks_then_waits_all(TaskContext& ctx, Task& t) {
  auto* ex = reinterpret_cast<ListExec*>(t.args[0]);
  auto* snapshot = reinterpret_cast<std::uint64_t*>(t.args[1]);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ctx.fork(ctx.create(&tree_task, nullptr, 0, 3, i));
  }
  // wait_all() on a worker must help-drain: the caller's own task is
  // counted in outstanding_, so blocking on the condvar here can never be
  // satisfied (and with one worker nobody else runs the children).
  ex->wait_all();
  *snapshot = g_checksum.load(std::memory_order_relaxed);
}

TEST(ExecutorBasics, WaitAllFromWorkerTaskHelpsInsteadOfDeadlocking) {
  g_checksum.store(0, std::memory_order_relaxed);
  ListExec ex(ExecConfig{.workers = 1});
  std::uint64_t snapshot = 0;
  Latch latch(1);
  ex.submit(ex.create(&forks_then_waits_all, latch.task(), 0,
                      reinterpret_cast<std::uint64_t>(&ex),
                      reinterpret_cast<std::uint64_t>(&snapshot)));
  ex.join(latch);
  std::uint64_t want = 0;
  for (std::uint64_t i = 0; i < 8; ++i) want += tree_expected(3, i);
  // Every forked child completed before wait_all() returned.
  EXPECT_EQ(snapshot, want);
}

void inner_join_rounds(TaskContext& ctx, Task& t) {
  auto* ex = reinterpret_cast<ListExec*>(t.args[0]);
  for (int round = 0; round < 128; ++round) {
    // Stack-allocated latch, destroyed the instant done() is observed.
    // The completing worker's decrement-to-zero must not touch the Task
    // afterwards (complete() reads fn before the fetch_sub) — TSan flags
    // the old read-after-release here.
    Latch latch(4);
    for (std::uint64_t i = 0; i < 4; ++i) {
      ctx.fork(ctx.create(&tree_task, latch.task(), 0, 1, i));
    }
    ex->join(latch);  // worker help loop polls latch.done()
  }
}

TEST(ExecutorBasics, WorkerJoinOnStackLatchSurvivesManyRounds) {
  g_checksum.store(0, std::memory_order_relaxed);
  ListExec ex(ExecConfig{.workers = 4});
  Latch outer(1);
  ex.submit(ex.create(&inner_join_rounds, outer.task(), 0,
                      reinterpret_cast<std::uint64_t>(&ex)));
  ex.join(outer);
  ex.wait_all();  // grandchildren are fire-and-forget; drain them too
  std::uint64_t want = 0;
  for (std::uint64_t i = 0; i < 4; ++i) want += tree_expected(1, i);
  EXPECT_EQ(g_checksum.load(std::memory_order_relaxed), 128 * want);
}

// --- idle-path backoff accounting (satellite: PR 6 yields() contract) -----
//
// Chaos-parks the single worker at exec.park: wait_parked() gives a
// happens-before edge to the worker's last counter writes, so the asserts
// below are exact, not racy samples. From a fresh AdaptiveBackoff the
// whole first dry phase is deterministic: park_after dry sweeps, exactly
// one on_failure() each, with the spin->yield escalation boundary at
// floor(log2(spin_limit)) + 1 failures.
TEST(ExecutorBackoffAccounting, DrySweepParkCycleKeepsExactCounters) {
  ExecConfig cfg;
  cfg.workers = 1;
  cfg.park_after = 20;

  dcas::ChaosController chaos(dcas::ChaosSchedule::from_seed(
      dcas::chaos_seed_from_env(2026)));
  const std::size_t rule = chaos.arm_park(dcas::sync_point::kExecPark, 1);

  Executor<deque::ListDeque<Task*>> ex(cfg);
  ASSERT_TRUE(chaos.wait_parked(rule, 10000));

  const exec::ExecStats parked = ex.stats();
  EXPECT_EQ(parked.executed, 0u);
  EXPECT_EQ(parked.parks, 1u);
  EXPECT_EQ(parked.dry_sweeps, cfg.park_after);
  // Exactly one backoff failure per dry sweep — the scan-loop extension
  // of the exact-count contract.
  EXPECT_EQ(parked.scan_pauses, parked.dry_sweeps);
  // Escalation boundary: spins while the doubling budget stays within
  // kDefaultSpinLimit, yields after.
  std::uint32_t spin_steps = 0;
  for (std::uint64_t budget = 1;
       budget <= util::AdaptiveBackoff::kDefaultSpinLimit; budget *= 2) {
    ++spin_steps;
  }
  ASSERT_GT(cfg.park_after, spin_steps);
  EXPECT_EQ(parked.scan_yields, parked.scan_pauses - spin_steps);

  // Unpark and prove the worker comes back: one task must execute and the
  // pause/dry-sweep invariant must hold at quiescence.
  chaos.release(rule);
  std::uint64_t result = 0;
  Latch latch(1);
  ex.submit(ex.create(&fib_task, latch.task(), 0, 8,
                      reinterpret_cast<std::uint64_t>(&result)));
  ex.join(latch);
  EXPECT_EQ(result, fib_expected(8));
  const exec::ExecStats after = ex.stats();
  EXPECT_GE(after.executed, 1u);
  EXPECT_GE(after.scan_pauses, parked.scan_pauses);
  // The mirrors are written together with the dry-sweep bump; any
  // in-flight window is at most one sweep wide.
  EXPECT_LE(after.dry_sweeps - after.scan_pauses, 1u);
}

}  // namespace
