// ArrayDeque sequential semantics, parameterized over every DCAS policy and
// both §3 optimisation knobs. Covers Figures 5 and 7 (successful
// pop/push) plus the §2.2 example trace.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/array_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P, ArrayOptions O>
struct Cfg {
  using Policy = P;
  static constexpr ArrayOptions kOpt = O;
};

constexpr ArrayOptions kBoth{true, true};
constexpr ArrayOptions kNeither{false, false};
constexpr ArrayOptions kRecheckOnly{true, false};
constexpr ArrayOptions kViewOnly{false, true};

template <typename C>
class ArrayDequeTest : public ::testing::Test {
 protected:
  template <typename T = std::uint64_t>
  using Deque = ArrayDeque<T, typename C::Policy, C::kOpt>;
};

using Configs = ::testing::Types<
    Cfg<GlobalLockDcas, kBoth>, Cfg<GlobalLockDcas, kNeither>,
    Cfg<GlobalLockDcas, kRecheckOnly>, Cfg<GlobalLockDcas, kViewOnly>,
    Cfg<StripedLockDcas, kBoth>, Cfg<StripedLockDcas, kNeither>,
    Cfg<McasDcas, kBoth>, Cfg<McasDcas, kNeither>,
    Cfg<McasDcas, kRecheckOnly>, Cfg<McasDcas, kViewOnly>>;
TYPED_TEST_SUITE(ArrayDequeTest, Configs);

TYPED_TEST(ArrayDequeTest, StartsEmpty) {
  typename TestFixture::template Deque<> d(8);
  EXPECT_EQ(d.capacity(), 8u);
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

TYPED_TEST(ArrayDequeTest, PaperSection22ExampleTrace) {
  // pushRight(1); pushLeft(2); pushRight(3); popLeft()->2; popLeft()->1.
  typename TestFixture::template Deque<> d(8);
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ArrayDequeTest, LifoFromRight) {
  typename TestFixture::template Deque<> d(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 10; i-- > 0;) {
    ASSERT_EQ(d.pop_right(), i);
  }
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ArrayDequeTest, FifoAcrossEnds) {
  typename TestFixture::template Deque<> d(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.pop_left(), i);
  }
}

TYPED_TEST(ArrayDequeTest, MirrorLifoFromLeft) {
  typename TestFixture::template Deque<> d(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 10; i-- > 0;) {
    ASSERT_EQ(d.pop_left(), i);
  }
}

TYPED_TEST(ArrayDequeTest, MirrorFifoLeftToRight) {
  typename TestFixture::template Deque<> d(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.pop_right(), i);
  }
}

TYPED_TEST(ArrayDequeTest, InterleavedEndsKeepOrder) {
  typename TestFixture::template Deque<> d(32);
  // Build <5 3 1 0 2 4> then check both ends.
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      ASSERT_EQ(d.push_right(i), PushResult::kOkay);
    } else {
      ASSERT_EQ(d.push_left(i), PushResult::kOkay);
    }
  }
  EXPECT_EQ(d.pop_left(), 5u);
  EXPECT_EQ(d.pop_right(), 4u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_right(), 0u);
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(ArrayDequeTest, WrapsAroundManyTimes) {
  typename TestFixture::template Deque<> d(4);
  for (std::uint64_t round = 0; round < 100; ++round) {
    ASSERT_EQ(d.push_right(round), PushResult::kOkay);
    ASSERT_EQ(d.pop_left(), round);
  }
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

TYPED_TEST(ArrayDequeTest, LeftwardDriftWrapsToo) {
  typename TestFixture::template Deque<> d(4);
  for (std::uint64_t round = 0; round < 100; ++round) {
    ASSERT_EQ(d.push_left(round), PushResult::kOkay);
    ASSERT_EQ(d.pop_right(), round);
  }
}

TYPED_TEST(ArrayDequeTest, StoresPointers) {
  typename TestFixture::template Deque<int*> d(4);
  alignas(8) int a = 1, b = 2;
  ASSERT_EQ(d.push_right(&a), PushResult::kOkay);
  ASSERT_EQ(d.push_left(&b), PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), &a);
  EXPECT_EQ(d.pop_right(), &b);
}

TYPED_TEST(ArrayDequeTest, StoresSignedValues) {
  typename TestFixture::template Deque<std::int64_t> d(4);
  ASSERT_EQ(d.push_right(-12345), PushResult::kOkay);
  ASSERT_EQ(d.push_left(67890), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 67890);
  EXPECT_EQ(d.pop_left(), -12345);
}

TYPED_TEST(ArrayDequeTest, CapacityOneDeque) {
  typename TestFixture::template Deque<> d(1);
  EXPECT_EQ(d.push_right(7), PushResult::kOkay);
  EXPECT_EQ(d.push_right(8), PushResult::kFull);
  EXPECT_EQ(d.push_left(9), PushResult::kFull);
  EXPECT_EQ(d.pop_left(), 7u);
  EXPECT_EQ(d.push_left(10), PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), 10u);
  EXPECT_FALSE(d.pop_right().has_value());
}

}  // namespace
